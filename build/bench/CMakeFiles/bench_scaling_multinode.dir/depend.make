# Empty dependencies file for bench_scaling_multinode.
# This may be replaced when dependencies are built.
