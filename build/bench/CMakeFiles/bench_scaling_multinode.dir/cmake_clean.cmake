file(REMOVE_RECURSE
  "CMakeFiles/bench_scaling_multinode.dir/bench_scaling_multinode.cpp.o"
  "CMakeFiles/bench_scaling_multinode.dir/bench_scaling_multinode.cpp.o.d"
  "bench_scaling_multinode"
  "bench_scaling_multinode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scaling_multinode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
