file(REMOVE_RECURSE
  "CMakeFiles/bench_scatteradd.dir/bench_scatteradd.cpp.o"
  "CMakeFiles/bench_scatteradd.dir/bench_scatteradd.cpp.o.d"
  "bench_scatteradd"
  "bench_scatteradd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scatteradd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
