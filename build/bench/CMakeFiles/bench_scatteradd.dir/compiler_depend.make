# Empty compiler generated dependencies file for bench_scatteradd.
# This may be replaced when dependencies are built.
