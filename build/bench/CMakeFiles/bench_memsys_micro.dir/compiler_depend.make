# Empty compiler generated dependencies file for bench_memsys_micro.
# This may be replaced when dependencies are built.
