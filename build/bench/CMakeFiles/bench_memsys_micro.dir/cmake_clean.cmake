file(REMOVE_RECURSE
  "CMakeFiles/bench_memsys_micro.dir/bench_memsys_micro.cpp.o"
  "CMakeFiles/bench_memsys_micro.dir/bench_memsys_micro.cpp.o.d"
  "bench_memsys_micro"
  "bench_memsys_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_memsys_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
