file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_watermodels.dir/bench_ablation_watermodels.cpp.o"
  "CMakeFiles/bench_ablation_watermodels.dir/bench_ablation_watermodels.cpp.o.d"
  "bench_ablation_watermodels"
  "bench_ablation_watermodels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_watermodels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
