# Empty compiler generated dependencies file for bench_ablation_watermodels.
# This may be replaced when dependencies are built.
