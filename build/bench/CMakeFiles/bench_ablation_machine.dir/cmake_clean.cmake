file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_machine.dir/bench_ablation_machine.cpp.o"
  "CMakeFiles/bench_ablation_machine.dir/bench_ablation_machine.cpp.o.d"
  "bench_ablation_machine"
  "bench_ablation_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
