file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_schedule.dir/bench_fig10_schedule.cpp.o"
  "CMakeFiles/bench_fig10_schedule.dir/bench_fig10_schedule.cpp.o.d"
  "bench_fig10_schedule"
  "bench_fig10_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
