# Empty compiler generated dependencies file for bench_fig10_schedule.
# This may be replaced when dependencies are built.
