# Empty compiler generated dependencies file for bench_blocked_scheme.
# This may be replaced when dependencies are built.
