file(REMOVE_RECURSE
  "CMakeFiles/bench_blocked_scheme.dir/bench_blocked_scheme.cpp.o"
  "CMakeFiles/bench_blocked_scheme.dir/bench_blocked_scheme.cpp.o.d"
  "bench_blocked_scheme"
  "bench_blocked_scheme.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_blocked_scheme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
