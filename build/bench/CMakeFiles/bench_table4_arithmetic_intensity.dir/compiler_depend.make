# Empty compiler generated dependencies file for bench_table4_arithmetic_intensity.
# This may be replaced when dependencies are built.
