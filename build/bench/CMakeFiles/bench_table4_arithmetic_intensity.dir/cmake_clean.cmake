file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_arithmetic_intensity.dir/bench_table4_arithmetic_intensity.cpp.o"
  "CMakeFiles/bench_table4_arithmetic_intensity.dir/bench_table4_arithmetic_intensity.cpp.o.d"
  "bench_table4_arithmetic_intensity"
  "bench_table4_arithmetic_intensity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_arithmetic_intensity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
