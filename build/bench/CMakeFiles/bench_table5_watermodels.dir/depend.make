# Empty dependencies file for bench_table5_watermodels.
# This may be replaced when dependencies are built.
