
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table5_watermodels.cpp" "bench/CMakeFiles/bench_table5_watermodels.dir/bench_table5_watermodels.cpp.o" "gcc" "bench/CMakeFiles/bench_table5_watermodels.dir/bench_table5_watermodels.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/smd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/smd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/smd_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/smd_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/smd_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/md/CMakeFiles/smd_md.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/smd_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/smd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
