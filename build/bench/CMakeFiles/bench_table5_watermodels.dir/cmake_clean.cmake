file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_watermodels.dir/bench_table5_watermodels.cpp.o"
  "CMakeFiles/bench_table5_watermodels.dir/bench_table5_watermodels.cpp.o.d"
  "bench_table5_watermodels"
  "bench_table5_watermodels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_watermodels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
