# Empty compiler generated dependencies file for multisite_test.
# This may be replaced when dependencies are built.
