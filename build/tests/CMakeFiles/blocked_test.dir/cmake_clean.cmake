file(REMOVE_RECURSE
  "CMakeFiles/blocked_test.dir/blocked_test.cpp.o"
  "CMakeFiles/blocked_test.dir/blocked_test.cpp.o.d"
  "blocked_test"
  "blocked_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blocked_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
