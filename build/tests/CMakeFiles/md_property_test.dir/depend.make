# Empty dependencies file for md_property_test.
# This may be replaced when dependencies are built.
