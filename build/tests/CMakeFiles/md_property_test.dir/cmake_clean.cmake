file(REMOVE_RECURSE
  "CMakeFiles/md_property_test.dir/md_property_test.cpp.o"
  "CMakeFiles/md_property_test.dir/md_property_test.cpp.o.d"
  "md_property_test"
  "md_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/md_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
