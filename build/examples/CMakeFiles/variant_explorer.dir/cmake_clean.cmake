file(REMOVE_RECURSE
  "CMakeFiles/variant_explorer.dir/variant_explorer.cpp.o"
  "CMakeFiles/variant_explorer.dir/variant_explorer.cpp.o.d"
  "variant_explorer"
  "variant_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variant_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
