# Empty compiler generated dependencies file for variant_explorer.
# This may be replaced when dependencies are built.
