# Empty compiler generated dependencies file for streammd_cli.
# This may be replaced when dependencies are built.
