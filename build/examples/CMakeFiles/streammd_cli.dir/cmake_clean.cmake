file(REMOVE_RECURSE
  "CMakeFiles/streammd_cli.dir/streammd_cli.cpp.o"
  "CMakeFiles/streammd_cli.dir/streammd_cli.cpp.o.d"
  "streammd_cli"
  "streammd_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streammd_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
