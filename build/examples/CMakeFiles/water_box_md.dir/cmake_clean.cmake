file(REMOVE_RECURSE
  "CMakeFiles/water_box_md.dir/water_box_md.cpp.o"
  "CMakeFiles/water_box_md.dir/water_box_md.cpp.o.d"
  "water_box_md"
  "water_box_md.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/water_box_md.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
