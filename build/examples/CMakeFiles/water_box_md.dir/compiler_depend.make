# Empty compiler generated dependencies file for water_box_md.
# This may be replaced when dependencies are built.
