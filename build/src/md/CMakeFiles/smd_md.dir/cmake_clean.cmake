file(REMOVE_RECURSE
  "CMakeFiles/smd_md.dir/force_ref.cpp.o"
  "CMakeFiles/smd_md.dir/force_ref.cpp.o.d"
  "CMakeFiles/smd_md.dir/integrator.cpp.o"
  "CMakeFiles/smd_md.dir/integrator.cpp.o.d"
  "CMakeFiles/smd_md.dir/neighborlist.cpp.o"
  "CMakeFiles/smd_md.dir/neighborlist.cpp.o.d"
  "CMakeFiles/smd_md.dir/system.cpp.o"
  "CMakeFiles/smd_md.dir/system.cpp.o.d"
  "CMakeFiles/smd_md.dir/water.cpp.o"
  "CMakeFiles/smd_md.dir/water.cpp.o.d"
  "libsmd_md.a"
  "libsmd_md.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smd_md.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
