file(REMOVE_RECURSE
  "libsmd_md.a"
)
