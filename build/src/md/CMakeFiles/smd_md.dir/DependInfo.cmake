
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/md/force_ref.cpp" "src/md/CMakeFiles/smd_md.dir/force_ref.cpp.o" "gcc" "src/md/CMakeFiles/smd_md.dir/force_ref.cpp.o.d"
  "/root/repo/src/md/integrator.cpp" "src/md/CMakeFiles/smd_md.dir/integrator.cpp.o" "gcc" "src/md/CMakeFiles/smd_md.dir/integrator.cpp.o.d"
  "/root/repo/src/md/neighborlist.cpp" "src/md/CMakeFiles/smd_md.dir/neighborlist.cpp.o" "gcc" "src/md/CMakeFiles/smd_md.dir/neighborlist.cpp.o.d"
  "/root/repo/src/md/system.cpp" "src/md/CMakeFiles/smd_md.dir/system.cpp.o" "gcc" "src/md/CMakeFiles/smd_md.dir/system.cpp.o.d"
  "/root/repo/src/md/water.cpp" "src/md/CMakeFiles/smd_md.dir/water.cpp.o" "gcc" "src/md/CMakeFiles/smd_md.dir/water.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/smd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
