# Empty dependencies file for smd_md.
# This may be replaced when dependencies are built.
