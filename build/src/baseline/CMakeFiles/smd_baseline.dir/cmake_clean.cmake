file(REMOVE_RECURSE
  "CMakeFiles/smd_baseline.dir/gromacs_like.cpp.o"
  "CMakeFiles/smd_baseline.dir/gromacs_like.cpp.o.d"
  "CMakeFiles/smd_baseline.dir/p4model.cpp.o"
  "CMakeFiles/smd_baseline.dir/p4model.cpp.o.d"
  "libsmd_baseline.a"
  "libsmd_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smd_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
