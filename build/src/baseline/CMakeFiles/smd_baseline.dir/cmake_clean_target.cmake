file(REMOVE_RECURSE
  "libsmd_baseline.a"
)
