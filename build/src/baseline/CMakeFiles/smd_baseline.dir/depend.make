# Empty dependencies file for smd_baseline.
# This may be replaced when dependencies are built.
