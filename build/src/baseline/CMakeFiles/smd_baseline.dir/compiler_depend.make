# Empty compiler generated dependencies file for smd_baseline.
# This may be replaced when dependencies are built.
