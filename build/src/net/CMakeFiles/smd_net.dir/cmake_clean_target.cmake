file(REMOVE_RECURSE
  "libsmd_net.a"
)
