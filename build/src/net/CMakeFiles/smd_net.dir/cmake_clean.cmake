file(REMOVE_RECURSE
  "CMakeFiles/smd_net.dir/multinode.cpp.o"
  "CMakeFiles/smd_net.dir/multinode.cpp.o.d"
  "CMakeFiles/smd_net.dir/topology.cpp.o"
  "CMakeFiles/smd_net.dir/topology.cpp.o.d"
  "libsmd_net.a"
  "libsmd_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smd_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
