# Empty compiler generated dependencies file for smd_net.
# This may be replaced when dependencies are built.
