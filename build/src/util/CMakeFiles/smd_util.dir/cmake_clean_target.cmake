file(REMOVE_RECURSE
  "libsmd_util.a"
)
