file(REMOVE_RECURSE
  "CMakeFiles/smd_util.dir/rng.cpp.o"
  "CMakeFiles/smd_util.dir/rng.cpp.o.d"
  "CMakeFiles/smd_util.dir/stats.cpp.o"
  "CMakeFiles/smd_util.dir/stats.cpp.o.d"
  "CMakeFiles/smd_util.dir/table.cpp.o"
  "CMakeFiles/smd_util.dir/table.cpp.o.d"
  "libsmd_util.a"
  "libsmd_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smd_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
