# Empty dependencies file for smd_util.
# This may be replaced when dependencies are built.
