# Empty compiler generated dependencies file for smd_sim.
# This may be replaced when dependencies are built.
