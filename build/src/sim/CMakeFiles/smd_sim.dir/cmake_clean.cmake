file(REMOVE_RECURSE
  "CMakeFiles/smd_sim.dir/controller.cpp.o"
  "CMakeFiles/smd_sim.dir/controller.cpp.o.d"
  "CMakeFiles/smd_sim.dir/kernelexec.cpp.o"
  "CMakeFiles/smd_sim.dir/kernelexec.cpp.o.d"
  "CMakeFiles/smd_sim.dir/trace.cpp.o"
  "CMakeFiles/smd_sim.dir/trace.cpp.o.d"
  "libsmd_sim.a"
  "libsmd_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smd_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
