file(REMOVE_RECURSE
  "libsmd_sim.a"
)
