# Empty dependencies file for smd_mem.
# This may be replaced when dependencies are built.
