file(REMOVE_RECURSE
  "libsmd_mem.a"
)
