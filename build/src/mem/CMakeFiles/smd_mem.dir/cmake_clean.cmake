file(REMOVE_RECURSE
  "CMakeFiles/smd_mem.dir/addrgen.cpp.o"
  "CMakeFiles/smd_mem.dir/addrgen.cpp.o.d"
  "CMakeFiles/smd_mem.dir/cache.cpp.o"
  "CMakeFiles/smd_mem.dir/cache.cpp.o.d"
  "CMakeFiles/smd_mem.dir/dram.cpp.o"
  "CMakeFiles/smd_mem.dir/dram.cpp.o.d"
  "CMakeFiles/smd_mem.dir/memsys.cpp.o"
  "CMakeFiles/smd_mem.dir/memsys.cpp.o.d"
  "CMakeFiles/smd_mem.dir/scatteradd.cpp.o"
  "CMakeFiles/smd_mem.dir/scatteradd.cpp.o.d"
  "libsmd_mem.a"
  "libsmd_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smd_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
