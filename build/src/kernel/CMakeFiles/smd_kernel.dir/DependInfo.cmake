
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/interp.cpp" "src/kernel/CMakeFiles/smd_kernel.dir/interp.cpp.o" "gcc" "src/kernel/CMakeFiles/smd_kernel.dir/interp.cpp.o.d"
  "/root/repo/src/kernel/ir.cpp" "src/kernel/CMakeFiles/smd_kernel.dir/ir.cpp.o" "gcc" "src/kernel/CMakeFiles/smd_kernel.dir/ir.cpp.o.d"
  "/root/repo/src/kernel/schedule.cpp" "src/kernel/CMakeFiles/smd_kernel.dir/schedule.cpp.o" "gcc" "src/kernel/CMakeFiles/smd_kernel.dir/schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/smd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
