file(REMOVE_RECURSE
  "libsmd_kernel.a"
)
