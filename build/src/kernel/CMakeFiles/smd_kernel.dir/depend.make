# Empty dependencies file for smd_kernel.
# This may be replaced when dependencies are built.
