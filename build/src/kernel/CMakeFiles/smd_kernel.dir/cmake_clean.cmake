file(REMOVE_RECURSE
  "CMakeFiles/smd_kernel.dir/interp.cpp.o"
  "CMakeFiles/smd_kernel.dir/interp.cpp.o.d"
  "CMakeFiles/smd_kernel.dir/ir.cpp.o"
  "CMakeFiles/smd_kernel.dir/ir.cpp.o.d"
  "CMakeFiles/smd_kernel.dir/schedule.cpp.o"
  "CMakeFiles/smd_kernel.dir/schedule.cpp.o.d"
  "libsmd_kernel.a"
  "libsmd_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smd_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
