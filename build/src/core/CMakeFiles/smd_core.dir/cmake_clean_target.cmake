file(REMOVE_RECURSE
  "libsmd_core.a"
)
