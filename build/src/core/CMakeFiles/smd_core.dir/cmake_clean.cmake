file(REMOVE_RECURSE
  "CMakeFiles/smd_core.dir/blocking.cpp.o"
  "CMakeFiles/smd_core.dir/blocking.cpp.o.d"
  "CMakeFiles/smd_core.dir/kernels.cpp.o"
  "CMakeFiles/smd_core.dir/kernels.cpp.o.d"
  "CMakeFiles/smd_core.dir/layouts.cpp.o"
  "CMakeFiles/smd_core.dir/layouts.cpp.o.d"
  "CMakeFiles/smd_core.dir/program.cpp.o"
  "CMakeFiles/smd_core.dir/program.cpp.o.d"
  "CMakeFiles/smd_core.dir/report.cpp.o"
  "CMakeFiles/smd_core.dir/report.cpp.o.d"
  "CMakeFiles/smd_core.dir/run.cpp.o"
  "CMakeFiles/smd_core.dir/run.cpp.o.d"
  "libsmd_core.a"
  "libsmd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
