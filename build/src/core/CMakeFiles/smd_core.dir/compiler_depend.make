# Empty compiler generated dependencies file for smd_core.
# This may be replaced when dependencies are built.
