// Micro-characterization of the simulated Merrimac memory system:
// sequential vs. strided vs. gather bandwidth, cache reuse, and the
// random-access penalty of Section 2.2 ("38.4 GB/s peak and roughly half
// that of random access bandwidth").
#include <cstdio>

#include "bench/bench_io.h"
#include "src/mem/memsys.h"
#include "src/util/rng.h"
#include "src/util/table.h"

using namespace smd;

namespace {

struct Result {
  double words_per_cycle;
  double gbytes;
  double cache_hit_rate;
};

obs::Json result_json(const char* name, const Result& r) {
  obs::Json j = obs::Json::object();
  j.set("pattern", name)
      .set("words_per_cycle", r.words_per_cycle)
      .set("gbytes_per_s", r.gbytes)
      .set("cache_hit_rate", r.cache_hit_rate);
  return j;
}

Result run_pattern(const char* /*name*/, mem::MemOpDesc desc, std::int64_t footprint) {
  mem::GlobalMemory gmem;
  gmem.alloc(footprint);
  mem::MemSystemConfig cfg;
  mem::MemSystem ms(cfg, &gmem);
  std::vector<double> dst;
  ms.issue(desc, &dst, nullptr);
  while (!ms.all_done()) ms.tick();
  Result r;
  r.words_per_cycle = static_cast<double>(desc.total_words()) /
                      static_cast<double>(ms.now());
  r.gbytes = r.words_per_cycle * 8.0;  // at 1 GHz
  r.cache_hit_rate = ms.cache_stats().hit_rate();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  benchio::JsonOut jout(argc, argv, "bench_memsys_micro");
  obs::Json patterns = obs::Json::array();
  const std::int64_t n = 32768;
  util::Table t({"pattern", "words/cycle", "GB/s @1GHz", "cache hit rate"});

  {
    mem::MemOpDesc d;
    d.kind = mem::MemOpKind::kLoadStrided;
    d.n_records = n;
    d.record_words = 8;
    const Result r = run_pattern("sequential", d, n * 8);
    patterns.push_back(result_json("sequential 8-word records", r));
    t.add_row({"sequential 8-word records", util::Table::num(r.words_per_cycle, 2),
               util::Table::num(r.gbytes, 1), util::Table::percent(r.cache_hit_rate, 1)});
  }
  {
    mem::MemOpDesc d;
    d.kind = mem::MemOpKind::kLoadStrided;
    d.n_records = n;
    d.record_words = 1;
    d.stride_words = 64;  // one word per cache line, 8 lines apart
    const Result r = run_pattern("strided", d, n * 64 + 64);
    patterns.push_back(result_json("strided (1 of every 64 words)", r));
    t.add_row({"strided (1 of every 64 words)", util::Table::num(r.words_per_cycle, 2),
               util::Table::num(r.gbytes, 1), util::Table::percent(r.cache_hit_rate, 1)});
  }
  {
    util::Rng rng(7);
    mem::MemOpDesc d;
    d.kind = mem::MemOpKind::kLoadGather;
    d.n_records = n;
    d.record_words = 9;
    const std::int64_t records = 1 << 18;  // 2.3 MWords > cache
    for (std::int64_t i = 0; i < n; ++i) d.indices.push_back(rng.uniform_u64(records));
    const Result r = run_pattern("gather-large", d, records * 9);
    patterns.push_back(result_json("random gather, 18 MB footprint", r));
    t.add_row({"random gather, 18 MB footprint", util::Table::num(r.words_per_cycle, 2),
               util::Table::num(r.gbytes, 1), util::Table::percent(r.cache_hit_rate, 1)});
  }
  {
    util::Rng rng(7);
    mem::MemOpDesc d;
    d.kind = mem::MemOpKind::kLoadGather;
    d.n_records = n;
    d.record_words = 9;
    const std::int64_t records = 900;  // the paper's position array
    for (std::int64_t i = 0; i < n; ++i) d.indices.push_back(rng.uniform_u64(records));
    const Result r = run_pattern("gather-small", d, records * 9);
    patterns.push_back(result_json("random gather, 65 KB footprint", r));
    t.add_row({"random gather, 65 KB footprint", util::Table::num(r.words_per_cycle, 2),
               util::Table::num(r.gbytes, 1), util::Table::percent(r.cache_hit_rate, 1)});
  }

  std::printf("== Memory system micro-characterization ==\n%s\n", t.render().c_str());
  std::printf(
      "expectations: a single stream op is bounded by one address generator\n"
      "(4 words/cycle = 32 GB/s); sequential streams reach that bound;\n"
      "sparse strides waste line bandwidth; large random gathers pay DRAM\n"
      "row misses; cache-resident gathers run at address-generation speed.\n"
      "Aggregate bandwidth across concurrent ops can reach the 38.4 GB/s\n"
      "DRAM peak (both generators, all banks).\n");
  jout.root().set("patterns", std::move(patterns));
  return 0;
}
