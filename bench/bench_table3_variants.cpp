// Reproduces paper Table 3: the StreamMD implementation variants.
#include <cstdio>

#include "bench/bench_io.h"
#include "src/core/streammd.h"
#include "src/core/report.h"

int main(int argc, char** argv) {
  smd::benchio::JsonOut jout(argc, argv, "bench_table3_variants");
  std::printf("== Table 3: variants of StreamMD ==\n%s\n",
              smd::core::format_variants_table().c_str());
  smd::obs::Json variants = smd::obs::Json::array();
  for (smd::core::Variant v :
       {smd::core::Variant::kExpanded, smd::core::Variant::kFixed,
        smd::core::Variant::kVariable, smd::core::Variant::kDuplicated}) {
    smd::obs::Json row = smd::obs::Json::object();
    row.set("name", smd::core::variant_name(v));
    row.set("description", smd::core::variant_description(v));
    variants.push_back(std::move(row));
  }
  jout.root().set("variants", std::move(variants));
  return 0;
}
