// Reproduces paper Table 3: the StreamMD implementation variants, plus a
// scheduling column: each variant's kernel body is modulo-scheduled and
// the achieved II reported. A kernel that cannot be scheduled no longer
// fails silently -- the ScheduleError's structured diagnostic (kernel
// name, best-found II bound, binding conflict) lands in the JSON output.
#include <cstdio>

#include "bench/bench_io.h"
#include "src/core/kernels.h"
#include "src/core/report.h"
#include "src/core/streammd.h"
#include "src/kernel/schedule.h"
#include "src/md/water.h"

int main(int argc, char** argv) {
  smd::benchio::JsonOut jout(argc, argv, "bench_table3_variants");
  std::printf("== Table 3: variants of StreamMD ==\n%s\n",
              smd::core::format_variants_table().c_str());
  smd::obs::Json variants = smd::obs::Json::array();
  for (smd::core::Variant v :
       {smd::core::Variant::kExpanded, smd::core::Variant::kFixed,
        smd::core::Variant::kVariable, smd::core::Variant::kDuplicated}) {
    smd::obs::Json row = smd::obs::Json::object();
    row.set("name", smd::core::variant_name(v));
    row.set("description", smd::core::variant_description(v));
    const smd::kernel::KernelDef def =
        smd::core::build_water_kernel(v, smd::md::spc());
    try {
      const smd::kernel::Schedule s =
          smd::kernel::schedule_body(def, smd::kernel::ScheduleOptions{});
      smd::obs::Json sched = smd::obs::Json::object();
      sched.set("ii", static_cast<std::int64_t>(s.ii));
      sched.set("unroll", static_cast<std::int64_t>(s.unroll));
      sched.set("cycles_per_iteration", s.cycles_per_iteration());
      sched.set("fpu_occupancy", s.fpu_occupancy);
      row.set("schedule", std::move(sched));
      std::printf("  %-12s scheduled: II=%d (%.1f cycles/iteration)\n",
                  smd::core::variant_name(v), s.ii, s.cycles_per_iteration());
    } catch (const smd::kernel::ScheduleError& e) {
      smd::obs::Json err = smd::obs::Json::object();
      err.set("kernel", e.kernel());
      err.set("res_mii", static_cast<std::int64_t>(e.res_mii()));
      err.set("max_ii", static_cast<std::int64_t>(e.max_ii()));
      err.set("conflict", e.conflict());
      err.set("message", std::string(e.what()));
      row.set("schedule_error", std::move(err));
      std::printf("  %-12s SCHEDULE FAILED: %s\n",
                  smd::core::variant_name(v), e.what());
    }
    variants.push_back(std::move(row));
  }
  jout.root().set("variants", std::move(variants));
  return 0;
}
