// Reproduces paper Table 3: the StreamMD implementation variants, plus a
// scheduling column: each variant's kernel body is modulo-scheduled and
// the achieved II reported. A kernel that cannot be scheduled no longer
// fails silently -- the ScheduleError's structured diagnostic (kernel
// name, best-found II bound, binding conflict) lands in the JSON output.
//
// With `--molecules N[,N...]` the bench additionally runs every variant
// through the cycle-accurate simulator at each molecule count and reports
// simulated cycles plus host wall-clock per variant. Combined with
// `--engine stepped|event|lockstep` this is the engine-performance
// harness: the two engines return bit-identical statistics, so comparing
// their wall-clock at a fixed molecule count isolates simulator speed
// (EXPERIMENTS.md records the event-engine speedup measured this way).
#include <chrono>
#include <cstdio>

#include "bench/bench_io.h"
#include "src/core/kernels.h"
#include "src/core/report.h"
#include "src/core/run.h"
#include "src/core/streammd.h"
#include "src/kernel/opt.h"
#include "src/kernel/schedule.h"
#include "src/md/water.h"
#include "src/sim/config.h"

int main(int argc, char** argv) {
  smd::benchio::JsonOut jout(argc, argv, "bench_table3_variants");
  std::printf("== Table 3: variants of StreamMD ==\n%s\n",
              smd::core::format_variants_table().c_str());
  smd::obs::Json variants = smd::obs::Json::array();
  for (smd::core::Variant v :
       {smd::core::Variant::kExpanded, smd::core::Variant::kFixed,
        smd::core::Variant::kVariable, smd::core::Variant::kDuplicated}) {
    smd::obs::Json row = smd::obs::Json::object();
    row.set("name", smd::core::variant_name(v));
    row.set("description", smd::core::variant_description(v));
    const smd::kernel::KernelDef def =
        smd::core::build_water_kernel(v, smd::md::spc());
    try {
      const smd::kernel::Schedule s =
          smd::kernel::schedule_body(def, smd::kernel::ScheduleOptions{});
      smd::obs::Json sched = smd::obs::Json::object();
      sched.set("ii", static_cast<std::int64_t>(s.ii));
      sched.set("unroll", static_cast<std::int64_t>(s.unroll));
      sched.set("cycles_per_iteration", s.cycles_per_iteration());
      sched.set("fpu_occupancy", s.fpu_occupancy);
      row.set("schedule", std::move(sched));
      std::printf("  %-12s scheduled: II=%d (%.1f cycles/iteration)\n",
                  smd::core::variant_name(v), s.ii, s.cycles_per_iteration());
    } catch (const smd::kernel::ScheduleError& e) {
      smd::obs::Json err = smd::obs::Json::object();
      err.set("kernel", e.kernel());
      err.set("res_mii", static_cast<std::int64_t>(e.res_mii()));
      err.set("max_ii", static_cast<std::int64_t>(e.max_ii()));
      err.set("conflict", e.conflict());
      err.set("message", std::string(e.what()));
      row.set("schedule_error", std::move(err));
      std::printf("  %-12s SCHEDULE FAILED: %s\n",
                  smd::core::variant_name(v), e.what());
    }
    // Verified-optimizer delta (kernel/opt.h): scheduled cycles/iteration
    // before and after the bit-identity-preserving passes. The shipped
    // kernels are hand-tuned, so the expected delta is ~0; a nonzero
    // rewrite count here is the optimizer documenting what tuning buys.
    {
      smd::kernel::OptReport rep;
      (void)smd::kernel::optimize_kernel(def, &rep);
      smd::obs::Json opt = smd::obs::Json::object();
      opt.set("rewrites", static_cast<std::int64_t>(rep.total_rewrites()));
      opt.set("cycles_per_iteration_before", rep.cycles_per_iteration_before);
      opt.set("cycles_per_iteration_after", rep.cycles_per_iteration_after);
      row.set("optimizer", std::move(opt));
      std::printf("  %-12s optimizer: %d rewrites, %.1f -> %.1f cycles/iteration\n",
                  smd::core::variant_name(v), rep.total_rewrites(),
                  rep.cycles_per_iteration_before,
                  rep.cycles_per_iteration_after);
    }
    variants.push_back(std::move(row));
  }
  jout.root().set("variants", std::move(variants));

  const std::string mols = smd::benchio::flag_value(argc, argv, "molecules");
  if (!mols.empty()) {
    const smd::sim::SimEngine engine =
        smd::sim::parse_engine(smd::benchio::engine_flag(argc, argv));
    std::vector<int> counts;
    try {
      counts = smd::benchio::parse_int_list(mols);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "--molecules: %s\n", e.what());
      return 2;
    }
    smd::obs::Json sims = smd::obs::Json::array();
    for (const int n : counts) {
      smd::core::ExperimentSetup setup;
      setup.n_molecules = n;
      const smd::core::Problem problem = smd::core::Problem::make(setup);
      smd::sim::MachineConfig cfg = smd::sim::MachineConfig::merrimac();
      cfg.engine = engine;
      std::printf("\n== simulating %d molecules (%s engine) ==\n", n,
                  smd::sim::engine_name(engine));
      const auto t0 = std::chrono::steady_clock::now();
      const auto results = smd::core::run_all_variants(problem, cfg);
      const double wall_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - t0)
              .count();
      smd::obs::Json row = smd::obs::Json::object();
      row.set("molecules", static_cast<std::int64_t>(n));
      row.set("engine", smd::sim::engine_name(engine));
      row.set("wall_ms", wall_ms);
      smd::obs::Json runs = smd::obs::Json::array();
      for (const auto& r : results) {
        smd::obs::Json vr = smd::obs::Json::object();
        vr.set("name", r.name);
        vr.set("cycles", static_cast<std::int64_t>(r.run.cycles));
        vr.set("time_ms", r.time_ms);
        vr.set("solution_gflops", r.solution_gflops);
        runs.push_back(std::move(vr));
        std::printf("  %-12s %12llu cycles  %8.3f ms simulated\n",
                    r.name.c_str(),
                    static_cast<unsigned long long>(r.run.cycles), r.time_ms);
      }
      row.set("runs", std::move(runs));
      sims.push_back(std::move(row));
      std::printf("  host wall-clock: %.1f ms for all four variants\n",
                  wall_ms);
    }
    jout.root().set("simulation", std::move(sims));
  }
  return 0;
}
