// Reproduces paper Table 3: the StreamMD implementation variants.
#include <cstdio>

#include "src/core/report.h"

int main() {
  std::printf("== Table 3: variants of StreamMD ==\n%s\n",
              smd::core::format_variants_table().c_str());
  return 0;
}
