// Characterization of the scatter-add units (Section 2.2): throughput of
// the atomic add-and-store path as a function of index distribution, and
// the effectiveness of the combining store on bursty (hot-spot) updates --
// the access pattern StreamMD's partial-force reduction produces.
#include <cstdio>

#include "bench/bench_io.h"
#include "src/mem/memsys.h"
#include "src/util/rng.h"
#include "src/util/table.h"

using namespace smd;

namespace {

struct Result {
  double words_per_cycle;
  double combine_rate;
};

Result run_scatter(const std::vector<std::uint64_t>& idx, std::int64_t rows) {
  mem::GlobalMemory gmem;
  const auto base = gmem.alloc(rows * 9);
  mem::MemSystemConfig cfg;
  mem::MemSystem ms(cfg, &gmem);
  mem::MemOpDesc d;
  d.kind = mem::MemOpKind::kScatterAdd;
  d.base = base;
  d.n_records = static_cast<std::int64_t>(idx.size());
  d.record_words = 9;
  d.indices = idx;
  std::vector<double> src(idx.size() * 9, 1.0);
  ms.issue(d, nullptr, &src);
  while (!ms.all_done()) ms.tick();
  const auto sa = ms.scatter_add_stats();
  Result r;
  r.words_per_cycle = static_cast<double>(d.total_words()) / static_cast<double>(ms.now());
  r.combine_rate = sa.requests ? static_cast<double>(sa.combined) /
                                     static_cast<double>(sa.requests)
                               : 0.0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  benchio::JsonOut jout(argc, argv, "bench_scatteradd");
  obs::Json patterns = obs::Json::array();
  const std::int64_t n = 16384;
  const std::int64_t rows = 901;  // the paper's force array (+ trash row)
  util::Rng rng(11);

  util::Table t({"index pattern", "words/cycle", "GB/s @1GHz", "combined"});
  auto add = [&](const char* name, const std::vector<std::uint64_t>& idx) {
    const Result r = run_scatter(idx, rows);
    obs::Json j = obs::Json::object();
    j.set("pattern", name)
        .set("words_per_cycle", r.words_per_cycle)
        .set("gbytes_per_s", r.words_per_cycle * 8)
        .set("combine_rate", r.combine_rate);
    patterns.push_back(std::move(j));
    t.add_row({name, util::Table::num(r.words_per_cycle, 2),
               util::Table::num(r.words_per_cycle * 8, 1),
               util::Table::percent(r.combine_rate, 1)});
  };

  std::vector<std::uint64_t> seq, random, hot, clustered;
  for (std::int64_t i = 0; i < n; ++i) {
    seq.push_back(static_cast<std::uint64_t>(i % rows));
    random.push_back(rng.uniform_u64(static_cast<std::uint64_t>(rows)));
    hot.push_back(rng.uniform_u64(8));  // 8 hot molecules
    clustered.push_back(static_cast<std::uint64_t>((i / 16) % rows));
  }
  add("sequential rows", seq);
  add("uniform random rows", random);
  add("8 hot rows (worst-case conflicts)", hot);
  add("bursts of 16 to one row", clustered);

  std::printf("== Scatter-add unit characterization ==\n%s\n", t.render().c_str());
  std::printf("bursty same-row updates combine in the 8-entry combining store;\n"
              "StreamMD's partial-force reduction relies on exactly this.\n");
  jout.root().set("patterns", std::move(patterns));
  return 0;
}
