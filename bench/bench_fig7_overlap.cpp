// Reproduces paper Figure 7: overlap of memory and kernel operations for
// the `duplicated` variant, before and after the fix to stream-descriptor-
// register (SDR) allocation.
//
// (a) conservative policy -- an SDR stays bound to a loaded stream until
//     the kernel consuming it retires, so later transfers serialize behind
//     compute and memory latency is not hidden;
// (b) transfer-scoped policy -- the SDR is released when the transfer
//     completes, giving (near-)perfect overlap.
#include <cstdio>

#include "src/core/run.h"
#include "src/sim/config.h"

using namespace smd;

namespace {

void report(const char* title, const core::VariantResult& r) {
  const auto& run = r.run;
  const double mem_hidden =
      run.mem_busy_cycles
          ? static_cast<double>(run.overlap_cycles) /
                static_cast<double>(run.mem_busy_cycles)
          : 0.0;
  std::printf("%s\n", title);
  std::printf("  total cycles        : %llu\n",
              static_cast<unsigned long long>(run.cycles));
  std::printf("  kernel busy cycles  : %llu\n",
              static_cast<unsigned long long>(run.kernel_busy_cycles));
  std::printf("  memory busy cycles  : %llu\n",
              static_cast<unsigned long long>(run.mem_busy_cycles));
  std::printf("  overlapped cycles   : %llu (%.1f%% of memory time hidden)\n",
              static_cast<unsigned long long>(run.overlap_cycles),
              100.0 * mem_hidden);
  std::printf("  sdr stall cycles    : %llu\n\n",
              static_cast<unsigned long long>(run.sdr_stall_cycles));
  // Execution snippet, one row per 4096 cycles, like the paper's figure.
  std::printf("%s\n", run.timeline.ascii(run.cycles, run.cycles / 24 + 1).c_str());
}

}  // namespace

int main() {
  const core::Problem problem = core::Problem::make({});

  // The flawed allocator effectively left only a strip's worth of SDRs
  // usable: combined with holding each loaded stream's SDR until its
  // consuming kernel retired, the next strip's transfers could not start
  // and memory serialized behind compute.
  sim::MachineConfig before = sim::MachineConfig::merrimac();
  before.sdr_policy = sim::SdrPolicy::kConservative;
  before.n_stream_descriptor_registers = 2;

  sim::MachineConfig after = sim::MachineConfig::merrimac();
  after.sdr_policy = sim::SdrPolicy::kTransferScoped;
  after.n_stream_descriptor_registers = 8;

  std::printf("== Figure 7: memory/kernel overlap, variant `duplicated` ==\n\n");
  const auto a = core::run_variant(problem, core::Variant::kDuplicated, before);
  report("(a) before: conservative SDR allocation", a);
  const auto b = core::run_variant(problem, core::Variant::kDuplicated, after);
  report("(b) after: transfer-scoped SDR allocation", b);

  std::printf("fix speedup: %.2fx\n",
              static_cast<double>(a.run.cycles) / static_cast<double>(b.run.cycles));
  return 0;
}
