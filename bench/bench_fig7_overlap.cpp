// Reproduces paper Figure 7: overlap of memory and kernel operations for
// the `duplicated` variant, before and after the fix to stream-descriptor-
// register (SDR) allocation.
//
// (a) conservative policy -- an SDR stays bound to a loaded stream until
//     the kernel consuming it retires, so later transfers serialize behind
//     compute and memory latency is not hidden;
// (b) transfer-scoped policy -- the SDR is released when the transfer
//     completes, giving (near-)perfect overlap.
//
// All occupancy numbers here are recomputed from the controller-populated
// Timeline (one begin/end interval per stream op, emitted by the
// scoreboard's tracing hooks) and cross-checked against RunStats' cycle
// counters; a disagreement fails the bench. `--trace PATH` exports the
// same timeline as a Chrome trace-event file, `--json PATH` the record.
#include <cmath>
#include <cstdio>

#include "bench/bench_io.h"
#include "src/core/report.h"
#include "src/core/run.h"
#include "src/obs/trace_event.h"
#include "src/sim/config.h"

using namespace smd;

namespace {

/// Occupancy recomputed from the timeline; `ok` is the RunStats cross-check.
struct TimelineView {
  std::uint64_t kernel_busy = 0;
  std::uint64_t mem_busy = 0;
  std::uint64_t overlap = 0;
  double mem_hidden = 0.0;
  bool ok = true;
};

TimelineView view_from_timeline(const core::VariantResult& r) {
  const auto& run = r.run;
  TimelineView v;
  v.kernel_busy = run.timeline.busy_cycles(sim::Lane::kKernel, run.cycles);
  v.mem_busy = run.timeline.busy_cycles(sim::Lane::kMemory, run.cycles);
  v.overlap = run.timeline.overlap_cycles(run.cycles);
  v.mem_hidden = v.mem_busy ? static_cast<double>(v.overlap) /
                                  static_cast<double>(v.mem_busy)
                            : 0.0;

  // Cross-checks against the scoreboard's own counters. Kernel intervals
  // are disjoint (one kernel at a time), so the union must match the
  // busy-cycle counter exactly; the memory lane unions per-op intervals
  // (issue to retire), which must cover at least the memory system's
  // active cycles and stay within the run.
  if (v.kernel_busy != run.kernel_busy_cycles) {
    std::fprintf(stderr,
                 "FAIL: timeline kernel busy %llu != RunStats %llu\n",
                 static_cast<unsigned long long>(v.kernel_busy),
                 static_cast<unsigned long long>(run.kernel_busy_cycles));
    v.ok = false;
  }
  if (v.mem_busy < run.mem_busy_cycles || v.mem_busy > run.cycles) {
    std::fprintf(stderr,
                 "FAIL: timeline mem busy %llu outside [%llu, %llu]\n",
                 static_cast<unsigned long long>(v.mem_busy),
                 static_cast<unsigned long long>(run.mem_busy_cycles),
                 static_cast<unsigned long long>(run.cycles));
    v.ok = false;
  }
  if (v.overlap != run.overlap_cycles) {
    std::fprintf(stderr, "FAIL: timeline overlap %llu != RunStats %llu\n",
                 static_cast<unsigned long long>(v.overlap),
                 static_cast<unsigned long long>(run.overlap_cycles));
    v.ok = false;
  }
  // The overlap fraction of memory time must be consistent with the cycle
  // accounting: total run time >= kernel + memory - overlap.
  const double accounted = static_cast<double>(v.kernel_busy) +
                           static_cast<double>(v.mem_busy) -
                           static_cast<double>(v.overlap);
  if (accounted > static_cast<double>(run.cycles) * 1.0001) {
    std::fprintf(stderr,
                 "FAIL: kernel+mem-overlap (%.0f) exceeds run cycles (%llu)\n",
                 accounted, static_cast<unsigned long long>(run.cycles));
    v.ok = false;
  }
  return v;
}

TimelineView report(const char* title, const core::VariantResult& r) {
  const auto& run = r.run;
  const TimelineView v = view_from_timeline(r);
  std::printf("%s\n", title);
  std::printf("  total cycles        : %llu\n",
              static_cast<unsigned long long>(run.cycles));
  std::printf("  kernel busy cycles  : %llu\n",
              static_cast<unsigned long long>(v.kernel_busy));
  std::printf("  memory busy cycles  : %llu (timeline), %llu (memsys)\n",
              static_cast<unsigned long long>(v.mem_busy),
              static_cast<unsigned long long>(run.mem_busy_cycles));
  std::printf("  overlapped cycles   : %llu (%.1f%% of memory time hidden)\n",
              static_cast<unsigned long long>(v.overlap),
              100.0 * v.mem_hidden);
  std::printf("  sdr stall cycles    : %llu\n",
              static_cast<unsigned long long>(run.sdr_stall_cycles));
  std::printf("  stream-op intervals : %zu\n\n", run.timeline.intervals().size());
  // Execution snippet, one row per horizon/24 cycles, like the paper's figure.
  std::printf("%s\n", run.timeline.ascii(run.cycles, run.cycles / 24 + 1).c_str());
  return v;
}

obs::Json overlap_json(const core::VariantResult& r, const TimelineView& v) {
  obs::Json j = core::to_json(r);
  j.set("timeline_kernel_busy_cycles", v.kernel_busy)
      .set("timeline_mem_busy_cycles", v.mem_busy)
      .set("timeline_overlap_cycles", v.overlap)
      .set("mem_hidden_fraction", v.mem_hidden)
      .set("consistent_with_runstats", v.ok);
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  benchio::JsonOut jout(argc, argv, "bench_fig7_overlap");
  const std::string trace_path = benchio::flag_value(argc, argv, "trace");
  const sim::SimEngine engine =
      sim::parse_engine(benchio::engine_flag(argc, argv));
  const core::Problem problem = core::Problem::make({});

  // The flawed allocator effectively left only a strip's worth of SDRs
  // usable: combined with holding each loaded stream's SDR until its
  // consuming kernel retired, the next strip's transfers could not start
  // and memory serialized behind compute.
  sim::MachineConfig before = sim::MachineConfig::merrimac();
  before.sdr_policy = sim::SdrPolicy::kConservative;
  before.n_stream_descriptor_registers = 2;
  before.engine = engine;

  sim::MachineConfig after = sim::MachineConfig::merrimac();
  after.sdr_policy = sim::SdrPolicy::kTransferScoped;
  after.n_stream_descriptor_registers = 8;
  after.engine = engine;

  std::printf("== Figure 7: memory/kernel overlap, variant `duplicated` ==\n\n");
  const auto a = core::run_variant(problem, core::Variant::kDuplicated, before);
  const TimelineView va = report("(a) before: conservative SDR allocation", a);
  const auto b = core::run_variant(problem, core::Variant::kDuplicated, after);
  const TimelineView vb = report("(b) after: transfer-scoped SDR allocation", b);

  std::printf("fix speedup: %.2fx\n",
              static_cast<double>(a.run.cycles) / static_cast<double>(b.run.cycles));

  jout.root().set("machine_before", core::to_json(before));
  jout.root().set("machine_after", core::to_json(after));
  jout.root().set("before", overlap_json(a, va));
  jout.root().set("after", overlap_json(b, vb));
  jout.root().set("speedup", static_cast<double>(a.run.cycles) /
                                 static_cast<double>(b.run.cycles));

  if (!trace_path.empty()) {
    obs::TraceSink sink;
    sink.set_process_name(0, "fig7 (a) conservative SDR");
    a.run.timeline.append_chrome_events(sink, 0, before.clock_ghz);
    sink.set_process_name(1, "fig7 (b) transfer-scoped SDR");
    b.run.timeline.append_chrome_events(sink, 1, after.clock_ghz);
    sink.write(trace_path);
    std::printf("chrome trace written to %s (%zu events)\n", trace_path.c_str(),
                sink.size());
  }

  if (!va.ok || !vb.ok) {
    std::fprintf(stderr, "timeline/RunStats cross-check FAILED\n");
    return 1;
  }
  return 0;
}
