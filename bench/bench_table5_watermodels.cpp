// Reproduces paper Table 5: physical properties of water models (SPC,
// TIP5P as the 5-site "TIP5P" row, PPC as the polarizable row) against
// experiment. Dipole moments are *computed* from the site geometry and
// charges; dielectric constant and self-diffusion are literature values
// (they require long equilibrium simulations well outside a force-kernel
// benchmark).
#include <cstdio>

#include "bench/bench_io.h"
#include "src/md/water.h"
#include "src/util/table.h"

using namespace smd;

int main(int argc, char** argv) {
  benchio::JsonOut jout(argc, argv, "bench_table5_watermodels");
  obs::Json rows = obs::Json::array();
  util::Table t({"Model", "Dipole (computed)", "Dipole (lit.)", "Dielectric",
                 "Self-diffusion 1e-5 cm^2/s"});
  for (const auto* m : md::table5_models()) {
    obs::Json j = obs::Json::object();
    j.set("model", m->name);
    if (!m->sites.empty()) {
      j.set("computed_dipole_debye", m->computed_dipole_debye())
          .set("sites", m->site_count())
          .set("pair_interactions", md::pair_interactions(*m));
    }
    j.set("lit_dipole_debye", m->lit_dipole_debye)
        .set("lit_dielectric", m->lit_dielectric)
        .set("lit_self_diffusion_1e5_cm2s", m->lit_self_diffusion_1e5_cm2s);
    rows.push_back(std::move(j));
    t.add_row({m->name,
               m->sites.empty() ? std::string("-")
                                : util::Table::num(m->computed_dipole_debye(), 2),
               util::Table::num(m->lit_dipole_debye, 2),
               util::Table::num(m->lit_dielectric, 1),
               util::Table::num(m->lit_self_diffusion_1e5_cm2s, 2)});
  }
  std::printf("== Table 5: water model properties ==\n%s\n", t.render().c_str());
  std::printf(
      "More elaborate models raise arithmetic intensity: site^2 interactions\n");
  for (const auto* m : md::table5_models()) {
    if (m->sites.empty()) continue;
    std::printf("  %-12s %zu sites -> %2zu atom-pair interactions per molecule pair\n",
                m->name.c_str(), m->site_count(), md::pair_interactions(*m));
  }
  jout.root().set("models", std::move(rows));
  return 0;
}
