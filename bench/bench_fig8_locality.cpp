// Reproduces paper Figure 8: locality of the variants -- the percentage of
// data references served by each level of the register hierarchy (LRF,
// SRF, memory). The paper reports 89/93/95/96% LRF for expanded / fixed /
// variable / duplicated.
#include <cstdio>

#include "bench/bench_io.h"
#include "src/core/report.h"
#include "src/core/run.h"

using namespace smd;

int main(int argc, char** argv) {
  benchio::JsonOut jout(argc, argv, "bench_fig8_locality");
  const core::Problem problem = core::Problem::make({});
  sim::MachineConfig cfg = sim::MachineConfig::merrimac();
  cfg.engine = sim::parse_engine(benchio::engine_flag(argc, argv));
  const auto results = core::run_all_variants(problem, cfg);
  std::printf("== Figure 8: locality of the implementations ==\n%s\n",
              core::format_locality_table(results).c_str());
  for (const auto& r : results) {
    const int width = 50;
    const int lrf = static_cast<int>(r.lrf_fraction * width + 0.5);
    const int srf = static_cast<int>(r.srf_fraction * width + 0.5);
    std::printf("%-10s |%s%s%s|\n", r.name.c_str(),
                std::string(static_cast<std::size_t>(lrf), 'L').c_str(),
                std::string(static_cast<std::size_t>(srf), 's').c_str(),
                std::string(static_cast<std::size_t>(width - lrf - srf), '.')
                    .c_str());
  }
  std::printf("(L = LRF, s = SRF, . = memory)\n");
  jout.set_record(core::bench_record("bench_fig8_locality", cfg, results));
  return 0;
}
