// Reproduces paper Table 2: dataset properties of the 900-molecule water
// system (interactions, central-molecule replication and neighbor padding
// for the fixed-length variant), plus the neighbor-count distribution that
// motivates the variable-length machinery.
#include <cstdio>

#include "bench/bench_io.h"
#include "src/core/layouts.h"
#include "src/core/report.h"
#include "src/core/run.h"
#include "src/util/stats.h"

using namespace smd;

int main(int argc, char** argv) {
  benchio::JsonOut jout(argc, argv, "bench_table2_dataset");
  const core::Problem problem = core::Problem::make({});

  // Only the fixed layout is needed for the table; build it directly
  // rather than simulating.
  core::LayoutOptions opts;
  const core::VariantLayout fixed_layout = core::build_layout(
      core::Variant::kFixed, problem.system, problem.half_list, opts);

  core::VariantResult fixed_row;  // only the fields the table reads
  fixed_row.variant = core::Variant::kFixed;
  fixed_row.n_central_blocks = fixed_layout.n_central_blocks;
  fixed_row.n_neighbor_slots = fixed_layout.n_neighbor_slots;

  std::printf("== Table 2: dataset properties ==\n%s\n",
              core::format_dataset_table(problem, {fixed_row}).c_str());

  util::Histogram degrees(0, 160, 16);
  for (int m = 0; m < problem.half_list.n_molecules(); ++m) {
    degrees.add(problem.half_list.degree(m));
  }
  std::printf("half-list neighbor-count distribution (bucket lower bound):\n%s\n",
              degrees.ascii(32).c_str());

  obs::Json dataset = obs::Json::object();
  dataset.set("n_molecules", problem.system.n_molecules())
      .set("cutoff_nm", problem.setup.cutoff)
      .set("interactions", problem.half_list.n_pairs())
      .set("mean_neighbors", problem.half_list.mean_degree())
      .set("fixed_central_blocks", fixed_layout.n_central_blocks)
      .set("fixed_neighbor_slots", fixed_layout.n_neighbor_slots);
  obs::Json hist = obs::Json::array();
  for (std::size_t i = 0; i < degrees.bucket_count(); ++i) {
    obs::Json bucket = obs::Json::object();
    bucket.set("lo", degrees.bucket_lo(i)).set("count", degrees.bucket(i));
    hist.push_back(std::move(bucket));
  }
  jout.root().set("dataset", std::move(dataset));
  jout.root().set("neighbor_histogram", std::move(hist));
  return 0;
}
