// Shared `--json <path>` / `--trace <path>` handling for the bench
// binaries. Every bench constructs a JsonOut, fills its record with the
// numbers it prints, and the record is written on scope exit -- so a run
// with `--json out.json` leaves a diffable BENCH_*.json artifact next to
// the human-readable table output.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <initializer_list>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/core/schema.h"
#include "src/obs/json.h"
#include "src/sim/config.h"

namespace smd::benchio {

/// Value of `--<name> <value>` in argv, or "" when absent.
inline std::string flag_value(int argc, char** argv, const std::string& name) {
  const std::string flag = "--" + name;
  for (int i = 1; i + 1 < argc; ++i) {
    if (argv[i] == flag) return argv[i + 1];
  }
  return "";
}

/// Uniform CLI argument-error exit shared by the smd* drivers: one
/// `tool: message` line plus a one-line usage hint, exit status 2 (the
/// same status a missing mode already produces).
[[noreturn]] inline void usage_error(const char* tool, const std::string& msg,
                                     const char* usage) {
  std::fprintf(stderr, "%s: %s\nusage: %s\n", tool, msg.c_str(), usage);
  std::exit(2);
}

/// Strict argv validation for the smd* drivers: every `--token` must be a
/// known value-taking flag (its value, the next argv entry, is skipped --
/// and must exist) or a known boolean flag; anything else exits 2 with
/// the usage hint. Tokens not starting with "--" are positionals (e.g.
/// the second baseline of `smdprof --diff A B`) and are left to the tool.
inline void check_flags(int argc, char** argv, const char* tool,
                        const char* usage,
                        std::initializer_list<const char*> value_flags,
                        std::initializer_list<const char*> bool_flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    bool known = false;
    for (const char* f : bool_flags) {
      if (arg == f) {
        known = true;
        break;
      }
    }
    if (!known) {
      for (const char* f : value_flags) {
        if (arg == f) {
          if (i + 1 >= argc) {
            usage_error(tool, "flag '" + arg + "' expects a value", usage);
          }
          ++i;  // skip the value
          known = true;
          break;
        }
      }
    }
    if (!known) usage_error(tool, "unknown flag '" + arg + "'", usage);
  }
}

/// `--<name> <int>` with a fallback; a malformed or trailing-garbage
/// value exits 2 through usage_error instead of throwing out of main.
inline int int_flag_or_exit(int argc, char** argv, const char* tool,
                            const std::string& name, int fallback,
                            const char* usage) {
  const std::string v = flag_value(argc, argv, name);
  if (v.empty()) return fallback;
  try {
    std::size_t pos = 0;
    const int parsed = std::stoi(v, &pos);
    if (pos != v.size()) throw std::invalid_argument("trailing garbage");
    return parsed;
  } catch (const std::exception&) {
    usage_error(tool, "--" + name + ": bad integer '" + v + "'", usage);
  }
}

/// `--<name> <double>` with a fallback; malformed values exit 2.
inline double double_flag_or_exit(int argc, char** argv, const char* tool,
                                  const std::string& name, double fallback,
                                  const char* usage) {
  const std::string v = flag_value(argc, argv, name);
  if (v.empty()) return fallback;
  try {
    std::size_t pos = 0;
    const double parsed = std::stod(v, &pos);
    if (pos != v.size()) throw std::invalid_argument("trailing garbage");
    return parsed;
  } catch (const std::exception&) {
    usage_error(tool, "--" + name + ": bad number '" + v + "'", usage);
  }
}

/// Parse "a,b,c" and "lo:hi:step" (inclusive ends) value lists -- the same
/// syntax smdtune sweep axes use, so humans and the tuner drive the bench
/// binaries uniformly. Throws std::invalid_argument on malformed input.
inline std::vector<double> parse_value_list(const std::string& spec) {
  std::vector<double> out;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string token = spec.substr(start, end - start);
    if (token.empty()) throw std::invalid_argument("empty value in '" + spec + "'");
    const std::size_t c1 = token.find(':');
    if (c1 == std::string::npos) {
      out.push_back(std::stod(token));
    } else {
      const std::size_t c2 = token.find(':', c1 + 1);
      if (c2 == std::string::npos) {
        throw std::invalid_argument("bad range '" + token + "' (want lo:hi:step)");
      }
      const double lo = std::stod(token.substr(0, c1));
      const double hi = std::stod(token.substr(c1 + 1, c2 - c1 - 1));
      const double step = std::stod(token.substr(c2 + 1));
      if (step <= 0.0 || hi < lo) {
        throw std::invalid_argument("empty range '" + token + "'");
      }
      for (double v = lo; v <= hi + 1e-9 * step; v += step) out.push_back(v);
    }
    start = end + 1;
  }
  return out;
}

/// Value of `--engine stepped|event|lockstep` (default "event"): which
/// simulation core the bench runs on (sim::parse_engine). The engines are
/// bit-identical in every reported statistic -- stepped exists for
/// cross-checks and wall-clock comparisons, lockstep runs both and throws
/// on divergence (DESIGN.md section 10).
inline std::string engine_flag(int argc, char** argv) {
  const std::string v = flag_value(argc, argv, "engine");
  if (v.empty()) return "event";
  try {
    (void)sim::parse_engine(v);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "--engine: %s\n", e.what());
    std::exit(2);
  }
  return v;
}

/// parse_value_list, rounded to int.
inline std::vector<int> parse_int_list(const std::string& spec) {
  std::vector<int> out;
  for (const double v : parse_value_list(spec)) {
    out.push_back(static_cast<int>(v + (v >= 0 ? 0.5 : -0.5)));
  }
  return out;
}

/// `--<name> a,b,c` / `lo:hi:step` int list with a fallback; a malformed
/// list exits 2 with the usage hint (the PR 6 `--nodes` behavior, now
/// uniform across the drivers).
inline std::vector<int> int_list_flag_or_exit(int argc, char** argv,
                                              const char* tool,
                                              const std::string& name,
                                              std::vector<int> fallback,
                                              const char* usage) {
  const std::string v = flag_value(argc, argv, name);
  if (v.empty()) return fallback;
  try {
    return parse_int_list(v);
  } catch (const std::exception& e) {
    usage_error(tool,
                "--" + name + ": bad value list '" + v + "' (" + e.what() + ")",
                usage);
  }
}

class JsonOut {
 public:
  JsonOut(int argc, char** argv, std::string bench_name)
      : path_(flag_value(argc, argv, "json")), root_(obs::Json::object()) {
    root_.set("schema_version", core::kBenchSchemaVersion);
    root_.set("bench", std::move(bench_name));
  }
  JsonOut(const JsonOut&) = delete;
  JsonOut& operator=(const JsonOut&) = delete;

  bool enabled() const { return !path_.empty(); }
  obs::Json& root() { return root_; }

  /// Replace the whole record (used with core::bench_record()); the
  /// original schema_version/bench fields are kept if absent.
  void set_record(obs::Json record) {
    for (const auto& [key, value] : root_.items()) {
      if (!record.contains(key)) record.set(key, value);
    }
    root_ = std::move(record);
  }

  ~JsonOut() {
    if (path_.empty()) return;
    try {
      obs::write_file(root_, path_);
      std::printf("json record written to %s\n", path_.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "failed to write %s: %s\n", path_.c_str(), e.what());
    }
  }

 private:
  std::string path_;
  obs::Json root_;
};

}  // namespace smd::benchio
