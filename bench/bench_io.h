// Shared `--json <path>` / `--trace <path>` handling for the bench
// binaries. Every bench constructs a JsonOut, fills its record with the
// numbers it prints, and the record is written on scope exit -- so a run
// with `--json out.json` leaves a diffable BENCH_*.json artifact next to
// the human-readable table output.
#pragma once

#include <cstdio>
#include <string>
#include <utility>

#include "src/obs/json.h"

namespace smd::benchio {

/// Value of `--<name> <value>` in argv, or "" when absent.
inline std::string flag_value(int argc, char** argv, const std::string& name) {
  const std::string flag = "--" + name;
  for (int i = 1; i + 1 < argc; ++i) {
    if (argv[i] == flag) return argv[i + 1];
  }
  return "";
}

class JsonOut {
 public:
  JsonOut(int argc, char** argv, std::string bench_name)
      : path_(flag_value(argc, argv, "json")), root_(obs::Json::object()) {
    root_.set("schema_version", 1);
    root_.set("bench", std::move(bench_name));
  }
  JsonOut(const JsonOut&) = delete;
  JsonOut& operator=(const JsonOut&) = delete;

  bool enabled() const { return !path_.empty(); }
  obs::Json& root() { return root_; }

  /// Replace the whole record (used with core::bench_record()); the
  /// original schema_version/bench fields are kept if absent.
  void set_record(obs::Json record) {
    for (const auto& [key, value] : root_.items()) {
      if (!record.contains(key)) record.set(key, value);
    }
    root_ = std::move(record);
  }

  ~JsonOut() {
    if (path_.empty()) return;
    try {
      obs::write_file(root_, path_);
      std::printf("json record written to %s\n", path_.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "failed to write %s: %s\n", path_.c_str(), e.what());
    }
  }

 private:
  std::string path_;
  obs::Json root_;
};

}  // namespace smd::benchio
