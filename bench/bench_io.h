// Shared `--json <path>` / `--trace <path>` handling for the bench
// binaries. Every bench constructs a JsonOut, fills its record with the
// numbers it prints, and the record is written on scope exit -- so a run
// with `--json out.json` leaves a diffable BENCH_*.json artifact next to
// the human-readable table output.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/core/schema.h"
#include "src/obs/json.h"
#include "src/sim/config.h"

namespace smd::benchio {

/// Value of `--<name> <value>` in argv, or "" when absent.
inline std::string flag_value(int argc, char** argv, const std::string& name) {
  const std::string flag = "--" + name;
  for (int i = 1; i + 1 < argc; ++i) {
    if (argv[i] == flag) return argv[i + 1];
  }
  return "";
}

/// Parse "a,b,c" and "lo:hi:step" (inclusive ends) value lists -- the same
/// syntax smdtune sweep axes use, so humans and the tuner drive the bench
/// binaries uniformly. Throws std::invalid_argument on malformed input.
inline std::vector<double> parse_value_list(const std::string& spec) {
  std::vector<double> out;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string token = spec.substr(start, end - start);
    if (token.empty()) throw std::invalid_argument("empty value in '" + spec + "'");
    const std::size_t c1 = token.find(':');
    if (c1 == std::string::npos) {
      out.push_back(std::stod(token));
    } else {
      const std::size_t c2 = token.find(':', c1 + 1);
      if (c2 == std::string::npos) {
        throw std::invalid_argument("bad range '" + token + "' (want lo:hi:step)");
      }
      const double lo = std::stod(token.substr(0, c1));
      const double hi = std::stod(token.substr(c1 + 1, c2 - c1 - 1));
      const double step = std::stod(token.substr(c2 + 1));
      if (step <= 0.0 || hi < lo) {
        throw std::invalid_argument("empty range '" + token + "'");
      }
      for (double v = lo; v <= hi + 1e-9 * step; v += step) out.push_back(v);
    }
    start = end + 1;
  }
  return out;
}

/// Value of `--engine stepped|event|lockstep` (default "event"): which
/// simulation core the bench runs on (sim::parse_engine). The engines are
/// bit-identical in every reported statistic -- stepped exists for
/// cross-checks and wall-clock comparisons, lockstep runs both and throws
/// on divergence (DESIGN.md section 10).
inline std::string engine_flag(int argc, char** argv) {
  const std::string v = flag_value(argc, argv, "engine");
  if (v.empty()) return "event";
  try {
    (void)sim::parse_engine(v);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "--engine: %s\n", e.what());
    std::exit(2);
  }
  return v;
}

/// parse_value_list, rounded to int.
inline std::vector<int> parse_int_list(const std::string& spec) {
  std::vector<int> out;
  for (const double v : parse_value_list(spec)) {
    out.push_back(static_cast<int>(v + (v >= 0 ? 0.5 : -0.5)));
  }
  return out;
}

class JsonOut {
 public:
  JsonOut(int argc, char** argv, std::string bench_name)
      : path_(flag_value(argc, argv, "json")), root_(obs::Json::object()) {
    root_.set("schema_version", core::kBenchSchemaVersion);
    root_.set("bench", std::move(bench_name));
  }
  JsonOut(const JsonOut&) = delete;
  JsonOut& operator=(const JsonOut&) = delete;

  bool enabled() const { return !path_.empty(); }
  obs::Json& root() { return root_; }

  /// Replace the whole record (used with core::bench_record()); the
  /// original schema_version/bench fields are kept if absent.
  void set_record(obs::Json record) {
    for (const auto& [key, value] : root_.items()) {
      if (!record.contains(key)) record.set(key, value);
    }
    root_ = std::move(record);
  }

  ~JsonOut() {
    if (path_.empty()) return;
    try {
      obs::write_file(root_, path_);
      std::printf("json record written to %s\n", path_.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "failed to write %s: %s\n", path_.c_str(), e.what());
    }
  }

 private:
  std::string path_;
  obs::Json root_;
};

}  // namespace smd::benchio
