// Reproduces paper Table 1: parameters of the simulated Merrimac node.
#include <cstdio>

#include "bench/bench_io.h"
#include "src/core/report.h"
#include "src/sim/config.h"

int main(int argc, char** argv) {
  smd::benchio::JsonOut jout(argc, argv, "bench_table1_machine");
  const auto cfg = smd::sim::MachineConfig::merrimac();
  std::printf("== Table 1: Merrimac parameters ==\n%s\n",
              smd::core::format_machine_table(cfg).c_str());
  jout.root().set("machine", smd::core::to_json(cfg));
  return 0;
}
