// Reproduces paper Table 1: parameters of the simulated Merrimac node.
#include <cstdio>

#include "src/core/report.h"
#include "src/sim/config.h"

int main() {
  const auto cfg = smd::sim::MachineConfig::merrimac();
  std::printf("== Table 1: Merrimac parameters ==\n%s\n",
              smd::core::format_machine_table(cfg).c_str());
  return 0;
}
