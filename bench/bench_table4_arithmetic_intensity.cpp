// Reproduces paper Table 4: arithmetic intensity (flops per memory word)
// of the StreamMD variants -- calculated analytically from the data-set
// counts and measured from the simulated run.
#include <cstdio>

#include "bench/bench_io.h"
#include "src/core/report.h"
#include "src/core/run.h"

using namespace smd;

int main(int argc, char** argv) {
  benchio::JsonOut jout(argc, argv, "bench_table4_arithmetic_intensity");
  const core::Problem problem = core::Problem::make({});
  sim::MachineConfig cfg = sim::MachineConfig::merrimac();
  cfg.engine = sim::parse_engine(benchio::engine_flag(argc, argv));
  const auto results = core::run_all_variants(problem, cfg);
  std::printf("== Table 4: arithmetic intensity ==\n%s\n",
              core::format_arithmetic_intensity_table(results).c_str());
  std::printf(
      "(flops per interaction in the paper's convention: %.0f, of which\n"
      " 9 divides and 9 square roots; the paper quotes ~234)\n",
      problem.flops_per_interaction);
  jout.set_record(
      core::bench_record("bench_table4_arithmetic_intensity", cfg, results));
  jout.root().set("flops_per_interaction", problem.flops_per_interaction);
  return 0;
}
