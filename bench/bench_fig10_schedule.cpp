// Reproduces paper Figure 10: VLIW schedules of the `variable` interaction
// kernel before (plain list scheduling, no iteration overlap) and after
// optimization (unroll x2 + modulo/software-pipelined scheduling), with
// the issue-rate statistics quoted in Section 5.1.
#include <cstdio>

#include "bench/bench_io.h"
#include "src/core/kernels.h"
#include "src/kernel/schedule.h"

using namespace smd;

namespace {

obs::Json schedule_json(const kernel::Schedule& s) {
  obs::Json j = obs::Json::object();
  j.set("ii", s.ii)
      .set("unroll", s.unroll)
      .set("cycles_per_iteration", s.cycles_per_iteration())
      .set("fpu_occupancy", s.fpu_occupancy)
      .set("issue_rate", s.issue_rate);
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  benchio::JsonOut jout(argc, argv, "bench_fig10_schedule");
  const kernel::KernelDef def =
      core::build_water_kernel(core::Variant::kVariable, md::spc());

  kernel::ScheduleOptions before_opts;
  before_opts.software_pipeline = false;
  before_opts.unroll = 1;
  const kernel::Schedule before = kernel::schedule_body(def, before_opts);

  kernel::ScheduleOptions after_opts;
  after_opts.software_pipeline = true;
  after_opts.unroll = 2;
  const kernel::Schedule after = kernel::schedule_body(def, after_opts);

  std::printf("== Figure 10: schedules of the variable interaction kernel ==\n\n");
  std::printf("(a) before optimization: list schedule, no overlap\n");
  std::printf("    cycles/iteration: %.1f   FPU occupancy: %.1f%%   issue rate: %.1f%%\n\n",
              before.cycles_per_iteration(), 100.0 * before.fpu_occupancy,
              100.0 * before.issue_rate);
  std::printf("%s\n", before.ascii(40).c_str());
  std::printf("    (first 40 of %d cycles shown)\n\n", before.ii);

  std::printf("(b) after optimization: unroll x2 + software pipelining\n");
  std::printf("    II: %d cycles for %d interactions -> %.1f cycles/iteration\n",
              after.ii, after.unroll, after.cycles_per_iteration());
  std::printf("    FPU occupancy: %.1f%%   new instruction issued on %.0f%% of cycles\n\n",
              100.0 * after.fpu_occupancy, 100.0 * after.issue_rate);
  std::printf("%s\n", after.ascii(40).c_str());
  std::printf("    (first 40 of %d cycles shown)\n\n", after.ii);

  std::printf("execution-rate improvement: %.0f%% (paper reports a double-digit\n"
              "percentage improvement from the same transformation)\n",
              100.0 * (before.cycles_per_iteration() / after.cycles_per_iteration() - 1.0));
  jout.root().set("before", schedule_json(before));
  jout.root().set("after", schedule_json(after));
  jout.root().set("rate_improvement",
                  before.cycles_per_iteration() / after.cycles_per_iteration() - 1.0);
  return 0;
}
