// Section 5.4 future work, executed: "These results will be confirmed and
// validated in the future using the more accurate Merrimac simulator."
//
// We confront the paper's analytical blocking estimate (Figures 11-12)
// with a SIMD-implementable design: 16-molecule central groups, cube
// paving with exact box-distance culling, occupancy padding, neighbor
// records broadcast through the inter-cluster switch, and a real scheduled
// kernel (masking + in-kernel cutoff, validated in tests/blocked_test).
//
// The comparison quantifies how much of the analytical model's promise an
// actual 16-wide SIMD mapping retains: the memory savings survive, but
// cube paving + padding inflate computation well beyond the model's
// half-edge shell, so on a kernel-bound calibration blocking loses.
#include <cstdio>

#include "bench/bench_io.h"
#include "src/core/blocking.h"
#include "src/core/report.h"
#include "src/core/run.h"
#include "src/util/table.h"

using namespace smd;

int main(int argc, char** argv) {
  benchio::JsonOut jout(argc, argv, "bench_blocked_scheme");
  const core::Problem problem = core::Problem::make({});
  const auto variable = core::run_variant(problem, core::Variant::kVariable);
  const double var_kernel = static_cast<double>(variable.run.kernel_busy_cycles);
  const double var_mem = static_cast<double>(variable.run.mem_busy_cycles);
  const double var_time = static_cast<double>(variable.run.cycles);
  const double var_words_per_pair =
      static_cast<double>(variable.mem_refs) /
      static_cast<double>(variable.n_real_interactions);

  // The paper-style analytical model, calibrated identically.
  core::BlockingModelParams mp;
  mp.cutoff = problem.setup.cutoff;
  mp.variable_kernel_cycles = var_kernel;
  mp.variable_memory_cycles = var_mem;
  mp.variable_words_per_interaction = var_words_per_pair;
  mp.interactions_per_molecule =
      static_cast<double>(problem.half_list.n_pairs()) /
      static_cast<double>(problem.system.n_molecules());
  const core::BlockingModel model(mp);

  std::printf("== Blocking scheme: analytical model vs implementable design ==\n");
  std::printf("variable calibration: kernel %.0f cycles, memory %.0f cycles,\n"
              "%.1f words per (half-list) interaction\n\n",
              var_kernel, var_mem, var_words_per_pair);

  util::Table t({"cells/dim", "x", "cells pave", "pad occ", "compute infl",
                 "words/pair", "model kernel", "impl kernel", "model mem",
                 "impl mem", "impl time rel"});
  obs::Json rows = obs::Json::array();
  for (int cells : {3, 4, 5, 6}) {
    const core::BlockedImplProfile p = core::profile_blocked_implementation(
        problem.system, problem.half_list, problem.setup.cutoff, cells);
    const core::BlockingPoint m = model.at(p.normalized_size);
    // Implementation-relative numbers. Note the blocked kernel computes
    // directed pairs (both sides, like `duplicated`), so its inflation vs
    // the half-list `variable` baseline is 2 x compute_inflation.
    const double impl_kernel_rel = p.est_kernel_cycles / var_kernel;
    const double impl_mem_cycles_rel = p.est_memory_cycles / var_mem;
    const double impl_time_rel =
        std::max(p.est_kernel_cycles, p.est_memory_cycles) / var_time;
    t.add_row({std::to_string(cells), util::Table::num(p.normalized_size, 2),
               std::to_string(p.paving_cells), std::to_string(p.max_occupancy),
               util::Table::num(p.compute_inflation, 1),
               util::Table::num(p.words_per_real_pair, 1),
               util::Table::num(m.kernel_rel, 2),
               util::Table::num(impl_kernel_rel, 2),
               util::Table::num(m.memory_rel, 2),
               util::Table::num(impl_mem_cycles_rel, 2),
               util::Table::num(impl_time_rel, 2)});
    obs::Json j = obs::Json::object();
    j.set("cells_per_dim", cells)
        .set("normalized_size", p.normalized_size)
        .set("paving_cells", p.paving_cells)
        .set("max_occupancy", p.max_occupancy)
        .set("compute_inflation", p.compute_inflation)
        .set("words_per_real_pair", p.words_per_real_pair)
        .set("model_kernel_rel", m.kernel_rel)
        .set("impl_kernel_rel", impl_kernel_rel)
        .set("model_memory_rel", m.memory_rel)
        .set("impl_memory_rel", impl_mem_cycles_rel)
        .set("impl_time_rel", impl_time_rel);
    rows.push_back(std::move(j));
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "Findings:\n"
      " * the memory side of the estimate is real -- the implementable\n"
      "   design moves far fewer words per pair than the list-based\n"
      "   variants (indices vanish, cells amortize);\n"
      " * the compute side is much worse than the model's (1 + x/2)^3\n"
      "   shell: cube paving with box-distance culling plus occupancy\n"
      "   padding costs several-fold over-computation at 16-wide SIMD\n"
      "   granularity;\n"
      " * hence on our (kernel-bound) calibration blocking does not pay,\n"
      "   and even on a memory-bound machine the practical optimum is\n"
      "   shallower than Figure 12 suggests. Production GPU MD resolved\n"
      "   this with pruned tile-pair lists -- blocking plus a coarse list,\n"
      "   rather than pure spatial paving.\n");
  jout.root().set("calibration", core::to_json(variable));
  jout.root().set("cells", std::move(rows));
  return 0;
}
