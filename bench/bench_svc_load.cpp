// Load generator for the simulation service (src/svc): throughput and
// latency percentiles at thousands of concurrent requests, across
// duplicate-request regimes.
//
//   bench_svc_load [--requests N] [--molecules N] [--workers a,b,c]
//                  [--dups a,b,c] [--queue-cap N]
//                  [--engine stepped|event|lockstep] [--json path]
//
// For every (worker count, duplicate fraction) combination the bench
// builds a fresh server, submits N requests from a closed-loop client
// thread, drains, and reports jobs/sec plus p50/p95/p99 total latency
// from each response's own wall-clock decomposition. The duplicate
// fraction d maps N requests onto round(N*(1-d)) unique configs (distinct
// dram_gbps machine overrides over the four variants), so:
//   --dups 0    every request simulates (worst case),
//   --dups 50   every config is requested twice (in-flight dedup + memo),
//   --dups 100  one config serves all N requests (one simulation total).
//
// The bench is also a checker for the two svc invariants (DESIGN.md
// section 13) at scale, and exits non-zero if either fails:
//   * counter proof: svc.jobs.simulated rises by exactly the number of
//     unique configs in every regime -- never more;
//   * determinism: for every config, the payload is byte-identical across
//     all worker counts (the first worker count is the reference).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_io.h"
#include "src/core/report.h"
#include "src/obs/registry.h"
#include "src/svc/server.h"
#include "src/svc/wire.h"
#include "src/util/table.h"

using namespace smd;

namespace {

/// The i-th unique config: cycle the four variants, then nudge the DRAM
/// bandwidth override by a hash-distinct epsilon. Every config is a valid
/// machine and costs the same to simulate, so regimes differ only in
/// duplication, not in per-job work.
tune::Candidate unique_config(int i) {
  tune::Candidate c;
  const core::Variant variants[] = {core::Variant::kExpanded,
                                    core::Variant::kFixed,
                                    core::Variant::kVariable,
                                    core::Variant::kDuplicated};
  c.variant = variants[i % 4];
  c.dram_gbps = 38.4 + 0.01 * static_cast<double>(i / 4);
  return c;
}

double percentile_ms(std::vector<std::int64_t> ns, double q) {
  if (ns.empty()) return 0.0;
  std::sort(ns.begin(), ns.end());
  const std::size_t idx = std::min(
      ns.size() - 1,
      static_cast<std::size_t>(q * static_cast<double>(ns.size())));
  return static_cast<double>(ns[idx]) / 1e6;
}

struct RegimeResult {
  int workers = 0;
  double dup_fraction = 0.0;
  int n_requests = 0;
  int n_unique = 0;
  std::int64_t simulated = 0;
  std::int64_t deduped = 0;
  std::int64_t cache_hits = 0;
  double elapsed_s = 0.0;
  double jobs_per_s = 0.0;
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
  int failures = 0;  ///< non-ok responses + counter/identity violations
};

/// One (workers, dup fraction) run against a fresh server. `reference`
/// maps unique-config index -> payload from the first worker count; later
/// runs must match it byte-for-byte.
RegimeResult run_regime(int workers, double dup, int n_requests,
                        int n_molecules, std::size_t queue_cap,
                        sim::SimEngine engine,
                        std::map<int, std::string>& reference) {
  RegimeResult r;
  r.workers = workers;
  r.dup_fraction = dup;
  r.n_requests = n_requests;
  r.n_unique = std::max(
      1, static_cast<int>(static_cast<double>(n_requests) * (1.0 - dup) + 0.5));

  auto& reg = obs::CounterRegistry::global();
  const std::int64_t sim0 = reg.counter("svc.jobs.simulated");
  const std::int64_t dedup0 = reg.counter("svc.jobs.deduped");
  const std::int64_t cache0 = reg.counter("svc.jobs.cache_hit");

  svc::ServerOptions opts;
  opts.workers = workers;
  opts.queue_cap = queue_cap;
  opts.engine = engine;
  svc::Server server(opts);

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<svc::JobHandle> handles;
  handles.reserve(static_cast<std::size_t>(n_requests));
  for (int i = 0; i < n_requests; ++i) {
    svc::Request req;
    req.id = "load-" + std::to_string(i);
    req.config = unique_config(i % r.n_unique);
    req.n_molecules = n_molecules;
    handles.push_back(server.submit(req));
  }
  server.drain();
  r.elapsed_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              t0)
                    .count();

  std::vector<std::int64_t> total_ns;
  total_ns.reserve(handles.size());
  for (std::size_t i = 0; i < handles.size(); ++i) {
    const svc::Response& resp = handles[i].wait();
    if (!resp.ok()) {
      ++r.failures;
      continue;
    }
    total_ns.push_back(resp.total_ns);
    const int cfg_idx = static_cast<int>(i) % r.n_unique;
    auto [it, inserted] = reference.emplace(cfg_idx, resp.payload);
    if (!inserted && it->second != resp.payload) {
      ++r.failures;  // payload differs across worker counts / requests
    }
  }
  server.shutdown();

  r.simulated = reg.counter("svc.jobs.simulated") - sim0;
  r.deduped = reg.counter("svc.jobs.deduped") - dedup0;
  r.cache_hits = reg.counter("svc.jobs.cache_hit") - cache0;
  if (r.simulated > r.n_unique) ++r.failures;  // over-simulation: dedup broke
  r.jobs_per_s = static_cast<double>(n_requests) / r.elapsed_s;
  r.p50_ms = percentile_ms(total_ns, 0.50);
  r.p95_ms = percentile_ms(total_ns, 0.95);
  r.p99_ms = percentile_ms(total_ns, 0.99);
  return r;
}

obs::Json to_json(const RegimeResult& r) {
  obs::Json j = obs::Json::object();
  j.set("workers", r.workers)
      .set("dup_fraction", r.dup_fraction)
      .set("n_requests", r.n_requests)
      .set("n_unique", r.n_unique)
      .set("simulated", r.simulated)
      .set("deduped", r.deduped)
      .set("cache_hits", r.cache_hits)
      .set("elapsed_s", r.elapsed_s)
      .set("jobs_per_s", r.jobs_per_s)
      .set("p50_ms", r.p50_ms)
      .set("p95_ms", r.p95_ms)
      .set("p99_ms", r.p99_ms)
      .set("failures", r.failures);
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  static const char* kUsage =
      "bench_svc_load [--requests N] [--molecules N] [--workers a,b,c] "
      "[--dups a,b,c] [--queue-cap N] [--engine stepped|event|lockstep] "
      "[--json path]";
  benchio::check_flags(argc, argv, "bench_svc_load", kUsage,
                       {"--requests", "--molecules", "--workers", "--dups",
                        "--queue-cap", "--engine", "--json"},
                       {});
  benchio::JsonOut jout(argc, argv, "bench_svc_load");

  const int n_requests = benchio::int_flag_or_exit(
      argc, argv, "bench_svc_load", "requests", 1000, kUsage);
  const int n_molecules = benchio::int_flag_or_exit(
      argc, argv, "bench_svc_load", "molecules", 32, kUsage);
  const std::vector<int> workers = benchio::int_list_flag_or_exit(
      argc, argv, "bench_svc_load", "workers", {1, 4}, kUsage);
  const std::vector<int> dup_pcts = benchio::int_list_flag_or_exit(
      argc, argv, "bench_svc_load", "dups", {0, 50, 100}, kUsage);
  const std::size_t queue_cap =
      static_cast<std::size_t>(benchio::int_flag_or_exit(
          argc, argv, "bench_svc_load", "queue-cap", n_requests + 16, kUsage));
  const sim::SimEngine engine =
      sim::parse_engine(benchio::engine_flag(argc, argv));

  std::printf("== svc load: %d requests, %d molecules, dup regimes ",
              n_requests, n_molecules);
  for (const int d : dup_pcts) std::printf("%d%% ", d);
  std::printf("==\n\n");

  util::Table t({"workers", "dup", "unique", "simulated", "deduped",
                 "jobs/s", "p50 (ms)", "p95 (ms)", "p99 (ms)", "check"});
  std::vector<RegimeResult> rows;
  int failures = 0;
  for (const int d : dup_pcts) {
    // The reference payloads are per-regime: the first worker count
    // defines them, every later worker count must reproduce them exactly.
    std::map<int, std::string> reference;
    for (const int w : workers) {
      const RegimeResult r =
          run_regime(w, static_cast<double>(d) / 100.0, n_requests,
                     n_molecules, queue_cap, engine, reference);
      failures += r.failures;
      t.add_row({std::to_string(r.workers), std::to_string(d) + "%",
                 std::to_string(r.n_unique), std::to_string(r.simulated),
                 std::to_string(r.deduped), util::Table::num(r.jobs_per_s, 1),
                 util::Table::num(r.p50_ms, 3), util::Table::num(r.p95_ms, 3),
                 util::Table::num(r.p99_ms, 3),
                 r.failures == 0 ? "ok" : "FAIL"});
      rows.push_back(r);
    }
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("invariants: simulated == unique configs per regime; payloads "
              "byte-identical across worker counts -- %s\n",
              failures == 0 ? "OK" : "FAILED");

  obs::Json record = core::bench_record("bench_svc_load",
                                        tune::Candidate{}.machine(), {});
  record.set("n_requests", n_requests);
  record.set("n_molecules", n_molecules);
  obs::Json regimes = obs::Json::array();
  for (const auto& r : rows) regimes.push_back(to_json(r));
  record.set("regimes", std::move(regimes));
  record.set("failures", failures);
  jout.set_record(std::move(record));
  return failures == 0 ? 0 : 1;
}
