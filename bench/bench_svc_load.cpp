// Load generator for the simulation service (src/svc): throughput and
// latency percentiles at thousands of concurrent requests, across
// duplicate-request regimes.
//
//   bench_svc_load [--requests N] [--molecules N] [--workers a,b,c]
//                  [--dups a,b,c] [--queue-cap N]
//                  [--engine stepped|event|lockstep] [--json path]
//
// For every (worker count, duplicate fraction) combination the bench
// builds a fresh server, submits N requests from a closed-loop client
// thread, drains, and reports jobs/sec plus p50/p95/p99 total latency
// from each response's own wall-clock decomposition. The duplicate
// fraction d maps N requests onto round(N*(1-d)) unique configs (distinct
// dram_gbps machine overrides over the four variants), so:
//   --dups 0    every request simulates (worst case),
//   --dups 50   every config is requested twice (in-flight dedup + memo),
//   --dups 100  one config serves all N requests (one simulation total).
//
// Latency percentiles come from the server's obs::LatencyHistogram
// per-phase histograms (queue wait / execute / serialize / total), not
// from sorting raw samples; the raw samples are kept only to *cross-check*
// the histograms: at every regime, each reported quantile must sit within
// the documented LatencyHistogram::kQuantileRelErr of the exact sorted
// value (opt out with --no-quantile-check). Per-regime total histograms
// are then merged -- exact bucket-wise addition -- into the all-regimes
// summary, exercising mergeability at scale.
//
// The bench is also a checker for the svc invariants (DESIGN.md
// sections 13 and 15) at scale, and exits non-zero if any fails:
//   * counter proof: svc.jobs.simulated rises by exactly the number of
//     unique configs in every regime -- never more;
//   * determinism: for every config, the payload is byte-identical across
//     all worker counts (the first worker count is the reference);
//   * partition: every response's six timing phases sum to its total_ns
//     exactly;
//   * histogram bound: quantiles within kQuantileRelErr of exact.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_io.h"
#include "src/core/report.h"
#include "src/obs/latency_histogram.h"
#include "src/obs/registry.h"
#include "src/svc/server.h"
#include "src/svc/wire.h"
#include "src/util/table.h"

using namespace smd;

namespace {

/// The i-th unique config: cycle the four variants, then nudge the DRAM
/// bandwidth override by a hash-distinct epsilon. Every config is a valid
/// machine and costs the same to simulate, so regimes differ only in
/// duplication, not in per-job work.
tune::Candidate unique_config(int i) {
  tune::Candidate c;
  const core::Variant variants[] = {core::Variant::kExpanded,
                                    core::Variant::kFixed,
                                    core::Variant::kVariable,
                                    core::Variant::kDuplicated};
  c.variant = variants[i % 4];
  c.dram_gbps = 38.4 + 0.01 * static_cast<double>(i / 4);
  return c;
}

/// Exact order statistic over the raw samples -- the ground truth the
/// histogram quantiles are checked against (same rank convention:
/// index floor(q*n), clamped).
double exact_percentile_ns(std::vector<std::int64_t> ns, double q) {
  if (ns.empty()) return 0.0;
  std::sort(ns.begin(), ns.end());
  const std::size_t idx = std::min(
      ns.size() - 1,
      static_cast<std::size_t>(q * static_cast<double>(ns.size())));
  return static_cast<double>(ns[idx]);
}

constexpr double kQuantiles[] = {0.50, 0.95, 0.99};

/// The histogram error-bound check: every reported quantile must be
/// within LatencyHistogram::kQuantileRelErr of the exact sorted value
/// (sub-64 ns samples are bucketed exactly, hence the 1 ns floor).
/// Returns the number of violations and prints each one.
int quantile_cross_check(const std::vector<std::int64_t>& exact_ns,
                         const obs::LatencyHistogram& hist,
                         const char* label) {
  int failures = 0;
  if (hist.count() != exact_ns.size()) {
    std::printf("FAIL: %s histogram holds %llu samples, expected %zu\n",
                label, static_cast<unsigned long long>(hist.count()),
                exact_ns.size());
    ++failures;
  }
  for (const double q : kQuantiles) {
    const double exact = exact_percentile_ns(exact_ns, q);
    const double est = hist.quantile(q);
    const double tol =
        std::max(1.0, exact * obs::LatencyHistogram::kQuantileRelErr);
    if (std::abs(est - exact) > tol) {
      std::printf("FAIL: %s p%02.0f: histogram %.0f ns vs exact %.0f ns "
                  "(tolerance %.0f ns)\n",
                  label, q * 100.0, est, exact, tol);
      ++failures;
    }
  }
  return failures;
}

struct RegimeResult {
  int workers = 0;
  double dup_fraction = 0.0;
  int n_requests = 0;
  int n_unique = 0;
  std::int64_t simulated = 0;
  std::int64_t deduped = 0;
  std::int64_t cache_hits = 0;
  double elapsed_s = 0.0;
  double jobs_per_s = 0.0;
  /// Per-phase latency histograms, copied from the server at drain.
  obs::LatencyHistogram queue_hist;
  obs::LatencyHistogram execute_hist;
  obs::LatencyHistogram serialize_hist;
  obs::LatencyHistogram total_hist;
  int failures = 0;  ///< non-ok responses + counter/identity violations

  double quantile_ms(const obs::LatencyHistogram& h, double q) const {
    return h.quantile(q) / 1e6;
  }
};

/// One (workers, dup fraction) run against a fresh server. `reference`
/// maps unique-config index -> payload from the first worker count; later
/// runs must match it byte-for-byte.
RegimeResult run_regime(int workers, double dup, int n_requests,
                        int n_molecules, std::size_t queue_cap,
                        sim::SimEngine engine, bool quantile_check,
                        std::map<int, std::string>& reference) {
  RegimeResult r;
  r.workers = workers;
  r.dup_fraction = dup;
  r.n_requests = n_requests;
  r.n_unique = std::max(
      1, static_cast<int>(static_cast<double>(n_requests) * (1.0 - dup) + 0.5));

  auto& reg = obs::CounterRegistry::global();
  const std::int64_t sim0 = reg.counter("svc.jobs.simulated");
  const std::int64_t dedup0 = reg.counter("svc.jobs.deduped");
  const std::int64_t cache0 = reg.counter("svc.jobs.cache_hit");

  svc::ServerOptions opts;
  opts.workers = workers;
  opts.queue_cap = queue_cap;
  opts.engine = engine;
  svc::Server server(opts);

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<svc::JobHandle> handles;
  handles.reserve(static_cast<std::size_t>(n_requests));
  for (int i = 0; i < n_requests; ++i) {
    svc::Request req;
    req.id = "load-" + std::to_string(i);
    req.config = unique_config(i % r.n_unique);
    req.n_molecules = n_molecules;
    handles.push_back(server.submit(req));
  }
  server.drain();
  r.elapsed_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              t0)
                    .count();

  // Raw samples, kept ONLY as the ground truth for the histogram
  // cross-check -- reporting reads the histograms.
  std::vector<std::int64_t> total_ns;
  std::vector<std::int64_t> queue_ns;
  std::vector<std::int64_t> execute_ns;
  std::vector<std::int64_t> serialize_ns;
  total_ns.reserve(handles.size());
  for (std::size_t i = 0; i < handles.size(); ++i) {
    const svc::Response& resp = handles[i].wait();
    // Partition invariant: the six phases tile submit->delivery exactly.
    const std::int64_t phase_sum = resp.admission_ns + resp.queue_ns +
                                   resp.lookup_ns + resp.simulate_ns +
                                   resp.serialize_ns + resp.complete_ns;
    if (phase_sum != resp.total_ns) {
      std::printf("FAIL: %s phases sum to %lld ns, total is %lld ns\n",
                  resp.id.c_str(), static_cast<long long>(phase_sum),
                  static_cast<long long>(resp.total_ns));
      ++r.failures;
    }
    if (!resp.ok()) {
      ++r.failures;
      continue;
    }
    total_ns.push_back(resp.total_ns);
    queue_ns.push_back(resp.queue_ns);
    execute_ns.push_back(resp.lookup_ns + resp.simulate_ns);
    serialize_ns.push_back(resp.serialize_ns);
    const int cfg_idx = static_cast<int>(i) % r.n_unique;
    auto [it, inserted] = reference.emplace(cfg_idx, resp.payload);
    if (!inserted && it->second != resp.payload) {
      ++r.failures;  // payload differs across worker counts / requests
    }
  }
  r.queue_hist = server.queue_wait_hist();
  r.execute_hist = server.execute_hist();
  r.serialize_hist = server.serialize_hist();
  r.total_hist = server.total_hist();
  server.shutdown();

  r.simulated = reg.counter("svc.jobs.simulated") - sim0;
  r.deduped = reg.counter("svc.jobs.deduped") - dedup0;
  r.cache_hits = reg.counter("svc.jobs.cache_hit") - cache0;
  if (r.simulated > r.n_unique) ++r.failures;  // over-simulation: dedup broke
  r.jobs_per_s = static_cast<double>(n_requests) / r.elapsed_s;
  if (quantile_check) {
    r.failures += quantile_cross_check(queue_ns, r.queue_hist, "queue");
    r.failures += quantile_cross_check(execute_ns, r.execute_hist, "execute");
    r.failures +=
        quantile_cross_check(serialize_ns, r.serialize_hist, "serialize");
    r.failures += quantile_cross_check(total_ns, r.total_hist, "total");
  }
  return r;
}

obs::Json phase_json(const obs::LatencyHistogram& h) {
  obs::Json j = obs::Json::object();
  j.set("count", h.count());
  j.set("p50_ms", h.quantile(0.50) / 1e6);
  j.set("p95_ms", h.quantile(0.95) / 1e6);
  j.set("p99_ms", h.quantile(0.99) / 1e6);
  j.set("mean_ms", h.mean_ns() / 1e6);
  j.set("max_ms", static_cast<double>(h.max_ns()) / 1e6);
  return j;
}

obs::Json to_json(const RegimeResult& r) {
  obs::Json j = obs::Json::object();
  j.set("workers", r.workers)
      .set("dup_fraction", r.dup_fraction)
      .set("n_requests", r.n_requests)
      .set("n_unique", r.n_unique)
      .set("simulated", r.simulated)
      .set("deduped", r.deduped)
      .set("cache_hits", r.cache_hits)
      .set("elapsed_s", r.elapsed_s)
      .set("jobs_per_s", r.jobs_per_s)
      .set("p50_ms", r.quantile_ms(r.total_hist, 0.50))
      .set("p95_ms", r.quantile_ms(r.total_hist, 0.95))
      .set("p99_ms", r.quantile_ms(r.total_hist, 0.99))
      .set("failures", r.failures);
  obs::Json phases = obs::Json::object();
  phases.set("queue_wait", phase_json(r.queue_hist));
  phases.set("execute", phase_json(r.execute_hist));
  phases.set("serialize", phase_json(r.serialize_hist));
  phases.set("total", phase_json(r.total_hist));
  j.set("phases", std::move(phases));
  j.set("total_histogram", r.total_hist.to_json());
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  static const char* kUsage =
      "bench_svc_load [--requests N] [--molecules N] [--workers a,b,c] "
      "[--dups a,b,c] [--queue-cap N] [--engine stepped|event|lockstep] "
      "[--json path] [--no-quantile-check]";
  benchio::check_flags(argc, argv, "bench_svc_load", kUsage,
                       {"--requests", "--molecules", "--workers", "--dups",
                        "--queue-cap", "--engine", "--json"},
                       {"--no-quantile-check"});
  benchio::JsonOut jout(argc, argv, "bench_svc_load");

  const int n_requests = benchio::int_flag_or_exit(
      argc, argv, "bench_svc_load", "requests", 1000, kUsage);
  const int n_molecules = benchio::int_flag_or_exit(
      argc, argv, "bench_svc_load", "molecules", 32, kUsage);
  const std::vector<int> workers = benchio::int_list_flag_or_exit(
      argc, argv, "bench_svc_load", "workers", {1, 4}, kUsage);
  const std::vector<int> dup_pcts = benchio::int_list_flag_or_exit(
      argc, argv, "bench_svc_load", "dups", {0, 50, 100}, kUsage);
  const std::size_t queue_cap =
      static_cast<std::size_t>(benchio::int_flag_or_exit(
          argc, argv, "bench_svc_load", "queue-cap", n_requests + 16, kUsage));
  const sim::SimEngine engine =
      sim::parse_engine(benchio::engine_flag(argc, argv));
  bool quantile_check = true;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--no-quantile-check") quantile_check = false;
  }

  std::printf("== svc load: %d requests, %d molecules, dup regimes ",
              n_requests, n_molecules);
  for (const int d : dup_pcts) std::printf("%d%% ", d);
  std::printf("==\n\n");

  util::Table t({"workers", "dup", "unique", "simulated", "deduped",
                 "jobs/s", "p50 (ms)", "p95 (ms)", "p99 (ms)", "check"});
  util::Table pt({"workers", "dup", "phase", "p50 (ms)", "p95 (ms)",
                  "p99 (ms)", "max (ms)"});
  std::vector<RegimeResult> rows;
  int failures = 0;
  for (const int d : dup_pcts) {
    // The reference payloads are per-regime: the first worker count
    // defines them, every later worker count must reproduce them exactly.
    std::map<int, std::string> reference;
    for (const int w : workers) {
      const RegimeResult r =
          run_regime(w, static_cast<double>(d) / 100.0, n_requests,
                     n_molecules, queue_cap, engine, quantile_check,
                     reference);
      failures += r.failures;
      t.add_row({std::to_string(r.workers), std::to_string(d) + "%",
                 std::to_string(r.n_unique), std::to_string(r.simulated),
                 std::to_string(r.deduped), util::Table::num(r.jobs_per_s, 1),
                 util::Table::num(r.quantile_ms(r.total_hist, 0.50), 3),
                 util::Table::num(r.quantile_ms(r.total_hist, 0.95), 3),
                 util::Table::num(r.quantile_ms(r.total_hist, 0.99), 3),
                 r.failures == 0 ? "ok" : "FAIL"});
      const std::pair<const char*, const obs::LatencyHistogram*> phases[] = {
          {"queue", &r.queue_hist},
          {"execute", &r.execute_hist},
          {"serialize", &r.serialize_hist},
          {"total", &r.total_hist}};
      for (const auto& [name, h] : phases) {
        pt.add_row({std::to_string(r.workers), std::to_string(d) + "%", name,
                    util::Table::num(r.quantile_ms(*h, 0.50), 3),
                    util::Table::num(r.quantile_ms(*h, 0.95), 3),
                    util::Table::num(r.quantile_ms(*h, 0.99), 3),
                    util::Table::num(static_cast<double>(h->max_ns()) / 1e6,
                                     3)});
      }
      rows.push_back(r);
    }
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("per-phase latency (histogram quantiles, served requests):\n%s\n",
              pt.render().c_str());

  // Mergeability at scale: folding the per-regime totals bucket-wise must
  // conserve every sample.
  obs::LatencyHistogram merged;
  std::uint64_t sample_sum = 0;
  for (const RegimeResult& r : rows) {
    merged.merge(r.total_hist);
    sample_sum += r.total_hist.count();
  }
  if (merged.count() != sample_sum) {
    std::printf("FAIL: merged histogram holds %llu samples, regimes total "
                "%llu\n",
                static_cast<unsigned long long>(merged.count()),
                static_cast<unsigned long long>(sample_sum));
    ++failures;
  }
  std::printf("all regimes merged: %llu served requests, total latency "
              "p50 %.3f / p95 %.3f / p99 %.3f ms\n",
              static_cast<unsigned long long>(merged.count()),
              merged.quantile(0.50) / 1e6, merged.quantile(0.95) / 1e6,
              merged.quantile(0.99) / 1e6);
  std::printf("invariants: simulated == unique configs per regime; payloads "
              "byte-identical across worker counts; phases partition "
              "total_ns%s -- %s\n",
              quantile_check
                  ? "; histogram quantiles within 1/64 of exact"
                  : "",
              failures == 0 ? "OK" : "FAILED");

  obs::Json record = core::bench_record("bench_svc_load",
                                        tune::Candidate{}.machine(), {});
  record.set("n_requests", n_requests);
  record.set("n_molecules", n_molecules);
  obs::Json regimes = obs::Json::array();
  for (const auto& r : rows) regimes.push_back(to_json(r));
  record.set("regimes", std::move(regimes));
  record.set("merged_total", phase_json(merged));
  record.set("failures", failures);
  jout.set_record(std::move(record));
  return failures == 0 ? 0 : 1;
}
