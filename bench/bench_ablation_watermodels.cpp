// Section 5.4 ablation: "more complex water models ... can significantly
// increase the amount of arithmetic intensity. Consequently, Merrimac will
// provide better performance for those more accurate models."
//
// For each water model we build the real multi-site interaction kernel,
// schedule it on the cluster, and project chip-level performance as the
// min of the compute bound (from the schedule) and the bandwidth bound
// (arithmetic intensity x sustained memory bandwidth).
#include <cstdio>

#include "bench/bench_io.h"
#include "src/core/kernels.h"
#include "src/md/water.h"
#include "src/util/table.h"

using namespace smd;

int main(int argc, char** argv) {
  benchio::JsonOut jout(argc, argv, "bench_ablation_watermodels");
  obs::Json rows = obs::Json::array();
  util::Table t({"model", "sites", "site pairs", "flops/pair", "div+sqrt",
                 "words/pair", "AI", "cycles/pair", "proj. GFLOPS", "bound"});
  for (const auto* m : md::table5_models()) {
    if (m->sites.empty()) continue;
    const core::MultisiteProfile p = core::profile_multisite_kernel(*m);
    const double compute_gflops =
        static_cast<double>(p.census.flops) * 16 / p.cycles_per_interaction;
    const bool mem_bound = p.projected_gflops < compute_gflops - 1e-9;
    obs::Json j = obs::Json::object();
    j.set("model", m->name)
        .set("sites", p.sites)
        .set("active_pairs", p.active_pairs)
        .set("flops_per_pair", p.census.flops)
        .set("divides_and_sqrts", p.census.divides + p.census.square_roots)
        .set("words_per_interaction", p.words_per_interaction)
        .set("arithmetic_intensity", p.arithmetic_intensity)
        .set("cycles_per_interaction", p.cycles_per_interaction)
        .set("projected_gflops", p.projected_gflops)
        .set("bound", mem_bound ? "memory" : "compute");
    rows.push_back(std::move(j));
    t.add_row({m->name, std::to_string(p.sites), std::to_string(p.active_pairs),
               std::to_string(p.census.flops),
               std::to_string(p.census.divides + p.census.square_roots),
               util::Table::num(p.words_per_interaction, 0),
               util::Table::num(p.arithmetic_intensity, 1),
               util::Table::num(p.cycles_per_interaction, 0),
               util::Table::num(p.projected_gflops, 1),
               mem_bound ? "memory" : "compute"});
  }
  std::printf("== Ablation: water-model complexity vs Merrimac efficiency ==\n%s\n",
              t.render().c_str());
  std::printf(
      "The paper's Section 5.4 claim holds for genuinely busier models:\n"
      "TIP5P's five sites raise flops/word and the projected rate over SPC.\n"
      "The PPC row is a static effective-charge proxy; the real polarizable\n"
      "model recomputes its charge distribution every step -- additional\n"
      "arithmetic at no additional bandwidth, exactly the trade the paper\n"
      "says favors Merrimac. (Expanded-style streams; bandwidth bound\n"
      "assumes 4 sustained words/cycle.)\n");
  jout.root().set("models", std::move(rows));
  return 0;
}
