// Reproduces paper Figure 9: performance of the StreamMD implementations
// (solution GFLOPS, all-ops GFLOPS, memory references) next to the
// hand-optimized GROMACS baseline on a 2.4 GHz Pentium 4, plus the
// Section 5.1 "optimal" bound and sustained fractions.
#include <cstdio>

#include "bench/bench_io.h"
#include "src/baseline/p4model.h"
#include "src/core/kernels.h"
#include "src/core/report.h"
#include "src/core/run.h"
#include "src/kernel/cost.h"

using namespace smd;

namespace {

/// The Section 5.1 "optimal": every FPU slot busy with required work,
/// divides/square-roots paying their full iterative slot cost.
double optimal_solution_gflops(const core::Problem& problem,
                               const sim::MachineConfig& cfg) {
  const kernel::KernelDef def = core::build_water_kernel(
      core::Variant::kExpanded, problem.system.model());
  std::int64_t slots = 0;
  for (const auto& in : def.body) slots += kernel::op_cost(in.op).fpu_slots;
  const double chip_slots_per_cycle = cfg.n_clusters * cfg.fpus_per_cluster;
  const double interactions_per_second =
      chip_slots_per_cycle / static_cast<double>(slots) * cfg.clock_ghz * 1e9;
  return interactions_per_second * problem.flops_per_interaction / 1e9;
}

}  // namespace

int main(int argc, char** argv) {
  benchio::JsonOut jout(argc, argv, "bench_fig9_performance");
  const core::Problem problem = core::Problem::make({});
  sim::MachineConfig cfg = sim::MachineConfig::merrimac();
  cfg.engine = sim::parse_engine(benchio::engine_flag(argc, argv));
  const auto results = core::run_all_variants(problem, cfg);

  const baseline::P4Model p4;
  const kernel::FlopCensus census = core::interaction_flops(problem.system.model());
  const double p4_gflops = p4.solution_gflops(census);
  const double optimal = optimal_solution_gflops(problem, cfg);

  std::printf("== Figure 9: performance of the StreamMD implementations ==\n%s\n",
              core::format_performance_table(results, p4_gflops, optimal).c_str());

  const core::VariantResult* variable = nullptr;
  const core::VariantResult* expanded = nullptr;
  const core::VariantResult* fixed = nullptr;
  const core::VariantResult* duplicated = nullptr;
  for (const auto& r : results) {
    switch (r.variant) {
      case core::Variant::kVariable: variable = &r; break;
      case core::Variant::kExpanded: expanded = &r; break;
      case core::Variant::kFixed: fixed = &r; break;
      case core::Variant::kDuplicated: duplicated = &r; break;
    }
  }
  std::printf("headline comparisons (paper: +84%% vs expanded, +26%% vs fixed,\n"
              " fixed +46%% vs expanded, ~2-3x vs Pentium 4):\n");
  std::printf("  variable vs expanded   : %+.0f%%\n",
              100.0 * (variable->solution_gflops / expanded->solution_gflops - 1));
  std::printf("  variable vs fixed      : %+.0f%%\n",
              100.0 * (variable->solution_gflops / fixed->solution_gflops - 1));
  std::printf("  variable vs duplicated : %+.0f%%\n",
              100.0 * (variable->solution_gflops / duplicated->solution_gflops - 1));
  std::printf("  fixed vs expanded      : %+.0f%%\n",
              100.0 * (fixed->solution_gflops / expanded->solution_gflops - 1));
  std::printf("  variable vs Pentium 4  : %.1fx\n",
              variable->solution_gflops / p4_gflops);
  std::printf("  variable sustains %.0f%% of optimal, %.0f%% of the %.0f GFLOPS peak\n",
              100.0 * variable->solution_gflops / optimal,
              100.0 * variable->all_gflops / cfg.peak_gflops(), cfg.peak_gflops());
  std::printf("  max force error vs reference: %.2e (all variants validated)\n",
              variable->max_force_rel_err);

  jout.set_record(core::bench_record("bench_fig9_performance", cfg, results));
  obs::Json baselines = obs::Json::object();
  baselines.set("p4_solution_gflops", p4_gflops)
      .set("optimal_solution_gflops", optimal)
      .set("peak_gflops", cfg.peak_gflops());
  jout.root().set("baselines", std::move(baselines));
  return 0;
}
