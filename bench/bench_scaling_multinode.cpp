// The paper's Section 1/5 "initial results of the scaling of the algorithm
// to larger configurations of the system": strong scaling of StreamMD
// across Merrimac nodes on the folded-Clos network, calibrated with the
// simulated single-node `variable` run.
//
// Flags (smdtune drives these too):
//   --nodes a,b,c | lo:hi:step   node counts to sweep (default 1,2,4,...,64)
//   --molecules N                calibration water-box size (default 900)
//   --large-molecules N          the scaled-up system (default 115200, 128x)
//   --trace path                 per-node Chrome trace of the paper sweep
#include <cstdint>
#include <cstdio>

#include "bench/bench_io.h"
#include "src/core/run.h"
#include "src/net/multinode.h"
#include "src/obs/trace_event.h"
#include "src/prof/parallel.h"
#include "src/util/table.h"

using namespace smd;

namespace {

obs::Json sweep_json(const net::ScalingModel& model,
                     const std::vector<std::int64_t>& nodes) {
  obs::Json rows = obs::Json::array();
  for (const auto n : nodes) {
    const net::ScalingPoint p = model.at(n);
    const prof::ParallelTaxonomy tax =
        prof::attribute_parallel(model.breakdown(n));
    obs::Json j = obs::Json::object();
    j.set("nodes", p.nodes)
        .set("compute_s", p.compute_s)
        .set("local_mem_s", p.local_mem_s)
        .set("network_s", p.network_s)
        .set("serialization_s", p.serialization_s)
        .set("imbalance_s", p.imbalance_s)
        .set("step_s", p.step_s)
        .set("speedup", p.speedup)
        .set("efficiency", p.efficiency)
        .set("halo_fraction", p.halo_fraction)
        .set("imbalance_ratio", p.imbalance_ratio)
        .set("critical_node", p.critical_node)
        .set("taxonomy", prof::to_json(tax));
    rows.push_back(std::move(j));
  }
  return rows;
}

void sweep(const char* title, const net::ScalingModel& model,
           const std::vector<std::int64_t>& nodes) {
  util::Table t({"nodes", "compute (us)", "local mem (us)", "network (us)",
                 "step (us)", "speedup", "efficiency", "halo frac"});
  for (const auto& p : model.sweep(nodes)) {
    t.add_row({std::to_string(p.nodes), util::Table::num(p.compute_s * 1e6, 1),
               util::Table::num(p.local_mem_s * 1e6, 1),
               util::Table::num(p.network_s * 1e6, 1),
               util::Table::num(p.step_s * 1e6, 1),
               util::Table::num(p.speedup, 2),
               util::Table::percent(p.efficiency, 0),
               util::Table::num(p.halo_fraction, 2)});
  }
  std::printf("%s\n%s\n", title, t.render().c_str());
  std::printf("per-node decomposition (node-time shares)\n%s\n",
              prof::format_parallel_table([&] {
                std::vector<net::StepBreakdown> bds;
                bds.reserve(nodes.size());
                for (const auto n : nodes) bds.push_back(model.breakdown(n));
                return bds;
              }()).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  benchio::JsonOut jout(argc, argv, "bench_scaling_multinode");

  std::vector<std::int64_t> nodes = {1, 2, 4, 8, 16, 32, 64};
  const std::string nodes_flag = benchio::flag_value(argc, argv, "nodes");
  if (!nodes_flag.empty()) {
    try {
      nodes.clear();
      for (const int n : benchio::parse_int_list(nodes_flag)) nodes.push_back(n);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "--nodes: %s\n", e.what());
      return 2;
    }
  }

  core::ExperimentSetup setup;
  const std::string mol_flag = benchio::flag_value(argc, argv, "molecules");
  if (!mol_flag.empty()) setup.n_molecules = std::stoi(mol_flag);
  const core::Problem problem = core::Problem::make(setup);
  sim::MachineConfig node_cfg = sim::MachineConfig::merrimac();
  node_cfg.engine = sim::parse_engine(benchio::engine_flag(argc, argv));
  const auto variable =
      core::run_variant(problem, core::Variant::kVariable, node_cfg);

  net::ScalingWorkload w;
  w.n_molecules = problem.system.n_molecules();
  w.cutoff = problem.setup.cutoff;
  w.flops_per_interaction = problem.flops_per_interaction;
  w.words_per_interaction = static_cast<double>(variable.mem_refs) /
                            static_cast<double>(variable.n_real_interactions);
  w.cycles_per_interaction = static_cast<double>(variable.run.cycles) /
                             static_cast<double>(variable.n_real_interactions);

  std::printf("== Multi-node strong scaling (calibrated from `variable`) ==\n\n");
  char title[96];
  std::snprintf(title, sizeof title, "paper dataset: %lld molecules",
                static_cast<long long>(w.n_molecules));
  sweep(title, net::ScalingModel(w, net::NetworkConfig{}), nodes);

  net::ScalingWorkload big = w;
  big.n_molecules = 115200;  // 128x larger box by default
  const std::string big_flag = benchio::flag_value(argc, argv, "large-molecules");
  if (!big_flag.empty()) big.n_molecules = std::stoll(big_flag);
  std::snprintf(title, sizeof title, "scaled-up system: %lld molecules",
                static_cast<long long>(big.n_molecules));
  sweep(title, net::ScalingModel(big, net::NetworkConfig{}), nodes);

  obs::Json workload = obs::Json::object();
  workload.set("n_molecules", w.n_molecules)
      .set("cutoff_nm", w.cutoff)
      .set("flops_per_interaction", w.flops_per_interaction)
      .set("words_per_interaction", w.words_per_interaction)
      .set("cycles_per_interaction", w.cycles_per_interaction);
  jout.root().set("workload", std::move(workload));
  jout.root().set("paper_dataset",
                  sweep_json(net::ScalingModel(w, net::NetworkConfig{}), nodes));
  jout.root().set("large_system",
                  sweep_json(net::ScalingModel(big, net::NetworkConfig{}), nodes));

  const std::string trace_path = benchio::flag_value(argc, argv, "trace");
  if (!trace_path.empty()) {
    obs::TraceSink sink;
    const net::ScalingModel model(w, net::NetworkConfig{});
    for (const auto n : nodes) net::append_trace(model.breakdown(n), sink);
    sink.write(trace_path);
    std::printf("per-node trace written to %s (%zu slices)\n",
                trace_path.c_str(), sink.size());
  }
  return 0;
}
