// Machine-design ablations on the full paper dataset, for the DESIGN.md
// call-outs: how much does each Merrimac mechanism matter to StreamMD?
//  * stream-cache capacity (when the position array no longer fits,
//    gathers fall to DRAM random-access speed -- the regime where the
//    Section 5.4 blocking scheme starts to pay);
//  * combining-store depth (hot-row partial-force reductions);
//  * address-generator throughput (gather-dominated variants).
#include <cstdio>

#include "bench/bench_io.h"
#include "src/core/run.h"
#include "src/util/table.h"

using namespace smd;

int main(int argc, char** argv) {
  benchio::JsonOut jout(argc, argv, "bench_ablation_machine");
  const sim::SimEngine engine =
      sim::parse_engine(benchio::engine_flag(argc, argv));
  const core::Problem problem = core::Problem::make({});

  {
    util::Table t({"stream cache", "cycles", "solution GFLOPS", "hit rate",
                   "DRAM read words"});
    obs::Json rows = obs::Json::array();
    for (std::int64_t words : {1024LL, 8192LL, 32768LL, 131072LL}) {
      sim::MachineConfig cfg = sim::MachineConfig::merrimac();
      cfg.engine = engine;
      cfg.mem.cache.total_words = words;
      const auto r = core::run_variant(problem, core::Variant::kVariable, cfg);
      obs::Json j = obs::Json::object();
      j.set("cache_words", words)
          .set("cycles", r.run.cycles)
          .set("solution_gflops", r.solution_gflops)
          .set("cache_hit_rate", r.run.cache_stats.hit_rate())
          .set("dram_read_words", r.run.dram_stats.read_words);
      rows.push_back(std::move(j));
      t.add_row({util::Table::num(static_cast<double>(words) * 8 / 1024, 0) + " KB",
                 util::Table::integer(static_cast<long long>(r.run.cycles)),
                 util::Table::num(r.solution_gflops, 2),
                 util::Table::percent(r.run.cache_stats.hit_rate(), 1),
                 util::Table::integer(r.run.dram_stats.read_words)});
    }
    std::printf("== Ablation: stream-cache capacity (variant `variable`) ==\n%s\n",
                t.render().c_str());
    jout.root().set("stream_cache_capacity", std::move(rows));
  }

  {
    util::Table t({"combining entries", "cycles", "combined", "sa stalls"});
    obs::Json rows = obs::Json::array();
    for (int entries : {1, 2, 8, 32}) {
      sim::MachineConfig cfg = sim::MachineConfig::merrimac();
      cfg.engine = engine;
      cfg.mem.scatter_add.combining_entries = entries;
      const auto r = core::run_variant(problem, core::Variant::kFixed, cfg);
      const auto& sa = r.run.scatter_add_stats;
      obs::Json j = obs::Json::object();
      j.set("combining_entries", entries)
          .set("cycles", r.run.cycles)
          .set("combine_rate", sa.requests ? static_cast<double>(sa.combined) /
                                                 static_cast<double>(sa.requests)
                                           : 0.0)
          .set("stalled", sa.stalled);
      rows.push_back(std::move(j));
      t.add_row({std::to_string(entries),
                 util::Table::integer(static_cast<long long>(r.run.cycles)),
                 util::Table::percent(sa.requests ? static_cast<double>(sa.combined) /
                                                        static_cast<double>(sa.requests)
                                                  : 0.0,
                                      1),
                 util::Table::integer(sa.stalled)});
    }
    std::printf("== Ablation: combining-store depth (variant `fixed`) ==\n%s\n",
                t.render().c_str());
    jout.root().set("combining_store_depth", std::move(rows));
  }

  {
    util::Table t({"addr gens x addrs", "cycles expanded", "cycles variable"});
    obs::Json rows = obs::Json::array();
    for (auto [gens, per] : {std::pair{1, 4}, std::pair{2, 4}, std::pair{4, 4}}) {
      sim::MachineConfig cfg = sim::MachineConfig::merrimac();
      cfg.engine = engine;
      cfg.mem.n_address_generators = gens;
      cfg.mem.addrs_per_generator = per;
      const auto re = core::run_variant(problem, core::Variant::kExpanded, cfg);
      const auto rv = core::run_variant(problem, core::Variant::kVariable, cfg);
      obs::Json j = obs::Json::object();
      j.set("address_generators", gens)
          .set("addrs_per_generator", per)
          .set("cycles_expanded", re.run.cycles)
          .set("cycles_variable", rv.run.cycles);
      rows.push_back(std::move(j));
      t.add_row({std::to_string(gens) + " x " + std::to_string(per),
                 util::Table::integer(static_cast<long long>(re.run.cycles)),
                 util::Table::integer(static_cast<long long>(rv.run.cycles))});
    }
    std::printf("== Ablation: address-generation throughput ==\n%s\n",
                t.render().c_str());
    std::printf("expanded gathers ~3x the words of variable, so it is the\n"
                "variant that feels address-generation and cache pressure.\n");
    jout.root().set("address_generation", std::move(rows));
  }
  return 0;
}
