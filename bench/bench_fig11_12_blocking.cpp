// Reproduces paper Figures 11 and 12: the blocking-scheme estimate.
// Molecules are grouped into cubic clusters; computation rises (extra
// pairs between r_c and r_c + cluster size) while memory traffic falls
// (positions amortize over the cluster and the per-interaction index
// streams disappear). Like the paper's MATLAB model, ours is calibrated
// from a simulated run of the `variable` scheme.
//
// The conclusion depends on the kernel/memory balance of that calibration,
// so three are shown:
//   (a) as simulated -- our stream cache captures the 65 KB position
//       array, making `variable` kernel-bound; blocking cannot help;
//   (b) gathers at DRAM random-access bandwidth (no cache), roughly the
//       assumption of an offline estimate;
//   (c) the paper's regime -- memory time ~2.5x kernel time -- which
//       recovers the paper's interior minimum at a small cluster size.
//
// Flags (smdtune drives these too):
//   --sizes a,b,c | lo:hi:step   normalized cluster sizes to evaluate
//                                (default 0.6:4.2:0.3)
//   --molecules N                water-box size (default 900)
#include <cstdio>

#include "bench/bench_io.h"
#include "src/core/blocking.h"
#include "src/core/report.h"
#include "src/core/run.h"

using namespace smd;

namespace {

std::vector<core::BlockingPoint> eval_sizes(const core::BlockingModel& model,
                                            const std::vector<double>& sizes) {
  std::vector<core::BlockingPoint> pts;
  pts.reserve(sizes.size());
  for (const double x : sizes) pts.push_back(model.at(x));
  return pts;
}

obs::Json regime_json(const core::BlockingModel& model,
                      const std::vector<double>& sizes) {
  obs::Json pts = obs::Json::array();
  for (const auto& p : eval_sizes(model, sizes)) {
    pts.push_back(core::to_json(p));
  }
  obs::Json j = obs::Json::object();
  j.set("kernel_cycles", model.params().variable_kernel_cycles)
      .set("memory_cycles", model.params().variable_memory_cycles)
      .set("sweep", std::move(pts))
      .set("minimum", core::to_json(model.minimum()));
  return j;
}

void show(const char* title, const core::BlockingModel& model,
          const std::vector<double>& sizes) {
  std::printf("%s\n", title);
  std::printf("  calibration: kernel %.0f cycles, memory %.0f cycles (M/K = %.2f)\n",
              model.params().variable_kernel_cycles,
              model.params().variable_memory_cycles,
              model.params().variable_memory_cycles /
                  model.params().variable_kernel_cycles);
  const auto min = model.minimum();
  for (const auto& p : eval_sizes(model, sizes)) {
    const int bar = static_cast<int>(p.time_rel * 25 + 0.5);
    std::printf("  x=%4.1f (%5.1f mol)  kernel %5.2f  memory %5.2f  time %5.2f |%s\n",
                p.size, p.molecules, p.kernel_rel, p.memory_rel, p.time_rel,
                std::string(static_cast<std::size_t>(std::min(bar, 80)), '#')
                    .c_str());
  }
  std::printf("  minimum: %.2fx variable at cluster size %.2f (%.1f molecules)\n\n",
              min.time_rel, min.size, min.molecules);
}

}  // namespace

int main(int argc, char** argv) {
  benchio::JsonOut jout(argc, argv, "bench_fig11_12_blocking");

  std::vector<double> sizes;
  const std::string sizes_flag = benchio::flag_value(argc, argv, "sizes");
  try {
    sizes = sizes_flag.empty() ? benchio::parse_value_list("0.6:4.2:0.3")
                               : benchio::parse_value_list(sizes_flag);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "--sizes: %s\n", e.what());
    return 2;
  }

  core::ExperimentSetup setup;
  const std::string mol_flag = benchio::flag_value(argc, argv, "molecules");
  if (!mol_flag.empty()) setup.n_molecules = std::stoi(mol_flag);
  const core::Problem problem = core::Problem::make(setup);
  const auto variable = core::run_variant(problem, core::Variant::kVariable);

  core::BlockingModelParams params;
  params.cutoff = problem.setup.cutoff;
  params.variable_kernel_cycles =
      static_cast<double>(variable.run.kernel_busy_cycles);
  params.variable_memory_cycles =
      static_cast<double>(variable.run.mem_busy_cycles);
  params.variable_words_per_interaction =
      static_cast<double>(variable.mem_refs) /
      static_cast<double>(variable.n_real_interactions);
  params.interactions_per_molecule =
      static_cast<double>(problem.half_list.n_pairs()) /
      static_cast<double>(problem.system.n_molecules());

  std::printf("== Figures 11-12: blocking-scheme estimate ==\n\n");
  show("(a) calibrated from the simulated run (cache-assisted gathers):",
       core::BlockingModel(params), sizes);

  // (b) No stream cache: every gathered word pays DRAM random-access
  // bandwidth (~half of the 4.8 words/cycle peak).
  core::BlockingModelParams no_cache = params;
  no_cache.variable_memory_cycles =
      static_cast<double>(variable.mem_refs) / 2.4;
  show("(b) gathers at DRAM random-access bandwidth (no cache):",
       core::BlockingModel(no_cache), sizes);

  // (c) The paper's regime: memory time well above kernel time.
  core::BlockingModelParams paper_regime = params;
  paper_regime.variable_memory_cycles = 2.5 * params.variable_kernel_cycles;
  show("(c) paper regime (memory-bound 2.5x):",
       core::BlockingModel(paper_regime), sizes);

  std::printf(
      "Paper: a minimum below 1.0 at a small cluster size (a few molecules\n"
      "per cluster). Our simulated calibration is kernel-bound, so blocking\n"
      "only pays once gathers actually miss the stream cache -- regimes (b)\n"
      "and (c); (c) reproduces the paper's interior minimum.\n");
  jout.root().set("n_molecules", problem.setup.n_molecules);
  jout.root().set("calibration", core::to_json(variable));
  jout.root().set("as_simulated", regime_json(core::BlockingModel(params), sizes));
  jout.root().set("no_cache", regime_json(core::BlockingModel(no_cache), sizes));
  jout.root().set("paper_regime",
                  regime_json(core::BlockingModel(paper_regime), sizes));
  return 0;
}
