// google-benchmark micro-benchmarks of the native (host) substrate: the
// double-precision reference kernel, the single-precision SSE-style
// GROMACS baseline, and the neighbor-list builders. These measure the host
// machine, not Merrimac -- they exist to keep the scalar-side substrate
// honest and to show the baseline kernel's real arithmetic throughput.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "src/baseline/gromacs_like.h"
#include "src/core/kernels.h"
#include "src/md/force_ref.h"
#include "src/md/neighborlist.h"
#include "src/md/system.h"

using namespace smd;

namespace {

struct Fixture {
  md::WaterSystem sys;
  md::NeighborList list;
  static const Fixture& get() {
    static const Fixture f = [] {
      md::WaterBoxOptions opts;
      opts.n_molecules = 900;
      Fixture fx{md::build_water_box(opts), {}};
      fx.list = md::build_neighbor_list(fx.sys, 1.0);
      return fx;
    }();
    return f;
  }
};

void BM_ReferenceForces(benchmark::State& state) {
  const auto& f = Fixture::get();
  for (auto _ : state) {
    benchmark::DoNotOptimize(md::compute_forces_reference(f.sys, f.list));
  }
  state.counters["interactions/s"] = benchmark::Counter(
      static_cast<double>(f.list.n_pairs()), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_ReferenceForces)->Unit(benchmark::kMillisecond);

void BM_SseStyleForces(benchmark::State& state) {
  const auto& f = Fixture::get();
  double flops = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(baseline::compute_forces_sse_style(f.sys, f.list));
    flops += static_cast<double>(f.list.n_pairs()) *
             static_cast<double>(core::interaction_flops(f.sys.model()).flops);
  }
  state.counters["GFLOPS"] =
      benchmark::Counter(flops * 1e-9, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SseStyleForces)->Unit(benchmark::kMillisecond);

void BM_NeighborListCells(benchmark::State& state) {
  const auto& f = Fixture::get();
  for (auto _ : state) {
    benchmark::DoNotOptimize(md::build_neighbor_list(f.sys, 1.0));
  }
}
BENCHMARK(BM_NeighborListCells)->Unit(benchmark::kMillisecond);

void BM_NeighborListBrute(benchmark::State& state) {
  const auto& f = Fixture::get();
  for (auto _ : state) {
    benchmark::DoNotOptimize(md::build_neighbor_list_brute(f.sys, 1.0));
  }
}
BENCHMARK(BM_NeighborListBrute)->Unit(benchmark::kMillisecond);

void BM_ApproxRsqrt(benchmark::State& state) {
  float x = 1.7f;
  for (auto _ : state) {
    x = baseline::approx_rsqrt(x) + 1.0f;
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_ApproxRsqrt);

}  // namespace

// Like BENCHMARK_MAIN(), but honors the repo-wide `--json <path>` flag by
// translating it into google-benchmark's own JSON reporter arguments, so
// every bench binary shares one machine-readable output convention.
int main(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc) {
      args.push_back("--benchmark_out=" + std::string(argv[i + 1]));
      args.push_back("--benchmark_out_format=json");
      ++i;
      continue;
    }
    args.push_back(argv[i]);
  }
  std::vector<char*> cargs;
  for (auto& a : args) cargs.push_back(a.data());
  int cargc = static_cast<int>(cargs.size());
  benchmark::Initialize(&cargc, cargs.data());
  if (benchmark::ReportUnrecognizedArguments(cargc, cargs.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
