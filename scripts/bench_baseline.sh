#!/usr/bin/env bash
# Record (or refresh) the committed benchmark baseline. Run from the
# repository root after an intentional performance change:
#
#   scripts/bench_baseline.sh              # writes BENCH_baseline.json
#   scripts/bench_baseline.sh --check      # compare instead of record
#
# The simulator is deterministic, so the recorded metrics are byte-stable:
# re-recording on an unchanged tree produces an identical file. Commit the
# refreshed BENCH_baseline.json together with the change that moved the
# numbers; scripts/check.sh and the `smdprof_baseline` ctest gate on it.
#
# Since baseline schema v2 the file also pins the multi-node scaling
# decomposition (one "p=<nodes>" entry per node count of the default
# sweep: step time, compute/communication/serialization/imbalance
# node-time buckets, parallel efficiency, imbalance ratio, halo fraction),
# so parallel-performance regressions gate exactly like single-node ones.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=BENCH_baseline.json
BUILD=build

if [ ! -x "${BUILD}/examples/smdprof" ] ||
   [ ! -x "${BUILD}/bench/bench_svc_load" ]; then
  cmake --preset default
  cmake --build --preset default -j "$(nproc)" --target smdprof bench_svc_load
fi

if [ "${1:-}" = "--check" ]; then
  exec "${BUILD}/examples/smdprof" --check-baseline "${BASELINE}"
fi

"${BUILD}/examples/smdprof" --record-baseline "${BASELINE}"
# Sanity: the decomposition the file now pins must pass its own
# sum-to-total self-check before we ask anyone to commit it.
"${BUILD}/examples/smdprof" --scaling --molecules 256 >/dev/null
# Serving-path sanity (exit non-zero on any violation): the load bench's
# own invariants -- one simulation per unique config and payload
# byte-identity across worker counts -- at a reduced request count. The
# full 1000-request regime table lives in EXPERIMENTS.md.
"${BUILD}/bench/bench_svc_load" --requests 120 --molecules 16 \
  --workers 1,4 >/dev/null
echo "refreshed ${BASELINE}; review the diff and commit it with your change"
git --no-pager diff --stat -- "${BASELINE}" || true
