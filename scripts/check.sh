#!/usr/bin/env bash
# Tier-1 verification: configure, build, test, and static-check the tree
# under the default config and again under AddressSanitizer + UBSanitizer.
# Run from the repository root:
#
#   scripts/check.sh            # both configurations
#   scripts/check.sh default    # just the default build
#   scripts/check.sh asan-ubsan # just the sanitizer build
#   scripts/check.sh tsan       # ThreadSanitizer (tuner pool + obs registry)
#
# Each preset also runs `smdcheck --all` (the static verifier over every
# built-in kernel, stream program and blocking scheme — see DESIGN.md
# "Static checking"), `smdcheck --dataflow --all` (exact liveness
# pressure vs. the dynamic replay oracle), the optimizer equivalence
# sweep (bit-identity of optimized kernels, DESIGN.md section 12) and
# `smdtune --paper --jobs 4` (the parallel design-space search
# reproducing the paper's tuned points — see EXPERIMENTS.md
# "Design-space exploration"). clang-tidy, when available, gates
# src/analysis and src/kernel (warnings as errors; escape hatch
# SMD_TIDY_NO_GATE=1) and advises on the rest of src/.
set -euo pipefail
cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(default asan-ubsan)
fi

declare -A build_dir=([default]=build [asan-ubsan]=build-asan-ubsan [tsan]=build-tsan)

for preset in "${presets[@]}"; do
  echo "==== preset: ${preset} ===="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "$(nproc)"
  ctest --preset "${preset}" -j "$(nproc)"
  if [ "${preset}" = default ] || [ "${preset}" = asan-ubsan ]; then
    # Engine equivalence gate (DESIGN.md section 10): the event-driven
    # simulation core must stay bit-identical to the cycle-stepped
    # reference -- randomized programs plus all four StreamMD variants in
    # lockstep. Part of the suite above; re-run standalone so a lockstep
    # divergence is named in the log even when other tests also fail.
    echo "==== lockstep engine cross-check (${preset}) ===="
    ctest --preset "${preset}" -R lockstep_test --output-on-failure
    # Optimizer equivalence gate (DESIGN.md section 12): the verified
    # optimizer's output must be bit-identical to its input -- full
    # lockstep sweep over the Table-3 variants plus the naive kernel
    # under both SDR policies, interp-level sweeps, and the randomized
    # optimize-then-reverify property. A hard gate: optimizer changes do
    # not land unless this passes under both presets.
    echo "==== optimizer equivalence sweep (${preset}) ===="
    ctest --preset "${preset}" -R opt_equivalence_test --output-on-failure
  fi
  echo "==== smdcheck --all (${preset}) ===="
  "${build_dir[${preset}]}/examples/smdcheck" --all
  echo "==== smdcheck --dataflow --all (${preset}) ===="
  "${build_dir[${preset}]}/examples/smdcheck" --dataflow --all
  echo "==== smdtune --paper --jobs 4 (${preset}) ===="
  "${build_dir[${preset}]}/examples/smdtune" --paper --jobs 4 --molecules 256
  # Service smoke + property suite (DESIGN.md section 13): payload
  # byte-identity vs. a direct single-threaded run, exactly one
  # simulation per unique config, zero simulations on resubmission, and
  # counter conservation under a randomized cancel/deadline/queue-full
  # mix. Runs under every preset -- under tsan this is the data-race
  # gate for the whole svc worker pool.
  echo "==== smdserve --demo (${preset}) ===="
  "${build_dir[${preset}]}/examples/smdserve" --demo --molecules 64 --workers 4
  # Telemetry smoke (DESIGN.md section 15): the same demo with the full
  # tracing surface on. smdserve re-parses its own artifacts at exit --
  # span trees must partition every request exactly in both the Chrome
  # trace and the JSONL event log, and periodic stats snapshots must
  # land -- so a non-zero exit means the tracing pipeline broke.
  echo "==== smdserve --demo + tracing (${preset}) ===="
  telemetry_dir="${build_dir[${preset}]}/telemetry-smoke"
  mkdir -p "${telemetry_dir}"
  "${build_dir[${preset}]}/examples/smdserve" --demo --molecules 24 --workers 2 \
    --trace "${telemetry_dir}/trace.json" \
    --events "${telemetry_dir}/events.jsonl" \
    --stats-interval 20
  # The artifacts must also be valid JSON to an outside parser.
  if command -v python3 >/dev/null 2>&1; then
    python3 - "${telemetry_dir}" <<'PYEOF'
import json, sys
d = sys.argv[1]
doc = json.load(open(d + "/trace.json"))
assert any(e.get("ph") == "X" and "span" in e.get("args", {})
           for e in doc["traceEvents"]), "no span slices in trace"
lines = [json.loads(l) for l in open(d + "/events.jsonl") if l.strip()]
kinds = {l["type"] for l in lines}
assert "span" in kinds and "stats" in kinds, f"event log kinds: {kinds}"
print(f"telemetry artifacts parse back: {len(doc['traceEvents'])} trace "
      f"events, {len(lines)} event-log lines")
PYEOF
  fi
  # Observability + service suites (DESIGN.md sections 14-15): histogram
  # quantile bound, span partition property, event-log torn-line
  # tolerance, exporter cadence. Under every preset -- tsan is the
  # data-race gate for the svc pool, the histograms and the span log.
  echo "==== obs suite (${preset}) ===="
  ctest --preset "${preset}" -R obs_test --output-on-failure
  echo "==== svc property suite (${preset}) ===="
  ctest --preset "${preset}" -R svc_test --output-on-failure
  if [ "${preset}" = default ] || [ "${preset}" = asan-ubsan ]; then
    # Multi-node decomposition self-check (DESIGN.md section 11): the
    # parallel taxonomy must sum exactly to total node-time at every node
    # count, and every per-node ledger must tile the step.
    echo "==== smdprof --scaling (${preset}) ===="
    "${build_dir[${preset}]}/examples/smdprof" --scaling --molecules 256
  fi
  if [ "${preset}" = default ]; then
    # Benchmark-regression gate (see EXPERIMENTS.md "Profiling and
    # regression tracking"): on the first ever run record the baseline;
    # afterwards fail if any committed metric worsened beyond tolerance.
    if [ -f BENCH_baseline.json ]; then
      echo "==== smdprof --check-baseline (${preset}) ===="
      "${build_dir[${preset}]}/examples/smdprof" --check-baseline BENCH_baseline.json
    else
      echo "==== smdprof --record-baseline (first run) ===="
      "${build_dir[${preset}]}/examples/smdprof" --record-baseline BENCH_baseline.json
    fi
  fi
done

if command -v clang-tidy >/dev/null 2>&1; then
  tidy_build=${build_dir[${presets[0]}]}
  if [ ! -f "${tidy_build}/compile_commands.json" ]; then
    cmake --preset "${presets[0]}" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
  fi
  # Gating lint over the static-analysis surface itself: src/analysis and
  # src/kernel must be clean under the pinned .clang-tidy check set, with
  # every warning promoted to an error. Escape hatch (emergencies or
  # clang-tidy version skew only — fix the findings, don't live with it):
  #
  #   SMD_TIDY_NO_GATE=1 scripts/check.sh   # demote the gate to advisory
  echo "==== clang-tidy (gating: src/analysis src/kernel) ===="
  if [ "${SMD_TIDY_NO_GATE:-0}" = 1 ]; then
    echo "(SMD_TIDY_NO_GATE=1: gate demoted to advisory)"
    find src/analysis src/kernel -name '*.cpp' -print0 |
      xargs -0 -P "$(nproc)" -n 4 clang-tidy -p "${tidy_build}" --quiet || true
  else
    find src/analysis src/kernel -name '*.cpp' -print0 |
      xargs -0 -P "$(nproc)" -n 4 clang-tidy -p "${tidy_build}" --quiet \
        --warnings-as-errors='*'
  fi
  echo "==== clang-tidy (advisory: rest of src/) ===="
  find src -path src/analysis -prune -o -path src/kernel -prune -o \
      -name '*.cpp' -print0 |
    xargs -0 -P "$(nproc)" -n 8 clang-tidy -p "${tidy_build}" --quiet
else
  echo "==== clang-tidy not found; skipping lint ===="
fi
echo "==== all checks passed ===="
