#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the test suite under the
# default config and again under AddressSanitizer + UBSanitizer. Run from
# the repository root:
#
#   scripts/check.sh            # both configurations
#   scripts/check.sh default    # just the default build
#   scripts/check.sh asan-ubsan # just the sanitizer build
set -euo pipefail
cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(default asan-ubsan)
fi

for preset in "${presets[@]}"; do
  echo "==== preset: ${preset} ===="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "$(nproc)"
  ctest --preset "${preset}" -j "$(nproc)"
done
echo "==== all checks passed ===="
