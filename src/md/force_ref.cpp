#include "src/md/force_ref.h"

#include <cmath>

#include "src/md/constants.h"

namespace smd::md {

PairEnergy water_water_interaction(const WaterSystem& sys, int central,
                                   int neighbor, const Vec3& shift,
                                   Vec3 f_central[3], Vec3 f_neighbor[3]) {
  const WaterModel& model = sys.model();
  PairEnergy e{0.0, 0.0};

  for (int a = 0; a < 3; ++a) {
    const Vec3& pa = sys.pos(central, a);
    const double qa = model.sites[static_cast<std::size_t>(a)].charge;
    for (int b = 0; b < 3; ++b) {
      const Vec3 pb = sys.pos(neighbor, b) + shift;
      const Vec3 d = pa - pb;
      const double r2 = d.norm2();
      const double rinv = 1.0 / std::sqrt(r2);
      const double rinv2 = rinv * rinv;

      const double qq =
          kCoulombFactor * qa * model.sites[static_cast<std::size_t>(b)].charge;
      const double vc = qq * rinv;
      double fs = vc * rinv2;
      e.coulomb += vc;

      if (a == 0 && b == 0) {  // O-O Lennard-Jones
        const double rinv6 = rinv2 * rinv2 * rinv2;
        const double c6t = model.c6 * rinv6;
        const double c12t = model.c12 * rinv6 * rinv6;
        e.lj += c12t - c6t;
        fs += (12.0 * c12t - 6.0 * c6t) * rinv2;
      }

      const Vec3 f = d * fs;
      f_central[a] += f;
      f_neighbor[b] -= f;
    }
  }
  return e;
}

ForceEnergy compute_forces_reference(const WaterSystem& sys,
                                     const NeighborList& list) {
  ForceEnergy out;
  out.force.assign(static_cast<std::size_t>(sys.n_atoms()), Vec3{});

  for (int i = 0; i < list.n_molecules(); ++i) {
    for (std::int32_t k = list.offsets[static_cast<std::size_t>(i)];
         k < list.offsets[static_cast<std::size_t>(i) + 1]; ++k) {
      const std::int32_t j = list.neighbors[static_cast<std::size_t>(k)];
      const Vec3 shift = list.shifts[static_cast<std::size_t>(k)];
      Vec3 fc[3] = {};
      Vec3 fn[3] = {};
      const PairEnergy e = water_water_interaction(sys, i, j, shift, fc, fn);
      out.e_coulomb += e.coulomb;
      out.e_lj += e.lj;
      for (int s = 0; s < 3; ++s) {
        out.force[static_cast<std::size_t>(3 * i + s)] += fc[s];
        out.force[static_cast<std::size_t>(3 * j + s)] += fn[s];
        // Virial: r.F summed over the pair; use central-side forces against
        // the minimum-image displacement of each site pair (diagonal part).
      }
    }
  }
  return out;
}

InteractionFlops interaction_flop_census() {
  // Counted op by op from water_water_interaction above, in the paper's
  // convention (div = 1 flop, sqrt = 1 flop). Per atom pair (9 of them):
  //   displacement:       3 sub                         (shift applied once
  //                                                      per neighbor atom,
  //                                                      3 adds, 3 atoms)
  //   r2:                 3 mul + 2 add
  //   rinv:               1 sqrt + 1 div
  //   rinv2:              1 mul
  //   vc = qq*rinv:       1 mul   (qq constant-folded per site pair)
  //   fs = vc*rinv2:      1 mul
  //   energy accum:       1 add
  //   f = d*fs:           3 mul
  //   force accums:       6 add (central + neighbor)
  // O-O pair additionally:
  //   rinv6:              2 mul
  //   c6t, rinv12, c12t:  3 mul
  //   e_lj accum:         1 sub + 1 add
  //   fs +=:              2 mul + 1 sub + 1 add
  InteractionFlops f;
  const int per_pair_mul = 3 + 1 + 1 + 1 + 3;      // 9
  const int per_pair_add = 3 + 2 + 1 + 6;          // 12
  f.multiplies = 9 * per_pair_mul + (2 + 3 + 2);   // 88
  f.adds = 9 * per_pair_add + (1 + 1 + 1 + 1) + 9; // 121 (incl. 9 shift adds)
  f.divides = 9;
  f.square_roots = 9;
  f.total = f.multiplies + f.adds + f.divides + f.square_roots;  // 227
  return f;
}

double max_force_rel_err(const std::vector<Vec3>& a, const std::vector<Vec3>& b) {
  double worst = 0.0;
  // Scale errors by the RMS force so near-zero components don't dominate.
  double rms = 0.0;
  for (const auto& v : a) rms += v.norm2();
  rms = std::sqrt(rms / static_cast<double>(a.size()));
  const double floor = std::max(rms, 1e-12);
  for (std::size_t i = 0; i < a.size() && i < b.size(); ++i) {
    const Vec3 d = a[i] - b[i];
    worst = std::max(worst, d.norm() / floor);
  }
  return worst;
}

}  // namespace smd::md
