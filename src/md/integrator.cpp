#include "src/md/integrator.h"

#include <cmath>
#include <stdexcept>

namespace smd::md {

LeapfrogIntegrator::LeapfrogIntegrator(WaterSystem& sys, ForceFn force_fn,
                                       IntegratorOptions opts)
    : sys_(sys), force_fn_(std::move(force_fn)), opts_(opts) {
  const auto& sites = sys.model().sites;
  d_oh_ = (sites[1].local_pos - sites[0].local_pos).norm();
  d_hh_ = (sites[2].local_pos - sites[1].local_pos).norm();
}

void LeapfrogIntegrator::shake(const std::vector<Vec3>& ref_pos) {
  // Constraint triples per molecule: (O,H1,dOH), (O,H2,dOH), (H1,H2,dHH).
  struct C {
    int a, b;
    double d;
  };
  const C cons[3] = {{0, 1, d_oh_}, {0, 2, d_oh_}, {1, 2, d_hh_}};

  const double dt2 = opts_.dt * opts_.dt;
  for (int m = 0; m < sys_.n_molecules(); ++m) {
    for (int iter = 0; iter < opts_.shake_max_iter; ++iter) {
      double worst = 0.0;
      for (const C& c : cons) {
        const int ia = 3 * m + c.a;
        const int ib = 3 * m + c.b;
        const double ma = sys_.site_mass(c.a);
        const double mb = sys_.site_mass(c.b);
        Vec3 d = sys_.pos(ia) - sys_.pos(ib);
        const double diff = d.norm2() - c.d * c.d;
        worst = std::max(worst, std::fabs(diff) / (c.d * c.d));
        if (std::fabs(diff) < opts_.shake_tol * c.d * c.d) continue;
        // Classic SHAKE update along the pre-step bond direction.
        const Vec3 rd = ref_pos[static_cast<std::size_t>(ia)] -
                        ref_pos[static_cast<std::size_t>(ib)];
        const double denom = 2.0 * (1.0 / ma + 1.0 / mb) * rd.dot(d);
        if (std::fabs(denom) < 1e-30) continue;
        const double g = diff / denom;
        sys_.pos(ia) -= rd * (g / ma);
        sys_.pos(ib) += rd * (g / mb);
        // Propagate the correction into velocities (leapfrog convention).
        sys_.vel(ia) -= rd * (g / (ma * opts_.dt));
        sys_.vel(ib) += rd * (g / (mb * opts_.dt));
        (void)dt2;
      }
      if (worst < opts_.shake_tol) break;
    }
  }
}

void LeapfrogIntegrator::apply_constraints_to_positions() {
  // Project positions onto the constraint manifold without touching
  // velocities: iterate simple pairwise corrections.
  struct C {
    int a, b;
    double d;
  };
  const C cons[3] = {{0, 1, d_oh_}, {0, 2, d_oh_}, {1, 2, d_hh_}};
  for (int m = 0; m < sys_.n_molecules(); ++m) {
    for (int iter = 0; iter < opts_.shake_max_iter; ++iter) {
      double worst = 0.0;
      for (const C& c : cons) {
        const int ia = 3 * m + c.a;
        const int ib = 3 * m + c.b;
        Vec3 d = sys_.pos(ia) - sys_.pos(ib);
        const double len = d.norm();
        worst = std::max(worst, std::fabs(len - c.d) / c.d);
        const double ma = sys_.site_mass(c.a);
        const double mb = sys_.site_mass(c.b);
        const double wa = (1.0 / ma) / (1.0 / ma + 1.0 / mb);
        const double wb = 1.0 - wa;
        const Vec3 corr = d * ((len - c.d) / len);
        sys_.pos(ia) -= corr * wa;
        sys_.pos(ib) += corr * wb;
      }
      if (worst < opts_.shake_tol) break;
    }
  }
}

ForceEnergy LeapfrogIntegrator::step() {
  ForceEnergy fe = force_fn_(sys_);
  if (fe.force.size() != static_cast<std::size_t>(sys_.n_atoms())) {
    throw std::runtime_error("force provider returned wrong atom count");
  }

  std::vector<Vec3> ref_pos = sys_.positions();

  for (int a = 0; a < sys_.n_atoms(); ++a) {
    const double inv_m = 1.0 / sys_.site_mass(a % 3);
    sys_.vel(a) += fe.force[static_cast<std::size_t>(a)] * (opts_.dt * inv_m);
    sys_.pos(a) += sys_.vel(a) * opts_.dt;
  }
  shake(ref_pos);
  return fe;
}

ForceEnergy LeapfrogIntegrator::run(int n_steps) {
  ForceEnergy last;
  for (int i = 0; i < n_steps; ++i) last = step();
  return last;
}

double minimize_energy(WaterSystem& sys,
                       const LeapfrogIntegrator::ForceFn& force_fn, int steps,
                       double max_displacement) {
  LeapfrogIntegrator constraints(sys, force_fn);
  double energy = force_fn(sys).e_potential();
  double step_size = max_displacement;
  for (int it = 0; it < steps; ++it) {
    const ForceEnergy fe = force_fn(sys);
    double fmax = 1e-30;
    for (const auto& f : fe.force) fmax = std::max(fmax, f.norm());
    const std::vector<Vec3> backup = sys.positions();
    const double scale = step_size / fmax;
    for (int a = 0; a < sys.n_atoms(); ++a) {
      sys.pos(a) += fe.force[static_cast<std::size_t>(a)] * scale;
    }
    constraints.apply_constraints_to_positions();
    const double trial = force_fn(sys).e_potential();
    if (trial < energy) {
      energy = trial;
      step_size = std::min(step_size * 1.2, max_displacement * 4);
    } else {
      sys.positions() = backup;  // reject and shrink
      step_size *= 0.5;
      if (step_size < 1e-6) break;
    }
  }
  return energy;
}

}  // namespace smd::md
