// Water-system construction: the synthetic stand-in for the paper's
// 900-molecule GROMACS water dataset.
//
// Molecules are placed on a perturbed simple-cubic lattice at liquid-water
// density with uniformly random orientations and Maxwell-Boltzmann
// velocities; fully deterministic given a seed. This reproduces the
// statistic that drives every StreamMD measurement: the neighbor-count
// distribution at the cutoff radius.
#pragma once

#include <cstdint>
#include <vector>

#include "src/md/pbc.h"
#include "src/md/vec3.h"
#include "src/md/water.h"

namespace smd::md {

/// A box of rigid 3-site (SPC) water molecules.
/// Atom storage is molecule-major: atom index = 3*mol + site,
/// site 0 = O, 1 = H1, 2 = H2 (nine coordinates per molecule, as in the
/// paper's position array).
class WaterSystem {
 public:
  WaterSystem(Box box, const WaterModel& model, int n_molecules);

  const Box& box() const { return box_; }
  const WaterModel& model() const { return *model_; }
  int n_molecules() const { return n_molecules_; }
  int n_atoms() const { return 3 * n_molecules_; }

  Vec3& pos(int atom) { return pos_[atom]; }
  const Vec3& pos(int atom) const { return pos_[atom]; }
  Vec3& pos(int mol, int site) { return pos_[3 * mol + site]; }
  const Vec3& pos(int mol, int site) const { return pos_[3 * mol + site]; }

  Vec3& vel(int atom) { return vel_[atom]; }
  const Vec3& vel(int atom) const { return vel_[atom]; }

  const std::vector<Vec3>& positions() const { return pos_; }
  std::vector<Vec3>& positions() { return pos_; }
  const std::vector<Vec3>& velocities() const { return vel_; }
  std::vector<Vec3>& velocities() { return vel_; }

  /// Charge of a site (0=O,1=H1,2=H2) in e.
  double site_charge(int site) const { return model_->sites[site].charge; }

  /// Mass of a site in u.
  double site_mass(int site) const { return model_->sites[site].mass; }

  /// Reference position of the molecule (its oxygen).
  const Vec3& molecule_center(int mol) const { return pos(mol, 0); }

  /// Kinetic energy in kJ/mol.
  double kinetic_energy() const;

  /// Instantaneous temperature in K (3N-3 translational+rotational dof per
  /// rigid molecule handled approximately as 3*n_atoms - n_constraints).
  double temperature() const;

 private:
  Box box_;
  const WaterModel* model_;
  int n_molecules_;
  std::vector<Vec3> pos_;
  std::vector<Vec3> vel_;
};

/// Options for the synthetic water-box builder.
struct WaterBoxOptions {
  int n_molecules = 900;          ///< paper Table 2
  double number_density = 33.33;  ///< molecules / nm^3 (liquid water)
  double temperature_kelvin = 300.0;
  double lattice_jitter = 0.25;   ///< fraction of lattice spacing
  std::uint64_t seed = 42;
};

/// Build a cubic water box. The box edge is derived from n/density.
WaterSystem build_water_box(const WaterBoxOptions& opts = {});

}  // namespace smd::md
