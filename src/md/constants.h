// Physical constants in GROMACS-style MD units:
//   length nm, time ps, energy kJ/mol, mass u (g/mol), charge e.
#pragma once

namespace smd::md {

/// Coulomb conversion factor 1/(4*pi*eps0) in kJ mol^-1 nm e^-2.
inline constexpr double kCoulombFactor = 138.935458;

/// Boltzmann constant in kJ mol^-1 K^-1.
inline constexpr double kBoltzmann = 0.00831446;

/// 1 e*nm expressed in Debye (for dipole-moment reporting).
inline constexpr double kDebyePerENm = 48.0321;

/// Liquid water number density at ~300K, molecules per nm^3.
inline constexpr double kWaterNumberDensity = 33.33;

/// Atomic masses (u).
inline constexpr double kMassO = 15.99940;
inline constexpr double kMassH = 1.00794;

}  // namespace smd::md
