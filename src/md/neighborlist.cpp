#include "src/md/neighborlist.h"

#include <algorithm>
#include <cmath>

namespace smd::md {

std::int32_t NeighborList::max_degree() const {
  std::int32_t best = 0;
  for (int i = 0; i < n_molecules(); ++i) best = std::max(best, degree(i));
  return best;
}

double NeighborList::mean_degree() const {
  if (n_molecules() == 0) return 0.0;
  return static_cast<double>(n_pairs()) / n_molecules();
}

NeighborList build_neighbor_list_brute(const WaterSystem& sys, double cutoff) {
  const int n = sys.n_molecules();
  const double rc2 = cutoff * cutoff;
  NeighborList list;
  list.cutoff = cutoff;
  list.offsets.assign(static_cast<std::size_t>(n) + 1, 0);

  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const Vec3 d =
          sys.box().min_image(sys.molecule_center(i), sys.molecule_center(j));
      if (d.norm2() <= rc2) {
        list.neighbors.push_back(j);
        list.shifts.push_back(
            sys.box().min_image_shift(sys.molecule_center(i), sys.molecule_center(j)));
        ++list.offsets[static_cast<std::size_t>(i) + 1];
      }
    }
  }
  for (int i = 0; i < n; ++i) list.offsets[static_cast<std::size_t>(i) + 1] += list.offsets[static_cast<std::size_t>(i)];
  return list;
}

namespace {

struct CellGrid {
  int nx, ny, nz;
  std::vector<std::vector<std::int32_t>> cells;

  int index(int cx, int cy, int cz) const {
    return (cx * ny + cy) * nz + cz;
  }
};

CellGrid bin_molecules(const WaterSystem& sys, double cutoff) {
  CellGrid g;
  const Box& box = sys.box();
  g.nx = std::max(1, static_cast<int>(box.length.x / cutoff));
  g.ny = std::max(1, static_cast<int>(box.length.y / cutoff));
  g.nz = std::max(1, static_cast<int>(box.length.z / cutoff));
  g.cells.resize(static_cast<std::size_t>(g.nx) * g.ny * g.nz);
  for (int m = 0; m < sys.n_molecules(); ++m) {
    const Vec3 p = box.wrap(sys.molecule_center(m));
    int cx = std::min(g.nx - 1, static_cast<int>(p.x / box.length.x * g.nx));
    int cy = std::min(g.ny - 1, static_cast<int>(p.y / box.length.y * g.ny));
    int cz = std::min(g.nz - 1, static_cast<int>(p.z / box.length.z * g.nz));
    g.cells[static_cast<std::size_t>(g.index(cx, cy, cz))].push_back(m);
  }
  return g;
}

}  // namespace

NeighborList build_neighbor_list(const WaterSystem& sys, double cutoff) {
  const Box& box = sys.box();
  // The 27-cell stencil is only complete when at least 3 cells fit per
  // dimension; otherwise fall back to the exact quadratic builder.
  if (box.length.x < 3 * cutoff || box.length.y < 3 * cutoff ||
      box.length.z < 3 * cutoff) {
    return build_neighbor_list_brute(sys, cutoff);
  }

  const CellGrid grid = bin_molecules(sys, cutoff);
  const double rc2 = cutoff * cutoff;
  const int n = sys.n_molecules();

  std::vector<std::vector<std::int32_t>> rows(static_cast<std::size_t>(n));
  for (int cx = 0; cx < grid.nx; ++cx) {
    for (int cy = 0; cy < grid.ny; ++cy) {
      for (int cz = 0; cz < grid.nz; ++cz) {
        const auto& home = grid.cells[static_cast<std::size_t>(grid.index(cx, cy, cz))];
        if (home.empty()) continue;
        for (int dx = -1; dx <= 1; ++dx) {
          for (int dy = -1; dy <= 1; ++dy) {
            for (int dz = -1; dz <= 1; ++dz) {
              const int ox = (cx + dx + grid.nx) % grid.nx;
              const int oy = (cy + dy + grid.ny) % grid.ny;
              const int oz = (cz + dz + grid.nz) % grid.nz;
              const auto& other =
                  grid.cells[static_cast<std::size_t>(grid.index(ox, oy, oz))];
              for (std::int32_t i : home) {
                for (std::int32_t j : other) {
                  if (j <= i) continue;
                  const Vec3 d = box.min_image(sys.molecule_center(i),
                                               sys.molecule_center(j));
                  if (d.norm2() <= rc2) rows[static_cast<std::size_t>(i)].push_back(j);
                }
              }
            }
          }
        }
      }
    }
  }

  NeighborList list;
  list.cutoff = cutoff;
  list.offsets.assign(static_cast<std::size_t>(n) + 1, 0);
  for (int i = 0; i < n; ++i) {
    auto& row = rows[static_cast<std::size_t>(i)];
    std::sort(row.begin(), row.end());
    // A molecule can be reached through two different cell images only if
    // the box is barely 3 cells wide; dedupe to stay exact.
    row.erase(std::unique(row.begin(), row.end()), row.end());
    for (std::int32_t j : row) {
      list.neighbors.push_back(j);
      list.shifts.push_back(
          box.min_image_shift(sys.molecule_center(i), sys.molecule_center(j)));
    }
    list.offsets[static_cast<std::size_t>(i) + 1] =
        static_cast<std::int32_t>(list.neighbors.size());
  }
  return list;
}

}  // namespace smd::md
