// Double-precision 3-vector used throughout the MD substrate.
//
// Merrimac is a full-bandwidth double-precision machine (one of the paper's
// selling points vs. the single-precision SSE Pentium 4 loops), so the
// reference physics is double precision end to end.
#pragma once

#include <cmath>

namespace smd::md {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

  constexpr Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }

  Vec3& operator+=(const Vec3& o) {
    x += o.x; y += o.y; z += o.z;
    return *this;
  }
  Vec3& operator-=(const Vec3& o) {
    x -= o.x; y -= o.y; z -= o.z;
    return *this;
  }
  Vec3& operator*=(double s) {
    x *= s; y *= s; z *= s;
    return *this;
  }

  constexpr double dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  constexpr double norm2() const { return dot(*this); }
  double norm() const { return std::sqrt(norm2()); }

  constexpr Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
};

constexpr Vec3 operator*(double s, const Vec3& v) { return v * s; }

}  // namespace smd::md
