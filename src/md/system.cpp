#include "src/md/system.h"

#include <cmath>

#include "src/md/constants.h"
#include "src/util/rng.h"

namespace smd::md {
namespace {

/// Rotation matrix from a uniformly random unit quaternion.
struct Rot {
  double m[3][3];
  Vec3 apply(const Vec3& v) const {
    return {m[0][0] * v.x + m[0][1] * v.y + m[0][2] * v.z,
            m[1][0] * v.x + m[1][1] * v.y + m[1][2] * v.z,
            m[2][0] * v.x + m[2][1] * v.y + m[2][2] * v.z};
  }
};

Rot random_rotation(util::Rng& rng) {
  // Shoemake's method: uniform random quaternion.
  const double u1 = rng.uniform();
  const double u2 = rng.uniform();
  const double u3 = rng.uniform();
  const double a = std::sqrt(1.0 - u1);
  const double b = std::sqrt(u1);
  const double qx = a * std::sin(2 * M_PI * u2);
  const double qy = a * std::cos(2 * M_PI * u2);
  const double qz = b * std::sin(2 * M_PI * u3);
  const double qw = b * std::cos(2 * M_PI * u3);
  Rot r;
  r.m[0][0] = 1 - 2 * (qy * qy + qz * qz);
  r.m[0][1] = 2 * (qx * qy - qz * qw);
  r.m[0][2] = 2 * (qx * qz + qy * qw);
  r.m[1][0] = 2 * (qx * qy + qz * qw);
  r.m[1][1] = 1 - 2 * (qx * qx + qz * qz);
  r.m[1][2] = 2 * (qy * qz - qx * qw);
  r.m[2][0] = 2 * (qx * qz - qy * qw);
  r.m[2][1] = 2 * (qy * qz + qx * qw);
  r.m[2][2] = 1 - 2 * (qx * qx + qy * qy);
  return r;
}

}  // namespace

WaterSystem::WaterSystem(Box box, const WaterModel& model, int n_molecules)
    : box_(box),
      model_(&model),
      n_molecules_(n_molecules),
      pos_(static_cast<std::size_t>(3 * n_molecules)),
      vel_(static_cast<std::size_t>(3 * n_molecules)) {}

double WaterSystem::kinetic_energy() const {
  double ke = 0.0;
  for (int a = 0; a < n_atoms(); ++a) {
    ke += 0.5 * site_mass(a % 3) * vel_[static_cast<std::size_t>(a)].norm2();
  }
  return ke;
}

double WaterSystem::temperature() const {
  // Each rigid water contributes 6 degrees of freedom (3 translation +
  // 3 rotation): 9 atomic dof minus 3 constraints.
  const double dof = 6.0 * n_molecules_;
  return 2.0 * kinetic_energy() / (dof * kBoltzmann);
}

WaterSystem build_water_box(const WaterBoxOptions& opts) {
  const double volume =
      static_cast<double>(opts.n_molecules) / opts.number_density;
  const double edge = std::cbrt(volume);
  WaterSystem sys(Box(edge), spc(), opts.n_molecules);

  util::Rng rng(opts.seed);

  // Smallest cubic lattice that holds n molecules.
  int cells = 1;
  while (cells * cells * cells < opts.n_molecules) ++cells;
  const double spacing = edge / cells;

  int mol = 0;
  for (int ix = 0; ix < cells && mol < opts.n_molecules; ++ix) {
    for (int iy = 0; iy < cells && mol < opts.n_molecules; ++iy) {
      for (int iz = 0; iz < cells && mol < opts.n_molecules; ++iz) {
        Vec3 center{(ix + 0.5) * spacing, (iy + 0.5) * spacing,
                    (iz + 0.5) * spacing};
        const double j = opts.lattice_jitter * spacing;
        center += Vec3{rng.uniform(-j, j), rng.uniform(-j, j), rng.uniform(-j, j)};
        center = sys.box().wrap(center);

        const Rot rot = random_rotation(rng);
        for (int s = 0; s < 3; ++s) {
          sys.pos(mol, s) = center + rot.apply(spc().sites[static_cast<std::size_t>(s)].local_pos);
        }
        ++mol;
      }
    }
  }

  // Maxwell-Boltzmann velocities at the requested temperature, with the
  // center-of-mass drift removed.
  Vec3 p_total{};
  double m_total = 0.0;
  for (int a = 0; a < sys.n_atoms(); ++a) {
    const double m = sys.site_mass(a % 3);
    const double sigma = std::sqrt(kBoltzmann * opts.temperature_kelvin / m);
    sys.vel(a) = Vec3{sigma * rng.normal(), sigma * rng.normal(),
                      sigma * rng.normal()};
    p_total += sys.vel(a) * m;
    m_total += m;
  }
  const Vec3 v_drift = p_total / m_total;
  for (int a = 0; a < sys.n_atoms(); ++a) sys.vel(a) -= v_drift;

  return sys;
}

}  // namespace smd::md
