// Leapfrog integrator with SHAKE constraints for rigid 3-site water.
//
// StreamMD itself only streams the force kernel (the paper interfaces with
// the rest of GROMACS "directly through Merrimac's shared memory system");
// the integrator is the scalar-side substrate that lets the example
// applications run real multi-step simulations and check energy behaviour.
#pragma once

#include <functional>

#include "src/md/force_ref.h"
#include "src/md/system.h"

namespace smd::md {

/// Integration options.
struct IntegratorOptions {
  double dt = 0.002;        ///< ps (2 fs, the standard rigid-water step)
  int shake_max_iter = 100;
  double shake_tol = 1e-8;  ///< relative bond-length tolerance
};

/// Leapfrog + SHAKE propagator for a WaterSystem.
class LeapfrogIntegrator {
 public:
  /// Force provider: fills a ForceEnergy for the current positions.
  using ForceFn = std::function<ForceEnergy(const WaterSystem&)>;

  LeapfrogIntegrator(WaterSystem& sys, ForceFn force_fn,
                     IntegratorOptions opts = {});

  /// Advance one step; returns the force/energy evaluated at the step start.
  ForceEnergy step();

  /// Advance n steps; returns the last evaluation.
  ForceEnergy run(int n_steps);

  /// Enforce the rigid-water constraints on current positions (used to
  /// clean up a freshly built system as well as inside each step).
  void apply_constraints_to_positions();

  const IntegratorOptions& options() const { return opts_; }

 private:
  void shake(const std::vector<Vec3>& ref_pos);

  WaterSystem& sys_;
  ForceFn force_fn_;
  IntegratorOptions opts_;
  double d_oh_;  ///< constrained O-H distance
  double d_hh_;  ///< constrained H-H distance
};

/// Crude steepest-descent energy minimization with per-atom displacement
/// clamping and rigid-water constraint projection after every step. Used
/// to relax freshly built (overlapping) lattices before dynamics.
/// Returns the final potential energy.
double minimize_energy(WaterSystem& sys,
                       const LeapfrogIntegrator::ForceFn& force_fn,
                       int steps = 50, double max_displacement = 0.01);

}  // namespace smd::md
