// Reference (ground-truth) water-water non-bonded force evaluation.
//
// This is the plain, obviously-correct C++ implementation of the GROMACS
// water-water inner loop (Equation 1 of the paper): for every molecule pair
// in the neighbor list, all 9 atom-atom Coulomb interactions plus the O-O
// Lennard-Jones term. Every StreamMD variant is validated against these
// forces, and the flop census here defines "solution flops" for the
// GFLOPS accounting.
#pragma once

#include <cstdint>
#include <vector>

#include "src/md/neighborlist.h"
#include "src/md/system.h"
#include "src/md/vec3.h"

namespace smd::md {

/// Result of a force evaluation.
struct ForceEnergy {
  std::vector<Vec3> force;  ///< per atom, kJ mol^-1 nm^-1
  double e_coulomb = 0.0;   ///< kJ/mol
  double e_lj = 0.0;        ///< kJ/mol
  double virial = 0.0;      ///< sum r.F over pairs (for pressure)

  double e_potential() const { return e_coulomb + e_lj; }
};

/// Per-molecule-pair floating-point operation census, in the paper's
/// counting convention: a divide is 1 flop, a square root is 1 flop
/// (Section 3: "each interaction requires ~234 floating-point operations
/// including 9 divides and 9 square roots").
struct InteractionFlops {
  int total = 0;
  int divides = 0;
  int square_roots = 0;
  int multiplies = 0;
  int adds = 0;  ///< additions + subtractions
};

/// Flop census of one water-water molecule-pair interaction.
InteractionFlops interaction_flop_census();

/// Evaluate forces and energies over a half neighbor list.
ForceEnergy compute_forces_reference(const WaterSystem& sys,
                                     const NeighborList& list);

/// Force/energy contribution of a single molecule pair, accumulated into
/// f_central[0..2] and f_neighbor[0..2]. `shift` is added to the neighbor's
/// coordinates (minimum image). Returns {e_coulomb, e_lj}.
struct PairEnergy {
  double coulomb;
  double lj;
};
PairEnergy water_water_interaction(const WaterSystem& sys, int central,
                                   int neighbor, const Vec3& shift,
                                   Vec3 f_central[3], Vec3 f_neighbor[3]);

/// Maximum per-atom relative force error between two force sets.
double max_force_rel_err(const std::vector<Vec3>& a, const std::vector<Vec3>& b);

}  // namespace smd::md
