#include "src/md/water.h"

#include <cmath>

#include "src/md/constants.h"

namespace smd::md {
namespace {

constexpr double kDeg = M_PI / 180.0;

/// Place two symmetric sites at distance d from the origin with total
/// opening angle `angle_deg`, in the xz plane, bisector along +z.
std::array<Vec3, 2> symmetric_pair(double d, double angle_deg) {
  const double half = 0.5 * angle_deg * kDeg;
  return {Vec3{d * std::sin(half), 0.0, d * std::cos(half)},
          Vec3{-d * std::sin(half), 0.0, d * std::cos(half)}};
}

WaterModel make_spc() {
  WaterModel m;
  m.name = "SPC";
  const auto h = symmetric_pair(0.1, 109.47);
  m.sites = {
      {"O", {0, 0, 0}, -0.82, kMassO},
      {"H1", h[0], 0.41, kMassH},
      {"H2", h[1], 0.41, kMassH},
  };
  // GROMACS SPC oxygen LJ parameters.
  m.c6 = 0.0026173456;   // kJ/mol nm^6
  m.c12 = 2.634129e-06;  // kJ/mol nm^12
  m.lit_dipole_debye = 2.27;
  m.lit_dielectric = 65.0;
  m.lit_self_diffusion_1e5_cm2s = 3.85;
  return m;
}

WaterModel make_tip5p() {
  WaterModel m;
  m.name = "TIP5P";
  const auto h = symmetric_pair(0.09572, 104.52);
  // Lone pairs point away from the hydrogens (negative z), tetrahedrally.
  auto l = symmetric_pair(0.07, 109.47);
  l[0].z = -l[0].z;
  l[1].z = -l[1].z;
  // Rotate lone pairs into the yz plane (perpendicular to the H plane).
  l[0] = {0.0, l[0].x, l[0].z};
  l[1] = {0.0, l[1].x, l[1].z};
  m.sites = {
      {"O", {0, 0, 0}, 0.0, kMassO},
      {"H1", h[0], 0.241, kMassH},
      {"H2", h[1], 0.241, kMassH},
      {"L1", l[0], -0.241, 0.0},
      {"L2", l[1], -0.241, 0.0},
  };
  m.c6 = 0.00260889;  // sigma=0.312 nm, eps=0.6694 kJ/mol
  m.c12 = 2.5179e-06;
  m.lit_dipole_debye = 2.29;
  m.lit_dielectric = 81.5;
  m.lit_self_diffusion_1e5_cm2s = 2.62;
  return m;
}

WaterModel make_ppc() {
  WaterModel m;
  m.name = "PPC";
  // PPC (polarizable point charge, Kusalik & Svishchev). We represent its
  // liquid-phase effective (polarized) charge distribution: H charges plus
  // an M site displaced from O along the bisector. The M-site offset is
  // chosen so the static dipole equals the model's liquid-state effective
  // dipole of 2.52 D.
  const double q_h = 0.517;
  const auto h = symmetric_pair(0.0943, 106.0);
  const double mu_target = 2.52 / kDebyePerENm;  // e nm
  const double mu_h = 2.0 * q_h * h[0].z;        // H contribution along +z
  const double q_m = -2.0 * q_h;
  const double z_m = (mu_target - mu_h) / q_m;   // negative offset -> adds dipole
  WaterSite msite{"M", {0.0, 0.0, z_m}, q_m, 0.0};
  m.sites = {
      {"O", {0, 0, 0}, 0.0, kMassO},
      {"H1", h[0], q_h, kMassH},
      {"H2", h[1], q_h, kMassH},
      msite,
  };
  m.c6 = 0.0026;
  m.c12 = 2.6e-06;
  m.lit_dipole_debye = 2.52;
  m.lit_dielectric = 77.0;
  m.lit_self_diffusion_1e5_cm2s = 2.60;
  return m;
}

WaterModel make_experimental() {
  WaterModel m;
  m.name = "Experimental";
  m.c6 = 0.0;
  m.c12 = 0.0;
  m.lit_dipole_debye = 2.65;  // liquid-phase effective dipole
  m.lit_dielectric = 78.4;
  m.lit_self_diffusion_1e5_cm2s = 2.30;
  return m;
}

}  // namespace

double WaterModel::computed_dipole_debye() const {
  Vec3 mu{};
  for (const auto& s : sites) mu += s.local_pos * s.charge;
  return mu.norm() * kDebyePerENm;
}

double WaterModel::total_charge() const {
  double q = 0.0;
  for (const auto& s : sites) q += s.charge;
  return q;
}

const WaterModel& spc() {
  static const WaterModel m = make_spc();
  return m;
}

const WaterModel& tip5p() {
  static const WaterModel m = make_tip5p();
  return m;
}

const WaterModel& ppc() {
  static const WaterModel m = make_ppc();
  return m;
}

const WaterModel& experimental_reference() {
  static const WaterModel m = make_experimental();
  return m;
}

std::vector<const WaterModel*> table5_models() {
  return {&spc(), &tip5p(), &ppc(), &experimental_reference()};
}

std::size_t pair_interactions(const WaterModel& m) {
  return m.sites.size() * m.sites.size();
}

}  // namespace smd::md
