// Molecule-level neighbor lists with a cutoff, as used by the GROMACS
// water-water inner loops: once a *molecule pair* is within the (oxygen-
// oxygen) cutoff it enters the list and all 9 atom-atom interactions are
// computed unconditionally. The list is a half list (each pair stored once,
// on the lower-indexed molecule) in CSR form, with the minimum-image shift
// vector stored per entry -- the quantity the stream layouts expand into
// the interaction records.
#pragma once

#include <cstdint>
#include <vector>

#include "src/md/system.h"
#include "src/md/vec3.h"

namespace smd::md {

/// CSR half neighbor list over molecules.
struct NeighborList {
  double cutoff = 0.0;
  /// offsets.size() == n_molecules + 1; neighbors of molecule i are
  /// neighbors[offsets[i] .. offsets[i+1]).
  std::vector<std::int32_t> offsets;
  std::vector<std::int32_t> neighbors;
  /// Shift to add to the neighbor's coordinates so it is the minimum image
  /// relative to the central molecule; parallel to `neighbors`.
  std::vector<Vec3> shifts;

  std::int64_t n_pairs() const {
    return static_cast<std::int64_t>(neighbors.size());
  }
  int n_molecules() const {
    return static_cast<int>(offsets.size()) - 1;
  }
  std::int32_t degree(int mol) const {
    return offsets[static_cast<std::size_t>(mol) + 1] -
           offsets[static_cast<std::size_t>(mol)];
  }
  /// Largest neighbor count of any molecule.
  std::int32_t max_degree() const;
  /// Mean neighbor count.
  double mean_degree() const;
};

/// O(N^2) reference builder (ground truth for tests).
NeighborList build_neighbor_list_brute(const WaterSystem& sys, double cutoff);

/// Cell-list builder, O(N) for liquid densities. Produces entries in the
/// same (sorted-by-neighbor-index) order as the brute-force builder.
/// Falls back to the brute-force path when the box is too small for cells.
NeighborList build_neighbor_list(const WaterSystem& sys, double cutoff);

}  // namespace smd::md
