// Water models.
//
// The simulation model is SPC (three sites: O carries the Lennard-Jones
// well and a negative charge, the two hydrogens carry positive charges) --
// the same class of model GROMACS uses for its optimized water-water inner
// loops and the one the paper simulates ("partial charges are located at
// the hydrogen and oxygen atoms").
//
// TIP5P- and PPC-style parameter sets are provided for the paper's Table 5
// discussion of more complex / polarizable models; their site geometry is
// used to compute dipole moments, and their literature bulk properties are
// tabulated in the bench.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "src/md/vec3.h"

namespace smd::md {

/// A charge/LJ interaction site in the molecule-local frame.
/// The local frame: O at origin, the HOH bisector along +z, H atoms in the
/// xz plane.
struct WaterSite {
  std::string name;   ///< "O", "H1", "L2", "M", ...
  Vec3 local_pos;     ///< nm, molecule-local frame.
  double charge;      ///< e.
  double mass;        ///< u (0 for massless virtual sites).
};

/// A rigid fixed-charge water model.
struct WaterModel {
  std::string name;
  std::vector<WaterSite> sites;
  double c6;    ///< LJ dispersion coefficient on the oxygen, kJ/mol nm^6.
  double c12;   ///< LJ repulsion coefficient on the oxygen, kJ/mol nm^12.

  /// Literature bulk properties for Table 5 (0 where not applicable).
  double lit_dipole_debye = 0.0;
  double lit_dielectric = 0.0;
  double lit_self_diffusion_1e5_cm2s = 0.0;  ///< units of 1e-5 cm^2/s.

  /// Dipole moment computed from the site geometry/charges, in Debye.
  double computed_dipole_debye() const;

  /// Total charge (should be ~0 for a valid model).
  double total_charge() const;

  std::size_t site_count() const { return sites.size(); }
};

/// SPC: the model simulated by StreamMD. 3 sites, OH = 0.1 nm,
/// HOH = 109.47 deg, qO = -0.82, qH = +0.41.
const WaterModel& spc();

/// TIP5P: 5 sites (2 H + 2 lone pairs), for the Table 5 comparison.
const WaterModel& tip5p();

/// PPC-style polarizable point-charge model, represented here by its
/// liquid-phase effective charge distribution (static approximation).
const WaterModel& ppc();

/// Experimental reference values (no sites).
const WaterModel& experimental_reference();

/// All Table 5 rows in paper order: SPC, TIP5P, PPC, Experimental.
std::vector<const WaterModel*> table5_models();

/// Number of atom-atom pair interactions between two molecules of the
/// model (sites^2); 9 for SPC, matching the paper.
std::size_t pair_interactions(const WaterModel& m);

}  // namespace smd::md
