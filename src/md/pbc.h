// Orthorhombic periodic boundary conditions.
//
// GROMACS applies periodic boundary handling at molecule granularity using a
// catalogue of shift vectors; StreamMD carries the per-pair shift in the
// interaction record (the paper's 9-word "periodic boundary conditions"
// field). This header provides minimum-image shifts at that granularity.
#pragma once

#include <cmath>

#include "src/md/vec3.h"

namespace smd::md {

/// Orthorhombic box [0,Lx) x [0,Ly) x [0,Lz).
struct Box {
  Vec3 length;

  constexpr Box() = default;
  constexpr explicit Box(double cubic) : length(cubic, cubic, cubic) {}
  constexpr Box(double lx, double ly, double lz) : length(lx, ly, lz) {}

  constexpr double volume() const { return length.x * length.y * length.z; }

  /// Wrap a position into the primary cell.
  Vec3 wrap(Vec3 p) const {
    p.x -= length.x * std::floor(p.x / length.x);
    p.y -= length.y * std::floor(p.y / length.y);
    p.z -= length.z * std::floor(p.z / length.z);
    return p;
  }

  /// Shift vector s such that (b + s) is the minimum image of b relative
  /// to a, i.e. a - (b + s) has every component in [-L/2, L/2).
  Vec3 min_image_shift(const Vec3& a, const Vec3& b) const {
    Vec3 d = a - b;
    return {length.x * std::round(d.x / length.x),
            length.y * std::round(d.y / length.y),
            length.z * std::round(d.z / length.z)};
  }

  /// Minimum-image displacement a - b.
  Vec3 min_image(const Vec3& a, const Vec3& b) const {
    Vec3 d = a - b;
    d.x -= length.x * std::round(d.x / length.x);
    d.y -= length.y * std::round(d.y / length.y);
    d.z -= length.z * std::round(d.z / length.z);
    return d;
  }
};

}  // namespace smd::md
