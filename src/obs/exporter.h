// Background stats exporter (DESIGN.md section 15).
//
// A StatsExporter snapshots the process CounterRegistry (plus an
// optional caller-supplied `extra` block, which is how the service
// attaches its latency-histogram JSON) on its own thread every
// `interval_ms`, writing each snapshot either to the structured event
// log (one {"type":"stats",...} line) or, when no event log is given,
// atomically to a standalone JSON file via obs::write_file_atomic.
// stop() emits one final snapshot so short runs always produce at least
// one, then joins the thread. Counters: obs.exporter.snapshots /
// obs.exporter.errors.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "src/obs/event_log.h"
#include "src/obs/json.h"

namespace smd::obs {

class StatsExporter {
 public:
  struct Options {
    /// Snapshot cadence; values < 1 are clamped to 1.
    std::int64_t interval_ms = 1000;
    /// When non-null, snapshots append to this log as {"type":"stats"}
    /// events (the log must outlive the exporter).
    EventLog* event_log = nullptr;
    /// When non-empty (and event_log is null), each snapshot replaces
    /// this file atomically — readers always see one complete document.
    std::string path;
    /// Optional extra payload merged under "extra" (e.g. the service's
    /// histogram snapshot). Called on the exporter thread; must be
    /// thread-safe.
    std::function<Json()> extra;
  };

  StatsExporter() = default;
  ~StatsExporter() { stop(); }
  StatsExporter(const StatsExporter&) = delete;
  StatsExporter& operator=(const StatsExporter&) = delete;

  /// Launch the background thread. No-op if already running.
  void start(Options opts);
  /// Emit one final snapshot, then join. Safe to call twice / unstarted.
  void stop();

  bool running() const;
  /// Snapshots emitted so far (monotonic sequence number of the next
  /// snapshot).
  std::uint64_t snapshots() const;

  /// One snapshot document; exposed so tests and --stats one-shots can
  /// produce the exact shape the background thread writes.
  Json snapshot_json();

 private:
  void run();
  void emit();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool running_ = false;
  std::uint64_t seq_ = 0;
  std::int64_t started_ns_ = 0;
  Options opts_;
  std::thread thread_;
};

}  // namespace smd::obs
