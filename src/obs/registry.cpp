#include "src/obs/registry.h"

namespace smd::obs {

Json CounterRegistry::to_json() const {
  Json counters = Json::object();
  for (const auto& [name, value] : counters_) counters.set(name, value);
  Json gauges = Json::object();
  for (const auto& [name, value] : gauges_) gauges.set(name, value);
  Json out = Json::object();
  out.set("counters", std::move(counters));
  out.set("gauges", std::move(gauges));
  return out;
}

CounterRegistry& CounterRegistry::global() {
  static CounterRegistry reg;
  return reg;
}

}  // namespace smd::obs
