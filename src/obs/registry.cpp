#include "src/obs/registry.h"

#include <algorithm>

namespace smd::obs {
namespace {

thread_local CounterRegistry* tls_redirect = nullptr;

/// True for gauges that accumulate (ScopedTimer output) rather than sample.
bool accumulating_gauge(const std::string& name) {
  static constexpr std::string_view kSuffix = ".seconds";
  return name.size() >= kSuffix.size() &&
         std::string_view(name).substr(name.size() - kSuffix.size()) == kSuffix;
}

}  // namespace

void CounterRegistry::merge(const CounterRegistry& other) {
  if (&other == this) return;
  // Copy the source under its own lock, then fold under ours; merge is
  // main-thread <- worker-shard, so the brief double-buffering is cheap.
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, double> gauges;
  {
    const std::lock_guard<std::mutex> lock(other.mu_);
    counters = other.counters_;
    gauges = other.gauges_;
  }
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, value] : counters) counters_[name] += value;
  for (const auto& [name, value] : gauges) {
    if (accumulating_gauge(name)) {
      gauges_[name] += value;
    } else {
      const auto it = gauges_.find(name);
      gauges_[name] = it == gauges_.end() ? value : std::max(it->second, value);
    }
  }
}

Json CounterRegistry::to_json() const {
  const std::lock_guard<std::mutex> lock(mu_);
  Json counters = Json::object();
  for (const auto& [name, value] : counters_) counters.set(name, value);
  Json gauges = Json::object();
  for (const auto& [name, value] : gauges_) gauges.set(name, value);
  Json out = Json::object();
  out.set("counters", std::move(counters));
  out.set("gauges", std::move(gauges));
  return out;
}

CounterRegistry& CounterRegistry::global() {
  return tls_redirect != nullptr ? *tls_redirect : process();
}

CounterRegistry& CounterRegistry::process() {
  static CounterRegistry reg;
  return reg;
}

ScopedRegistryRedirect::ScopedRegistryRedirect(CounterRegistry& target)
    : prev_(tls_redirect) {
  tls_redirect = &target;
}

ScopedRegistryRedirect::~ScopedRegistryRedirect() { tls_redirect = prev_; }

}  // namespace smd::obs
