// Log-bucketed, mergeable latency histogram with a documented worst-case
// quantile error bound (DESIGN.md section 15).
//
// Samples are nonnegative integer nanoseconds. The bucket scheme
// ("ns-log2x32") is fixed and global, never per-instance:
//
//   * v < 64 ns          one bucket per nanosecond (exact);
//   * v in [2^m, 2^(m+1)) the octave splits into 32 equal sub-buckets
//     of width 2^(m-5).
//
// Because every instance shares the one scheme, merge() is plain
// bucket-wise addition: commutative, associative, and bit-identical to a
// histogram fed the union of the samples. That is what lets per-worker
// or per-regime histograms fold into service-wide ones without error.
//
// Quantile error bound: quantile(q) locates the bucket holding the exact
// order statistic (same rank convention as index `floor(q*n)` into the
// sorted samples) and reports the exact value below 64 ns and the bucket
// midpoint above, so its result differs from the true sorted quantile by
// at most half a bucket width — a relative error of at most
// kQuantileRelErr = 1/64 (1.5625%). obs_test verifies the bound against
// exact sorted samples; bench_svc_load re-verifies it at load on real
// service latencies.
//
// Threading: every method is internally synchronized; the copy
// constructor takes the source's lock, so copying a live histogram is a
// consistent snapshot.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "src/obs/json.h"

namespace smd::obs {

class LatencyHistogram {
 public:
  /// Worst-case |quantile(q) - exact sorted quantile| / exact, for
  /// samples >= 64 ns (below 64 ns the histogram is exact).
  static constexpr double kQuantileRelErr = 1.0 / 64.0;
  /// Scheme tag stamped into the JSON export; from_json rejects others.
  static constexpr const char* kScheme = "ns-log2x32";

  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram& other);
  /// Replace this histogram with a consistent snapshot of `other`
  /// (source locked during the copy; self-assignment is a no-op).
  LatencyHistogram& operator=(const LatencyHistogram& other);

  /// Record one sample; negative values clamp to 0.
  void record(std::int64_t ns);

  /// Bucket-wise fold of `other` into this histogram — exact, order
  /// independent (mirrors CounterRegistry::merge).
  void merge(const LatencyHistogram& other);

  std::uint64_t count() const;
  std::int64_t sum_ns() const;
  std::int64_t min_ns() const;  ///< 0 when empty
  std::int64_t max_ns() const;  ///< 0 when empty
  double mean_ns() const;       ///< 0 when empty

  /// Estimated q-th quantile in ns (q clamped to [0,1]; 0 when empty),
  /// within kQuantileRelErr of the exact sorted value — see the header
  /// comment for the bound's derivation.
  double quantile(double q) const;

  /// {"scheme","count","sum_ns","min_ns","max_ns","buckets":[[i,n],...]}
  /// with buckets in ascending index order — byte-stable across runs
  /// with the same samples.
  Json to_json() const;
  /// Inverse of to_json(); throws std::runtime_error on a malformed
  /// document or an unknown scheme tag.
  static LatencyHistogram from_json(const Json& j);

  // Scheme geometry, exposed for tests: the bucket holding `v`, and its
  // half-open range [lo, hi).
  static std::size_t bucket_index(std::uint64_t v);
  static std::uint64_t bucket_lo(std::size_t index);
  static std::uint64_t bucket_hi(std::size_t index);

 private:
  void record_locked(std::uint64_t v, std::uint64_t n);

  mutable std::mutex mu_;
  std::vector<std::uint64_t> counts_;  ///< grown to the highest index seen
  std::uint64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

}  // namespace smd::obs
