// Chrome trace-event export.
//
// A TraceSink collects complete ("ph":"X") events on (pid, tid) tracks and
// serializes them in the Chrome trace-event JSON format, loadable in
// chrome://tracing and Perfetto. The simulator maps one process per
// variant run and one track per lane (kernel array, each memory SDR slot),
// which renders Figure 7's two-column occupancy picture as a real,
// zoomable trace.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/json.h"

namespace smd::obs {

/// Version of the Chrome-trace export layout, stamped into the top-level
/// object next to "traceEvents" (Chrome/Perfetto ignore unknown keys) so
/// trace files carry the same versioning as `--json` bench records.
/// History:
///   1  slices + process/thread metadata; schema_version key added
///   2  slices may carry an "args" object of string values (span ids and
///      exact ns timestamps for request traces — span.h); absent when
///      empty, so version-1 consumers are unaffected
inline constexpr int kTraceSchemaVersion = 2;

/// One complete slice on a (pid, tid) track; times in nanoseconds
/// (simulator cycles at 1 GHz map 1:1 to ns).
struct TraceEvent {
  std::string name;
  std::string category;
  int pid = 0;
  int tid = 0;
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;
  /// Optional key/value payload emitted as the slice's "args" object in
  /// insertion order (values are strings so integer ns survive exactly).
  std::vector<std::pair<std::string, std::string>> args;
};

class TraceSink {
 public:
  void set_process_name(int pid, std::string name);
  void set_track_name(int pid, int tid, std::string name);
  void add(TraceEvent ev) { events_.push_back(std::move(ev)); }

  /// Absorb `other` into this sink: events are appended, process/track
  /// names are taken with other's value winning on key collisions (same
  /// last-write-wins rule as repeated set_*_name calls). Mirrors
  /// CounterRegistry::merge so per-worker-shard sinks can be folded into
  /// the process sink after parallel sections.
  void merge(const TraceSink& other);

  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  const std::vector<TraceEvent>& events() const { return events_; }

  /// {"traceEvents": [metadata..., slices...], "displayTimeUnit": "ns"}.
  /// Slice "ts"/"dur" are emitted in microseconds (Chrome's native unit)
  /// as fractional values, so nanosecond resolution survives.
  Json chrome_json() const;

  /// chrome_json() pretty-printed to `path`; throws on I/O failure.
  void write(const std::string& path) const;

 private:
  std::vector<TraceEvent> events_;
  std::vector<std::pair<int, std::string>> process_names_;
  std::vector<std::pair<std::pair<int, int>, std::string>> track_names_;
};

}  // namespace smd::obs
