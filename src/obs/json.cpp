#include "src/obs/json.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace smd::obs {
namespace {

[[noreturn]] void fail(const char* what, std::size_t pos) {
  throw std::runtime_error("json parse error at byte " + std::to_string(pos) +
                           ": " + what);
}

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
}

/// Recursive-descent parser over a string_view.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document", pos_);
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input", pos_);
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character", pos_);
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal", pos_);
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal", pos_);
        return Json(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal", pos_);
        return Json(nullptr);
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(key, parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return obj;
      if (c != ',') fail("expected ',' or '}' in object", pos_ - 1);
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return arr;
      if (c != ',') fail("expected ',' or ']' in array", pos_ - 1);
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': append_utf8(out, parse_hex4()); break;
        default: fail("bad escape", pos_ - 1);
      }
    }
  }

  unsigned parse_hex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      ++pos_;
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
      else fail("bad \\u escape", pos_ - 1);
    }
    return v;
  }

  void append_utf8(std::string& out, unsigned cp) {
    // Surrogate pairs: a high surrogate must be followed by \uDC00-\uDFFF.
    if (cp >= 0xD800 && cp <= 0xDBFF) {
      if (pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
          text_[pos_ + 1] == 'u') {
        pos_ += 2;
        const unsigned lo = parse_hex4();
        if (lo < 0xDC00 || lo > 0xDFFF) fail("unpaired surrogate", pos_);
        cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
      } else {
        fail("unpaired surrogate", pos_);
      }
    }
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    bool is_integer = true;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      is_integer = false;
      ++pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_integer = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      fail("bad number", start);
    }
    const std::string tok(text_.substr(start, pos_ - start));
    const double v = std::strtod(tok.c_str(), nullptr);
    if (is_integer) return Json(static_cast<std::int64_t>(v));
    return Json(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json& Json::set(std::string_view key, Json v) {
  auto& obj = std::get<Object>(value_);
  for (auto& [k, existing] : obj) {
    if (k == key) {
      existing = std::move(v);
      return *this;
    }
  }
  obj.emplace_back(std::string(key), std::move(v));
  return *this;
}

const Json* Json::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : std::get<Object>(value_)) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  const Json* v = find(key);
  if (v == nullptr) {
    throw std::out_of_range("json: missing key '" + std::string(key) + "'");
  }
  return *v;
}

Json& Json::push_back(Json v) {
  std::get<Array>(value_).push_back(std::move(v));
  return *this;
}

std::size_t Json::size() const {
  if (is_array()) return std::get<Array>(value_).size();
  if (is_object()) return std::get<Object>(value_).size();
  return 0;
}

const Json& Json::at(std::size_t i) const {
  const auto& arr = std::get<Array>(value_);
  if (i >= arr.size()) throw std::out_of_range("json: array index");
  return arr[i];
}

bool Json::as_bool() const { return std::get<bool>(value_); }

double Json::as_double() const { return std::get<Number>(value_).value; }

std::int64_t Json::as_int() const {
  return static_cast<std::int64_t>(std::get<Number>(value_).value);
}

const std::string& Json::as_string() const {
  return std::get<std::string>(value_);
}

const std::vector<Json::Member>& Json::items() const {
  return std::get<Object>(value_);
}

const std::vector<Json>& Json::elements() const {
  return std::get<Array>(value_);
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (type()) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += as_bool() ? "true" : "false"; break;
    case Type::kNumber: {
      const Number& n = std::get<Number>(value_);
      if (n.is_integer) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(n.value));
        out += buf;
      } else if (!std::isfinite(n.value)) {
        out += "null";  // JSON has no Inf/NaN; emit null rather than garbage
      } else {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g", n.value);
        out += buf;
      }
      break;
    }
    case Type::kString: append_escaped(out, as_string()); break;
    case Type::kArray: {
      const auto& arr = std::get<Array>(value_);
      if (arr.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < arr.size(); ++i) {
        if (i) out += ',';
        newline(depth + 1);
        arr[i].dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      const auto& obj = std::get<Object>(value_);
      if (obj.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < obj.size(); ++i) {
        if (i) out += ',';
        newline(depth + 1);
        append_escaped(out, obj[i].first);
        out += indent > 0 ? ": " : ":";
        obj[i].second.dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

void write_file(const Json& j, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("cannot open for writing: " + path);
  os << j.dump(2) << '\n';
  if (!os) throw std::runtime_error("write failed: " + path);
}

void write_file_atomic(const Json& j, const std::string& path) {
  const std::string tmp = path + ".tmp";
  write_file(j, tmp);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("cannot rename " + tmp + " over " + path);
  }
}

Json load_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open: " + path);
  std::ostringstream ss;
  ss << is.rdbuf();
  return Json::parse(ss.str());
}

}  // namespace smd::obs
