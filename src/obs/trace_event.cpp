#include "src/obs/trace_event.h"

namespace smd::obs {
namespace {

Json metadata_event(const char* kind, int pid, int tid, bool has_tid,
                    const std::string& name) {
  Json args = Json::object();
  args.set("name", name);
  Json ev = Json::object();
  ev.set("name", kind);
  ev.set("ph", "M");
  ev.set("pid", pid);
  if (has_tid) ev.set("tid", tid);
  ev.set("args", std::move(args));
  return ev;
}

}  // namespace

void TraceSink::set_process_name(int pid, std::string name) {
  for (auto& [p, n] : process_names_) {
    if (p == pid) {
      n = std::move(name);
      return;
    }
  }
  process_names_.emplace_back(pid, std::move(name));
}

void TraceSink::set_track_name(int pid, int tid, std::string name) {
  for (auto& [key, n] : track_names_) {
    if (key == std::pair{pid, tid}) {
      n = std::move(name);
      return;
    }
  }
  track_names_.emplace_back(std::pair{pid, tid}, std::move(name));
}

void TraceSink::merge(const TraceSink& other) {
  for (const auto& [pid, name] : other.process_names_) {
    set_process_name(pid, name);
  }
  for (const auto& [key, name] : other.track_names_) {
    set_track_name(key.first, key.second, name);
  }
  events_.insert(events_.end(), other.events_.begin(), other.events_.end());
}

Json TraceSink::chrome_json() const {
  Json events = Json::array();
  for (const auto& [pid, name] : process_names_) {
    events.push_back(metadata_event("process_name", pid, 0, false, name));
  }
  for (const auto& [key, name] : track_names_) {
    events.push_back(metadata_event("thread_name", key.first, key.second,
                                    true, name));
  }
  for (const auto& ev : events_) {
    Json e = Json::object();
    e.set("name", ev.name);
    e.set("cat", ev.category.empty() ? "event" : ev.category);
    e.set("ph", "X");
    e.set("pid", ev.pid);
    e.set("tid", ev.tid);
    e.set("ts", static_cast<double>(ev.ts_ns) / 1000.0);
    e.set("dur", static_cast<double>(ev.dur_ns) / 1000.0);
    if (!ev.args.empty()) {
      Json args = Json::object();
      for (const auto& [key, value] : ev.args) args.set(key, value);
      e.set("args", std::move(args));
    }
    events.push_back(std::move(e));
  }
  Json root = Json::object();
  root.set("schema_version", kTraceSchemaVersion);
  root.set("traceEvents", std::move(events));
  root.set("displayTimeUnit", "ns");
  return root;
}

void TraceSink::write(const std::string& path) const {
  write_file(chrome_json(), path);
}

}  // namespace smd::obs
