// Minimal JSON value type for the telemetry layer.
//
// Everything machine-readable the repo emits -- counter snapshots, bench
// records, Chrome trace-event files -- is built from this one type, and
// the tests parse those artifacts back with the same type, so the writer
// and the reader cannot drift apart. Objects preserve insertion order to
// keep emitted files byte-stable and diffable across runs.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace smd::obs {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;
  Json(std::nullptr_t) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(Number{d, false}) {}
  Json(int i) : value_(Number{static_cast<double>(i), true}) {}
  Json(std::int64_t i) : value_(Number{static_cast<double>(i), true}) {}
  Json(std::uint64_t u) : value_(Number{static_cast<double>(u), true}) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}

  static Json array() {
    Json j;
    j.value_ = Array{};
    return j;
  }
  static Json object() {
    Json j;
    j.value_ = Object{};
    return j;
  }

  Type type() const { return static_cast<Type>(value_.index()); }
  bool is_null() const { return type() == Type::kNull; }
  bool is_bool() const { return type() == Type::kBool; }
  bool is_number() const { return type() == Type::kNumber; }
  bool is_string() const { return type() == Type::kString; }
  bool is_array() const { return type() == Type::kArray; }
  bool is_object() const { return type() == Type::kObject; }

  /// Object member access. `set` replaces an existing key in place (order
  /// preserved); `at` throws std::out_of_range on a missing key.
  Json& set(std::string_view key, Json v);
  bool contains(std::string_view key) const { return find(key) != nullptr; }
  const Json* find(std::string_view key) const;
  const Json& at(std::string_view key) const;

  Json& push_back(Json v);

  /// Array/object element count; 0 for scalars.
  std::size_t size() const;
  const Json& at(std::size_t i) const;  ///< array element; throws on range

  bool as_bool() const;
  double as_double() const;
  std::int64_t as_int() const;
  const std::string& as_string() const;

  using Member = std::pair<std::string, Json>;
  const std::vector<Member>& items() const;    ///< object members in order
  const std::vector<Json>& elements() const;   ///< array elements

  /// Serialize. indent == 0 -> compact single line; indent > 0 -> pretty.
  std::string dump(int indent = 0) const;

  /// Parse a complete JSON document; throws std::runtime_error with the
  /// byte offset of the first error. Trailing garbage is an error.
  static Json parse(std::string_view text);

 private:
  struct Number {
    double value = 0.0;
    bool is_integer = false;
  };
  using Array = std::vector<Json>;
  using Object = std::vector<Member>;

  void dump_to(std::string& out, int indent, int depth) const;

  std::variant<std::monostate, bool, Number, std::string, Array, Object> value_;
};

/// Write `j.dump(2)` plus a trailing newline to `path`; throws
/// std::runtime_error if the file cannot be written.
void write_file(const Json& j, const std::string& path);

/// Crash-safe variant of write_file: writes to `path + ".tmp"` and
/// atomically renames over `path`, so readers never observe a torn or
/// truncated document -- they see the old file or the new one. Used for
/// files that outlive the process (result caches, baselines). Throws
/// std::runtime_error on I/O failure (the temp file is removed).
void write_file_atomic(const Json& j, const std::string& path);

/// Read and parse a JSON file; throws on I/O or parse errors.
Json load_file(const std::string& path);

}  // namespace smd::obs
