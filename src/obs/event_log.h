// Crash-safe JSONL structured event log (DESIGN.md section 15).
//
// append() writes one compact JSON object per line and flushes, so a
// crash can tear at most the final line. load_event_log() is the
// tolerant reader: well-formed lines parse, a torn or corrupt line is
// dropped and counted (`obs.events.load_torn`) — the same
// never-throw-on-warm-start policy as the result cache's
// `tune.cache.load_corrupt`.
//
// Rotation: when the live file exceeds `rotate_bytes` after an append,
// the finished segment is republished as one JSON array document through
// obs::write_file_atomic to "<path>.1" (temp-file + rename: readers see
// the previous archive or the new one, never a torn file) and the live
// JSONL restarts empty. A crash between the archive write and the
// restart can duplicate events (at-least-once), never lose or tear
// them. Counters: obs.events.appended / obs.events.rotated.
#pragma once

#include <cstddef>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/json.h"

namespace smd::obs {

class EventLog {
 public:
  EventLog() = default;
  ~EventLog() { close(); }
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Open (truncating) the live file. rotate_bytes == 0 disables
  /// rotation. Throws std::runtime_error if the file cannot be created.
  void open(std::string path, std::size_t rotate_bytes = 0);

  bool enabled() const;
  const std::string& path() const { return path_; }
  /// The rotation archive next to the live file: "<path>.1".
  std::string archive_path() const { return path_ + ".1"; }

  /// One compact line + flush; rotates afterwards if the live file grew
  /// past rotate_bytes. No-op when not open.
  void append(const Json& event);

  void close();

 private:
  void rotate_locked();

  mutable std::mutex mu_;
  std::string path_;
  std::size_t rotate_bytes_ = 0;
  std::size_t bytes_ = 0;
  std::ofstream os_;
};

struct EventLogLoad {
  std::vector<Json> events;
  std::size_t dropped = 0;  ///< torn/corrupt lines skipped
};

/// Tolerant JSONL reload: a missing file is an empty log, a torn or
/// corrupt line is dropped and counted (obs.events.load_torn), never a
/// throw.
EventLogLoad load_event_log(const std::string& path);

}  // namespace smd::obs
