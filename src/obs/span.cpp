#include "src/obs/span.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <stdexcept>

namespace smd::obs {
namespace {

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

std::uint64_t parse_hex16(const std::string& s) {
  return std::stoull(s, nullptr, 16);
}

}  // namespace

std::int64_t monotonic_ns() {
  static const auto epoch = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

SpanContext SpanLog::make_root() {
  SpanContext ctx;
  ctx.trace_id = next_trace_.fetch_add(1, std::memory_order_relaxed);
  ctx.span_id = next_span_.fetch_add(1, std::memory_order_relaxed);
  ctx.parent_id = 0;
  return ctx;
}

SpanContext SpanLog::make_child(const SpanContext& parent) {
  SpanContext ctx;
  ctx.trace_id = parent.trace_id;
  ctx.span_id = next_span_.fetch_add(1, std::memory_order_relaxed);
  ctx.parent_id = parent.span_id;
  return ctx;
}

void SpanLog::record(SpanRecord rec) {
  const std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(std::move(rec));
}

std::size_t SpanLog::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

std::vector<SpanRecord> SpanLog::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

void SpanLog::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
}

void SpanLog::append_chrome(TraceSink* sink) const {
  const std::vector<SpanRecord> spans = snapshot();
  sink->set_process_name(kSpanChromePid, "spans");
  for (const SpanRecord& rec : spans) {
    const int tid = static_cast<int>(rec.ctx.trace_id & 0x7fffffff);
    if (rec.ctx.parent_id == 0) {
      sink->set_track_name(kSpanChromePid, tid,
                           rec.arg.empty() ? "trace-" + hex16(rec.ctx.trace_id)
                                           : rec.arg);
    }
    TraceEvent ev;
    ev.name = rec.name;
    ev.category = rec.category;
    ev.pid = kSpanChromePid;
    ev.tid = tid;
    ev.ts_ns = static_cast<std::uint64_t>(rec.start_ns);
    ev.dur_ns = static_cast<std::uint64_t>(rec.duration_ns());
    // Ids and exact integer timestamps ride in the args: "ts"/"dur" are
    // fractional microseconds, so the ns-exact tree reconstructs from
    // here (spans_from_chrome) rather than from rounded doubles.
    ev.args.emplace_back("trace", hex16(rec.ctx.trace_id));
    ev.args.emplace_back("span", std::to_string(rec.ctx.span_id));
    ev.args.emplace_back("parent", std::to_string(rec.ctx.parent_id));
    ev.args.emplace_back("start_ns", std::to_string(rec.start_ns));
    ev.args.emplace_back("end_ns", std::to_string(rec.end_ns));
    if (!rec.arg.empty()) ev.args.emplace_back("arg", rec.arg);
    sink->add(std::move(ev));
  }
}

Span::Span(SpanLog& log, std::string name) : log_(log) {
  rec_.ctx = log.make_root();
  rec_.name = std::move(name);
  rec_.start_ns = monotonic_ns();
}

Span::Span(SpanLog& log, std::string name, const SpanContext& parent)
    : log_(log) {
  rec_.ctx = log.make_child(parent);
  rec_.name = std::move(name);
  rec_.start_ns = monotonic_ns();
}

void Span::end() {
  if (ended_) return;
  ended_ = true;
  rec_.end_ns = monotonic_ns();
  log_.record(std::move(rec_));
}

Json span_json(const SpanRecord& rec) {
  Json j = Json::object();
  j.set("type", "span");
  j.set("trace", hex16(rec.ctx.trace_id));
  j.set("span", rec.ctx.span_id);
  j.set("parent", rec.ctx.parent_id);
  j.set("name", rec.name);
  j.set("cat", rec.category);
  if (!rec.arg.empty()) j.set("arg", rec.arg);
  j.set("start_ns", rec.start_ns);
  j.set("end_ns", rec.end_ns);
  return j;
}

SpanRecord span_from_json(const Json& j) {
  if (!j.is_object() || !j.contains("type") ||
      j.at("type").as_string() != "span") {
    throw std::runtime_error("span_from_json: not a span event");
  }
  SpanRecord rec;
  rec.ctx.trace_id = parse_hex16(j.at("trace").as_string());
  rec.ctx.span_id = static_cast<std::uint64_t>(j.at("span").as_int());
  rec.ctx.parent_id = static_cast<std::uint64_t>(j.at("parent").as_int());
  rec.name = j.at("name").as_string();
  rec.category = j.at("cat").as_string();
  if (const Json* arg = j.find("arg")) rec.arg = arg->as_string();
  rec.start_ns = j.at("start_ns").as_int();
  rec.end_ns = j.at("end_ns").as_int();
  return rec;
}

std::vector<SpanRecord> spans_from_chrome(const Json& chrome_doc) {
  std::vector<SpanRecord> out;
  for (const Json& ev : chrome_doc.at("traceEvents").elements()) {
    const Json* ph = ev.find("ph");
    if (ph == nullptr || ph->as_string() != "X") continue;
    const Json* args = ev.find("args");
    if (args == nullptr || !args->contains("span")) continue;
    SpanRecord rec;
    rec.ctx.trace_id = parse_hex16(args->at("trace").as_string());
    rec.ctx.span_id = std::stoull(args->at("span").as_string());
    rec.ctx.parent_id = std::stoull(args->at("parent").as_string());
    rec.name = ev.at("name").as_string();
    rec.category = ev.at("cat").as_string();
    if (const Json* arg = args->find("arg")) rec.arg = arg->as_string();
    rec.start_ns = std::stoll(args->at("start_ns").as_string());
    rec.end_ns = std::stoll(args->at("end_ns").as_string());
    out.push_back(std::move(rec));
  }
  return out;
}

bool spans_partition_exactly(const std::vector<SpanRecord>& trace,
                             std::string* why) {
  const auto fail = [&](const std::string& reason) {
    if (why != nullptr) *why = reason;
    return false;
  };
  const SpanRecord* root = nullptr;
  for (const SpanRecord& rec : trace) {
    if (rec.ctx.parent_id != 0) continue;
    if (root != nullptr) return fail("more than one root span");
    root = &rec;
  }
  if (root == nullptr) return fail("no root span");
  std::vector<const SpanRecord*> children;
  for (const SpanRecord& rec : trace) {
    if (rec.ctx.trace_id != root->ctx.trace_id) {
      return fail("span from a different trace");
    }
    if (rec.ctx.parent_id == root->ctx.span_id) children.push_back(&rec);
  }
  if (children.empty()) return fail("root has no children");
  std::sort(children.begin(), children.end(),
            [](const SpanRecord* a, const SpanRecord* b) {
              return a->start_ns != b->start_ns ? a->start_ns < b->start_ns
                                                : a->end_ns < b->end_ns;
            });
  std::int64_t cursor = root->start_ns;
  for (const SpanRecord* child : children) {
    if (child->start_ns != cursor) {
      return fail("child '" + child->name + "' starts at " +
                  std::to_string(child->start_ns) + ", expected " +
                  std::to_string(cursor));
    }
    if (child->end_ns < child->start_ns) {
      return fail("child '" + child->name + "' has negative duration");
    }
    cursor = child->end_ns;
  }
  if (cursor != root->end_ns) {
    return fail("children end at " + std::to_string(cursor) +
                ", root ends at " + std::to_string(root->end_ns));
  }
  return true;
}

}  // namespace smd::obs
