// Named counter/gauge registry with RAII scoped timers.
//
// Any module can bump a counter by name without threading a stats struct
// through its API; the bench binaries and streammd_cli snapshot the global
// registry into their JSON records so every run carries the full counter
// census alongside the headline metrics.
//
// Threading model: every method is internally synchronized, so concurrent
// simulations (the tune::Runner worker pool) may write the same registry
// safely. For isolation -- per-worker counters that don't mix until the
// worker finishes -- a thread can redirect its own view of global() to a
// private registry with ScopedRegistryRedirect and merge() the shard back
// when done. merge() is commutative (counters and ".seconds" gauges add,
// other gauges take the max), so shard merge order doesn't change totals.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "src/obs/json.h"

namespace smd::obs {

class CounterRegistry {
 public:
  CounterRegistry() = default;
  CounterRegistry(const CounterRegistry&) = delete;
  CounterRegistry& operator=(const CounterRegistry&) = delete;

  /// Monotonic event counts ("sim.kernel_launches").
  void add(const std::string& name, std::int64_t delta = 1) {
    const std::lock_guard<std::mutex> lock(mu_);
    counters_[name] += delta;
  }
  std::int64_t counter(const std::string& name) const {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  /// Last-value measurements ("sim.srf_peak_words").
  void set_gauge(const std::string& name, double value) {
    const std::lock_guard<std::mutex> lock(mu_);
    gauges_[name] = value;
  }
  double gauge(const std::string& name) const {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second;
  }

  /// Timer accumulation: `<name>.seconds` gauge grows by `s`,
  /// `<name>.calls` counter by one. Used by ScopedTimer.
  void add_seconds(const std::string& name, double s) {
    const std::lock_guard<std::mutex> lock(mu_);
    gauges_[name + ".seconds"] += s;
    counters_[name + ".calls"] += 1;
  }

  bool empty() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return counters_.empty() && gauges_.empty();
  }
  void clear() {
    const std::lock_guard<std::mutex> lock(mu_);
    counters_.clear();
    gauges_.clear();
  }

  /// Fold another registry (typically a per-worker shard) into this one:
  /// counters add; ".seconds" gauges add (they are accumulated time);
  /// other gauges keep the maximum, so the result is independent of the
  /// order shards are merged in.
  void merge(const CounterRegistry& other);

  /// {"counters": {...}, "gauges": {...}} with keys in sorted order.
  Json to_json() const;

  /// The registry the simulator's hooks write to: the calling thread's
  /// ScopedRegistryRedirect target if one is active, else the process-wide
  /// registry (process()).
  static CounterRegistry& global();
  /// The process-wide registry, ignoring any thread-local redirect.
  static CounterRegistry& process();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::int64_t> counters_;
  std::map<std::string, double> gauges_;
};

/// While alive, CounterRegistry::global() on *this thread* resolves to the
/// given registry instead of the process-wide one. Nests (the previous
/// redirect is restored on destruction). The redirect is thread-local: it
/// never affects other threads.
class ScopedRegistryRedirect {
 public:
  explicit ScopedRegistryRedirect(CounterRegistry& target);
  ScopedRegistryRedirect(const ScopedRegistryRedirect&) = delete;
  ScopedRegistryRedirect& operator=(const ScopedRegistryRedirect&) = delete;
  ~ScopedRegistryRedirect();

 private:
  CounterRegistry* prev_;
};

/// Accumulates wall-clock time spent in a scope into a registry timer.
class ScopedTimer {
 public:
  ScopedTimer(CounterRegistry& reg, std::string name)
      : reg_(reg), name_(std::move(name)),
        t0_(std::chrono::steady_clock::now()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    const auto dt = std::chrono::steady_clock::now() - t0_;
    reg_.add_seconds(name_, std::chrono::duration<double>(dt).count());
  }

 private:
  CounterRegistry& reg_;
  std::string name_;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace smd::obs
