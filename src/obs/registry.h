// Named counter/gauge registry with RAII scoped timers.
//
// Any module can bump a counter by name without threading a stats struct
// through its API; the bench binaries and streammd_cli snapshot the global
// registry into their JSON records so every run carries the full counter
// census alongside the headline metrics. The simulator is single-threaded
// by design, so the registry is deliberately unsynchronized.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

#include "src/obs/json.h"

namespace smd::obs {

class CounterRegistry {
 public:
  /// Monotonic event counts ("sim.kernel_launches").
  void add(const std::string& name, std::int64_t delta = 1) {
    counters_[name] += delta;
  }
  std::int64_t counter(const std::string& name) const {
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  /// Last-value measurements ("sim.srf_peak_words").
  void set_gauge(const std::string& name, double value) {
    gauges_[name] = value;
  }
  double gauge(const std::string& name) const {
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second;
  }

  /// Timer accumulation: `<name>.seconds` gauge grows by `s`,
  /// `<name>.calls` counter by one. Used by ScopedTimer.
  void add_seconds(const std::string& name, double s) {
    gauges_[name + ".seconds"] += s;
    add(name + ".calls");
  }

  bool empty() const { return counters_.empty() && gauges_.empty(); }
  void clear() {
    counters_.clear();
    gauges_.clear();
  }

  /// {"counters": {...}, "gauges": {...}} with keys in sorted order.
  Json to_json() const;

  /// The process-wide registry the simulator's hooks write to.
  static CounterRegistry& global();

 private:
  std::map<std::string, std::int64_t> counters_;
  std::map<std::string, double> gauges_;
};

/// Accumulates wall-clock time spent in a scope into a registry timer.
class ScopedTimer {
 public:
  ScopedTimer(CounterRegistry& reg, std::string name)
      : reg_(reg), name_(std::move(name)),
        t0_(std::chrono::steady_clock::now()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    const auto dt = std::chrono::steady_clock::now() - t0_;
    reg_.add_seconds(name_, std::chrono::duration<double>(dt).count());
  }

 private:
  CounterRegistry& reg_;
  std::string name_;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace smd::obs
