// Request-scoped tracing (DESIGN.md section 15).
//
// A SpanContext is the identity of one timed region: a trace id shared
// by everything that happened on behalf of one request, a span id unique
// within the process, and the parent's span id (0 for the trace root).
// Finished spans are plain SpanRecords — name, context, monotonic-ns
// start/end — collected by a thread-safe SpanLog and exported two ways:
//
//   * append_chrome(): nested "X" slices in the existing TraceSink, one
//     track per trace, with the ids and exact ns timestamps carried in
//     the slice args so the tree reconstructs from the trace file
//     (spans_from_chrome);
//   * span_json()/span_from_json(): one compact object per span for the
//     JSONL structured event log (event_log.h).
//
// The service layer derives its spans from a single non-decreasing
// boundary-timestamp chain per request, so the child spans of a trace
// tile the root exactly — spans_partition_exactly() is the checker for
// that per-request sum-to-total invariant (the request-scoped analogue
// of the cycle-attribution invariant of DESIGN.md section 9).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/json.h"
#include "src/obs/trace_event.h"

namespace smd::obs {

/// Steady-clock nanoseconds since a process-wide epoch captured on first
/// use. All spans (any thread) share this one timeline.
std::int64_t monotonic_ns();

struct SpanContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  ///< 0 = trace root
};

struct SpanRecord {
  SpanContext ctx;
  std::string name;
  std::string category = "span";
  std::string arg;  ///< free-form label (e.g. the request id), may be ""
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;

  std::int64_t duration_ns() const { return end_ns - start_ns; }
};

/// Chrome pid all span tracks live under (one tid per trace).
inline constexpr int kSpanChromePid = 7;

class SpanLog {
 public:
  SpanLog() = default;
  SpanLog(const SpanLog&) = delete;
  SpanLog& operator=(const SpanLog&) = delete;

  /// Fresh trace id + root span id (parent 0).
  SpanContext make_root();
  /// Same trace as `parent`, fresh span id, parent_id = parent.span_id.
  SpanContext make_child(const SpanContext& parent);

  void record(SpanRecord rec);

  std::size_t size() const;
  bool empty() const { return size() == 0; }
  std::vector<SpanRecord> snapshot() const;
  void clear();

  /// Emit every recorded span as a complete slice: pid kSpanChromePid,
  /// tid = the trace id (one track per trace, named after the root
  /// span's arg when present), ids + exact ns timestamps in the args.
  void append_chrome(TraceSink* sink) const;

 private:
  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;
  std::atomic<std::uint64_t> next_trace_{1};
  std::atomic<std::uint64_t> next_span_{1};
};

/// RAII span: stamps start_ns at construction, records into the log at
/// end() (idempotent) or destruction.
class Span {
 public:
  Span(SpanLog& log, std::string name);  ///< a new root span
  Span(SpanLog& log, std::string name, const SpanContext& parent);
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { end(); }

  const SpanContext& context() const { return rec_.ctx; }
  void set_arg(std::string arg) { rec_.arg = std::move(arg); }
  void end();

 private:
  SpanLog& log_;
  SpanRecord rec_;
  bool ended_ = false;
};

/// One JSONL event line: {"type":"span","trace":"<16hex>","span":...,
/// "parent":...,"name":...,"cat":...,"arg":...,"start_ns":...,"end_ns":...}.
Json span_json(const SpanRecord& rec);
/// Inverse of span_json(); throws std::runtime_error on malformed input.
SpanRecord span_from_json(const Json& j);

/// Rebuild spans from a TraceSink::chrome_json() document — only slices
/// whose args carry span ids are considered, so sim-timeline slices in a
/// merged trace are ignored.
std::vector<SpanRecord> spans_from_chrome(const Json& chrome_doc);

/// The per-trace partition invariant: `trace` (every span of ONE trace,
/// any order) must contain exactly one root, and the root's direct
/// children sorted by start must tile it — first child starts at the
/// root's start, each child starts where the previous ended, the last
/// child ends at the root's end. Implies sum(child durations) ==
/// root duration exactly. On failure returns false and, when `why` is
/// non-null, a one-line reason.
bool spans_partition_exactly(const std::vector<SpanRecord>& trace,
                             std::string* why = nullptr);

}  // namespace smd::obs
