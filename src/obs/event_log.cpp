#include "src/obs/event_log.h"

#include <utility>

#include "src/obs/registry.h"

namespace smd::obs {

void EventLog::open(std::string path, std::size_t rotate_bytes) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (os_.is_open()) os_.close();
  os_.open(path, std::ios::binary | std::ios::trunc);
  if (!os_) throw std::runtime_error("EventLog: cannot open " + path);
  path_ = std::move(path);
  rotate_bytes_ = rotate_bytes;
  bytes_ = 0;
}

bool EventLog::enabled() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return os_.is_open();
}

void EventLog::append(const Json& event) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (!os_.is_open()) return;
  const std::string line = event.dump(0);
  os_ << line << '\n';
  os_.flush();
  bytes_ += line.size() + 1;
  CounterRegistry::global().add("obs.events.appended");
  if (rotate_bytes_ > 0 && bytes_ > rotate_bytes_) rotate_locked();
}

void EventLog::rotate_locked() {
  os_.close();
  // Republish the finished segment as one well-formed JSON document via
  // the atomic temp+rename writer; the tolerant reader drops any line a
  // previous crash tore, so the archive is always parseable.
  const EventLogLoad seg = load_event_log(path_);
  Json arr = Json::array();
  for (const Json& ev : seg.events) arr.push_back(ev);
  write_file_atomic(arr, archive_path());
  os_.open(path_, std::ios::binary | std::ios::trunc);
  bytes_ = 0;
  CounterRegistry::global().add("obs.events.rotated");
}

void EventLog::close() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (os_.is_open()) os_.close();
}

EventLogLoad load_event_log(const std::string& path) {
  EventLogLoad out;
  std::ifstream is(path, std::ios::binary);
  if (!is) return out;  // a missing log is an empty log
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    try {
      out.events.push_back(Json::parse(line));
    } catch (const std::exception&) {
      ++out.dropped;
      CounterRegistry::global().add("obs.events.load_torn");
    }
  }
  return out;
}

}  // namespace smd::obs
