#include "src/obs/exporter.h"

#include <chrono>
#include <utility>

#include "src/obs/registry.h"
#include "src/obs/span.h"

namespace smd::obs {

void StatsExporter::start(Options opts) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  if (opts.interval_ms < 1) opts.interval_ms = 1;
  opts_ = std::move(opts);
  stop_requested_ = false;
  running_ = true;
  seq_ = 0;
  started_ns_ = monotonic_ns();
  thread_ = std::thread(&StatsExporter::run, this);
}

void StatsExporter::stop() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  emit();  // final snapshot: even sub-interval runs export once
  const std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

bool StatsExporter::running() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

std::uint64_t StatsExporter::snapshots() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return seq_;
}

Json StatsExporter::snapshot_json() {
  std::function<Json()> extra;
  std::uint64_t seq = 0;
  std::int64_t started_ns = 0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    extra = opts_.extra;
    seq = seq_++;
    started_ns = started_ns_ == 0 ? monotonic_ns() : started_ns_;
  }
  Json j = Json::object();
  j.set("type", "stats");
  j.set("seq", seq);
  j.set("uptime_ms", (monotonic_ns() - started_ns) / 1'000'000);
  j.set("registry", CounterRegistry::process().to_json());
  if (extra) j.set("extra", extra());
  return j;
}

void StatsExporter::emit() {
  EventLog* log = nullptr;
  std::string path;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    log = opts_.event_log;
    path = opts_.path;
  }
  try {
    const Json snap = snapshot_json();
    if (log != nullptr) {
      log->append(snap);
    } else if (!path.empty()) {
      write_file_atomic(snap, path);
    }
    CounterRegistry::global().add("obs.exporter.snapshots");
  } catch (const std::exception&) {
    CounterRegistry::global().add("obs.exporter.errors");
  }
}

void StatsExporter::run() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, std::chrono::milliseconds(opts_.interval_ms),
                   [&] { return stop_requested_; });
      if (stop_requested_) return;  // stop() emits the final snapshot
    }
    emit();
  }
}

}  // namespace smd::obs
