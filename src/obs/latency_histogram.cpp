#include "src/obs/latency_histogram.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace smd::obs {
namespace {

// 1-ns buckets below kLinearMax; 32 sub-buckets per octave above.
constexpr std::uint64_t kLinearMax = 64;
constexpr std::uint64_t kSubBuckets = 32;

/// Exact value for linear buckets, bucket midpoint for log buckets.
double representative(std::size_t index) {
  if (index < kLinearMax) return static_cast<double>(index);
  const std::uint64_t lo = LatencyHistogram::bucket_lo(index);
  const std::uint64_t hi = LatencyHistogram::bucket_hi(index);
  return static_cast<double>(lo) + static_cast<double>(hi - lo) / 2.0;
}

}  // namespace

std::size_t LatencyHistogram::bucket_index(std::uint64_t v) {
  if (v < kLinearMax) return static_cast<std::size_t>(v);
  // v in [2^m, 2^(m+1)), m >= 6: the top 6 bits select one of the 32
  // upper sub-buckets (the leading bit is implicit).
  const int m = std::bit_width(v) - 1;
  const std::uint64_t offset = (v >> (m - 5)) - kSubBuckets;
  return static_cast<std::size_t>(kLinearMax +
                                  static_cast<std::uint64_t>(m - 6) *
                                      kSubBuckets +
                                  offset);
}

std::uint64_t LatencyHistogram::bucket_lo(std::size_t index) {
  if (index < kLinearMax) return index;
  const std::uint64_t b = index - kLinearMax;
  const int m = 6 + static_cast<int>(b / kSubBuckets);
  const std::uint64_t offset = b % kSubBuckets;
  return (kSubBuckets + offset) << (m - 5);
}

std::uint64_t LatencyHistogram::bucket_hi(std::size_t index) {
  if (index < kLinearMax) return index + 1;
  const std::uint64_t b = index - kLinearMax;
  const int m = 6 + static_cast<int>(b / kSubBuckets);
  return bucket_lo(index) + (std::uint64_t{1} << (m - 5));
}

LatencyHistogram::LatencyHistogram(const LatencyHistogram& other) {
  const std::lock_guard<std::mutex> lock(other.mu_);
  counts_ = other.counts_;
  count_ = other.count_;
  sum_ = other.sum_;
  min_ = other.min_;
  max_ = other.max_;
}

LatencyHistogram& LatencyHistogram::operator=(const LatencyHistogram& other) {
  if (this == &other) return *this;
  // Snapshot first so the two locks are never held together.
  const LatencyHistogram snap(other);
  const std::lock_guard<std::mutex> lock(mu_);
  counts_ = snap.counts_;
  count_ = snap.count_;
  sum_ = snap.sum_;
  min_ = snap.min_;
  max_ = snap.max_;
  return *this;
}

void LatencyHistogram::record_locked(std::uint64_t v, std::uint64_t n) {
  const std::size_t idx = bucket_index(v);
  if (idx >= counts_.size()) counts_.resize(idx + 1, 0);
  counts_[idx] += n;
  const auto sv = static_cast<std::int64_t>(v);
  if (count_ == 0) {
    min_ = sv;
    max_ = sv;
  } else {
    min_ = std::min(min_, sv);
    max_ = std::max(max_, sv);
  }
  count_ += n;
  sum_ += sv * static_cast<std::int64_t>(n);
}

void LatencyHistogram::record(std::int64_t ns) {
  const std::lock_guard<std::mutex> lock(mu_);
  record_locked(ns < 0 ? 0 : static_cast<std::uint64_t>(ns), 1);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  // Copy the source first so self-merge and lock ordering are non-issues.
  const LatencyHistogram snap(other);
  const std::lock_guard<std::mutex> lock(mu_);
  if (snap.counts_.size() > counts_.size()) counts_.resize(snap.counts_.size(), 0);
  for (std::size_t i = 0; i < snap.counts_.size(); ++i) {
    counts_[i] += snap.counts_[i];
  }
  if (snap.count_ > 0) {
    min_ = count_ == 0 ? snap.min_ : std::min(min_, snap.min_);
    max_ = count_ == 0 ? snap.max_ : std::max(max_, snap.max_);
    count_ += snap.count_;
    sum_ += snap.sum_;
  }
}

std::uint64_t LatencyHistogram::count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

std::int64_t LatencyHistogram::sum_ns() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

std::int64_t LatencyHistogram::min_ns() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return count_ == 0 ? 0 : min_;
}

std::int64_t LatencyHistogram::max_ns() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return count_ == 0 ? 0 : max_;
}

double LatencyHistogram::mean_ns() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_) / static_cast<double>(count_);
}

double LatencyHistogram::quantile(double q) const {
  const std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // The same rank convention the exact check uses on sorted samples:
  // index floor(q*n), clamped to the last sample.
  const std::uint64_t rank = std::min<std::uint64_t>(
      count_ - 1,
      static_cast<std::uint64_t>(q * static_cast<double>(count_)));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += counts_[i];
    if (cum > rank) {
      // The exact order statistic lies in this bucket; min/max clamping
      // only ever moves the estimate toward it.
      return std::clamp(representative(i), static_cast<double>(min_),
                        static_cast<double>(max_));
    }
  }
  return static_cast<double>(max_);  // unreachable when counts are consistent
}

Json LatencyHistogram::to_json() const {
  const std::lock_guard<std::mutex> lock(mu_);
  Json j = Json::object();
  j.set("scheme", kScheme);
  j.set("count", count_);
  j.set("sum_ns", sum_);
  j.set("min_ns", count_ == 0 ? 0 : min_);
  j.set("max_ns", count_ == 0 ? 0 : max_);
  Json buckets = Json::array();
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    Json pair = Json::array();
    pair.push_back(static_cast<std::uint64_t>(i));
    pair.push_back(counts_[i]);
    buckets.push_back(std::move(pair));
  }
  j.set("buckets", std::move(buckets));
  return j;
}

LatencyHistogram LatencyHistogram::from_json(const Json& j) {
  if (!j.is_object() || !j.contains("scheme") ||
      j.at("scheme").as_string() != kScheme) {
    throw std::runtime_error("LatencyHistogram: unknown or missing scheme");
  }
  LatencyHistogram h;
  std::uint64_t bucket_total = 0;
  for (const Json& pair : j.at("buckets").elements()) {
    if (pair.size() != 2) {
      throw std::runtime_error("LatencyHistogram: bucket entry must be [i,n]");
    }
    const auto idx = static_cast<std::size_t>(pair.at(0).as_int());
    const auto n = static_cast<std::uint64_t>(pair.at(1).as_int());
    if (idx >= h.counts_.size()) h.counts_.resize(idx + 1, 0);
    h.counts_[idx] += n;
    bucket_total += n;
  }
  h.count_ = static_cast<std::uint64_t>(j.at("count").as_int());
  h.sum_ = j.at("sum_ns").as_int();
  h.min_ = j.at("min_ns").as_int();
  h.max_ = j.at("max_ns").as_int();
  if (bucket_total != h.count_) {
    throw std::runtime_error(
        "LatencyHistogram: bucket counts disagree with 'count'");
  }
  return h;
}

}  // namespace smd::obs
