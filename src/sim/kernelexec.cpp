#include "src/sim/kernelexec.h"

#include "src/obs/registry.h"

namespace smd::sim {

std::uint64_t KernelCost::cycles_for(std::int64_t rounds) const {
  if (rounds <= 0) return static_cast<std::uint64_t>(prologue_cycles);
  const int unroll = body.unroll > 0 ? body.unroll : 1;
  const auto steady = [&](std::int64_t iters) -> std::uint64_t {
    if (iters <= 0 || body.ii == 0) return 0;
    const std::int64_t instances = (iters + unroll - 1) / unroll;
    std::uint64_t c = static_cast<std::uint64_t>(instances) *
                      static_cast<std::uint64_t>(body.ii);
    // Pipeline fill/drain beyond the steady state.
    if (body.pipelined && body.depth > body.ii) {
      c += static_cast<std::uint64_t>(body.depth - body.ii);
    }
    return c;
  };

  std::uint64_t total = static_cast<std::uint64_t>(prologue_cycles);
  if (has_outer) {
    // The software pipeline restarts around every outer section.
    const std::uint64_t per_round = static_cast<std::uint64_t>(outer_pre_cycles) +
                                    steady(block_len) +
                                    static_cast<std::uint64_t>(outer_post_cycles);
    total += static_cast<std::uint64_t>(rounds) * per_round;
  } else {
    total += steady(rounds * block_len);
  }
  return total;
}

const KernelCost& KernelCostCache::get(const kernel::KernelDef& def) {
  auto it = cache_.find(&def);
  if (it != cache_.end()) {
    obs::CounterRegistry::global().add("sim.kernel_schedule_cache_hits");
    return it->second;
  }

  obs::ScopedTimer timer(obs::CounterRegistry::global(),
                         "sim.kernel_schedule");
  obs::CounterRegistry::global().add("sim.kernels_scheduled");
  KernelCost cost;
  cost.body = kernel::schedule_body(def, opts_);
  cost.prologue_cycles = kernel::straightline_cycles(def.prologue, opts_);
  cost.outer_pre_cycles = kernel::straightline_cycles(def.outer_pre, opts_);
  cost.outer_post_cycles = kernel::straightline_cycles(def.outer_post, opts_);
  cost.block_len = def.block_len;
  cost.has_outer = !def.outer_pre.empty() || !def.outer_post.empty();
  return cache_.emplace(&def, std::move(cost)).first->second;
}

}  // namespace smd::sim
