// Stream register file capacity accounting.
//
// The SRF is a 1 MB software-managed memory banked per cluster. The stream
// scheduler (our controller) allocates a lane-striped buffer per live
// stream; when the working set of in-flight strips exceeds SRF capacity,
// issue stalls -- bounding how deeply strips can be software-pipelined.
// This class tracks capacity and buffer lifetimes; stream *contents* are
// owned by the controller (plain vectors, functionally exact).
#pragma once

#include <cstdint>
#include <vector>

namespace smd::sim {

class SrfAllocator {
 public:
  explicit SrfAllocator(std::int64_t capacity_words)
      : capacity_(capacity_words) {}

  /// Try to reserve `words`; false if it would exceed capacity.
  bool try_alloc(std::int64_t words) {
    if (!fits(words)) return false;
    in_use_ += words;
    peak_ = in_use_ > peak_ ? in_use_ : peak_;
    return true;
  }

  /// Whether try_alloc(words) would succeed (no side effects).
  bool fits(std::int64_t words) const { return in_use_ + words <= capacity_; }

  void free(std::int64_t words) { in_use_ -= words; }

  std::int64_t in_use() const { return in_use_; }
  std::int64_t peak() const { return peak_; }
  std::int64_t capacity() const { return capacity_; }

 private:
  std::int64_t capacity_;
  std::int64_t in_use_ = 0;
  std::int64_t peak_ = 0;
};

}  // namespace smd::sim
