// Stream controller: the out-of-order scoreboard of the stream unit.
//
// The scalar core enqueues the whole stream program; the controller starts
// each stream instruction as soon as
//   * all producing instructions of the streams it reads have completed,
//   * an SDR (stream descriptor register) is free (memory ops),
//   * SRF space is available for the buffers it produces, and
//   * the cluster array is idle (kernels -- one kernel runs at a time).
//
// This is what produces the software-pipelined execution of Figure 5: while
// a kernel runs, the memory system gathers the next strip and scatters the
// previous strip's results. The SDR allocation policy switch reproduces
// Figure 7's before/after overlap behaviour.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/kernel/interp.h"
#include "src/mem/memsys.h"
#include "src/sim/config.h"
#include "src/sim/kernelexec.h"
#include "src/sim/srf.h"
#include "src/sim/streamop.h"
#include "src/sim/trace.h"

namespace smd::sim {

/// Aggregate statistics from one stream-program run.
struct RunStats {
  std::uint64_t cycles = 0;
  kernel::InterpStats interp;        ///< functional execution census
  std::uint64_t kernel_busy_cycles = 0;
  std::uint64_t mem_busy_cycles = 0;
  std::uint64_t overlap_cycles = 0;
  std::int64_t mem_words = 0;        ///< words moved SRF <-> memory
  std::int64_t srf_peak_words = 0;
  int n_kernel_launches = 0;
  int n_memory_ops = 0;
  std::uint64_t sdr_stall_cycles = 0;  ///< memory ops ready but no SDR
  mem::MemSystemStats mem_stats;
  mem::CacheStats cache_stats;
  mem::DramStats dram_stats;
  mem::ScatterAddStats scatter_add_stats;
  Timeline timeline;

  double seconds(double clock_ghz) const {
    return static_cast<double>(cycles) / (clock_ghz * 1e9);
  }
};

/// Field-by-field comparison of two runs; empty string when every stat --
/// cycles, attribution buckets, memory/cache/DRAM/scatter-add counters and
/// all timeline intervals -- is identical, else a human-readable summary of
/// the first mismatches. This is the equivalence oracle behind
/// SimEngine::kLockstep and the lockstep ctest.
std::string diff_run_stats(const RunStats& a, const RunStats& b);

/// Executes a StreamProgram against a memory image, cycle by cycle.
class Controller {
 public:
  Controller(const MachineConfig& cfg, mem::GlobalMemory* memory);

  /// Run to completion; returns statistics. Throws on deadlock (program
  /// bug: dependence cycle or SRF overcommit).
  RunStats run(const StreamProgram& program);

 private:
  const MachineConfig& cfg_;
  mem::GlobalMemory* memory_;
};

}  // namespace smd::sim
