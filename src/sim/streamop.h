// Stream-level program representation.
//
// A StreamProgram is what the scalar core issues to the stream unit: a
// sequence of stream memory operations (entire-stream LOAD/STORE/
// SCATTER-ADD transfers between memory and the SRF) and KERNEL invocations
// over SRF-resident streams. The stream controller (controller.h) executes
// it out of order subject to stream dependences, SRF capacity, and SDR
// availability -- which is what produces the software-pipelined overlap of
// Figure 5.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "src/kernel/ir.h"
#include "src/mem/addrgen.h"

namespace smd::sim {

/// Handle of an SRF-resident stream buffer.
using StreamId = int;

/// Transfer memory -> SRF.
struct LoadOp {
  mem::MemOpDesc desc;
  StreamId dst;
};

/// Transfer SRF -> memory (plain store or scatter-add per desc.kind).
struct StoreOp {
  mem::MemOpDesc desc;
  StreamId src;
};

/// Run a kernel over SRF streams. `bindings[i]` is the StreamId bound to
/// the kernel's stream slot i (matching def->streams order).
struct KernelOp {
  const kernel::KernelDef* def = nullptr;
  std::vector<StreamId> bindings;
  std::int64_t rounds = 0;  ///< outer-block rounds (see kernel::Interpreter)
};

using StreamInstr = std::variant<LoadOp, StoreOp, KernelOp>;

/// A complete stream program plus SRF buffer declarations.
struct StreamProgram {
  /// Capacity (words) to reserve in the SRF for each stream buffer.
  /// Index = StreamId.
  std::vector<std::int64_t> stream_words;
  std::vector<StreamInstr> instrs;

  StreamId new_stream(std::int64_t words) {
    stream_words.push_back(words);
    return static_cast<StreamId>(stream_words.size()) - 1;
  }

  void load(mem::MemOpDesc desc, StreamId dst) {
    instrs.push_back(LoadOp{std::move(desc), dst});
  }
  void store(mem::MemOpDesc desc, StreamId src) {
    instrs.push_back(StoreOp{std::move(desc), src});
  }
  void kernel(const kernel::KernelDef* def, std::vector<StreamId> bindings,
              std::int64_t rounds) {
    instrs.push_back(KernelOp{def, std::move(bindings), rounds});
  }
};

}  // namespace smd::sim
