#include "src/sim/config.h"

#include <stdexcept>
#include <string>

namespace smd::sim {
namespace {

analysis::Location machine_loc() { return {"machine", "config", -1}; }

}  // namespace

const char* engine_name(SimEngine e) {
  switch (e) {
    case SimEngine::kStepped: return "stepped";
    case SimEngine::kEvent: return "event";
    case SimEngine::kLockstep: return "lockstep";
  }
  return "unknown";
}

SimEngine parse_engine(const std::string& name) {
  if (name == "stepped") return SimEngine::kStepped;
  if (name == "event") return SimEngine::kEvent;
  if (name == "lockstep") return SimEngine::kLockstep;
  throw std::invalid_argument("unknown engine '" + name +
                              "' (want stepped|event|lockstep)");
}

analysis::Diagnostics MachineConfig::validate() const {
  analysis::Diagnostics d;
  const analysis::Location loc = machine_loc();

  if (n_clusters <= 0) {
    d.error("MC001", loc,
            "n_clusters must be positive, got " + std::to_string(n_clusters));
  }
  if (fpus_per_cluster <= 0) {
    d.error("MC002", loc, "fpus_per_cluster must be positive, got " +
                              std::to_string(fpus_per_cluster));
  }
  if (clock_ghz <= 0.0) {
    d.error("MC003", loc,
            "clock_ghz must be positive, got " + std::to_string(clock_ghz));
  }
  if (srf_words <= 0) {
    d.error("MC004", loc,
            "srf_words must be positive, got " + std::to_string(srf_words));
  }
  if (lrf_words_per_cluster <= 0) {
    d.error("MC005", loc, "lrf_words_per_cluster must be positive, got " +
                              std::to_string(lrf_words_per_cluster));
  }
  if (n_stream_descriptor_registers < 1) {
    d.error("MC006", loc,
            "need at least one stream descriptor register, got " +
                std::to_string(n_stream_descriptor_registers));
  } else if (n_stream_descriptor_registers < 2) {
    d.warn("MC106", loc,
           "a single SDR serializes every transfer (no memory/compute "
           "overlap is possible)");
  }
  if (srf_words_per_cycle_per_cluster <= 0) {
    d.error("MC007", loc, "srf_words_per_cycle_per_cluster must be positive, "
                          "got " +
                              std::to_string(srf_words_per_cycle_per_cluster));
  }
  if (kernel_startup_cycles < 0 || stream_issue_cycles < 0) {
    d.error("MC008", loc, "startup/issue overheads must be non-negative");
  }

  // Memory system.
  if (mem.dram.n_channels <= 0 || mem.dram.channel_words_per_cycle <= 0.0) {
    d.error("MC009", loc,
            "DRAM bandwidth must be positive (" +
                std::to_string(mem.dram.n_channels) + " channels x " +
                std::to_string(mem.dram.channel_words_per_cycle) +
                " words/cycle)");
  }
  if (mem.cache.n_banks <= 0 || mem.cache.line_words <= 0 ||
      mem.cache.total_words <= 0 || mem.cache.associativity <= 0) {
    d.error("MC010", loc, "stream cache geometry must be positive "
                          "(banks/line_words/total_words/associativity)");
  } else if (mem.cache.total_words <
             static_cast<std::int64_t>(mem.cache.n_banks) *
                 mem.cache.associativity * mem.cache.line_words) {
    d.error("MC010", loc,
            "stream cache smaller than one set per bank (total_words " +
                std::to_string(mem.cache.total_words) + ")");
  }
  if (mem.n_address_generators <= 0 || mem.addrs_per_generator <= 0) {
    d.error("MC011", loc, "address generator throughput must be positive");
  }
  if (mem.scatter_add.units_per_bank <= 0 || mem.scatter_add.latency < 1 ||
      mem.scatter_add.combining_entries < 1) {
    d.error("MC012", loc, "scatter-add unit configuration must be positive");
  }

  // Kernel scheduler options.
  if (sched.n_fpus <= 0 || sched.srf_words_per_cycle <= 0 ||
      sched.cond_units <= 0) {
    d.error("MC013", loc, "schedule resources (FPUs, SRF port, conditional "
                          "units) must be positive");
  }
  if (sched.unroll < 1 || sched.max_ii < 1) {
    d.error("MC014", loc, "schedule unroll and max_ii must be >= 1");
  }

  // Double-buffering floor: the software-pipelined execution of Figure 5
  // needs the SRF to hold at least two in-flight strips on both the input
  // and the output side, i.e. ~4 records (position-record sized, 16 words
  // with headroom) per cluster. Below that every transfer serializes and
  // the SRF allocator livelocks on real programs.
  if (n_clusters > 0 && srf_words > 0) {
    const std::int64_t floor_words = 4LL * 16 * n_clusters;
    if (srf_words < floor_words) {
      d.error("MC015", loc,
              "SRF too small to double-buffer strips: " +
                  std::to_string(srf_words) + " words < " +
                  std::to_string(floor_words) + " (4 records x 16 words x " +
                  std::to_string(n_clusters) + " clusters)");
    }
  }
  return d;
}

}  // namespace smd::sim
