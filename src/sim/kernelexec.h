// Kernel cost model: turns a scheduled kernel into cycle counts.
//
// A kernel invocation costs:
//   startup (microcode load, scalar issue, pipeline priming)
// + per round: outer_pre + software-pipelined body (block_len iterations at
//   II/unroll steady-state cycles, plus fill/drain when the pipeline
//   restarts around outer sections) + outer_post.
//
// All clusters run in SIMD, so chip-level time equals cluster-level time;
// throughput scales with the 16 clusters because each round processes one
// element (or block) per cluster.
#pragma once

#include <cstdint>
#include <map>

#include "src/kernel/ir.h"
#include "src/kernel/schedule.h"

namespace smd::sim {

struct KernelCost {
  kernel::Schedule body;
  int prologue_cycles = 0;
  int outer_pre_cycles = 0;
  int outer_post_cycles = 0;
  int block_len = 1;
  bool has_outer = false;

  /// Total execution cycles for `rounds` outer rounds (excluding the
  /// machine-level kernel startup overhead).
  std::uint64_t cycles_for(std::int64_t rounds) const;
};

/// Computes and memoizes kernel costs (scheduling is expensive).
class KernelCostCache {
 public:
  explicit KernelCostCache(kernel::ScheduleOptions opts) : opts_(opts) {}

  const KernelCost& get(const kernel::KernelDef& def);
  const kernel::ScheduleOptions& options() const { return opts_; }

 private:
  kernel::ScheduleOptions opts_;
  std::map<const kernel::KernelDef*, KernelCost> cache_;
};

}  // namespace smd::sim
