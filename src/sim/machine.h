// Top-level Merrimac node simulator.
//
// Owns the global memory image (the single shared address space through
// which StreamMD interfaces with the scalar-side GROMACS code) and runs
// stream programs on the modeled stream unit.
#pragma once

#include "src/mem/memsys.h"
#include "src/sim/config.h"
#include "src/sim/controller.h"
#include "src/sim/streamop.h"

namespace smd::sim {

class Machine {
 public:
  explicit Machine(MachineConfig cfg = MachineConfig::merrimac())
      : cfg_(std::move(cfg)) {}

  const MachineConfig& config() const { return cfg_; }
  MachineConfig& config() { return cfg_; }

  mem::GlobalMemory& memory() { return memory_; }
  const mem::GlobalMemory& memory() const { return memory_; }

  /// Execute a stream program to completion on the node.
  RunStats run(const StreamProgram& program) {
    Controller controller(cfg_, &memory_);
    return controller.run(program);
  }

 private:
  MachineConfig cfg_;
  mem::GlobalMemory memory_;
};

}  // namespace smd::sim
