// Execution timeline tracing (Figure 7).
//
// Records busy intervals on two lanes -- kernel execution and stream
// memory -- and renders the paper's two-column occupancy snippet, plus
// overlap statistics (fraction of memory time hidden under compute).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace smd::sim {

enum class Lane : int { kKernel = 0, kMemory = 1 };

struct Interval {
  std::uint64_t start;
  std::uint64_t end;  // exclusive
  Lane lane;
  std::string label;
};

class Timeline {
 public:
  void add(Lane lane, std::uint64_t start, std::uint64_t end, std::string label);

  const std::vector<Interval>& intervals() const { return intervals_; }

  /// Cycles where the lane is busy (union of intervals).
  std::uint64_t busy_cycles(Lane lane, std::uint64_t horizon) const;
  /// Cycles where both lanes are busy simultaneously.
  std::uint64_t overlap_cycles(std::uint64_t horizon) const;

  /// ASCII rendering: one row per `cycles_per_row` cycles, two columns
  /// (kernel | memory), '#' = busy. Mirrors Figure 7's layout.
  std::string ascii(std::uint64_t horizon, std::uint64_t cycles_per_row) const;

 private:
  std::vector<bool> occupancy(Lane lane, std::uint64_t horizon) const;
  std::vector<Interval> intervals_;
};

}  // namespace smd::sim
