// Execution timeline tracing (Figure 7).
//
// The stream controller records one interval per stream op -- kernel
// launches on the kernel lane, loads/stores/scatter-add drains on the
// memory lane (one track per SDR slot) -- and this class answers the
// occupancy questions behind the paper's Figure 7: busy cycles per lane,
// kernel/memory overlap, the two-column ASCII snippet, and a Chrome
// trace-event export viewable in chrome://tracing / Perfetto.
//
// Occupancy math is sorted interval-merge, O(n log n) in the number of
// intervals and independent of the cycle horizon, so tracing full
// multi-timestep runs (horizons of 10^8+ cycles) stays cheap.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/trace_event.h"

namespace smd::sim {

/// kStall is a bookkeeping lane, not a hardware resource: the controller
/// records one interval per run of cycles in which a memory op was ready
/// to issue but no stream descriptor register was free. The profiler
/// (src/prof) intersects it with the kernel/memory lanes to attribute
/// cycles; busy_cycles(Lane::kStall, cycles) always equals the
/// RunStats::sdr_stall_cycles counter.
enum class Lane : int { kKernel = 0, kMemory = 1, kStall = 2 };

struct Interval {
  std::uint64_t start;
  std::uint64_t end;  // exclusive
  Lane lane;
  std::string label;
  int track = 0;  ///< sub-track within the lane (memory: SDR slot)
};

class Timeline {
 public:
  /// Record one interval. Zero-length intervals (start == end) are kept --
  /// they carry labels into the Chrome export as instantaneous markers and
  /// count toward intervals() -- but contribute nothing to any occupancy
  /// quantity. Inverted intervals (end < start) are dropped.
  void add(Lane lane, std::uint64_t start, std::uint64_t end,
           std::string label, int track = 0);

  const std::vector<Interval>& intervals() const { return intervals_; }
  bool empty() const { return intervals_.empty(); }

  /// Cycles where the lane is busy (union of intervals) within [0, horizon).
  std::uint64_t busy_cycles(Lane lane, std::uint64_t horizon) const;
  /// Cycles where both lanes are busy simultaneously within [0, horizon).
  std::uint64_t overlap_cycles(std::uint64_t horizon) const;

  /// Disjoint, sorted busy spans of a lane clipped to [0, horizon).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> merged(
      Lane lane, std::uint64_t horizon) const;

  /// ASCII rendering: one row per `cycles_per_row` cycles, two columns
  /// (kernel | memory), '#' = busy. Mirrors Figure 7's layout.
  std::string ascii(std::uint64_t horizon, std::uint64_t cycles_per_row) const;

  /// Append one Chrome trace slice per interval to `sink` under process
  /// `pid`: tid 0 = the kernel lane ("clusters"), tid 1 + track = that
  /// memory SDR slot, and a dedicated high tid = the SDR-stall lane.
  /// Cycles convert to ns at `clock_ghz`.
  void append_chrome_events(obs::TraceSink& sink, int pid,
                            double clock_ghz = 1.0) const;

  /// Single-timeline convenience: a complete Chrome trace document.
  obs::Json chrome_trace_json(double clock_ghz = 1.0) const;
  void write_chrome_trace(const std::string& path,
                          double clock_ghz = 1.0) const;

 private:
  std::vector<Interval> intervals_;
};

}  // namespace smd::sim
