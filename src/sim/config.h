// Machine configuration -- the paper's Table 1.
//
//   Number of stream cache banks            8
//   Number of scatter-add units per bank    1
//   Latency of scatter-add functional unit  4
//   Number of combining store entries       8
//   Number of DRAM interface channels       8
//   Number of address generators            2
//   Operating frequency                     1 GHz
//   Peak DRAM bandwidth                     38.4 GB/s
//   Stream cache bandwidth                  64 GB/s
//   Number of clusters                      16
//   Peak floating point operations/cycle    128 (64 MADD FPUs)
//   SRF bandwidth                           512 GB/s (4 words/cycle/cluster)
//   SRF size                                1 MB
//   Stream cache size                       1 MB
#pragma once

#include <string>

#include "src/analysis/diag.h"
#include "src/kernel/schedule.h"
#include "src/mem/memsys.h"

namespace smd::sim {

/// Policy for allocating/releasing stream descriptor registers (SDRs) --
/// the "low-level hardware register which holds a mapping between an active
/// stream in the SRF and its corresponding memory address" of Section 4.2.
enum class SdrPolicy {
  /// The original flawed allocation: an SDR stays bound to a loaded stream
  /// until the kernel that consumes it retires, so later transfers cannot
  /// start and memory serializes behind compute (Figure 7a).
  kConservative,
  /// The fixed allocation: the SDR is held only for the duration of the
  /// transfer itself, giving perfect memory/compute overlap (Figure 7b).
  kTransferScoped,
};

/// Which simulation core Controller::run uses. Both engines produce
/// bit-identical RunStats (cycle counts, every attribution bucket, every
/// timeline interval) -- the event-driven core is simply faster, advancing
/// time in jumps between retirement events instead of busy-waiting one
/// cycle at a time. kLockstep runs both and throws on any field mismatch;
/// it is the cross-check mode wired into ctest (see DESIGN.md section 10).
enum class SimEngine {
  kStepped,   ///< original cycle-stepped busy-wait loop
  kEvent,     ///< event-driven ready-list core (default)
  kLockstep,  ///< run both, assert bit-identical stats, return the result
};

const char* engine_name(SimEngine e);
/// Parse "stepped" | "event" | "lockstep" (throws std::invalid_argument).
SimEngine parse_engine(const std::string& name);

struct MachineConfig {
  int n_clusters = 16;
  int fpus_per_cluster = 4;
  double clock_ghz = 1.0;
  int lrf_words_per_cluster = 768;
  std::int64_t srf_words = 131072;  ///< 1 MB
  int srf_words_per_cycle_per_cluster = 4;

  mem::MemSystemConfig mem;

  int n_stream_descriptor_registers = 8;
  SdrPolicy sdr_policy = SdrPolicy::kTransferScoped;
  SimEngine engine = SimEngine::kEvent;

  /// Scalar-core + microcontroller overhead to launch a kernel and prime
  /// its software pipeline (Section 5.1 lists this among the reasons for
  /// sub-optimal sustained performance).
  int kernel_startup_cycles = 100;
  /// Scalar-core overhead to issue one stream memory instruction.
  int stream_issue_cycles = 4;

  kernel::ScheduleOptions sched;

  /// Peak double-precision GFLOPS (MADD counts 2 flops).
  double peak_gflops() const {
    return n_clusters * fpus_per_cluster * 2.0 * clock_ghz;
  }

  /// Structured sanity checks over the configuration (check IDs MC001..;
  /// catalogue in DESIGN.md "Static checking"): non-positive cluster/FPU/
  /// bandwidth counts, an SRF too small to double-buffer strips, and so
  /// on. Controller::run calls this before executing a program and throws
  /// analysis::CheckFailure on errors, so nonsense overrides (e.g. from a
  /// tune sweep) fail at the front door instead of deep inside the memory
  /// model. Tuner/CLI callers can validate ahead of time.
  analysis::Diagnostics validate() const;

  /// The paper's single-node Merrimac configuration.
  static MachineConfig merrimac() {
    MachineConfig cfg;
    cfg.sched.n_fpus = cfg.fpus_per_cluster;
    cfg.sched.srf_words_per_cycle = cfg.srf_words_per_cycle_per_cluster;
    cfg.sched.unroll = 2;
    cfg.sched.software_pipeline = true;
    return cfg;
  }
};

}  // namespace smd::sim
