#include "src/sim/controller.h"

#include <span>
#include <stdexcept>
#include <string>

#include "src/analysis/check_stream.h"
#include "src/obs/registry.h"

namespace smd::sim {
namespace {

struct StreamState {
  std::vector<double> buffer;
  std::int64_t declared_words = 0;
  int producer = -1;               // instr id, -1 = pre-initialized (none)
  std::vector<int> consumers;      // instr ids reading this stream
  int consumers_remaining = 0;
  bool allocated = false;
  bool freed = false;
};

enum class Phase { kWaiting, kRunning, kDone };

struct InstrState {
  Phase phase = Phase::kWaiting;
  std::vector<int> deps;           // instrs that must be kDone first
  std::vector<StreamId> produces;  // streams written
  std::vector<StreamId> consumes;  // streams read
  bool is_kernel = false;
  bool is_load = false;
  bool holds_sdr = false;
  int sdr_slot = -1;               // which SDR services the op (trace track)
  std::string label;               // trace label ("kernel foo", "load s3")
  mem::MemSystem::OpId mem_id = -1;
  std::uint64_t start = 0;
  std::uint64_t end = 0;  // kernels: known at start
};

const char* mem_op_verb(mem::MemOpKind kind) {
  switch (kind) {
    case mem::MemOpKind::kLoadStrided: return "load";
    case mem::MemOpKind::kLoadGather: return "gather";
    case mem::MemOpKind::kStoreStrided: return "store";
    case mem::MemOpKind::kStoreScatter: return "scatter";
    case mem::MemOpKind::kScatterAdd: return "scatter-add";
  }
  return "mem";
}

}  // namespace

Controller::Controller(const MachineConfig& cfg, mem::GlobalMemory* memory)
    : cfg_(cfg), memory_(memory) {}

RunStats Controller::run(const StreamProgram& program) {
  obs::ScopedTimer run_timer(obs::CounterRegistry::global(),
                             "sim.controller_run");
  // Machine-config pre-flight: reject nonsense overrides (non-positive
  // clusters/bandwidth, SRF below double-buffering needs) with structured
  // diagnostics before they fail deep inside the memory model.
  {
    analysis::Diagnostics diags = cfg_.validate();
    diags.count_into_registry("sim.machine");
    if (diags.errors() > 0) throw analysis::CheckFailure(std::move(diags));
  }
  // Static pre-flight: slot lifetimes, capacities, address ranges and
  // concurrent-update races, fatal on error (warnings are counted into the
  // obs registry under analysis.stream).
  {
    analysis::StreamCheckOptions check;
    check.n_clusters = cfg_.n_clusters;
    check.srf_words = cfg_.srf_words;
    check.memory_words = memory_ != nullptr ? memory_->size() : 0;
    analysis::require_valid_stream_program(program, check);
  }
  mem::MemSystem memsys(cfg_.mem, memory_);
  SrfAllocator srf(cfg_.srf_words);
  KernelCostCache costs(cfg_.sched);
  RunStats stats;

  const int n = static_cast<int>(program.instrs.size());
  std::vector<InstrState> st(static_cast<std::size_t>(n));
  std::vector<StreamState> streams(program.stream_words.size());
  for (std::size_t s = 0; s < streams.size(); ++s) {
    streams[s].declared_words = program.stream_words[s];
  }

  // ---- Build the dependence graph from stream reads/writes. -------------
  for (int i = 0; i < n; ++i) {
    auto& is = st[static_cast<std::size_t>(i)];
    const auto& instr = program.instrs[static_cast<std::size_t>(i)];
    if (const auto* load = std::get_if<LoadOp>(&instr)) {
      is.is_load = true;
      is.produces.push_back(load->dst);
    } else if (const auto* store = std::get_if<StoreOp>(&instr)) {
      is.consumes.push_back(store->src);
    } else {
      const auto& k = std::get<KernelOp>(instr);
      is.is_kernel = true;
      if (k.bindings.size() != k.def->streams.size()) {
        throw std::runtime_error("kernel binding arity mismatch");
      }
      for (std::size_t s = 0; s < k.bindings.size(); ++s) {
        if (k.def->streams[s].dir == kernel::StreamDir::kIn) {
          is.consumes.push_back(k.bindings[s]);
        } else {
          is.produces.push_back(k.bindings[s]);
        }
      }
    }
    for (StreamId s : is.consumes) {
      auto& ss = streams[static_cast<std::size_t>(s)];
      if (ss.producer >= 0) is.deps.push_back(ss.producer);
      ss.consumers.push_back(i);
      ++ss.consumers_remaining;
    }
    for (StreamId s : is.produces) {
      auto& ss = streams[static_cast<std::size_t>(s)];
      // WAW on the prior producer and WAR on its readers so far.
      if (ss.producer >= 0) {
        is.deps.push_back(ss.producer);
        for (int c : ss.consumers) is.deps.push_back(c);
      }
      ss.producer = i;
    }
  }

  // SDRs are tracked as individual slots (not just a count) so each memory
  // op's trace interval lands on a stable per-SDR track in the timeline.
  std::vector<bool> sdr_in_use(
      static_cast<std::size_t>(cfg_.n_stream_descriptor_registers), false);
  int free_sdrs = cfg_.n_stream_descriptor_registers;
  auto acquire_sdr = [&]() -> int {
    for (std::size_t s = 0; s < sdr_in_use.size(); ++s) {
      if (!sdr_in_use[s]) {
        sdr_in_use[s] = true;
        --free_sdrs;
        return static_cast<int>(s);
      }
    }
    return -1;
  };
  auto release_sdr = [&](int slot) {
    sdr_in_use[static_cast<std::size_t>(slot)] = false;
    ++free_sdrs;
  };
  bool clusters_busy = false;
  int running_kernel = -1;
  int remaining = n;
  std::uint64_t now = 0;
  std::uint64_t last_progress = 0;

  auto deps_done = [&](int i) {
    for (int d : st[static_cast<std::size_t>(i)].deps) {
      if (st[static_cast<std::size_t>(d)].phase != Phase::kDone) return false;
    }
    return true;
  };

  // SRF buffers are allocated strictly in program order (the compile-time
  // stream-scheduling discipline): otherwise a later strip's loads can
  // grab the space an earlier strip's kernel outputs need and deadlock the
  // scoreboard. `next_alloc` is the first instruction whose produced
  // streams are not yet allocated.
  int next_alloc = 0;
  auto advance_next_alloc = [&] {
    while (next_alloc < n) {
      bool pending = false;
      for (StreamId s : st[static_cast<std::size_t>(next_alloc)].produces) {
        if (!streams[static_cast<std::size_t>(s)].allocated) pending = true;
      }
      if (pending) break;
      ++next_alloc;
    }
  };
  advance_next_alloc();

  auto alloc_outputs = [&](int i) {
    // Reserve SRF space for every stream this instr produces (idempotent).
    std::int64_t need = 0;
    for (StreamId s : st[static_cast<std::size_t>(i)].produces) {
      if (!streams[static_cast<std::size_t>(s)].allocated) {
        need += streams[static_cast<std::size_t>(s)].declared_words;
      }
    }
    if (need == 0) return true;
    if (i != next_alloc) return false;  // in-order allocation only
    if (!srf.try_alloc(need)) return false;
    for (StreamId s : st[static_cast<std::size_t>(i)].produces) {
      streams[static_cast<std::size_t>(s)].allocated = true;
    }
    advance_next_alloc();
    return true;
  };

  auto maybe_free_stream = [&](StreamId s) {
    auto& ss = streams[static_cast<std::size_t>(s)];
    if (ss.freed || !ss.allocated) return;
    const bool producer_done =
        ss.producer < 0 || st[static_cast<std::size_t>(ss.producer)].phase == Phase::kDone;
    if (producer_done && ss.consumers_remaining == 0) {
      srf.free(ss.declared_words);
      ss.freed = true;
    }
  };

  // Conservative SDR policy: a load's SDR is released only when every
  // consumer of the loaded stream has retired.
  auto conservative_release_ready = [&](int i) {
    for (StreamId s : st[static_cast<std::size_t>(i)].produces) {
      if (streams[static_cast<std::size_t>(s)].consumers_remaining > 0) return false;
    }
    return true;
  };
  std::vector<int> sdr_parked;  // loads whose SDR awaits consumer retirement

  auto on_retire = [&](int i) {
    auto& is = st[static_cast<std::size_t>(i)];
    is.phase = Phase::kDone;
    --remaining;
    last_progress = now;
    for (StreamId s : is.consumes) {
      --streams[static_cast<std::size_t>(s)].consumers_remaining;
      maybe_free_stream(s);
    }
    for (StreamId s : is.produces) maybe_free_stream(s);
    // Conservative SDRs may now be releasable.
    for (auto it = sdr_parked.begin(); it != sdr_parked.end();) {
      auto& parked = st[static_cast<std::size_t>(*it)];
      if (conservative_release_ready(*it)) {
        release_sdr(parked.sdr_slot);
        parked.holds_sdr = false;
        it = sdr_parked.erase(it);
      } else {
        ++it;
      }
    }
  };

  auto start_kernel = [&](int i) {
    const auto& k = std::get<KernelOp>(program.instrs[static_cast<std::size_t>(i)]);
    auto& is = st[static_cast<std::size_t>(i)];

    // Functional execution, exact; results land in the SRF buffers now.
    kernel::StreamBindings bindings;
    bindings.inputs.resize(k.def->streams.size());
    bindings.outputs.resize(k.def->streams.size());
    for (std::size_t s = 0; s < k.bindings.size(); ++s) {
      auto& buf = streams[static_cast<std::size_t>(k.bindings[s])].buffer;
      if (k.def->streams[s].dir == kernel::StreamDir::kIn) {
        bindings.inputs[s] = std::span<const double>(buf);
        bindings.outputs[s] = nullptr;
      } else {
        bindings.outputs[s] = &buf;
      }
    }
    kernel::Interpreter interp(*k.def, cfg_.n_clusters);
    stats.interp += interp.run(bindings, k.rounds);

    const KernelCost& cost = costs.get(*k.def);
    const std::uint64_t cycles =
        static_cast<std::uint64_t>(cfg_.kernel_startup_cycles) +
        cost.cycles_for(k.rounds);
    is.label = "kernel " + k.def->name;
    is.start = now;
    is.end = now + cycles;
    is.phase = Phase::kRunning;
    running_kernel = i;
    clusters_busy = true;
    ++stats.n_kernel_launches;
  };

  auto start_memop = [&](int i) {
    auto& is = st[static_cast<std::size_t>(i)];
    const auto& instr = program.instrs[static_cast<std::size_t>(i)];
    is.sdr_slot = acquire_sdr();
    is.holds_sdr = true;
    is.start = now;
    is.phase = Phase::kRunning;
    ++stats.n_memory_ops;
    if (const auto* load = std::get_if<LoadOp>(&instr)) {
      is.label = std::string(mem_op_verb(load->desc.kind)) + " s" +
                 std::to_string(load->dst);
      is.mem_id = memsys.issue(load->desc,
                               &streams[static_cast<std::size_t>(load->dst)].buffer,
                               nullptr);
    } else {
      const auto& store = std::get<StoreOp>(instr);
      is.label = std::string(mem_op_verb(store.desc.kind)) + " s" +
                 std::to_string(store.src);
      is.mem_id = memsys.issue(store.desc, nullptr,
                               &streams[static_cast<std::size_t>(store.src)].buffer);
    }
  };

  // SDR-stall runs become Lane::kStall intervals so the profiler can
  // intersect them with lane occupancy; the closed-run invariant is
  // busy_cycles(kStall) == sdr_stall_cycles.
  bool stall_open = false;
  std::uint64_t stall_start = 0;

  // ---- Main loop. --------------------------------------------------------
  while (remaining > 0) {
    // Issue everything that is ready this cycle.
    bool sdr_starved = false;
    for (int i = 0; i < n; ++i) {
      auto& is = st[static_cast<std::size_t>(i)];
      if (is.phase != Phase::kWaiting || !deps_done(i)) continue;
      if (is.is_kernel) {
        if (clusters_busy) continue;
        if (!alloc_outputs(i)) continue;
        start_kernel(i);
      } else {
        if (free_sdrs <= 0) {
          sdr_starved = true;
          continue;
        }
        if (is.is_load && !alloc_outputs(i)) continue;
        start_memop(i);
      }
    }
    if (sdr_starved) {
      ++stats.sdr_stall_cycles;
      if (!stall_open) {
        stall_open = true;
        stall_start = now;
      }
    } else if (stall_open) {
      stats.timeline.add(Lane::kStall, stall_start, now, "sdr-stall");
      stall_open = false;
    }

    memsys.tick();
    ++now;

    // Retire finished work.
    if (running_kernel >= 0 &&
        st[static_cast<std::size_t>(running_kernel)].end <= now) {
      auto& is = st[static_cast<std::size_t>(running_kernel)];
      stats.timeline.add(Lane::kKernel, is.start, is.end, is.label);
      stats.kernel_busy_cycles += is.end - is.start;
      clusters_busy = false;
      const int finished = running_kernel;
      running_kernel = -1;
      on_retire(finished);
    }
    for (int i = 0; i < n; ++i) {
      auto& is = st[static_cast<std::size_t>(i)];
      if (is.phase != Phase::kRunning || is.is_kernel) continue;
      if (!memsys.op_done(is.mem_id)) continue;
      is.end = now;
      stats.timeline.add(Lane::kMemory, is.start, is.end, is.label,
                         is.sdr_slot);
      if (is.holds_sdr) {
        const bool conservative =
            cfg_.sdr_policy == SdrPolicy::kConservative && is.is_load;
        if (conservative && !conservative_release_ready(i)) {
          sdr_parked.push_back(i);
        } else {
          release_sdr(is.sdr_slot);
          is.holds_sdr = false;
        }
      }
      on_retire(i);
    }

    if (now - last_progress > 50'000'000ULL) {
      throw std::runtime_error("stream controller deadlock: " +
                               std::to_string(remaining) + " instrs stuck");
    }
  }

  if (stall_open) stats.timeline.add(Lane::kStall, stall_start, now, "sdr-stall");
  stats.cycles = now;
  stats.mem_stats = memsys.stats();
  stats.cache_stats = memsys.cache_stats();
  stats.dram_stats = memsys.dram_stats();
  stats.scatter_add_stats = memsys.scatter_add_stats();
  stats.mem_words = stats.mem_stats.words_loaded + stats.mem_stats.words_stored;
  stats.mem_busy_cycles = stats.mem_stats.busy_cycles;
  stats.overlap_cycles = stats.timeline.overlap_cycles(now);
  stats.srf_peak_words = srf.peak();

  auto& reg = obs::CounterRegistry::global();
  reg.add("sim.runs");
  reg.add("sim.cycles", static_cast<std::int64_t>(stats.cycles));
  reg.add("sim.kernel_launches", stats.n_kernel_launches);
  reg.add("sim.memory_ops", stats.n_memory_ops);
  reg.add("sim.kernel_busy_cycles",
          static_cast<std::int64_t>(stats.kernel_busy_cycles));
  reg.add("sim.mem_busy_cycles",
          static_cast<std::int64_t>(stats.mem_busy_cycles));
  reg.add("sim.overlap_cycles",
          static_cast<std::int64_t>(stats.overlap_cycles));
  reg.add("sim.sdr_stall_cycles",
          static_cast<std::int64_t>(stats.sdr_stall_cycles));
  reg.set_gauge("sim.srf_peak_words", static_cast<double>(srf.peak()));
  return stats;
}

}  // namespace smd::sim
