#include "src/sim/controller.h"

#include <algorithm>
#include <span>
#include <stdexcept>
#include <string>

#include "src/analysis/check_stream.h"
#include "src/obs/registry.h"

namespace smd::sim {
namespace {

struct StreamState {
  std::vector<double> buffer;
  std::int64_t declared_words = 0;
  int producer = -1;               // instr id, -1 = pre-initialized (none)
  std::vector<int> consumers;      // instr ids reading this stream
  int consumers_remaining = 0;
  bool allocated = false;
  bool freed = false;
};

enum class Phase { kWaiting, kRunning, kDone };

struct InstrState {
  Phase phase = Phase::kWaiting;
  std::vector<int> deps;           // instrs that must be kDone first
  std::vector<StreamId> produces;  // streams written
  std::vector<StreamId> consumes;  // streams read
  bool is_kernel = false;
  bool is_load = false;
  bool holds_sdr = false;
  int sdr_slot = -1;               // which SDR services the op (trace track)
  std::string label;               // trace label ("kernel foo", "load s3")
  mem::MemSystem::OpId mem_id = -1;
  std::uint64_t start = 0;
  std::uint64_t end = 0;  // kernels: known at start
};

const char* mem_op_verb(mem::MemOpKind kind) {
  switch (kind) {
    case mem::MemOpKind::kLoadStrided: return "load";
    case mem::MemOpKind::kLoadGather: return "gather";
    case mem::MemOpKind::kStoreStrided: return "store";
    case mem::MemOpKind::kStoreScatter: return "scatter";
    case mem::MemOpKind::kScatterAdd: return "scatter-add";
  }
  return "mem";
}

/// Result of one issue attempt during an issue pass.
enum class IssueOutcome {
  kIssued,
  /// Ready and otherwise issuable, blocked *solely* on a free SDR. Only
  /// this outcome counts toward sdr_stall_cycles: an op that would also
  /// fail its SRF allocation is SRF-pressure stalled, not SDR-stalled.
  kSdrBlocked,
  kBlocked,
};

/// A run that makes no progress for this many cycles is declared
/// deadlocked (dependence cycle or SRF overcommit in the program).
constexpr std::uint64_t kDeadlockCycles = 50'000'000ULL;
constexpr std::uint64_t kNoEvent = ~0ULL;

/// One stream-program execution: all scoreboard state plus the two engine
/// drivers. run_stepped() is the reference busy-wait loop (one issue scan
/// and one MemSystem::tick per cycle); run_event() keeps a ready list
/// keyed on dependency retirement and advances `now_` in jumps to the
/// next interesting time. Both must produce bit-identical RunStats --
/// SimEngine::kLockstep and the lockstep ctest enforce it.
class RunContext {
 public:
  RunContext(const MachineConfig& cfg, mem::GlobalMemory* memory,
             const StreamProgram& program)
      : cfg_(cfg),
        program_(program),
        memsys_(cfg.mem, memory),
        srf_(cfg.srf_words),
        costs_(cfg.sched),
        n_(static_cast<int>(program.instrs.size())),
        st_(program.instrs.size()),
        streams_(program.stream_words.size()),
        sdr_in_use_(
            static_cast<std::size_t>(cfg.n_stream_descriptor_registers),
            false),
        free_sdrs_(cfg.n_stream_descriptor_registers) {
    for (std::size_t s = 0; s < streams_.size(); ++s) {
      streams_[s].declared_words = program.stream_words[s];
    }
    build_dependence_graph();
    advance_next_alloc();
  }

  RunStats run_stepped();
  RunStats run_event();

 private:
  // ---- Dependence graph (stream reads/writes). ---------------------------
  void build_dependence_graph() {
    for (int i = 0; i < n_; ++i) {
      auto& is = st_[static_cast<std::size_t>(i)];
      const auto& instr = program_.instrs[static_cast<std::size_t>(i)];
      if (const auto* load = std::get_if<LoadOp>(&instr)) {
        is.is_load = true;
        is.produces.push_back(load->dst);
      } else if (const auto* store = std::get_if<StoreOp>(&instr)) {
        is.consumes.push_back(store->src);
      } else {
        const auto& k = std::get<KernelOp>(instr);
        is.is_kernel = true;
        if (k.bindings.size() != k.def->streams.size()) {
          throw std::runtime_error("kernel binding arity mismatch");
        }
        for (std::size_t s = 0; s < k.bindings.size(); ++s) {
          if (k.def->streams[s].dir == kernel::StreamDir::kIn) {
            is.consumes.push_back(k.bindings[s]);
          } else {
            is.produces.push_back(k.bindings[s]);
          }
        }
      }
      for (StreamId s : is.consumes) {
        auto& ss = streams_[static_cast<std::size_t>(s)];
        if (ss.producer >= 0) is.deps.push_back(ss.producer);
        ss.consumers.push_back(i);
        ++ss.consumers_remaining;
      }
      for (StreamId s : is.produces) {
        auto& ss = streams_[static_cast<std::size_t>(s)];
        // WAW on the prior producer and WAR on its readers so far.
        if (ss.producer >= 0) {
          is.deps.push_back(ss.producer);
          for (int c : ss.consumers) is.deps.push_back(c);
        }
        ss.producer = i;
      }
    }
  }

  bool deps_done(int i) const {
    for (int d : st_[static_cast<std::size_t>(i)].deps) {
      if (st_[static_cast<std::size_t>(d)].phase != Phase::kDone) return false;
    }
    return true;
  }

  // ---- SDR slots. --------------------------------------------------------
  // SDRs are tracked as individual slots (not just a count) so each memory
  // op's trace interval lands on a stable per-SDR track in the timeline.
  int acquire_sdr() {
    for (std::size_t s = 0; s < sdr_in_use_.size(); ++s) {
      if (!sdr_in_use_[s]) {
        sdr_in_use_[s] = true;
        --free_sdrs_;
        return static_cast<int>(s);
      }
    }
    return -1;
  }

  void release_sdr(int slot) {
    sdr_in_use_[static_cast<std::size_t>(slot)] = false;
    ++free_sdrs_;
  }

  // ---- SRF allocation. ---------------------------------------------------
  // SRF buffers are allocated strictly in program order (the compile-time
  // stream-scheduling discipline): otherwise a later strip's loads can
  // grab the space an earlier strip's kernel outputs need and deadlock the
  // scoreboard. `next_alloc_` is the first instruction whose produced
  // streams are not yet allocated.
  void advance_next_alloc() {
    while (next_alloc_ < n_) {
      bool pending = false;
      for (StreamId s : st_[static_cast<std::size_t>(next_alloc_)].produces) {
        if (!streams_[static_cast<std::size_t>(s)].allocated) pending = true;
      }
      if (pending) break;
      ++next_alloc_;
    }
  }

  std::int64_t alloc_need(int i) const {
    std::int64_t need = 0;
    for (StreamId s : st_[static_cast<std::size_t>(i)].produces) {
      if (!streams_[static_cast<std::size_t>(s)].allocated) {
        need += streams_[static_cast<std::size_t>(s)].declared_words;
      }
    }
    return need;
  }

  /// Reserve SRF space for every stream this instr produces (idempotent).
  bool alloc_outputs(int i) {
    const std::int64_t need = alloc_need(i);
    if (need == 0) return true;
    if (i != next_alloc_) return false;  // in-order allocation only
    if (!srf_.try_alloc(need)) return false;
    for (StreamId s : st_[static_cast<std::size_t>(i)].produces) {
      streams_[static_cast<std::size_t>(s)].allocated = true;
    }
    advance_next_alloc();
    return true;
  }

  /// Side-effect-free twin of alloc_outputs: would the reservation succeed?
  bool can_alloc_outputs(int i) const {
    const std::int64_t need = alloc_need(i);
    if (need == 0) return true;
    if (i != next_alloc_) return false;
    return srf_.fits(need);
  }

  void maybe_free_stream(StreamId s) {
    auto& ss = streams_[static_cast<std::size_t>(s)];
    if (ss.freed || !ss.allocated) return;
    const bool producer_done =
        ss.producer < 0 ||
        st_[static_cast<std::size_t>(ss.producer)].phase == Phase::kDone;
    if (producer_done && ss.consumers_remaining == 0) {
      srf_.free(ss.declared_words);
      ss.freed = true;
    }
  }

  // Conservative SDR policy: a load's SDR is released only when every
  // consumer of the loaded stream has retired.
  bool conservative_release_ready(int i) const {
    for (StreamId s : st_[static_cast<std::size_t>(i)].produces) {
      if (streams_[static_cast<std::size_t>(s)].consumers_remaining > 0) {
        return false;
      }
    }
    return true;
  }

  // ---- Retirement. -------------------------------------------------------
  void on_retire(int i) {
    auto& is = st_[static_cast<std::size_t>(i)];
    is.phase = Phase::kDone;
    --remaining_;
    last_progress_ = now_;
    for (StreamId s : is.consumes) {
      --streams_[static_cast<std::size_t>(s)].consumers_remaining;
      maybe_free_stream(s);
    }
    for (StreamId s : is.produces) maybe_free_stream(s);
    // Conservative SDRs may now be releasable.
    for (auto it = sdr_parked_.begin(); it != sdr_parked_.end();) {
      auto& parked = st_[static_cast<std::size_t>(*it)];
      if (conservative_release_ready(*it)) {
        release_sdr(parked.sdr_slot);
        parked.holds_sdr = false;
        it = sdr_parked_.erase(it);
      } else {
        ++it;
      }
    }
    if (event_mode_) {
      for (int s : succ_[static_cast<std::size_t>(i)]) {
        if (--indegree_[static_cast<std::size_t>(s)] == 0) {
          ready_.insert(std::lower_bound(ready_.begin(), ready_.end(), s), s);
        }
      }
    }
  }

  void retire_kernel() {
    auto& is = st_[static_cast<std::size_t>(running_kernel_)];
    stats_.timeline.add(Lane::kKernel, is.start, is.end, is.label);
    stats_.kernel_busy_cycles += is.end - is.start;
    clusters_busy_ = false;
    const int finished = running_kernel_;
    running_kernel_ = -1;
    on_retire(finished);
  }

  void retire_memop(int i) {
    auto& is = st_[static_cast<std::size_t>(i)];
    is.end = now_;
    stats_.timeline.add(Lane::kMemory, is.start, is.end, is.label,
                        is.sdr_slot);
    if (is.holds_sdr) {
      const bool conservative =
          cfg_.sdr_policy == SdrPolicy::kConservative && is.is_load;
      if (conservative && !conservative_release_ready(i)) {
        sdr_parked_.push_back(i);
      } else {
        release_sdr(is.sdr_slot);
        is.holds_sdr = false;
      }
    }
    on_retire(i);
  }

  // ---- Issue. ------------------------------------------------------------
  void start_kernel(int i) {
    const auto& k =
        std::get<KernelOp>(program_.instrs[static_cast<std::size_t>(i)]);
    auto& is = st_[static_cast<std::size_t>(i)];

    // Functional execution, exact; results land in the SRF buffers now.
    kernel::StreamBindings bindings;
    bindings.inputs.resize(k.def->streams.size());
    bindings.outputs.resize(k.def->streams.size());
    for (std::size_t s = 0; s < k.bindings.size(); ++s) {
      auto& buf = streams_[static_cast<std::size_t>(k.bindings[s])].buffer;
      if (k.def->streams[s].dir == kernel::StreamDir::kIn) {
        bindings.inputs[s] = std::span<const double>(buf);
        bindings.outputs[s] = nullptr;
      } else {
        bindings.outputs[s] = &buf;
      }
    }
    kernel::Interpreter interp(*k.def, cfg_.n_clusters);
    stats_.interp += interp.run(bindings, k.rounds);

    const KernelCost& cost = costs_.get(*k.def);
    const std::uint64_t cycles =
        static_cast<std::uint64_t>(cfg_.kernel_startup_cycles) +
        cost.cycles_for(k.rounds);
    is.label = "kernel " + k.def->name;
    is.start = now_;
    is.end = now_ + cycles;
    is.phase = Phase::kRunning;
    running_kernel_ = i;
    clusters_busy_ = true;
    ++stats_.n_kernel_launches;
  }

  void start_memop(int i) {
    auto& is = st_[static_cast<std::size_t>(i)];
    const auto& instr = program_.instrs[static_cast<std::size_t>(i)];
    is.sdr_slot = acquire_sdr();
    is.holds_sdr = true;
    is.start = now_;
    is.phase = Phase::kRunning;
    ++stats_.n_memory_ops;
    if (const auto* load = std::get_if<LoadOp>(&instr)) {
      is.label = std::string(mem_op_verb(load->desc.kind)) + " s" +
                 std::to_string(load->dst);
      is.mem_id = memsys_.issue(
          load->desc, &streams_[static_cast<std::size_t>(load->dst)].buffer,
          nullptr);
    } else {
      const auto& store = std::get<StoreOp>(instr);
      is.label = std::string(mem_op_verb(store.desc.kind)) + " s" +
                 std::to_string(store.src);
      is.mem_id = memsys_.issue(
          store.desc, nullptr,
          &streams_[static_cast<std::size_t>(store.src)].buffer);
    }
    if (event_mode_) {
      running_memops_.insert(
          std::lower_bound(running_memops_.begin(), running_memops_.end(), i),
          i);
    }
  }

  /// One issue attempt for a waiting instr whose dependences have retired.
  IssueOutcome try_issue(int i) {
    auto& is = st_[static_cast<std::size_t>(i)];
    if (is.is_kernel) {
      if (clusters_busy_) return IssueOutcome::kBlocked;
      if (!alloc_outputs(i)) return IssueOutcome::kBlocked;
      start_kernel(i);
      return IssueOutcome::kIssued;
    }
    if (free_sdrs_ <= 0) {
      return (!is.is_load || can_alloc_outputs(i)) ? IssueOutcome::kSdrBlocked
                                                   : IssueOutcome::kBlocked;
    }
    if (is.is_load && !alloc_outputs(i)) return IssueOutcome::kBlocked;
    start_memop(i);
    return IssueOutcome::kIssued;
  }

  // ---- SDR-stall bookkeeping. --------------------------------------------
  // Stall runs become Lane::kStall intervals so the profiler can intersect
  // them with lane occupancy; the closed-run invariant is
  // busy_cycles(kStall) == sdr_stall_cycles.
  void update_stall_run(bool starved) {
    if (starved) {
      if (!stall_open_) {
        stall_open_ = true;
        stall_start_ = now_;
      }
    } else if (stall_open_) {
      stats_.timeline.add(Lane::kStall, stall_start_, now_, "sdr-stall");
      stall_open_ = false;
    }
  }

  [[noreturn]] void throw_deadlock() const {
    throw std::runtime_error("stream controller deadlock: " +
                             std::to_string(remaining_) + " instrs stuck");
  }

  RunStats finalize() {
    if (stall_open_) {
      stats_.timeline.add(Lane::kStall, stall_start_, now_, "sdr-stall");
    }
    stats_.cycles = now_;
    stats_.mem_stats = memsys_.stats();
    stats_.cache_stats = memsys_.cache_stats();
    stats_.dram_stats = memsys_.dram_stats();
    stats_.scatter_add_stats = memsys_.scatter_add_stats();
    stats_.mem_words =
        stats_.mem_stats.words_loaded + stats_.mem_stats.words_stored;
    stats_.mem_busy_cycles = stats_.mem_stats.busy_cycles;
    stats_.overlap_cycles = stats_.timeline.overlap_cycles(now_);
    stats_.srf_peak_words = srf_.peak();
    return std::move(stats_);
  }

  const MachineConfig& cfg_;
  const StreamProgram& program_;
  mem::MemSystem memsys_;
  SrfAllocator srf_;
  KernelCostCache costs_;
  RunStats stats_;

  const int n_;
  std::vector<InstrState> st_;
  std::vector<StreamState> streams_;
  std::vector<bool> sdr_in_use_;
  int free_sdrs_;
  bool clusters_busy_ = false;
  int running_kernel_ = -1;
  int remaining_ = 0;
  std::uint64_t now_ = 0;
  std::uint64_t last_progress_ = 0;
  int next_alloc_ = 0;
  std::vector<int> sdr_parked_;  // loads whose SDR awaits consumer retirement
  bool stall_open_ = false;
  std::uint64_t stall_start_ = 0;

  // Event-engine state: reverse dependence edges, unfinished-dependence
  // counts, the sorted ready list, and the in-flight memory ops.
  bool event_mode_ = false;
  std::vector<std::vector<int>> succ_;
  std::vector<int> indegree_;
  std::vector<int> ready_;
  std::vector<int> running_memops_;
};

// ---- Cycle-stepped reference engine. --------------------------------------
RunStats RunContext::run_stepped() {
  remaining_ = n_;
  while (remaining_ > 0) {
    // Issue everything that is ready this cycle.
    bool starved = false;
    for (int i = 0; i < n_; ++i) {
      if (st_[static_cast<std::size_t>(i)].phase != Phase::kWaiting ||
          !deps_done(i)) {
        continue;
      }
      if (try_issue(i) == IssueOutcome::kSdrBlocked) starved = true;
    }
    if (starved) ++stats_.sdr_stall_cycles;
    update_stall_run(starved);

    memsys_.tick();
    ++now_;

    // Retire finished work.
    if (running_kernel_ >= 0 &&
        st_[static_cast<std::size_t>(running_kernel_)].end <= now_) {
      retire_kernel();
    }
    for (int i = 0; i < n_; ++i) {
      auto& is = st_[static_cast<std::size_t>(i)];
      if (is.phase != Phase::kRunning || is.is_kernel) continue;
      if (!memsys_.op_done(is.mem_id)) continue;
      retire_memop(i);
    }

    if (now_ - last_progress_ > kDeadlockCycles) throw_deadlock();
  }
  return finalize();
}

// ---- Event-driven engine. -------------------------------------------------
//
// Between two retirement events no issue condition can change: dependences
// retire, SDRs free, SRF space frees and the cluster array idles only in
// on_retire. So one issue pass per retirement (over the ready list, in
// instruction order -- the same forward scan the stepped engine makes)
// reproduces the stepped engine's decisions exactly, and `now_` can jump
// straight to the next interesting time: the running kernel's end, the
// next memory-op completion, or MemSystem::next_event_time().
RunStats RunContext::run_event() {
  remaining_ = n_;
  event_mode_ = true;
  succ_.assign(static_cast<std::size_t>(n_), {});
  indegree_.assign(static_cast<std::size_t>(n_), 0);
  for (int i = 0; i < n_; ++i) {
    const auto& deps = st_[static_cast<std::size_t>(i)].deps;
    indegree_[static_cast<std::size_t>(i)] = static_cast<int>(deps.size());
    for (int d : deps) succ_[static_cast<std::size_t>(d)].push_back(i);
    if (deps.empty()) ready_.push_back(i);
  }

  auto issue_pass = [&] {
    bool starved = false;
    std::vector<int> keep;
    keep.reserve(ready_.size());
    for (int i : ready_) {
      const IssueOutcome out = try_issue(i);
      if (out == IssueOutcome::kIssued) continue;
      if (out == IssueOutcome::kSdrBlocked) starved = true;
      keep.push_back(i);
    }
    ready_.swap(keep);
    return starved;
  };

  bool starved = false;
  if (remaining_ > 0) {
    starved = issue_pass();
    update_stall_run(starved);
  }
  while (remaining_ > 0) {
    // Next time anything can retire or the memory system needs a cycle.
    std::uint64_t next = kNoEvent;
    if (running_kernel_ >= 0) {
      const std::uint64_t end =
          st_[static_cast<std::size_t>(running_kernel_)].end;
      next = std::min(next, std::max(end, now_ + 1));
    }
    for (int i : running_memops_) {
      const auto id = st_[static_cast<std::size_t>(i)].mem_id;
      if (memsys_.op_completed(id)) {
        next = std::min(next, std::max(memsys_.op_finish_time(id), now_ + 1));
      }
    }
    next = std::min(next, memsys_.next_event_time());
    // Deadlock fidelity: the stepped engine checks progress *after* its
    // retire phase, so a retirement landing exactly at last_progress +
    // kDeadlockCycles + 1 still counts. Clamp the jump there; if nothing
    // retires at the clamp point the post-retire check below throws, at
    // the same simulated cycle the stepped engine would.
    next = std::min(next, last_progress_ + kDeadlockCycles + 1);

    // Every cycle in [now_, next) is an issue-phase cycle with the same
    // (starved) verdict the last pass computed.
    if (starved) stats_.sdr_stall_cycles += next - now_;
    memsys_.tick_until(next);
    now_ = next;

    bool retired = false;
    if (running_kernel_ >= 0 &&
        st_[static_cast<std::size_t>(running_kernel_)].end <= now_) {
      retire_kernel();
      retired = true;
    }
    if (!running_memops_.empty()) {
      std::vector<int> keep;
      keep.reserve(running_memops_.size());
      for (int i : running_memops_) {
        if (memsys_.op_done(st_[static_cast<std::size_t>(i)].mem_id)) {
          retire_memop(i);
          retired = true;
        } else {
          keep.push_back(i);
        }
      }
      running_memops_.swap(keep);
    }
    if (now_ - last_progress_ > kDeadlockCycles) throw_deadlock();
    if (retired && remaining_ > 0) {
      starved = issue_pass();
      update_stall_run(starved);
    }
  }
  return finalize();
}

void record_run_counters(const RunStats& stats, std::int64_t srf_peak) {
  auto& reg = obs::CounterRegistry::global();
  reg.add("sim.runs");
  reg.add("sim.cycles", static_cast<std::int64_t>(stats.cycles));
  reg.add("sim.kernel_launches", stats.n_kernel_launches);
  reg.add("sim.memory_ops", stats.n_memory_ops);
  reg.add("sim.kernel_busy_cycles",
          static_cast<std::int64_t>(stats.kernel_busy_cycles));
  reg.add("sim.mem_busy_cycles",
          static_cast<std::int64_t>(stats.mem_busy_cycles));
  reg.add("sim.overlap_cycles",
          static_cast<std::int64_t>(stats.overlap_cycles));
  reg.add("sim.sdr_stall_cycles",
          static_cast<std::int64_t>(stats.sdr_stall_cycles));
  reg.set_gauge("sim.srf_peak_words", static_cast<double>(srf_peak));
}

}  // namespace

std::string diff_run_stats(const RunStats& a, const RunStats& b) {
  std::string diff;
  int reported = 0;
  auto field = [&](const char* name, auto va, auto vb) {
    if (va == vb) return;
    if (++reported > 12) return;  // first mismatches are the informative ones
    diff += std::string(diff.empty() ? "" : "; ") + name + ": " +
            std::to_string(va) + " vs " + std::to_string(vb);
  };

  field("cycles", a.cycles, b.cycles);
  field("kernel_busy_cycles", a.kernel_busy_cycles, b.kernel_busy_cycles);
  field("mem_busy_cycles", a.mem_busy_cycles, b.mem_busy_cycles);
  field("overlap_cycles", a.overlap_cycles, b.overlap_cycles);
  field("sdr_stall_cycles", a.sdr_stall_cycles, b.sdr_stall_cycles);
  field("mem_words", a.mem_words, b.mem_words);
  field("srf_peak_words", a.srf_peak_words, b.srf_peak_words);
  field("n_kernel_launches", a.n_kernel_launches, b.n_kernel_launches);
  field("n_memory_ops", a.n_memory_ops, b.n_memory_ops);

  field("interp.flops", a.interp.executed.flops, b.interp.executed.flops);
  field("interp.divides", a.interp.executed.divides, b.interp.executed.divides);
  field("interp.square_roots", a.interp.executed.square_roots,
        b.interp.executed.square_roots);
  field("interp.fpu_ops", a.interp.executed.fpu_ops, b.interp.executed.fpu_ops);
  field("interp.words_read", a.interp.executed.words_read,
        b.interp.executed.words_read);
  field("interp.words_written", a.interp.executed.words_written,
        b.interp.executed.words_written);
  field("interp.lrf_refs", a.interp.lrf_refs, b.interp.lrf_refs);
  field("interp.srf_read_words", a.interp.srf_read_words,
        b.interp.srf_read_words);
  field("interp.srf_write_words", a.interp.srf_write_words,
        b.interp.srf_write_words);
  field("interp.cond_accesses", a.interp.cond_accesses, b.interp.cond_accesses);
  field("interp.cond_taken", a.interp.cond_taken, b.interp.cond_taken);
  field("interp.body_iterations", a.interp.body_iterations,
        b.interp.body_iterations);

  field("mem.ops", a.mem_stats.ops, b.mem_stats.ops);
  field("mem.words_loaded", a.mem_stats.words_loaded, b.mem_stats.words_loaded);
  field("mem.words_stored", a.mem_stats.words_stored, b.mem_stats.words_stored);
  field("mem.addr_generated", a.mem_stats.addr_generated,
        b.mem_stats.addr_generated);
  field("mem.busy_cycles", a.mem_stats.busy_cycles, b.mem_stats.busy_cycles);

  field("cache.accesses", a.cache_stats.accesses, b.cache_stats.accesses);
  field("cache.hits", a.cache_stats.hits, b.cache_stats.hits);
  field("cache.misses", a.cache_stats.misses, b.cache_stats.misses);
  field("cache.secondary_misses", a.cache_stats.secondary_misses,
        b.cache_stats.secondary_misses);
  field("cache.dirty_evictions", a.cache_stats.dirty_evictions,
        b.cache_stats.dirty_evictions);

  field("dram.read_lines", a.dram_stats.read_lines, b.dram_stats.read_lines);
  field("dram.read_words", a.dram_stats.read_words, b.dram_stats.read_words);
  field("dram.write_words", a.dram_stats.write_words, b.dram_stats.write_words);
  field("dram.row_misses", a.dram_stats.row_misses, b.dram_stats.row_misses);
  field("dram.busy_cycles", a.dram_stats.busy_cycles, b.dram_stats.busy_cycles);

  field("scatter_add.requests", a.scatter_add_stats.requests,
        b.scatter_add_stats.requests);
  field("scatter_add.combined", a.scatter_add_stats.combined,
        b.scatter_add_stats.combined);
  field("scatter_add.issued", a.scatter_add_stats.issued,
        b.scatter_add_stats.issued);
  field("scatter_add.stalled", a.scatter_add_stats.stalled,
        b.scatter_add_stats.stalled);

  const auto& ia = a.timeline.intervals();
  const auto& ib = b.timeline.intervals();
  field("timeline.intervals", ia.size(), ib.size());
  for (std::size_t k = 0; k < ia.size() && k < ib.size(); ++k) {
    if (ia[k].start == ib[k].start && ia[k].end == ib[k].end &&
        ia[k].lane == ib[k].lane && ia[k].track == ib[k].track &&
        ia[k].label == ib[k].label) {
      continue;
    }
    if (++reported > 12) break;
    diff += std::string(diff.empty() ? "" : "; ") + "timeline[" +
            std::to_string(k) + "]: [" + std::to_string(ia[k].start) + "," +
            std::to_string(ia[k].end) + ") '" + ia[k].label + "'/t" +
            std::to_string(ia[k].track) + " vs [" +
            std::to_string(ib[k].start) + "," + std::to_string(ib[k].end) +
            ") '" + ib[k].label + "'/t" + std::to_string(ib[k].track);
  }
  if (reported > 12) {
    diff += "; ... (" + std::to_string(reported - 12) + " more)";
  }
  return diff;
}

Controller::Controller(const MachineConfig& cfg, mem::GlobalMemory* memory)
    : cfg_(cfg), memory_(memory) {}

RunStats Controller::run(const StreamProgram& program) {
  obs::ScopedTimer run_timer(obs::CounterRegistry::global(),
                             "sim.controller_run");
  // Machine-config pre-flight: reject nonsense overrides (non-positive
  // clusters/bandwidth, SRF below double-buffering needs) with structured
  // diagnostics before they fail deep inside the memory model.
  {
    analysis::Diagnostics diags = cfg_.validate();
    diags.count_into_registry("sim.machine");
    if (diags.errors() > 0) throw analysis::CheckFailure(std::move(diags));
  }
  // Static pre-flight: slot lifetimes, capacities, address ranges and
  // concurrent-update races, fatal on error (warnings are counted into the
  // obs registry under analysis.stream).
  {
    analysis::StreamCheckOptions check;
    check.n_clusters = cfg_.n_clusters;
    check.srf_words = cfg_.srf_words;
    check.memory_words = memory_ != nullptr ? memory_->size() : 0;
    analysis::require_valid_stream_program(program, check);
  }

  RunStats stats;
  switch (cfg_.engine) {
    case SimEngine::kStepped: {
      RunContext ctx(cfg_, memory_, program);
      stats = ctx.run_stepped();
      break;
    }
    case SimEngine::kEvent: {
      RunContext ctx(cfg_, memory_, program);
      stats = ctx.run_event();
      break;
    }
    case SimEngine::kLockstep: {
      // Run the stepped reference against a snapshot of memory (counters
      // diverted to a scratch registry so observability sees one run),
      // then the event engine against the real image, and require the
      // results to agree bit for bit.
      mem::GlobalMemory shadow = *memory_;
      RunStats stepped;
      {
        obs::CounterRegistry scratch;
        obs::ScopedRegistryRedirect redirect(scratch);
        RunContext ref(cfg_, &shadow, program);
        stepped = ref.run_stepped();
      }
      RunContext ctx(cfg_, memory_, program);
      stats = ctx.run_event();
      std::string diff = diff_run_stats(stepped, stats);
      if (diff.empty()) {
        if (shadow.size() != memory_->size()) {
          diff = "memory size: " + std::to_string(shadow.size()) + " vs " +
                 std::to_string(memory_->size());
        } else {
          for (std::int64_t w = 0; w < shadow.size(); ++w) {
            const auto addr = static_cast<std::uint64_t>(w);
            if (shadow.read(addr) != memory_->read(addr)) {
              diff = "memory word " + std::to_string(w) + ": " +
                     std::to_string(shadow.read(addr)) + " vs " +
                     std::to_string(memory_->read(addr));
              break;
            }
          }
        }
      }
      if (!diff.empty()) {
        throw std::runtime_error(
            "lockstep divergence (stepped vs event): " + diff);
      }
      break;
    }
  }

  record_run_counters(stats, stats.srf_peak_words);
  return stats;
}

}  // namespace smd::sim
