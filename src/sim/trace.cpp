#include "src/sim/trace.h"

#include <algorithm>
#include <sstream>

namespace smd::sim {

void Timeline::add(Lane lane, std::uint64_t start, std::uint64_t end,
                   std::string label) {
  if (end <= start) return;
  intervals_.push_back({start, end, lane, std::move(label)});
}

std::vector<bool> Timeline::occupancy(Lane lane, std::uint64_t horizon) const {
  std::vector<bool> busy(static_cast<std::size_t>(horizon), false);
  for (const auto& iv : intervals_) {
    if (iv.lane != lane) continue;
    const std::uint64_t lo = std::min(iv.start, horizon);
    const std::uint64_t hi = std::min(iv.end, horizon);
    for (std::uint64_t t = lo; t < hi; ++t) busy[static_cast<std::size_t>(t)] = true;
  }
  return busy;
}

std::uint64_t Timeline::busy_cycles(Lane lane, std::uint64_t horizon) const {
  const auto busy = occupancy(lane, horizon);
  std::uint64_t n = 0;
  for (bool b : busy) n += b ? 1 : 0;
  return n;
}

std::uint64_t Timeline::overlap_cycles(std::uint64_t horizon) const {
  const auto k = occupancy(Lane::kKernel, horizon);
  const auto m = occupancy(Lane::kMemory, horizon);
  std::uint64_t n = 0;
  for (std::size_t i = 0; i < k.size(); ++i) n += (k[i] && m[i]) ? 1 : 0;
  return n;
}

std::string Timeline::ascii(std::uint64_t horizon, std::uint64_t cycles_per_row) const {
  const auto k = occupancy(Lane::kKernel, horizon);
  const auto m = occupancy(Lane::kMemory, horizon);
  std::ostringstream os;
  os << "    cycle  kernel   memory\n";
  for (std::uint64_t row = 0; row * cycles_per_row < horizon; ++row) {
    const std::uint64_t lo = row * cycles_per_row;
    const std::uint64_t hi = std::min(horizon, lo + cycles_per_row);
    double kb = 0, mb = 0;
    for (std::uint64_t t = lo; t < hi; ++t) {
      kb += k[static_cast<std::size_t>(t)] ? 1 : 0;
      mb += m[static_cast<std::size_t>(t)] ? 1 : 0;
    }
    const double span = static_cast<double>(hi - lo);
    auto bar = [&](double frac) {
      const int width = 8;
      const int n = static_cast<int>(frac / span * width + 0.5);
      std::string s(static_cast<std::size_t>(n), '#');
      s.resize(width, ' ');
      return s;
    };
    os << std::string(9 - std::min<std::size_t>(9, std::to_string(lo).size()), ' ')
       << lo << "  " << bar(kb) << " " << bar(mb) << "\n";
  }
  return os.str();
}

}  // namespace smd::sim
