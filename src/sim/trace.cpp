#include "src/sim/trace.h"

#include <algorithm>
#include <sstream>

namespace smd::sim {
namespace {

using Span = std::pair<std::uint64_t, std::uint64_t>;

std::uint64_t total_length(const std::vector<Span>& spans) {
  std::uint64_t n = 0;
  for (const auto& [s, e] : spans) n += e - s;
  return n;
}

/// Length of the overlap between [lo, hi) and the merged span list,
/// advancing `cursor` past spans that end before `lo` (callers sweep rows
/// left to right, so the walk is amortized O(1) per row).
std::uint64_t coverage(const std::vector<Span>& spans, std::size_t& cursor,
                       std::uint64_t lo, std::uint64_t hi) {
  while (cursor < spans.size() && spans[cursor].second <= lo) ++cursor;
  std::uint64_t covered = 0;
  for (std::size_t i = cursor; i < spans.size() && spans[i].first < hi; ++i) {
    covered += std::min(hi, spans[i].second) - std::max(lo, spans[i].first);
  }
  return covered;
}

}  // namespace

void Timeline::add(Lane lane, std::uint64_t start, std::uint64_t end,
                   std::string label, int track) {
  if (end < start) return;
  intervals_.push_back({start, end, lane, std::move(label), track});
}

std::vector<Span> Timeline::merged(Lane lane, std::uint64_t horizon) const {
  std::vector<Span> spans;
  for (const auto& iv : intervals_) {
    // Zero-length intervals are markers: kept in intervals(), excluded from
    // every occupancy quantity. Clipping an interval that crosses the
    // horizon can also produce an empty span (start == horizon).
    if (iv.lane != lane || iv.start >= horizon || iv.end <= iv.start) continue;
    spans.emplace_back(iv.start, std::min(iv.end, horizon));
  }
  std::sort(spans.begin(), spans.end());
  std::vector<Span> out;
  for (const auto& s : spans) {
    if (!out.empty() && s.first <= out.back().second) {
      out.back().second = std::max(out.back().second, s.second);
    } else {
      out.push_back(s);
    }
  }
  return out;
}

std::uint64_t Timeline::busy_cycles(Lane lane, std::uint64_t horizon) const {
  return total_length(merged(lane, horizon));
}

std::uint64_t Timeline::overlap_cycles(std::uint64_t horizon) const {
  const auto k = merged(Lane::kKernel, horizon);
  const auto m = merged(Lane::kMemory, horizon);
  std::uint64_t n = 0;
  std::size_t i = 0, j = 0;
  while (i < k.size() && j < m.size()) {
    const std::uint64_t lo = std::max(k[i].first, m[j].first);
    const std::uint64_t hi = std::min(k[i].second, m[j].second);
    if (lo < hi) n += hi - lo;
    if (k[i].second < m[j].second) ++i;
    else ++j;
  }
  return n;
}

std::string Timeline::ascii(std::uint64_t horizon,
                            std::uint64_t cycles_per_row) const {
  const auto k = merged(Lane::kKernel, horizon);
  const auto m = merged(Lane::kMemory, horizon);
  std::size_t kc = 0, mc = 0;
  std::ostringstream os;
  os << "    cycle  kernel   memory\n";
  for (std::uint64_t row = 0; row * cycles_per_row < horizon; ++row) {
    const std::uint64_t lo = row * cycles_per_row;
    const std::uint64_t hi = std::min(horizon, lo + cycles_per_row);
    const double kb = static_cast<double>(coverage(k, kc, lo, hi));
    const double mb = static_cast<double>(coverage(m, mc, lo, hi));
    const double span = static_cast<double>(hi - lo);
    auto bar = [&](double frac) {
      const int width = 8;
      const int n = static_cast<int>(frac / span * width + 0.5);
      std::string s(static_cast<std::size_t>(n), '#');
      s.resize(width, ' ');
      return s;
    };
    os << std::string(9 - std::min<std::size_t>(9, std::to_string(lo).size()), ' ')
       << lo << "  " << bar(kb) << " " << bar(mb) << "\n";
  }
  return os.str();
}

void Timeline::append_chrome_events(obs::TraceSink& sink, int pid,
                                    double clock_ghz) const {
  // SDR-stall slices go on a single dedicated track well above any
  // plausible SDR slot count, so they never collide with memory tracks.
  constexpr int kStallTid = 999;
  sink.set_track_name(pid, 0, "clusters (kernel)");
  const double ns_per_cycle = clock_ghz > 0 ? 1.0 / clock_ghz : 1.0;
  std::vector<int> mem_tracks;
  bool stall_track_named = false;
  for (const auto& iv : intervals_) {
    obs::TraceEvent ev;
    ev.name = iv.label;
    ev.pid = pid;
    ev.ts_ns = static_cast<std::uint64_t>(
        static_cast<double>(iv.start) * ns_per_cycle);
    ev.dur_ns = static_cast<std::uint64_t>(
        static_cast<double>(iv.end - iv.start) * ns_per_cycle);
    if (iv.lane == Lane::kKernel) {
      ev.category = "kernel";
      ev.tid = 0;
    } else if (iv.lane == Lane::kStall) {
      ev.category = "stall";
      ev.tid = kStallTid;
      if (!stall_track_named) {
        stall_track_named = true;
        sink.set_track_name(pid, kStallTid, "SDR stall");
      }
    } else {
      ev.category = "memory";
      ev.tid = 1 + iv.track;
      if (std::find(mem_tracks.begin(), mem_tracks.end(), iv.track) ==
          mem_tracks.end()) {
        mem_tracks.push_back(iv.track);
        sink.set_track_name(pid, ev.tid,
                            "memory (SDR " + std::to_string(iv.track) + ")");
      }
    }
    sink.add(std::move(ev));
  }
}

obs::Json Timeline::chrome_trace_json(double clock_ghz) const {
  obs::TraceSink sink;
  sink.set_process_name(0, "streammd");
  append_chrome_events(sink, 0, clock_ghz);
  return sink.chrome_json();
}

void Timeline::write_chrome_trace(const std::string& path,
                                  double clock_ghz) const {
  obs::write_file(chrome_trace_json(clock_ghz), path);
}

}  // namespace smd::sim
