#include "src/mem/scatteradd.h"

namespace smd::mem {

bool CombiningStore::try_merge(std::uint64_t word_addr, std::uint64_t now) {
  auto it = entries_.find(word_addr);
  if (it == entries_.end()) return false;
  // Merging extends the in-flight addition's window by one FU pass.
  it->second = now + static_cast<std::uint64_t>(cfg_.latency);
  ++stats_.requests;
  ++stats_.combined;
  return true;
}

bool CombiningStore::try_allocate(std::uint64_t word_addr, std::uint64_t now) {
  if (static_cast<int>(entries_.size()) >= cfg_.combining_entries) {
    ++stats_.stalled;
    return false;
  }
  entries_.emplace(word_addr, now + static_cast<std::uint64_t>(cfg_.latency));
  ++stats_.requests;
  ++stats_.issued;
  return true;
}

void CombiningStore::purge_expired(std::uint64_t now) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second <= now) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace smd::mem
