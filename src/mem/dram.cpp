#include "src/mem/dram.h"

namespace smd::mem {

Dram::Dram(const DramConfig& cfg, int line_words)
    : cfg_(cfg), line_words_(line_words),
      channels_(static_cast<std::size_t>(cfg.n_channels)) {}

int Dram::channel_of_line(std::uint64_t line_addr) const {
  return static_cast<int>(line_addr % static_cast<std::uint64_t>(cfg_.n_channels));
}

bool Dram::try_read_line(std::uint64_t line_addr) {
  Channel& ch = channels_[static_cast<std::size_t>(channel_of_line(line_addr))];
  if (static_cast<int>(ch.read_queue.size()) >= cfg_.read_queue_depth) return false;
  ch.read_queue.push_back(line_addr);
  return true;
}

bool Dram::can_accept_read(std::uint64_t line_addr) const {
  const Channel& ch =
      channels_[static_cast<std::size_t>(channel_of_line(line_addr))];
  return static_cast<int>(ch.read_queue.size()) < cfg_.read_queue_depth;
}

bool Dram::try_write_words(std::uint64_t addr, int n) {
  const std::uint64_t line = addr / static_cast<std::uint64_t>(line_words_);
  Channel& ch = channels_[static_cast<std::size_t>(channel_of_line(line))];
  if (ch.pending_write_words + n > cfg_.write_buffer_words) return false;
  ch.pending_write_words += n;
  stats_.write_words += n;
  return true;
}

void Dram::tick() {
  ++now_;
  bool any_busy = false;
  for (auto& ch : channels_) {
    ch.credit += cfg_.channel_words_per_cycle;

    // Start servicing the next read when idle.
    if (!ch.in_service && !ch.read_queue.empty()) {
      ch.serving_line = ch.read_queue.front();
      ch.read_queue.pop_front();
      ch.in_service = true;
      double cost = static_cast<double>(line_words_);
      const std::uint64_t row =
          ch.serving_line * static_cast<std::uint64_t>(line_words_) /
          static_cast<std::uint64_t>(cfg_.row_words);
      if (row != ch.last_row) {
        cost += cfg_.row_miss_penalty_words;
        ++stats_.row_misses;
        ch.last_row = row;
      }
      ch.read_cost_left = cost;
    }

    if (ch.in_service) {
      any_busy = true;
      const double spend = ch.credit < ch.read_cost_left ? ch.credit : ch.read_cost_left;
      ch.credit -= spend;
      ch.read_cost_left -= spend;
      if (ch.read_cost_left <= 1e-12) {
        ch.in_service = false;
        completions_.push({now_ + static_cast<std::uint64_t>(cfg_.access_latency),
                           ch.serving_line});
        ++stats_.read_lines;
        stats_.read_words += line_words_;
      }
    } else if (ch.pending_write_words > 0.0) {
      // Drain posted writes with spare bandwidth.
      any_busy = true;
      const double spend = ch.credit < ch.pending_write_words
                               ? ch.credit
                               : ch.pending_write_words;
      ch.credit -= spend;
      ch.pending_write_words -= spend;
      if (ch.pending_write_words < 1e-9) ch.pending_write_words = 0.0;
    }

    // Don't bank unbounded credit while idle.
    if (ch.credit > 4.0 * static_cast<double>(line_words_)) {
      ch.credit = 4.0 * static_cast<double>(line_words_);
    }
  }
  if (any_busy) ++stats_.busy_cycles;

  completed_now_.clear();
  while (!completions_.empty() && completions_.top().first <= now_) {
    completed_now_.push_back(completions_.top().second);
    completions_.pop();
  }
}

std::vector<std::uint64_t> Dram::drain_completed_reads() {
  return std::move(completed_now_);
}

bool Dram::writes_drained() const {
  for (const auto& ch : channels_) {
    if (ch.pending_write_words > 0) return false;
  }
  return true;
}

bool Dram::idle() const {
  if (!completions_.empty()) return false;
  return !channels_busy();
}

bool Dram::channels_busy() const {
  for (const auto& ch : channels_) {
    if (ch.in_service || !ch.read_queue.empty() || ch.pending_write_words > 0)
      return true;
  }
  return false;
}

std::uint64_t Dram::next_completion_time() const {
  return completions_.empty() ? kNever : completions_.top().first;
}

void Dram::advance_idle(std::uint64_t dt) {
  now_ += dt;
  // With every channel idle, a tick only accrues credit and clamps it at
  // the idle cap; once a channel saturates, every further tick leaves it
  // exactly at the cap, so the replay loop can stop there.
  const double cap = 4.0 * static_cast<double>(line_words_);
  for (auto& ch : channels_) {
    for (std::uint64_t k = 0; k < dt; ++k) {
      ch.credit += cfg_.channel_words_per_cycle;
      if (ch.credit > cap) {
        ch.credit = cap;
        break;
      }
    }
  }
}

}  // namespace smd::mem
