// The Merrimac node memory system.
//
// Glues the address generators, the banked stream cache, the scatter-add
// combining stores and the DRDRAM channels into a cycle-driven engine that
// services stream memory operations (Section 2.2):
//
//   AGs (8 addr/cycle total) -> bank queues -> cache banks (1 word/cycle
//   each, 8 banks = 64 GB/s) -> MSHRs -> DRAM channels (38.4 GB/s peak).
//
// Functional data movement is exact: loads copy from GlobalMemory into the
// destination buffer, stores copy back, and scatter-add performs real
// floating-point accumulation -- so simulated kernels produce real forces.
// Timing is modeled per word through the pipeline above.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "src/mem/addrgen.h"
#include "src/mem/cache.h"
#include "src/mem/dram.h"
#include "src/mem/scatteradd.h"

namespace smd::mem {

struct MemSystemConfig {
  CacheConfig cache;
  DramConfig dram;
  ScatterAddConfig scatter_add;
  int n_address_generators = 2;
  int addrs_per_generator = 4;  ///< per cycle; 2 x 4 = 8 addresses/cycle
};

/// Flat 64-bit-word global memory with a bump allocator, shared by the
/// scalar program and the stream unit (Merrimac's single address space).
class GlobalMemory {
 public:
  explicit GlobalMemory(std::int64_t initial_words = 0)
      : words_(static_cast<std::size_t>(initial_words), 0.0) {}

  /// Allocate `n` words; returns the base word address.
  std::uint64_t alloc(std::int64_t n);

  double read(std::uint64_t addr) const { return words_[addr]; }
  void write(std::uint64_t addr, double v) { words_[addr] = v; }
  void add(std::uint64_t addr, double v) { words_[addr] += v; }

  std::int64_t size() const { return static_cast<std::int64_t>(words_.size()); }

  /// Bulk helpers for program setup/readback.
  void write_block(std::uint64_t addr, const std::vector<double>& data);
  std::vector<double> read_block(std::uint64_t addr, std::int64_t n) const;

 private:
  std::vector<double> words_;
};

struct MemSystemStats {
  std::int64_t ops = 0;
  std::int64_t words_loaded = 0;     ///< SRF <- memory words
  std::int64_t words_stored = 0;     ///< SRF -> memory words (incl. scatter-add)
  std::int64_t addr_generated = 0;
  std::int64_t busy_cycles = 0;      ///< cycles with at least one active op
};

/// Cycle-driven stream memory system.
class MemSystem {
 public:
  using OpId = int;

  MemSystem(const MemSystemConfig& cfg, GlobalMemory* mem);

  /// Issue a stream memory operation.
  ///  * loads: the destination buffer is resized and filled functionally;
  ///  * stores/scatter-add: `store_src` must hold total_words() values.
  /// Issue order must respect data dependences (the stream controller's
  /// scoreboard guarantees this).
  OpId issue(MemOpDesc desc, std::vector<double>* load_dst,
             const std::vector<double>* store_src);

  /// Advance one cycle.
  void tick();

  /// Advance to cycle `t` (t >= now()), bit-identical to `t - now()` calls
  /// of tick(). Pure-wait stretches -- no address generation, no bank
  /// work, no DRAM channel activity -- are fast-forwarded in O(1) instead
  /// of being ticked through; anything else falls back to per-cycle
  /// tick(). Callers that need to observe op completions promptly should
  /// bound `t` by next_event_time().
  void tick_until(std::uint64_t t);

  /// Earliest future cycle at which the visible state (op_done answers,
  /// statistics) may change: now()+1 while any per-cycle machinery is
  /// active, the next DRAM read-completion cycle when only fills are
  /// outstanding, or kNever when nothing at all is in flight (pending
  /// op_finish_time pipeline drains are the caller's to track).
  static constexpr std::uint64_t kNever = Dram::kNever;
  std::uint64_t next_event_time() const;

  bool op_done(OpId id) const;
  /// True once the op's last word retired (its finish_time is final);
  /// op_done additionally waits for the pipeline-drain finish_time.
  bool op_completed(OpId id) const {
    return ops_[static_cast<std::size_t>(id)].done;
  }
  /// Cycle at which the op completed (valid once op_completed).
  std::uint64_t op_finish_time(OpId id) const;
  bool all_done() const;
  std::uint64_t now() const { return now_; }

  const MemSystemStats& stats() const { return stats_; }
  const CacheStats& cache_stats() const { return tags_.stats(); }
  const DramStats& dram_stats() const { return dram_.stats(); }
  ScatterAddStats scatter_add_stats() const;

 private:
  struct Op {
    MemOpDesc desc;
    AddressGenerator ag;
    std::int64_t outstanding = 0;   // words not yet retired
    bool addresses_done = false;
    bool done = false;
    std::uint64_t finish_time = 0;
  };

  struct BankReq {
    OpId op;
    std::uint64_t addr;
    MemOpKind kind;
  };

  struct Mshr {
    std::vector<OpId> waiters;
    bool dirty = false;  ///< a scatter-add RMW targets the line
  };

  struct Bank {
    std::deque<BankReq> queue;
    std::unordered_map<std::uint64_t, Mshr> mshrs;  // line -> fill waiters
    std::deque<std::uint64_t> pending_writebacks;   // line addresses
    CombiningStore combining;

    explicit Bank(const ScatterAddConfig& sa) : combining(sa) {}
  };

  void retire_word(OpId id);
  bool bank_process_one(int b);
  void handle_fills();
  void generate_addresses();
  bool has_cycle_work() const;

  MemSystemConfig cfg_;
  GlobalMemory* mem_;
  CacheTags tags_;
  Dram dram_;
  std::vector<Bank> banks_;
  std::deque<Op> ops_;  // deque: stable references for AddressGenerator desc pointers
  std::deque<OpId> ag_queue_;        // ops waiting for an address generator
  std::vector<OpId> ag_current_;     // per AG: active op or -1
  std::uint64_t now_ = 0;
  MemSystemStats stats_;
  int active_ops_ = 0;
};

}  // namespace smd::mem
