#include "src/mem/memsys.h"

#include <stdexcept>

#include "src/obs/registry.h"

namespace smd::mem {

std::uint64_t GlobalMemory::alloc(std::int64_t n) {
  const auto base = static_cast<std::uint64_t>(words_.size());
  words_.resize(words_.size() + static_cast<std::size_t>(n), 0.0);
  return base;
}

void GlobalMemory::write_block(std::uint64_t addr, const std::vector<double>& data) {
  // Overflow-safe form of `addr + data.size() > words_.size()`: the naive
  // sum wraps for addresses near 2^64 and sails past the check.
  if (addr > words_.size() || data.size() > words_.size() - addr) {
    throw std::runtime_error("write_block out of range");
  }
  std::copy(data.begin(), data.end(), words_.begin() + static_cast<std::ptrdiff_t>(addr));
}

std::vector<double> GlobalMemory::read_block(std::uint64_t addr, std::int64_t n) const {
  if (n < 0) throw std::runtime_error("read_block negative length");
  if (addr > words_.size() ||
      static_cast<std::uint64_t>(n) > words_.size() - addr) {
    throw std::runtime_error("read_block out of range");
  }
  return {words_.begin() + static_cast<std::ptrdiff_t>(addr),
          words_.begin() + static_cast<std::ptrdiff_t>(addr) + n};
}

MemSystem::MemSystem(const MemSystemConfig& cfg, GlobalMemory* mem)
    : cfg_(cfg), mem_(mem), tags_(cfg.cache), dram_(cfg.dram, cfg.cache.line_words) {
  banks_.reserve(static_cast<std::size_t>(cfg.cache.n_banks));
  for (int b = 0; b < cfg.cache.n_banks; ++b) banks_.emplace_back(cfg.scatter_add);
  ag_current_.assign(static_cast<std::size_t>(cfg.n_address_generators), -1);
}

MemSystem::OpId MemSystem::issue(MemOpDesc desc, std::vector<double>* load_dst,
                                 const std::vector<double>* store_src) {
  const std::int64_t total = desc.total_words();
  const OpId id = static_cast<OpId>(ops_.size());

  // Functional transfer, exact and immediate. Timing completes later; the
  // stream controller's scoreboard keeps consumers from running early.
  if (is_load(desc.kind)) {
    if (load_dst == nullptr) throw std::runtime_error("load without destination");
    load_dst->clear();
    load_dst->reserve(static_cast<std::size_t>(total));
    AddressGenerator walk;
    walk.start(&desc);
    while (!walk.done()) {
      load_dst->push_back(mem_->read(walk.peek()));
      walk.advance();
    }
    stats_.words_loaded += total;
  } else {
    if (store_src == nullptr) throw std::runtime_error("store without source");
    if (static_cast<std::int64_t>(store_src->size()) < total) {
      throw std::runtime_error("store source shorter than op");
    }
    AddressGenerator walk;
    walk.start(&desc);
    std::int64_t i = 0;
    while (!walk.done()) {
      const double v = (*store_src)[static_cast<std::size_t>(i++)];
      if (desc.kind == MemOpKind::kScatterAdd) {
        mem_->add(walk.peek(), v);
      } else {
        mem_->write(walk.peek(), v);
      }
      walk.advance();
    }
    stats_.words_stored += total;
  }

  Op op;
  op.desc = std::move(desc);
  op.outstanding = total;
  if (total == 0) {
    op.done = true;
    op.finish_time = now_;
  }
  ops_.push_back(std::move(op));
  if (!ops_.back().done) {
    ops_.back().ag.start(&ops_.back().desc);
    ag_queue_.push_back(id);
    ++active_ops_;
  }
  ++stats_.ops;
  const MemOpKind kind = ops_.back().desc.kind;
  auto& reg = obs::CounterRegistry::global();
  reg.add("mem.ops_issued");
  if (is_load(kind)) {
    reg.add("mem.words_loaded", total);
  } else {
    reg.add("mem.words_stored", total);
    if (kind == MemOpKind::kScatterAdd) reg.add("mem.scatter_add_words", total);
  }
  return id;
}

void MemSystem::retire_word(OpId id) {
  Op& op = ops_[static_cast<std::size_t>(id)];
  if (--op.outstanding == 0 && op.addresses_done) {
    op.done = true;
    // Pipeline drain: last word still crosses the cache and SRF ports.
    op.finish_time = now_ + static_cast<std::uint64_t>(cfg_.cache.hit_latency);
    --active_ops_;
  }
}

void MemSystem::generate_addresses() {
  // Assign queued ops to idle address generators.
  for (auto& cur : ag_current_) {
    if (cur < 0 && !ag_queue_.empty()) {
      cur = ag_queue_.front();
      ag_queue_.pop_front();
    }
  }
  for (auto& cur : ag_current_) {
    if (cur < 0) continue;
    Op& op = ops_[static_cast<std::size_t>(cur)];
    int budget = cfg_.addrs_per_generator;
    while (budget > 0 && !op.ag.done()) {
      const std::uint64_t addr = op.ag.peek();
      Bank& bank = banks_[static_cast<std::size_t>(tags_.bank_of(addr))];
      if (static_cast<int>(bank.queue.size()) >= cfg_.cache.bank_queue_depth) {
        break;  // backpressure: retry next cycle
      }
      bank.queue.push_back({cur, addr, op.desc.kind});
      op.ag.advance();
      ++stats_.addr_generated;
      --budget;
    }
    if (op.ag.done()) {
      op.addresses_done = true;
      if (op.outstanding == 0 && !op.done) {
        op.done = true;
        op.finish_time = now_ + static_cast<std::uint64_t>(cfg_.cache.hit_latency);
        --active_ops_;
      }
      cur = -1;  // free the generator
    }
  }
}

bool MemSystem::bank_process_one(int b) {
  Bank& bank = banks_[static_cast<std::size_t>(b)];

  // Highest priority: write back evicted dirty lines.
  if (!bank.pending_writebacks.empty()) {
    const std::uint64_t line = bank.pending_writebacks.front();
    if (dram_.try_write_words(line * static_cast<std::uint64_t>(cfg_.cache.line_words),
                              cfg_.cache.line_words)) {
      bank.pending_writebacks.pop_front();
      return true;
    }
    return false;  // DRAM write buffer full; bank blocked this cycle
  }

  if (bank.queue.empty()) return false;
  const BankReq req = bank.queue.front();

  switch (req.kind) {
    case MemOpKind::kLoadStrided:
    case MemOpKind::kLoadGather: {
      if (tags_.probe(req.addr) == CacheOutcome::kHit) {
        bank.queue.pop_front();
        retire_word(req.op);
        return true;
      }
      const std::uint64_t line = tags_.line_of(req.addr);
      auto it = bank.mshrs.find(line);
      if (it != bank.mshrs.end()) {
        tags_.stats().secondary_misses++;
        it->second.waiters.push_back(req.op);
        bank.queue.pop_front();
        return true;
      }
      if (static_cast<int>(bank.mshrs.size()) < cfg_.cache.mshrs_per_bank &&
          dram_.try_read_line(line)) {
        bank.mshrs.emplace(line, Mshr{{req.op}, false});
        bank.queue.pop_front();
        return true;
      }
      return false;  // MSHRs or DRAM queue full: head-of-line block
    }
    case MemOpKind::kStoreStrided:
    case MemOpKind::kStoreScatter: {
      // Write-through, no-allocate; keep a resident copy coherent.
      if (!dram_.try_write_words(req.addr, 1)) return false;
      if (tags_.resident(req.addr)) tags_.probe(req.addr);  // refresh LRU
      bank.queue.pop_front();
      retire_word(req.op);
      return true;
    }
    case MemOpKind::kScatterAdd: {
      // An addition to a word already in the FU pipeline merges for free.
      if (bank.combining.try_merge(req.addr, now_)) {
        bank.queue.pop_front();
        retire_word(req.op);
        return true;
      }
      // Otherwise this is a new in-flight addition: the FU performs its
      // read-modify-write inline at the bank (one word/bank/cycle -- the
      // paper's "full cache bandwidth"). A resident line is updated and
      // dirtied; a miss fetches the line, dirtying it on fill.
      const std::uint64_t line = tags_.line_of(req.addr);
      if (tags_.probe(req.addr) == CacheOutcome::kHit) {
        if (!bank.combining.try_allocate(req.addr, now_)) return false;
        tags_.mark_dirty(req.addr);
        bank.queue.pop_front();
        retire_word(req.op);
        return true;
      }
      auto it = bank.mshrs.find(line);
      if (it != bank.mshrs.end()) {
        if (!bank.combining.try_allocate(req.addr, now_)) return false;
        tags_.stats().secondary_misses++;
        it->second.dirty = true;
        bank.queue.pop_front();
        retire_word(req.op);
        return true;
      }
      if (static_cast<int>(bank.mshrs.size()) < cfg_.cache.mshrs_per_bank &&
          dram_.can_accept_read(line)) {
        // The combining-store entry must be secured before the word is
        // retired: a full store counts a `stalled` retry (as on the hit
        // and secondary-miss paths) and the request stays head-of-line
        // for the next cycle instead of being dropped.
        if (!bank.combining.try_allocate(req.addr, now_)) return false;
        if (!dram_.try_read_line(line)) {
          throw std::logic_error("scatter-add miss fill: DRAM rejected a "
                                 "read it advertised capacity for");
        }
        bank.mshrs.emplace(line, Mshr{{}, true});
        bank.queue.pop_front();
        retire_word(req.op);
        return true;
      }
      return false;
    }
  }
  return false;
}

void MemSystem::handle_fills() {
  for (const std::uint64_t line : dram_.drain_completed_reads()) {
    Bank& bank = banks_[static_cast<std::size_t>(
        tags_.bank_of(line * static_cast<std::uint64_t>(cfg_.cache.line_words)))];
    auto it = bank.mshrs.find(line);
    if (it == bank.mshrs.end()) continue;
    bool evicted = false, dirty = false;
    std::uint64_t evicted_line = 0;
    tags_.install(line, &evicted, &evicted_line, &dirty);
    if (evicted && dirty) bank.pending_writebacks.push_back(evicted_line);
    if (it->second.dirty) {
      tags_.mark_dirty(line * static_cast<std::uint64_t>(cfg_.cache.line_words));
    }
    for (const OpId op : it->second.waiters) retire_word(op);
    bank.mshrs.erase(it);
  }
}

void MemSystem::tick() {
  ++now_;
  generate_addresses();
  for (int b = 0; b < cfg_.cache.n_banks; ++b) bank_process_one(b);
  for (auto& bank : banks_) bank.combining.purge_expired(now_);
  dram_.tick();
  handle_fills();
  if (active_ops_ > 0) ++stats_.busy_cycles;
}

bool MemSystem::op_done(OpId id) const {
  const Op& op = ops_[static_cast<std::size_t>(id)];
  return op.done && op.finish_time <= now_;
}

std::uint64_t MemSystem::op_finish_time(OpId id) const {
  return ops_[static_cast<std::size_t>(id)].finish_time;
}

bool MemSystem::all_done() const {
  if (active_ops_ > 0) return false;
  for (const auto& op : ops_) {
    if (!op.done || op.finish_time > now_) return false;
  }
  for (const auto& bank : banks_) {
    if (!bank.pending_writebacks.empty() || !bank.mshrs.empty()) return false;
  }
  // The DRAM must have gone quiet too: in-flight channel reads, undrained
  // read completions, and posted writes are all memory-system business even
  // after every op has retired (write-through stores retire when the write
  // is *posted*, not when it reaches DRAM).
  return dram_.idle();
}

bool MemSystem::has_cycle_work() const {
  if (!ag_queue_.empty()) return true;
  for (const OpId cur : ag_current_) {
    if (cur >= 0) return true;
  }
  for (const auto& bank : banks_) {
    if (!bank.queue.empty() || !bank.pending_writebacks.empty()) return true;
  }
  return dram_.channels_busy();
}

std::uint64_t MemSystem::next_event_time() const {
  if (has_cycle_work()) return now_ + 1;
  return dram_.next_completion_time();
}

void MemSystem::tick_until(std::uint64_t t) {
  while (now_ < t) {
    if (!has_cycle_work()) {
      // Pure wait: the only future activity is the tick that pops the next
      // DRAM read completion (if any). Jump to just before it -- or to the
      // target -- replaying the per-cycle effects exactly: DRAM credit
      // accrual, the busy-cycle counter, and combining-window expiry
      // (purging once at the landing cycle removes the same entry set as
      // purging every cycle would, and no requests arrive in between).
      const std::uint64_t fill = dram_.next_completion_time();
      std::uint64_t jump_to = t;
      if (fill != Dram::kNever && fill - 1 < jump_to) jump_to = fill - 1;
      if (jump_to > now_) {
        const std::uint64_t dt = jump_to - now_;
        dram_.advance_idle(dt);
        if (active_ops_ > 0) stats_.busy_cycles += static_cast<std::int64_t>(dt);
        now_ = jump_to;
        for (auto& bank : banks_) bank.combining.purge_expired(now_);
        continue;
      }
    }
    tick();
  }
}

ScatterAddStats MemSystem::scatter_add_stats() const {
  ScatterAddStats total;
  for (const auto& bank : banks_) {
    const auto& s = bank.combining.stats();
    total.requests += s.requests;
    total.combined += s.combined;
    total.issued += s.issued;
    total.stalled += s.stalled;
  }
  return total;
}

}  // namespace smd::mem
