// Stream address generators.
//
// Each Merrimac processor has two address generators which together produce
// up to 8 single-word addresses per cycle, supporting strided records and
// indexed gather/scatter where the indices themselves are a stream in the
// SRF (Section 2.2). An AddressGenerator walks one stream memory
// operation's address sequence; the memory system pulls up to its per-cycle
// quota and applies backpressure when downstream queues fill.
#pragma once

#include <cstdint>
#include <vector>

namespace smd::mem {

/// Kinds of stream memory operations.
enum class MemOpKind : std::uint8_t {
  kLoadStrided,
  kLoadGather,
  kStoreStrided,
  kStoreScatter,
  kScatterAdd,
};

constexpr bool is_load(MemOpKind k) {
  return k == MemOpKind::kLoadStrided || k == MemOpKind::kLoadGather;
}
constexpr bool is_store(MemOpKind k) { return !is_load(k); }

/// Descriptor of one stream memory operation (addresses in 64-bit words).
struct MemOpDesc {
  MemOpKind kind = MemOpKind::kLoadStrided;
  std::uint64_t base = 0;        ///< word address of record 0
  std::int64_t n_records = 0;
  int record_words = 1;
  std::int64_t stride_words = 0; ///< strided: record-start distance; 0 = dense
  /// Gather/scatter/scatter-add: record index per record; address of
  /// record r = base + indices[r] * record_words.
  std::vector<std::uint64_t> indices;

  std::int64_t total_words() const {
    return n_records * static_cast<std::int64_t>(record_words);
  }
};

/// Walks the word addresses of a MemOpDesc in order.
class AddressGenerator {
 public:
  void start(const MemOpDesc* desc);
  bool active() const { return desc_ != nullptr && !done(); }
  bool done() const;

  /// Next word address without advancing.
  std::uint64_t peek() const;
  /// Advance to the next word.
  void advance();

  /// Sequential position of the current word within the stream.
  std::int64_t stream_pos() const { return word_pos_; }

 private:
  const MemOpDesc* desc_ = nullptr;
  std::int64_t record_ = 0;
  int word_in_record_ = 0;
  std::int64_t word_pos_ = 0;
};

}  // namespace smd::mem
