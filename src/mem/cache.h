// Merrimac stream cache tag model.
//
// The node has a 1 MB (128 KWord), 8-bank, line-interleaved stream cache
// with an aggregate bandwidth of 8 words/cycle (64 GB/s). Banks are
// selected by line address; within a bank the tag store is set-associative
// with LRU replacement. Scatter-add makes lines dirty; dirty evictions
// generate DRAM write traffic.
#pragma once

#include <cstdint>
#include <vector>

namespace smd::mem {

struct CacheConfig {
  int n_banks = 8;
  int line_words = 8;
  std::int64_t total_words = 131072;  ///< 1 MB of 64-bit words
  int associativity = 4;
  int hit_latency = 8;
  int mshrs_per_bank = 8;
  int bank_queue_depth = 16;
};

struct CacheStats {
  std::int64_t accesses = 0;
  std::int64_t hits = 0;
  std::int64_t misses = 0;          ///< primary misses (line fetches)
  std::int64_t secondary_misses = 0;  ///< folded into an in-flight fetch
  std::int64_t dirty_evictions = 0;

  double hit_rate() const {
    return accesses ? static_cast<double>(hits) / static_cast<double>(accesses) : 0.0;
  }
};

/// Result of a tag probe.
enum class CacheOutcome { kHit, kMiss };

/// Set-associative, LRU, bank-partitioned tag array (tags only; data
/// movement is handled functionally by the owner).
class CacheTags {
 public:
  explicit CacheTags(const CacheConfig& cfg);

  int bank_of(std::uint64_t word_addr) const;
  std::uint64_t line_of(std::uint64_t word_addr) const {
    return word_addr / static_cast<std::uint64_t>(cfg_.line_words);
  }

  /// Probe (and update LRU on hit). Does not allocate.
  CacheOutcome probe(std::uint64_t word_addr);

  /// Install a line; returns the evicted line address via out params.
  /// `evicted_dirty` reports whether a dirty line was displaced.
  void install(std::uint64_t line_addr, bool* evicted_valid,
               std::uint64_t* evicted_line, bool* evicted_dirty);

  /// Mark the line containing addr dirty (must be resident).
  void mark_dirty(std::uint64_t word_addr);

  /// True if the line containing addr is resident.
  bool resident(std::uint64_t word_addr) const;

  const CacheStats& stats() const { return stats_; }
  CacheStats& stats() { return stats_; }
  const CacheConfig& config() const { return cfg_; }

 private:
  struct Way {
    std::uint64_t line = 0;
    bool valid = false;
    bool dirty = false;
    std::uint64_t lru = 0;
  };

  std::size_t set_index(std::uint64_t line_addr) const;
  Way* find(std::uint64_t line_addr);
  const Way* find(std::uint64_t line_addr) const;

  CacheConfig cfg_;
  std::int64_t n_sets_;  ///< total sets across all banks
  std::vector<Way> ways_;
  std::uint64_t tick_ = 0;
  CacheStats stats_;
};

}  // namespace smd::mem
