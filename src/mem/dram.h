// DRDRAM-style external memory model.
//
// Merrimac directly attaches 2 GB of Rambus DRDRAM delivering 38.4 GB/s of
// peak sequential bandwidth and roughly half that for random access
// (Section 2.2). We model the memory as line-interleaved channels, each
// with a fixed words-per-cycle transfer rate, a fixed access latency, and a
// row-activation penalty when consecutive accesses on a channel touch
// different rows -- which is what separates streaming from random access
// bandwidth.
#pragma once

#include <cstdint>
#include <deque>
#include <queue>
#include <vector>

namespace smd::mem {

struct DramConfig {
  int n_channels = 8;
  /// Per-channel transfer rate in 64-bit words per processor cycle.
  /// 8 channels x 0.6 w/c x 8 B x 1 GHz = 38.4 GB/s peak.
  double channel_words_per_cycle = 0.6;
  int access_latency = 100;     ///< cycles from service start to data return
  int row_words = 2048;         ///< words per DRAM row (16 KB)
  int row_miss_penalty_words = 8;  ///< extra word-times on a row change
  int read_queue_depth = 16;    ///< per channel
  std::int64_t write_buffer_words = 256;  ///< per channel posted-write buffer
};

struct DramStats {
  std::int64_t read_lines = 0;
  std::int64_t read_words = 0;
  std::int64_t write_words = 0;
  std::int64_t row_misses = 0;
  std::int64_t busy_cycles = 0;  ///< cycles where any channel transferred
};

/// Cycle-driven DRAM model. Reads are requested at line granularity and
/// complete asynchronously; writes are posted at word granularity.
class Dram {
 public:
  Dram(const DramConfig& cfg, int line_words);

  /// Enqueue a line read; returns false when the channel queue is full.
  bool try_read_line(std::uint64_t line_addr);

  /// True when try_read_line(line_addr) would succeed (no side effects).
  bool can_accept_read(std::uint64_t line_addr) const;

  /// Post `n` write words at `addr`; returns false when the buffer is full.
  bool try_write_words(std::uint64_t addr, int n);

  /// Advance one cycle.
  void tick();

  /// Line reads whose data returned this cycle (drained on call).
  std::vector<std::uint64_t> drain_completed_reads();

  bool writes_drained() const;
  bool idle() const;

  /// True when any channel has per-cycle work: a read being serviced or
  /// queued, or posted writes draining. Pending read *completions* (data
  /// in flight back to the cache) do not count -- they need no channel
  /// cycles, only the passage of time.
  bool channels_busy() const;

  /// Cycle at which the earliest pending read completion becomes visible
  /// (the tick that pops it), or kNever when none is in flight.
  static constexpr std::uint64_t kNever = ~0ULL;
  std::uint64_t next_completion_time() const;

  /// Fast-forward `dt` cycles of pure waiting. Precondition:
  /// !channels_busy() and now() + dt < next_completion_time(). Replays the
  /// per-cycle credit accrual exactly (bit-identical to dt calls of
  /// tick()), which saturates at the idle cap after a bounded number of
  /// steps, so the cost is O(1) amortized regardless of dt.
  void advance_idle(std::uint64_t dt);

  const DramStats& stats() const { return stats_; }
  std::uint64_t now() const { return now_; }

 private:
  struct Channel {
    std::deque<std::uint64_t> read_queue;   // line addresses
    double pending_write_words = 0.0;  // fractional: drains at < 1 word/cycle
    std::uint64_t last_row = ~0ULL;
    double credit = 0.0;
    double read_cost_left = 0.0;  // word-times left on the line in service
    bool in_service = false;
    std::uint64_t serving_line = 0;
  };

  int channel_of_line(std::uint64_t line_addr) const;

  DramConfig cfg_;
  int line_words_;
  std::uint64_t now_ = 0;
  std::vector<Channel> channels_;
  // (completion_cycle, line_addr) ordered by completion time.
  std::priority_queue<std::pair<std::uint64_t, std::uint64_t>,
                      std::vector<std::pair<std::uint64_t, std::uint64_t>>,
                      std::greater<>>
      completions_;
  std::vector<std::uint64_t> completed_now_;
  DramStats stats_;
};

}  // namespace smd::mem
