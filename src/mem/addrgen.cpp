#include "src/mem/addrgen.h"

#include <stdexcept>

namespace smd::mem {

void AddressGenerator::start(const MemOpDesc* desc) {
  desc_ = desc;
  record_ = 0;
  word_in_record_ = 0;
  word_pos_ = 0;
  if (desc_ != nullptr &&
      (desc_->kind == MemOpKind::kLoadGather ||
       desc_->kind == MemOpKind::kStoreScatter ||
       desc_->kind == MemOpKind::kScatterAdd) &&
      static_cast<std::int64_t>(desc_->indices.size()) < desc_->n_records) {
    throw std::runtime_error("address generator: index stream too short");
  }
}

bool AddressGenerator::done() const {
  return desc_ == nullptr || record_ >= desc_->n_records;
}

std::uint64_t AddressGenerator::peek() const {
  if (done()) throw std::runtime_error("address generator exhausted");
  std::uint64_t rec_base;
  switch (desc_->kind) {
    case MemOpKind::kLoadStrided:
    case MemOpKind::kStoreStrided: {
      const std::int64_t stride =
          desc_->stride_words != 0 ? desc_->stride_words : desc_->record_words;
      rec_base = desc_->base + static_cast<std::uint64_t>(record_ * stride);
      break;
    }
    default:
      rec_base = desc_->base +
                 desc_->indices[static_cast<std::size_t>(record_)] *
                     static_cast<std::uint64_t>(desc_->record_words);
  }
  return rec_base + static_cast<std::uint64_t>(word_in_record_);
}

void AddressGenerator::advance() {
  if (done()) return;
  ++word_pos_;
  if (++word_in_record_ >= desc_->record_words) {
    word_in_record_ = 0;
    ++record_;
  }
}

}  // namespace smd::mem
