// Scatter-add combining store.
//
// Merrimac's memory system performs atomic floating-point add-and-store at
// full cache bandwidth: each cache bank has a scatter-add functional unit
// (latency 4) fronted by a small combining store (8 entries) that merges
// in-flight additions to the same word, so bursts of updates to one
// location (e.g. the partial forces of a popular molecule) do not
// serialize on the bank (Section 2.2). The FU performs its read-modify-
// write inline at the bank -- one scatter word per bank per cycle -- and
// an addition arriving while the same word is still in the FU pipeline
// merges for free. This class models the merge window and its occupancy;
// the actual summation is applied functionally by the memory system.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace smd::mem {

struct ScatterAddConfig {
  int units_per_bank = 1;
  int latency = 4;            ///< scatter-add FU latency (merge window)
  int combining_entries = 8;  ///< per bank
};

struct ScatterAddStats {
  std::int64_t requests = 0;
  std::int64_t combined = 0;  ///< merged into an in-flight addition
  std::int64_t issued = 0;    ///< additions that used a bank cycle
  std::int64_t stalled = 0;   ///< retries because all entries were busy
};

/// Combining store for one cache bank.
class CombiningStore {
 public:
  explicit CombiningStore(const ScatterAddConfig& cfg) : cfg_(cfg) {}

  /// True if an in-flight addition to `word_addr` exists; merges into it.
  bool try_merge(std::uint64_t word_addr, std::uint64_t now);

  /// Allocate an entry for a new in-flight addition (the FU pass that
  /// performs the read-modify-write). False when all entries are busy.
  bool try_allocate(std::uint64_t word_addr, std::uint64_t now);

  /// Drop entries whose merge window has expired.
  void purge_expired(std::uint64_t now);

  int occupancy() const { return static_cast<int>(entries_.size()); }
  bool empty() const { return entries_.empty(); }
  const ScatterAddStats& stats() const { return stats_; }

 private:
  ScatterAddConfig cfg_;
  std::unordered_map<std::uint64_t, std::uint64_t> entries_;  // addr -> expiry
  ScatterAddStats stats_;
};

}  // namespace smd::mem
