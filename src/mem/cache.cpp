#include "src/mem/cache.h"

#include <stdexcept>

namespace smd::mem {

CacheTags::CacheTags(const CacheConfig& cfg) : cfg_(cfg) {
  const std::int64_t lines = cfg_.total_words / cfg_.line_words;
  n_sets_ = lines / cfg_.associativity;
  if (n_sets_ <= 0) throw std::runtime_error("cache too small");
  ways_.assign(static_cast<std::size_t>(lines), Way{});
}

int CacheTags::bank_of(std::uint64_t word_addr) const {
  return static_cast<int>(line_of(word_addr) %
                          static_cast<std::uint64_t>(cfg_.n_banks));
}

std::size_t CacheTags::set_index(std::uint64_t line_addr) const {
  return static_cast<std::size_t>(line_addr % static_cast<std::uint64_t>(n_sets_));
}

CacheTags::Way* CacheTags::find(std::uint64_t line_addr) {
  const std::size_t s = set_index(line_addr);
  for (int w = 0; w < cfg_.associativity; ++w) {
    Way& way = ways_[s * static_cast<std::size_t>(cfg_.associativity) +
                     static_cast<std::size_t>(w)];
    if (way.valid && way.line == line_addr) return &way;
  }
  return nullptr;
}

const CacheTags::Way* CacheTags::find(std::uint64_t line_addr) const {
  return const_cast<CacheTags*>(this)->find(line_addr);
}

CacheOutcome CacheTags::probe(std::uint64_t word_addr) {
  ++tick_;
  ++stats_.accesses;
  Way* way = find(line_of(word_addr));
  if (way != nullptr) {
    way->lru = tick_;
    ++stats_.hits;
    return CacheOutcome::kHit;
  }
  ++stats_.misses;
  return CacheOutcome::kMiss;
}

void CacheTags::install(std::uint64_t line_addr, bool* evicted_valid,
                        std::uint64_t* evicted_line, bool* evicted_dirty) {
  ++tick_;
  *evicted_valid = false;
  *evicted_dirty = false;
  *evicted_line = 0;
  if (find(line_addr) != nullptr) return;  // already resident
  const std::size_t s = set_index(line_addr);
  Way* victim = nullptr;
  for (int w = 0; w < cfg_.associativity; ++w) {
    Way& way = ways_[s * static_cast<std::size_t>(cfg_.associativity) +
                     static_cast<std::size_t>(w)];
    if (!way.valid) {
      victim = &way;
      break;
    }
    if (victim == nullptr || way.lru < victim->lru) victim = &way;
  }
  if (victim->valid) {
    *evicted_valid = true;
    *evicted_line = victim->line;
    *evicted_dirty = victim->dirty;
    if (victim->dirty) ++stats_.dirty_evictions;
  }
  victim->valid = true;
  victim->dirty = false;
  victim->line = line_addr;
  victim->lru = tick_;
}

void CacheTags::mark_dirty(std::uint64_t word_addr) {
  Way* way = find(line_of(word_addr));
  if (way != nullptr) way->dirty = true;
}

bool CacheTags::resident(std::uint64_t word_addr) const {
  return find(line_of(word_addr)) != nullptr;
}

}  // namespace smd::mem
