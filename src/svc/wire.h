// Wire format of the simulation service: schema-versioned request and
// response structs, parsed and serialized through obs::Json, plus the
// structured error codes every failure mode maps onto.
//
// The response splits into two parts. The *payload* is the deterministic
// product of a request's config hash -- schema version, config, molecule
// count, metrics -- rendered once per job through payload_text() and
// byte-identical no matter how the server produced it (fresh simulation,
// result-cache hit, or attaching to an in-flight duplicate) and no matter
// how many workers raced to produce it (DESIGN.md section 13). Everything
// else -- latency decomposition, how the request was served, error
// details -- is per-request provenance and deliberately lives outside the
// payload.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/obs/json.h"
#include "src/tune/runner.h"
#include "src/tune/space.h"

namespace smd::svc {

/// Stamped into every request/response and into the payload. Bump on any
/// field rename/removal/meaning change (see core/schema.h for the policy).
/// History:
///   1  initial request/response/payload layout
///   2  timing rebuilt as an exact six-phase partition (DESIGN.md
///      section 15): + admission_ns/complete_ns, queue_ns narrowed from
///      submit->exec to admission->exec, phases now sum to total_ns
///      exactly; + top-level "trace" id. Requests are unchanged
///      (parse_request_file accepts version 1 batches).
inline constexpr int kWireSchemaVersion = 2;

/// Structured outcome of a request. Everything except kOk carries a
/// human-readable `message` alongside the code.
enum class ErrorCode {
  kOk = 0,
  kBadRequest,        ///< malformed request or invalid machine config
  kQueueFull,         ///< rejected: job queue at capacity
  kShutdown,          ///< rejected: server no longer accepting work
  kBudgetExceeded,    ///< rejected: over the per-request resource budget
  kCancelled,         ///< cancelled via Server::cancel before completion
  kDeadlineExceeded,  ///< wall-clock deadline passed before completion
  kInternal,          ///< the simulation itself threw
};

const char* error_code_name(ErrorCode code);
ErrorCode parse_error_code(const std::string& name);

/// Thrown by the from_json parsers on malformed input; the CLI surfaces
/// it as a kBadRequest response row.
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

/// One simulation request: a tune::Candidate-shaped config (implementation
/// variant + algorithm knobs + machine overrides) plus the experiment size
/// and scheduling directives.
struct Request {
  std::string id;          ///< client-chosen; server assigns "job-N" if empty
  tune::Candidate config;  ///< what to simulate, and on which machine
  int n_molecules = 900;   ///< experiment size (ExperimentSetup::n_molecules)
  int priority = 0;        ///< higher runs first; FIFO within a priority
  /// Wall-clock budget in ms measured from submission; 0 = none. Enforced
  /// cooperatively before and between execution phases.
  std::int64_t timeout_ms = 0;

  obs::Json to_json() const;
  /// Parses `{"id", "config", "n_molecules", "priority", "timeout_ms"}`.
  /// Every field is optional (defaults apply); "config" accepts a partial
  /// candidate object (absent axes keep their defaults). Unknown keys are
  /// a WireError so typos fail loudly instead of silently defaulting.
  static Request from_json(const obs::Json& j);
};

/// What the server hands back for one request.
struct Response {
  std::string id;
  ErrorCode error = ErrorCode::kOk;
  std::string message;           ///< empty on success
  std::uint64_t config_hash = 0;
  /// "sim" (this request's job ran the simulator), "cache" (persistent or
  /// in-memory result cache), or "dedup" (attached to an in-flight job).
  std::string served_by;
  tune::Metrics metrics;         ///< valid iff error == kOk
  /// The deterministic payload document (payload_text), "" unless kOk.
  std::string payload;
  /// Trace id of this request's span tree (obs::SpanContext::trace_id);
  /// 0 when the server ran without tracing enabled.
  std::uint64_t trace_id = 0;

  // Per-request latency decomposition, wall-clock ns. The six phases are
  // derived from one non-decreasing boundary chain per request
  // (DESIGN.md section 15), so they *partition* the end-to-end latency:
  //   admission_ns + queue_ns + lookup_ns + simulate_ns + serialize_ns
  //     + complete_ns == total_ns, exactly, for every response.
  std::int64_t admission_ns = 0;  ///< submit -> admission decision
  std::int64_t queue_ns = 0;      ///< admission -> execution start
  std::int64_t lookup_ns = 0;     ///< dedup decision + result-cache probe
  std::int64_t simulate_ns = 0;   ///< problem build + simulation
  std::int64_t serialize_ns = 0;  ///< payload rendering
  std::int64_t complete_ns = 0;   ///< serialize end -> result delivery
  std::int64_t total_ns = 0;      ///< submit -> delivery (== phase sum)

  bool ok() const { return error == ErrorCode::kOk; }

  /// Full per-request record: payload (as a nested object) + provenance +
  /// timing. from_json re-renders the embedded payload object through the
  /// same serializer, so the payload string round-trips byte-identically.
  obs::Json to_json() const;
  static Response from_json(const obs::Json& j);
};

/// The dedup/cache key: tune::config_hash over the candidate with the
/// experiment size mixed into the salt, so equal configs at different
/// molecule counts never alias.
std::uint64_t request_hash(const tune::Candidate& config, int n_molecules,
                           const std::string& salt);

/// Render the deterministic payload for a finished simulation -- the
/// byte-identity quantity of DESIGN.md section 13:
///   {"schema_version":1, "config_hash":"<16hex>", "n_molecules":N,
///    "config":{...}, "metrics":{...}}  (compact, single line)
/// Server, CLI self-check and tests all build payloads through this one
/// function.
std::string payload_text(std::uint64_t hash, const tune::Candidate& config,
                         int n_molecules, const tune::Metrics& metrics);

/// Parse a request batch: either `{"schema_version":1, "requests":[...]}`
/// or a bare JSON array of request objects. Throws WireError on anything
/// else (including a schema_version this code was not written for).
std::vector<Request> parse_request_file(const obs::Json& doc);

}  // namespace smd::svc
