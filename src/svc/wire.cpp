#include "src/svc/wire.h"

#include <array>

#include "src/tune/cache.h"

namespace smd::svc {
namespace {

struct CodeName {
  ErrorCode code;
  const char* name;
};

constexpr std::array<CodeName, 8> kCodeNames = {{
    {ErrorCode::kOk, "ok"},
    {ErrorCode::kBadRequest, "bad_request"},
    {ErrorCode::kQueueFull, "queue_full"},
    {ErrorCode::kShutdown, "shutdown"},
    {ErrorCode::kBudgetExceeded, "budget_exceeded"},
    {ErrorCode::kCancelled, "cancelled"},
    {ErrorCode::kDeadlineExceeded, "deadline_exceeded"},
    {ErrorCode::kInternal, "internal"},
}};

/// Overlay the members present in `j` onto a default candidate. Partial
/// configs keep the paper's tuned defaults for absent axes; unknown keys
/// are an error (the same strictness Request::from_json applies).
tune::Candidate candidate_from_partial_json(const obs::Json& j) {
  if (!j.is_object()) throw WireError("request 'config' must be an object");
  tune::Candidate c;
  for (const auto& [key, value] : j.items()) {
    try {
      if (key == "variant") {
        c.variant = tune::parse_variant(value.as_string());
      } else if (key == "L") {
        c.fixed_list_length = static_cast<int>(value.as_int());
      } else if (key == "blocking") {
        c.blocking_cells = static_cast<int>(value.as_int());
      } else if (key == "sdr") {
        c.sdr_policy = tune::parse_sdr(value.as_string());
      } else if (key == "strip") {
        c.strip_rounds = value.as_int();
      } else if (key == "unroll") {
        c.unroll = static_cast<int>(value.as_int());
      } else if (key == "swp") {
        c.software_pipeline = value.as_bool();
      } else if (key == "clusters") {
        c.n_clusters = static_cast<int>(value.as_int());
      } else if (key == "srf_kb") {
        c.srf_kb = value.as_int();
      } else if (key == "dram_gbps") {
        c.dram_gbps = value.as_double();
      } else if (key == "cache_gbps") {
        c.cache_gbps = value.as_double();
      } else {
        throw WireError("unknown config axis '" + key + "'");
      }
    } catch (const WireError&) {
      throw;
    } catch (const std::exception& e) {
      throw WireError("config axis '" + key + "': " + e.what());
    }
  }
  return c;
}

}  // namespace

const char* error_code_name(ErrorCode code) {
  for (const CodeName& cn : kCodeNames) {
    if (cn.code == code) return cn.name;
  }
  return "unknown";
}

ErrorCode parse_error_code(const std::string& name) {
  for (const CodeName& cn : kCodeNames) {
    if (name == cn.name) return cn.code;
  }
  throw WireError("unknown error code '" + name + "'");
}

obs::Json Request::to_json() const {
  obs::Json j = obs::Json::object();
  j.set("id", id);
  j.set("config", config.to_json());
  j.set("n_molecules", n_molecules);
  j.set("priority", priority);
  j.set("timeout_ms", timeout_ms);
  return j;
}

Request Request::from_json(const obs::Json& j) {
  if (!j.is_object()) throw WireError("request must be a JSON object");
  Request r;
  for (const auto& [key, value] : j.items()) {
    try {
      if (key == "id") {
        r.id = value.as_string();
      } else if (key == "config") {
        r.config = candidate_from_partial_json(value);
      } else if (key == "n_molecules") {
        r.n_molecules = static_cast<int>(value.as_int());
      } else if (key == "priority") {
        r.priority = static_cast<int>(value.as_int());
      } else if (key == "timeout_ms") {
        r.timeout_ms = value.as_int();
      } else {
        throw WireError("unknown request field '" + key + "'");
      }
    } catch (const WireError&) {
      throw;
    } catch (const std::exception& e) {
      throw WireError("request field '" + key + "': " + e.what());
    }
  }
  return r;
}

obs::Json Response::to_json() const {
  obs::Json j = obs::Json::object();
  j.set("schema_version", kWireSchemaVersion);
  j.set("id", id);
  j.set("error", error_code_name(error));
  j.set("message", message);
  j.set("config_hash", tune::hash_hex(config_hash));
  j.set("served_by", served_by);
  j.set("trace", tune::hash_hex(trace_id));
  if (ok()) j.set("payload", obs::Json::parse(payload));
  obs::Json t = obs::Json::object();
  t.set("admission_ns", admission_ns);
  t.set("queue_ns", queue_ns);
  t.set("lookup_ns", lookup_ns);
  t.set("simulate_ns", simulate_ns);
  t.set("serialize_ns", serialize_ns);
  t.set("complete_ns", complete_ns);
  t.set("total_ns", total_ns);
  j.set("timing", std::move(t));
  return j;
}

Response Response::from_json(const obs::Json& j) {
  if (!j.is_object() || !j.contains("schema_version")) {
    throw WireError("response must be an object with schema_version");
  }
  // Version 1 responses (pre-partition timing) still parse: the fields
  // added in version 2 default to zero.
  const std::int64_t version = j.at("schema_version").as_int();
  if (version != 1 && version != kWireSchemaVersion) {
    throw WireError("unsupported response schema_version");
  }
  Response r;
  r.id = j.at("id").as_string();
  r.error = parse_error_code(j.at("error").as_string());
  r.message = j.at("message").as_string();
  r.config_hash = std::stoull(j.at("config_hash").as_string(), nullptr, 16);
  r.served_by = j.at("served_by").as_string();
  if (const obs::Json* trace = j.find("trace")) {
    r.trace_id = std::stoull(trace->as_string(), nullptr, 16);
  }
  if (r.ok()) {
    const obs::Json& p = j.at("payload");
    r.payload = p.dump(0);
    r.metrics = tune::Metrics::from_json(p.at("metrics"));
  }
  const obs::Json& t = j.at("timing");
  const auto field = [&t](const char* key) -> std::int64_t {
    const obs::Json* v = t.find(key);
    return v == nullptr ? 0 : v->as_int();
  };
  r.admission_ns = field("admission_ns");
  r.queue_ns = field("queue_ns");
  r.lookup_ns = field("lookup_ns");
  r.simulate_ns = field("simulate_ns");
  r.serialize_ns = field("serialize_ns");
  r.complete_ns = field("complete_ns");
  r.total_ns = field("total_ns");
  return r;
}

std::uint64_t request_hash(const tune::Candidate& config, int n_molecules,
                           const std::string& salt) {
  return tune::config_hash(
      config, salt + "|svc.n_molecules=" + std::to_string(n_molecules));
}

std::string payload_text(std::uint64_t hash, const tune::Candidate& config,
                         int n_molecules, const tune::Metrics& metrics) {
  obs::Json p = obs::Json::object();
  p.set("schema_version", kWireSchemaVersion);
  p.set("config_hash", tune::hash_hex(hash));
  p.set("n_molecules", n_molecules);
  p.set("config", config.to_json());
  p.set("metrics", metrics.to_json());
  return p.dump(0);
}

std::vector<Request> parse_request_file(const obs::Json& doc) {
  const obs::Json* list = nullptr;
  if (doc.is_array()) {
    list = &doc;
  } else if (doc.is_object()) {
    // Request layout is unchanged since version 1, so batches written for
    // either version parse.
    const obs::Json* version = doc.find("schema_version");
    if (version == nullptr ||
        (version->as_int() != 1 && version->as_int() != kWireSchemaVersion)) {
      throw WireError("request file needs schema_version " +
                      std::to_string(kWireSchemaVersion));
    }
    list = doc.find("requests");
    if (list == nullptr || !list->is_array()) {
      throw WireError("request file needs a 'requests' array");
    }
  } else {
    throw WireError("request file must be an object or array");
  }
  std::vector<Request> out;
  out.reserve(list->size());
  for (const obs::Json& r : list->elements()) {
    out.push_back(Request::from_json(r));
  }
  return out;
}

}  // namespace smd::svc
