// Bounded priority job queue for the simulation service.
//
// Ordering: highest priority first, FIFO within a priority (a submission
// sequence number breaks ties, so equal-priority jobs retire in arrival
// order regardless of heap internals). Capacity is enforced at push --
// the server turns a failed push into a structured kQueueFull rejection
// rather than blocking the submitter.
//
// Cancellation is cooperative: a cancelled job is not unlinked from the
// heap (that would be O(n) under the lock); it stays queued, and the
// worker that eventually pops it observes the cancel/deadline state on
// the job and retires it without simulating. The queue itself never
// inspects job state -- it only orders and bounds.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <queue>
#include <vector>

namespace smd::svc {

struct InflightJob;  // server.h

class JobQueue {
 public:
  explicit JobQueue(std::size_t capacity);
  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  /// Enqueue a job; false when the queue is at capacity or closed.
  bool push(int priority, std::shared_ptr<InflightJob> job);

  /// Block until a job is available or the queue is closed; nullptr means
  /// closed *and* drained (workers exit on it). Jobs already queued when
  /// close() is called are still handed out, so shutdown drains.
  std::shared_ptr<InflightJob> pop();

  /// Stop accepting pushes and wake every blocked pop.
  void close();

  std::size_t depth() const;
  std::size_t capacity() const { return capacity_; }
  std::size_t peak_depth() const;

 private:
  struct Item {
    int priority = 0;
    std::uint64_t seq = 0;
    std::shared_ptr<InflightJob> job;
  };
  /// "Less important" comparator for the max-heap: lower priority loses;
  /// at equal priority the *later* submission (larger seq) loses.
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.priority != b.priority) return a.priority < b.priority;
      return a.seq > b.seq;
    }
  };

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::priority_queue<Item, std::vector<Item>, Later> heap_;
  std::size_t capacity_;
  std::size_t peak_depth_ = 0;
  std::uint64_t next_seq_ = 0;
  bool closed_ = false;
};

}  // namespace smd::svc
