// The telemetry name schema: every counter, gauge and latency histogram
// the service stack emits, by exact name and kind.
//
// This is the code-level twin of the telemetry table in DESIGN.md
// section 15 -- svc_test checks the two stay identical in both
// directions (each emitted name documented exactly once, each documented
// name actually known), the same drift guard analysis::known_check_ids
// provides for the check-id table. Adding or renaming a metric without
// touching both places fails the build's test suite, not a reader's
// expectations six months later.
#pragma once

#include <vector>

namespace smd::svc {

struct MetricInfo {
  const char* name;
  /// "counter" (monotonic count), "gauge" (last-set value), or
  /// "histogram" (obs::LatencyHistogram, exported via stats snapshots).
  const char* kind;
};

/// Every metric the svc/tune/obs service stack emits, in the order the
/// DESIGN.md section 15 table documents them.
inline const std::vector<MetricInfo>& known_metric_names() {
  static const std::vector<MetricInfo> kMetrics = {
      {"svc.jobs.submitted", "counter"},
      {"svc.jobs.completed", "counter"},
      {"svc.jobs.cancelled", "counter"},
      {"svc.jobs.rejected", "counter"},
      {"svc.jobs.deduped", "counter"},
      {"svc.jobs.cache_hit", "counter"},
      {"svc.jobs.simulated", "counter"},
      {"svc.jobs.internal_errors", "counter"},
      {"svc.queue.depth", "gauge"},
      {"svc.queue.peak_depth", "gauge"},
      {"svc.latency.queue_wait", "histogram"},
      {"svc.latency.execute", "histogram"},
      {"svc.latency.serialize", "histogram"},
      {"svc.latency.total", "histogram"},
      {"tune.evaluated", "counter"},
      {"tune.cache.hits", "counter"},
      {"tune.cache.misses", "counter"},
      {"tune.cache.load_corrupt", "counter"},
      {"tune.cache.load_skipped", "counter"},
      {"obs.events.appended", "counter"},
      {"obs.events.rotated", "counter"},
      {"obs.events.load_torn", "counter"},
      {"obs.exporter.snapshots", "counter"},
      {"obs.exporter.errors", "counter"},
  };
  return kMetrics;
}

}  // namespace smd::svc
