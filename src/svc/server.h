// Simulation-as-a-service: a long-running, in-process job server.
//
// Requests (tune::Candidate-shaped configs + experiment size) are
// scheduled on a bounded worker pool driving the existing cycle-accurate
// path through tune::evaluate. Three layers keep duplicate work at zero:
//
//   1. *In-flight dedup*: a request whose config hash matches a queued or
//      running job attaches to it instead of resimulating -- one
//      simulation serves every attached requester.
//   2. *In-memory memo*: results completed during this server's lifetime
//      are kept by hash; a later identical request is a lookup.
//   3. *Persistent cache*: the tune::ResultCache on disk; a warm start
//      serves previously simulated configs with zero simulations.
//
// Determinism invariant (DESIGN.md section 13, in the spirit of the
// engine-equivalence invariant of section 10): for any worker count and
// submission order, the response *payload* for a given config hash is
// byte-identical to a direct single-threaded tune::evaluate run -- dedup,
// memo and cache are pure reorderings of who computes/reads a result,
// never of the result itself.
//
// Cancellation and deadlines are cooperative: checked when a worker picks
// a job up, between the expensive execution phases (problem build,
// simulation), and at result delivery. A cancelled request never blocks a
// duplicate requester: the simulation proceeds while any attached request
// still wants the result, and each request gets its own verdict.
//
// Telemetry (DESIGN.md section 15; names in svc/telemetry.h): counters
// svc.jobs.{submitted, completed, cancelled, rejected, deduped,
// cache_hit, simulated, internal_errors}, gauges svc.queue.depth /
// svc.queue.peak_depth, and latency histograms
// svc.latency.{queue_wait, execute, serialize, total}
// (obs::LatencyHistogram -- mergeable, quantile-bounded).
//
// Tracing: every request carries an obs::SpanContext from admission to
// delivery. Its phase timings come from one non-decreasing
// boundary-timestamp chain (submit -> admit -> exec -> dedup -> sim ->
// serialize -> deliver), so the six phase spans *partition* the request's
// end-to-end latency exactly -- sum(phases) == total_ns for every
// response, enforced by svc_test. With record_spans the span tree lands
// in spans() (exportable as nested Chrome slices); with an event_log
// each span is also one crash-safe JSONL line.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/core/run.h"
#include "src/obs/event_log.h"
#include "src/obs/latency_histogram.h"
#include "src/obs/registry.h"
#include "src/obs/span.h"
#include "src/svc/queue.h"
#include "src/svc/wire.h"
#include "src/tune/cache.h"

namespace smd::svc {

struct ServerOptions {
  int workers = 2;            ///< worker threads; < 1 is a config error
  std::size_t queue_cap = 1024;
  /// Persistent result cache path ("" = in-memory memo only). Loaded at
  /// construction (warm hit => zero simulations), saved at shutdown via
  /// an atomic temp-file + rename write.
  std::string cache_path;
  std::string salt = tune::kModelVersion;
  /// Per-request resource budget: the largest experiment a request may
  /// ask for (the simulator runs one force step, so molecules x steps
  /// reduces to molecules). Over-budget requests reject structurally.
  int max_molecules = 1 << 20;
  sim::SimEngine engine = sim::SimEngine::kEvent;
  /// Keep every request's span tree in spans() (memory grows with
  /// request count; meant for traced runs, not unbounded serving).
  bool record_spans = false;
  /// When non-null (must outlive the server), every span is appended to
  /// this crash-safe JSONL log as it finishes.
  obs::EventLog* event_log = nullptr;
};

/// Streaming progress, delivered per request through the callback given
/// to submit(): queued -> started -> done (rejections jump to done).
enum class JobPhase { kQueued, kStarted, kDone };

struct Progress {
  std::string id;
  std::uint64_t config_hash = 0;
  JobPhase phase = JobPhase::kQueued;
};
using ProgressFn = std::function<void(const Progress&)>;

/// Internal per-request state; clients hold it through JobHandle.
struct RequestSlot {
  std::string id;
  std::uint64_t hash = 0;
  bool leader = false;  ///< first request of its job (it named the config)
  obs::SpanContext ctx;  ///< root span of this request's trace
  /// Boundary-chain prefix, obs::monotonic_ns() timestamps. t_admit_ns is
  /// stamped under the server mutex when the request is accepted (or at
  /// the rejection decision), so it is always set before delivery reads
  /// it.
  std::int64_t t_submit_ns = 0;
  std::int64_t t_admit_ns = 0;
  std::int64_t deadline_ns = 0;  ///< int64 max when none
  ProgressFn progress;
  std::atomic<bool> cancel_requested{false};

  mutable std::mutex mu;
  mutable std::condition_variable cv;
  bool done = false;
  Response resp;
};

/// Future-like view of one submitted request.
class JobHandle {
 public:
  JobHandle() = default;
  bool valid() const { return slot_ != nullptr; }
  bool done() const;
  /// Block until the request finished (completed, cancelled or rejected).
  const Response& wait() const;
  const std::string& id() const { return slot_->id; }

 private:
  friend class Server;
  explicit JobHandle(std::shared_ptr<RequestSlot> slot)
      : slot_(std::move(slot)) {}
  std::shared_ptr<RequestSlot> slot_;
};

/// One unit of queued work: a unique config hash and every request
/// attached to it. slots is guarded by the owning Server's mutex.
struct InflightJob {
  std::uint64_t hash = 0;
  tune::Candidate config;
  int n_molecules = 0;
  int priority = 0;
  std::vector<std::shared_ptr<RequestSlot>> slots;
};

/// Process-wide cache of core::Problem by molecule count. Problem
/// construction (system + neighbor list + reference forces) is the
/// expensive deterministic prefix shared by every config at a given
/// size; building it once per size is what lets the load bench submit
/// thousands of requests without re-deriving the dataset each time.
/// tune::evaluate re-points the L/strip knobs per candidate itself.
class ProblemPool {
 public:
  static ProblemPool& shared();
  /// Get-or-build (blocking: concurrent requests for the same size wait
  /// for the single build instead of duplicating it).
  std::shared_ptr<const core::Problem> get(int n_molecules);

 private:
  std::mutex mu_;
  std::map<int, std::shared_ptr<const core::Problem>> pool_;
};

class Server {
 public:
  /// Spawns the worker pool. Throws std::invalid_argument on a
  /// non-positive worker count or queue capacity.
  explicit Server(ServerOptions opts);
  ~Server();  // shutdown()
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Submit one request. Always returns a handle: rejections (queue
  /// full, over budget, bad config, shutting down) resolve it
  /// immediately with the structured error; accepted requests resolve
  /// when a worker (or a dedup/cache hit) finishes them.
  JobHandle submit(Request req, ProgressFn progress = nullptr);

  /// Request cooperative cancellation of every live request with this
  /// id; returns how many were newly marked. Already-running jobs check
  /// the flag between execution phases and at delivery.
  std::size_t cancel(const std::string& id);

  /// Block until every accepted request has resolved.
  void drain();

  /// Stop accepting, finish everything queued, join workers, persist the
  /// cache. Idempotent; the destructor calls it.
  void shutdown();

  const ServerOptions& options() const { return opts_; }
  std::size_t queue_depth() const { return queue_.depth(); }
  std::size_t queue_peak_depth() const { return queue_.peak_depth(); }

  /// Recorded span trees (populated only with options().record_spans).
  obs::SpanLog& spans() { return span_log_; }
  const obs::SpanLog& spans() const { return span_log_; }

  /// Latency histograms over *successful* responses (rejected and
  /// cancelled requests are excluded so percentiles describe served
  /// work). queue_wait = admission->exec, execute = exec->sim end (dedup
  /// decision + lookup + simulate), serialize = payload rendering, total
  /// = submit->delivery.
  const obs::LatencyHistogram& queue_wait_hist() const { return hist_queue_; }
  const obs::LatencyHistogram& execute_hist() const { return hist_execute_; }
  const obs::LatencyHistogram& serialize_hist() const { return hist_serialize_; }
  const obs::LatencyHistogram& total_hist() const { return hist_total_; }

  /// Histogram snapshot keyed by metric name (svc/telemetry.h), the
  /// "extra" block a StatsExporter attaches to stats snapshots.
  obs::Json stats_json() const;

 private:
  struct CachedResult {
    tune::Metrics metrics;
    std::string payload;
  };
  struct JobOutcome {
    ErrorCode error = ErrorCode::kOk;
    std::string message;
    std::string served_by;  ///< leader's provenance: "sim" or "cache"
    tune::Metrics metrics;
    std::string payload;
    /// True when the job retired before its first phase (every requester
    /// cancelled / timed out while queued) -- picks the "before
    /// execution" verdict wording.
    bool pre_execution = false;
  };
  /// Job-level boundary timestamps (monotonic ns): execution start, dedup
  /// decision + cache probe end, simulate end, serialize end. A retired
  /// job collapses all four onto its execution-start stamp.
  struct JobBounds {
    std::int64_t exec_ns = 0;
    std::int64_t dedup_ns = 0;
    std::int64_t simulate_ns = 0;
    std::int64_t serialize_ns = 0;
  };

  JobHandle reject(const std::shared_ptr<RequestSlot>& slot, ErrorCode code,
                   std::string message);
  void worker_loop();
  void execute(const std::shared_ptr<InflightJob>& job);
  /// Deliver every detached slot's verdict (its own cancel/deadline state
  /// wins over the job-level outcome), derive the six-phase partition
  /// from the clamped boundary chain, feed the histograms, emit spans.
  void deliver(const std::vector<std::shared_ptr<RequestSlot>>& slots,
               std::uint64_t hash, const JobBounds& bounds,
               const JobOutcome& outcome, bool tracked);
  /// Record the request's span tree (root + six phase children) into the
  /// span log and/or event log, per options.
  void emit_spans(const RequestSlot& slot,
                  const std::array<std::int64_t, 7>& b);
  void fulfill(const std::shared_ptr<RequestSlot>& slot, Response resp,
               bool tracked);
  static void notify(const std::shared_ptr<RequestSlot>& slot, JobPhase phase);

  ServerOptions opts_;
  obs::CounterRegistry& reg_;  ///< resolved once so all threads agree
  JobQueue queue_;
  obs::SpanLog span_log_;  ///< also the trace/span id authority
  obs::LatencyHistogram hist_queue_;
  obs::LatencyHistogram hist_execute_;
  obs::LatencyHistogram hist_serialize_;
  obs::LatencyHistogram hist_total_;

  mutable std::mutex mu_;  // inflight_, by_id_, memo_, cache_, outstanding_
  std::condition_variable drain_cv_;
  std::unordered_map<std::uint64_t, std::shared_ptr<InflightJob>> inflight_;
  std::unordered_multimap<std::string, std::shared_ptr<RequestSlot>> by_id_;
  std::unordered_map<std::uint64_t, CachedResult> memo_;
  tune::ResultCache cache_;
  std::size_t outstanding_ = 0;
  bool shutdown_ = false;

  std::atomic<std::uint64_t> next_id_{0};
  std::vector<std::thread> workers_;  // last: joins before members die
};

}  // namespace smd::svc
