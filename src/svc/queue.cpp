#include "src/svc/queue.h"

#include <algorithm>
#include <utility>

namespace smd::svc {

JobQueue::JobQueue(std::size_t capacity) : capacity_(capacity) {}

bool JobQueue::push(int priority, std::shared_ptr<InflightJob> job) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || heap_.size() >= capacity_) return false;
    heap_.push(Item{priority, next_seq_++, std::move(job)});
    peak_depth_ = std::max(peak_depth_, heap_.size());
  }
  cv_.notify_one();
  return true;
}

std::shared_ptr<InflightJob> JobQueue::pop() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return closed_ || !heap_.empty(); });
  if (heap_.empty()) return nullptr;  // closed and drained
  // priority_queue::top() is const-ref; moving the payload out would leave
  // the heap in a corrupt state, so copy the shared_ptr and pop.
  std::shared_ptr<InflightJob> job = heap_.top().job;
  heap_.pop();
  return job;
}

void JobQueue::close() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::size_t JobQueue::depth() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return heap_.size();
}

std::size_t JobQueue::peak_depth() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return peak_depth_;
}

}  // namespace smd::svc
