#include "src/svc/server.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "src/analysis/diag.h"

namespace smd::svc {
namespace {

/// A slot no longer wants its result: cancelled, or past its deadline.
bool slot_dead(const RequestSlot& slot, std::int64_t now_ns) {
  return slot.cancel_requested.load(std::memory_order_relaxed) ||
         now_ns > slot.deadline_ns;
}

}  // namespace

// ---- ProblemPool ----------------------------------------------------------

ProblemPool& ProblemPool::shared() {
  static ProblemPool pool;
  return pool;
}

std::shared_ptr<const core::Problem> ProblemPool::get(int n_molecules) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = pool_.find(n_molecules);
  if (it != pool_.end()) return it->second;
  core::ExperimentSetup setup;
  setup.n_molecules = n_molecules;
  auto problem = std::make_shared<const core::Problem>(core::Problem::make(setup));
  pool_.emplace(n_molecules, problem);
  return problem;
}

// ---- JobHandle ------------------------------------------------------------

bool JobHandle::done() const {
  const std::lock_guard<std::mutex> lock(slot_->mu);
  return slot_->done;
}

const Response& JobHandle::wait() const {
  std::unique_lock<std::mutex> lock(slot_->mu);
  slot_->cv.wait(lock, [&] { return slot_->done; });
  return slot_->resp;
}

// ---- Server ---------------------------------------------------------------

Server::Server(ServerOptions opts)
    : opts_(std::move(opts)),
      reg_(obs::CounterRegistry::global()),
      queue_(opts_.queue_cap),
      cache_(opts_.cache_path, opts_.salt) {
  if (opts_.workers < 1) {
    throw std::invalid_argument("svc: workers must be >= 1 (got " +
                                std::to_string(opts_.workers) + ")");
  }
  if (opts_.queue_cap < 1) {
    throw std::invalid_argument("svc: queue capacity must be >= 1");
  }
  cache_.load();  // tolerant: a corrupt file loads as empty, never throws
  workers_.reserve(static_cast<std::size_t>(opts_.workers));
  for (int i = 0; i < opts_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Server::~Server() { shutdown(); }

JobHandle Server::submit(Request req, ProgressFn progress) {
  auto slot = std::make_shared<RequestSlot>();
  slot->t_submit_ns = obs::monotonic_ns();  // boundary b0
  slot->ctx = span_log_.make_root();
  slot->deadline_ns =
      req.timeout_ms > 0
          ? slot->t_submit_ns + req.timeout_ms * 1'000'000
          : std::numeric_limits<std::int64_t>::max();
  slot->progress = std::move(progress);
  if (req.id.empty()) {
    req.id = "job-" + std::to_string(next_id_.fetch_add(1));
  }
  slot->id = req.id;
  reg_.add("svc.jobs.submitted");

  // Structured rejections, cheapest first; none of these consume a worker.
  if (req.n_molecules <= 0) {
    return reject(slot, ErrorCode::kBadRequest, "n_molecules must be positive");
  }
  if (req.n_molecules > opts_.max_molecules) {
    return reject(slot, ErrorCode::kBudgetExceeded,
                  "n_molecules " + std::to_string(req.n_molecules) +
                      " over the per-request budget of " +
                      std::to_string(opts_.max_molecules));
  }
  {
    const analysis::Diagnostics diags = req.config.machine().validate();
    if (diags.errors() > 0) {
      return reject(slot, ErrorCode::kBadRequest,
                    "invalid machine config: " + diags.format());
    }
  }

  slot->hash = request_hash(req.config, req.n_molecules, opts_.salt);
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (shutdown_) {
      lock.unlock();
      return reject(slot, ErrorCode::kShutdown, "server is shutting down");
    }
    // Boundary b1, stamped under mu_: any job that can see this slot at
    // delivery was joined (or created) below while we still hold the
    // lock, so its delivery timestamp is provably later than t_admit_ns.
    slot->t_admit_ns = obs::monotonic_ns();
    auto it = inflight_.find(slot->hash);
    if (it != inflight_.end()) {
      // In-flight dedup: ride the existing job. Never rejected for queue
      // space -- the work is already scheduled.
      it->second->slots.push_back(slot);
      by_id_.emplace(slot->id, slot);
      ++outstanding_;
      reg_.add("svc.jobs.deduped");
    } else {
      auto job = std::make_shared<InflightJob>();
      job->hash = slot->hash;
      job->config = req.config;
      job->n_molecules = req.n_molecules;
      job->priority = req.priority;
      slot->leader = true;
      job->slots.push_back(slot);
      if (!queue_.push(req.priority, job)) {
        lock.unlock();
        return reject(slot, ErrorCode::kQueueFull,
                      "job queue at capacity (" +
                          std::to_string(queue_.capacity()) + ")");
      }
      inflight_.emplace(slot->hash, std::move(job));
      by_id_.emplace(slot->id, slot);
      ++outstanding_;
      reg_.set_gauge("svc.queue.depth", static_cast<double>(queue_.depth()));
      reg_.set_gauge("svc.queue.peak_depth",
                     static_cast<double>(queue_.peak_depth()));
    }
  }
  notify(slot, JobPhase::kQueued);
  return JobHandle(slot);
}

JobHandle Server::reject(const std::shared_ptr<RequestSlot>& slot,
                         ErrorCode code, std::string message) {
  // The admission phase ends at the rejection decision; the four
  // execution boundaries collapse onto it, so a rejection's span tree
  // has the same six-phase shape with zero-width middle phases.
  if (slot->t_admit_ns == 0) slot->t_admit_ns = obs::monotonic_ns();
  JobBounds bounds;
  bounds.exec_ns = slot->t_admit_ns;
  bounds.dedup_ns = slot->t_admit_ns;
  bounds.simulate_ns = slot->t_admit_ns;
  bounds.serialize_ns = slot->t_admit_ns;
  JobOutcome outcome;
  outcome.error = code;
  outcome.message = std::move(message);
  deliver({slot}, slot->hash, bounds, outcome, /*tracked=*/false);
  return JobHandle(slot);
}

std::size_t Server::cancel(const std::string& id) {
  std::vector<std::shared_ptr<RequestSlot>> targets;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto [begin, end] = by_id_.equal_range(id);
    for (auto it = begin; it != end; ++it) targets.push_back(it->second);
  }
  std::size_t newly = 0;
  for (const auto& slot : targets) {
    if (!slot->cancel_requested.exchange(true)) ++newly;
  }
  return newly;
}

void Server::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [&] { return outstanding_ == 0; });
}

void Server::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  queue_.close();  // queued jobs still drain; pops return null when empty
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  const std::lock_guard<std::mutex> lock(mu_);
  if (cache_.enabled() && cache_.dirty()) cache_.save();
}

void Server::worker_loop() {
  while (std::shared_ptr<InflightJob> job = queue_.pop()) {
    reg_.set_gauge("svc.queue.depth", static_cast<double>(queue_.depth()));
    execute(job);
  }
}

void Server::execute(const std::shared_ptr<InflightJob>& job) {
  const std::int64_t exec_ns = obs::monotonic_ns();  // boundary b2

  // Cooperative cancellation, checkpoint 1: if nobody attached to this
  // job still wants the result, retire it without touching the simulator.
  // Taking the slots and erasing the in-flight entry is atomic under mu_,
  // so a duplicate submitted after this point starts a fresh job.
  std::vector<std::shared_ptr<RequestSlot>> live;
  bool retired = false;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    bool any_live = false;
    for (const auto& s : job->slots) {
      if (!slot_dead(*s, exec_ns)) {
        any_live = true;
        break;
      }
    }
    if (!any_live) {
      live = std::move(job->slots);
      inflight_.erase(job->hash);
      retired = true;
    } else {
      live = job->slots;  // snapshot for progress notifications
    }
  }
  if (retired) {
    // Everyone bailed: zero-width execution phases, per-slot verdicts
    // (cancelled vs deadline) decided in deliver().
    JobBounds bounds;
    bounds.exec_ns = exec_ns;
    bounds.dedup_ns = exec_ns;
    bounds.simulate_ns = exec_ns;
    bounds.serialize_ns = exec_ns;
    JobOutcome outcome;
    outcome.pre_execution = true;
    deliver(live, job->hash, bounds, outcome, /*tracked=*/true);
    return;
  }
  for (const auto& s : live) notify(s, JobPhase::kStarted);

  JobOutcome outcome;
  JobBounds bounds;
  bounds.exec_ns = exec_ns;

  // ---- Phase: dedup decision + cache lookup (in-memory memo, then the
  // persistent layer).
  bool have_result = false;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto mit = memo_.find(job->hash);
    if (mit != memo_.end()) {
      outcome.metrics = mit->second.metrics;
      outcome.payload = mit->second.payload;
      have_result = true;
    } else if (cache_.enabled() && cache_.lookup(job->hash, &outcome.metrics)) {
      have_result = true;  // payload rendered in the serialize phase
    }
  }
  outcome.served_by = have_result ? "cache" : "sim";
  bounds.dedup_ns = obs::monotonic_ns();  // boundary b3

  // ---- Phase: simulate (problem build + cycle-accurate run).
  if (!have_result) {
    try {
      const std::shared_ptr<const core::Problem> problem =
          ProblemPool::shared().get(job->n_molecules);
      // Cooperative cancellation, checkpoint 2: between the expensive
      // phases. The problem is pooled (useful to later requests) but the
      // simulation can still be skipped.
      bool any_live = false;
      {
        const std::lock_guard<std::mutex> lock(mu_);
        const std::int64_t now_ns = obs::monotonic_ns();
        for (const auto& s : job->slots) {
          if (!slot_dead(*s, now_ns)) {
            any_live = true;
            break;
          }
        }
      }
      if (any_live) {
        outcome.metrics = tune::evaluate(*problem, job->config, opts_.engine);
        reg_.add("svc.jobs.simulated");
      } else {
        outcome.error = ErrorCode::kCancelled;
        outcome.message = "every requester cancelled mid-execution";
      }
    } catch (const std::exception& e) {
      outcome.error = ErrorCode::kInternal;
      outcome.message = e.what();
      reg_.add("svc.jobs.internal_errors");
    }
  }
  bounds.simulate_ns = obs::monotonic_ns();  // boundary b4

  // ---- Phase: serialize the deterministic payload, once per job.
  if (outcome.error == ErrorCode::kOk && outcome.payload.empty()) {
    outcome.payload = payload_text(job->hash, job->config, job->n_molecules,
                                   outcome.metrics);
  }
  bounds.serialize_ns = obs::monotonic_ns();  // boundary b5

  // Publish into the memo and (for fresh simulations) the persistent layer.
  if (outcome.error == ErrorCode::kOk) {
    const std::lock_guard<std::mutex> lock(mu_);
    memo_.emplace(job->hash, CachedResult{outcome.metrics, outcome.payload});
    if (!have_result && cache_.enabled()) {
      cache_.insert(job->hash, job->config, outcome.metrics);
    }
  }

  // Detach the slots (erasing the in-flight entry) and deliver.
  std::vector<std::shared_ptr<RequestSlot>> slots;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    slots = std::move(job->slots);
    inflight_.erase(job->hash);
  }
  deliver(slots, job->hash, bounds, outcome, /*tracked=*/true);
}

void Server::deliver(const std::vector<std::shared_ptr<RequestSlot>>& slots,
                     std::uint64_t hash, const JobBounds& bounds,
                     const JobOutcome& outcome, bool tracked) {
  const std::int64_t end_ns = obs::monotonic_ns();  // boundary b6
  if (outcome.error == ErrorCode::kOk && outcome.served_by == "cache") {
    reg_.add("svc.jobs.cache_hit");
  }
  for (const auto& s : slots) {
    // The clamped boundary chain: each boundary is at least the previous
    // one, so consecutive differences are nonnegative and telescope --
    // sum(phases) == b6 - b0 == total_ns, exactly, by construction.
    std::array<std::int64_t, 7> b;
    b[0] = s->t_submit_ns;
    b[1] = std::max(b[0], s->t_admit_ns);
    b[2] = std::max(b[1], bounds.exec_ns);
    b[3] = std::max(b[2], bounds.dedup_ns);
    b[4] = std::max(b[3], bounds.simulate_ns);
    b[5] = std::max(b[4], bounds.serialize_ns);
    b[6] = std::max(b[5], end_ns);

    Response r;
    r.id = s->id;
    r.config_hash = hash;
    r.trace_id = s->ctx.trace_id;
    if (s->cancel_requested.load()) {
      r.error = ErrorCode::kCancelled;
      r.message = outcome.pre_execution ? "cancelled before execution"
                                        : "cancelled";
    } else if (b[6] > s->deadline_ns) {
      r.error = ErrorCode::kDeadlineExceeded;
      r.message = outcome.pre_execution ? "deadline passed before execution"
                                        : "deadline exceeded";
    } else if (outcome.error != ErrorCode::kOk) {
      r.error = outcome.error;
      r.message = outcome.message;
    } else {
      r.metrics = outcome.metrics;
      r.payload = outcome.payload;
      r.served_by = s->leader ? outcome.served_by : "dedup";
    }
    r.admission_ns = b[1] - b[0];
    r.queue_ns = b[2] - b[1];
    r.lookup_ns = b[3] - b[2];
    r.simulate_ns = b[4] - b[3];
    r.serialize_ns = b[5] - b[4];
    r.complete_ns = b[6] - b[5];
    r.total_ns = b[6] - b[0];

    // Histograms describe served work: only successful responses count.
    if (r.error == ErrorCode::kOk) {
      hist_queue_.record(r.queue_ns);
      hist_execute_.record(r.lookup_ns + r.simulate_ns);
      hist_serialize_.record(r.serialize_ns);
      hist_total_.record(r.total_ns);
    }
    emit_spans(*s, b);
    fulfill(s, std::move(r), tracked);
  }
}

void Server::emit_spans(const RequestSlot& slot,
                        const std::array<std::int64_t, 7>& b) {
  if (!opts_.record_spans && opts_.event_log == nullptr) return;
  static constexpr const char* kPhaseNames[6] = {
      "admission", "queue", "dedup", "simulate", "serialize", "complete"};
  std::vector<obs::SpanRecord> recs;
  recs.reserve(7);
  obs::SpanRecord root;
  root.ctx = slot.ctx;
  root.name = "request";
  root.category = "svc";
  root.arg = slot.id;
  root.start_ns = b[0];
  root.end_ns = b[6];
  recs.push_back(std::move(root));
  for (int i = 0; i < 6; ++i) {
    obs::SpanRecord rec;
    rec.ctx = span_log_.make_child(slot.ctx);
    rec.name = kPhaseNames[i];
    rec.category = "svc.phase";
    rec.start_ns = b[i];
    rec.end_ns = b[i + 1];
    recs.push_back(std::move(rec));
  }
  for (obs::SpanRecord& rec : recs) {
    if (opts_.event_log != nullptr) {
      opts_.event_log->append(obs::span_json(rec));
    }
    if (opts_.record_spans) span_log_.record(std::move(rec));
  }
}

obs::Json Server::stats_json() const {
  obs::Json j = obs::Json::object();
  j.set("svc.latency.queue_wait", hist_queue_.to_json());
  j.set("svc.latency.execute", hist_execute_.to_json());
  j.set("svc.latency.serialize", hist_serialize_.to_json());
  j.set("svc.latency.total", hist_total_.to_json());
  return j;
}

void Server::fulfill(const std::shared_ptr<RequestSlot>& slot, Response resp,
                     bool tracked) {
  switch (resp.error) {
    case ErrorCode::kOk:
    case ErrorCode::kInternal:
      // An internal error still consumed the job's turn: the request was
      // processed to completion, just not successfully.
      reg_.add("svc.jobs.completed");
      break;
    case ErrorCode::kCancelled:
    case ErrorCode::kDeadlineExceeded:
      reg_.add("svc.jobs.cancelled");
      break;
    default:
      reg_.add("svc.jobs.rejected");
      break;
  }
  {
    const std::lock_guard<std::mutex> lock(slot->mu);
    slot->resp = std::move(resp);
    slot->done = true;
  }
  slot->cv.notify_all();
  if (tracked) {
    bool drained = false;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      const auto [begin, end] = by_id_.equal_range(slot->id);
      for (auto it = begin; it != end; ++it) {
        if (it->second == slot) {
          by_id_.erase(it);
          break;
        }
      }
      drained = --outstanding_ == 0;
    }
    if (drained) drain_cv_.notify_all();
  }
  notify(slot, JobPhase::kDone);
}

void Server::notify(const std::shared_ptr<RequestSlot>& slot, JobPhase phase) {
  if (!slot->progress) return;
  Progress p;
  p.id = slot->id;
  p.config_hash = slot->hash;
  p.phase = phase;
  slot->progress(p);
}

}  // namespace smd::svc
