#include "src/svc/server.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "src/analysis/diag.h"

namespace smd::svc {
namespace {

using Clock = std::chrono::steady_clock;

std::int64_t ns_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count();
}

double ns_to_seconds(std::int64_t ns) { return static_cast<double>(ns) * 1e-9; }

/// A slot no longer wants its result: cancelled, or past its deadline.
bool slot_dead(const RequestSlot& slot, Clock::time_point now) {
  return slot.cancel_requested.load(std::memory_order_relaxed) ||
         now > slot.deadline;
}

}  // namespace

// ---- ProblemPool ----------------------------------------------------------

ProblemPool& ProblemPool::shared() {
  static ProblemPool pool;
  return pool;
}

std::shared_ptr<const core::Problem> ProblemPool::get(int n_molecules) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = pool_.find(n_molecules);
  if (it != pool_.end()) return it->second;
  core::ExperimentSetup setup;
  setup.n_molecules = n_molecules;
  auto problem = std::make_shared<const core::Problem>(core::Problem::make(setup));
  pool_.emplace(n_molecules, problem);
  return problem;
}

// ---- JobHandle ------------------------------------------------------------

bool JobHandle::done() const {
  const std::lock_guard<std::mutex> lock(slot_->mu);
  return slot_->done;
}

const Response& JobHandle::wait() const {
  std::unique_lock<std::mutex> lock(slot_->mu);
  slot_->cv.wait(lock, [&] { return slot_->done; });
  return slot_->resp;
}

// ---- Server ---------------------------------------------------------------

Server::Server(ServerOptions opts)
    : opts_(std::move(opts)),
      reg_(obs::CounterRegistry::global()),
      queue_(opts_.queue_cap),
      cache_(opts_.cache_path, opts_.salt) {
  if (opts_.workers < 1) {
    throw std::invalid_argument("svc: workers must be >= 1 (got " +
                                std::to_string(opts_.workers) + ")");
  }
  if (opts_.queue_cap < 1) {
    throw std::invalid_argument("svc: queue capacity must be >= 1");
  }
  cache_.load();  // tolerant: a corrupt file loads as empty, never throws
  workers_.reserve(static_cast<std::size_t>(opts_.workers));
  for (int i = 0; i < opts_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Server::~Server() { shutdown(); }

JobHandle Server::submit(Request req, ProgressFn progress) {
  const Clock::time_point now = Clock::now();
  auto slot = std::make_shared<RequestSlot>();
  slot->submitted = now;
  slot->deadline = req.timeout_ms > 0
                       ? now + std::chrono::milliseconds(req.timeout_ms)
                       : Clock::time_point::max();
  slot->progress = std::move(progress);
  if (req.id.empty()) {
    req.id = "job-" + std::to_string(next_id_.fetch_add(1));
  }
  slot->id = req.id;
  reg_.add("svc.jobs.submitted");

  // Structured rejections, cheapest first; none of these consume a worker.
  if (req.n_molecules <= 0) {
    return reject(slot, ErrorCode::kBadRequest, "n_molecules must be positive");
  }
  if (req.n_molecules > opts_.max_molecules) {
    return reject(slot, ErrorCode::kBudgetExceeded,
                  "n_molecules " + std::to_string(req.n_molecules) +
                      " over the per-request budget of " +
                      std::to_string(opts_.max_molecules));
  }
  {
    const analysis::Diagnostics diags = req.config.machine().validate();
    if (diags.errors() > 0) {
      return reject(slot, ErrorCode::kBadRequest,
                    "invalid machine config: " + diags.format());
    }
  }

  slot->hash = request_hash(req.config, req.n_molecules, opts_.salt);
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (shutdown_) {
      lock.unlock();
      return reject(slot, ErrorCode::kShutdown, "server is shutting down");
    }
    auto it = inflight_.find(slot->hash);
    if (it != inflight_.end()) {
      // In-flight dedup: ride the existing job. Never rejected for queue
      // space -- the work is already scheduled.
      it->second->slots.push_back(slot);
      by_id_.emplace(slot->id, slot);
      ++outstanding_;
      reg_.add("svc.jobs.deduped");
    } else {
      auto job = std::make_shared<InflightJob>();
      job->hash = slot->hash;
      job->config = req.config;
      job->n_molecules = req.n_molecules;
      job->priority = req.priority;
      slot->leader = true;
      job->slots.push_back(slot);
      if (!queue_.push(req.priority, job)) {
        lock.unlock();
        return reject(slot, ErrorCode::kQueueFull,
                      "job queue at capacity (" +
                          std::to_string(queue_.capacity()) + ")");
      }
      inflight_.emplace(slot->hash, std::move(job));
      by_id_.emplace(slot->id, slot);
      ++outstanding_;
      reg_.set_gauge("svc.queue.depth", static_cast<double>(queue_.depth()));
      reg_.set_gauge("svc.queue.peak_depth",
                     static_cast<double>(queue_.peak_depth()));
    }
  }
  notify(slot, JobPhase::kQueued);
  return JobHandle(slot);
}

JobHandle Server::reject(const std::shared_ptr<RequestSlot>& slot,
                         ErrorCode code, std::string message) {
  Response r;
  r.id = slot->id;
  r.error = code;
  r.message = std::move(message);
  r.config_hash = slot->hash;
  r.total_ns = ns_between(slot->submitted, Clock::now());
  fulfill(slot, std::move(r), /*tracked=*/false);
  return JobHandle(slot);
}

std::size_t Server::cancel(const std::string& id) {
  std::vector<std::shared_ptr<RequestSlot>> targets;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto [begin, end] = by_id_.equal_range(id);
    for (auto it = begin; it != end; ++it) targets.push_back(it->second);
  }
  std::size_t newly = 0;
  for (const auto& slot : targets) {
    if (!slot->cancel_requested.exchange(true)) ++newly;
  }
  return newly;
}

void Server::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [&] { return outstanding_ == 0; });
}

void Server::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  queue_.close();  // queued jobs still drain; pops return null when empty
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  const std::lock_guard<std::mutex> lock(mu_);
  if (cache_.enabled() && cache_.dirty()) cache_.save();
}

void Server::worker_loop() {
  while (std::shared_ptr<InflightJob> job = queue_.pop()) {
    reg_.set_gauge("svc.queue.depth", static_cast<double>(queue_.depth()));
    execute(job);
  }
}

void Server::execute(const std::shared_ptr<InflightJob>& job) {
  const Clock::time_point exec_start = Clock::now();

  // Cooperative cancellation, checkpoint 1: if nobody attached to this
  // job still wants the result, retire it without touching the simulator.
  // Taking the slots and erasing the in-flight entry is atomic under mu_,
  // so a duplicate submitted after this point starts a fresh job.
  std::vector<std::shared_ptr<RequestSlot>> live;
  bool retired = false;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    bool any_live = false;
    for (const auto& s : job->slots) {
      if (!slot_dead(*s, exec_start)) {
        any_live = true;
        break;
      }
    }
    if (!any_live) {
      live = std::move(job->slots);
      inflight_.erase(job->hash);
      retired = true;
    } else {
      live = job->slots;  // snapshot for progress notifications
    }
  }
  if (retired) {
    // Everyone bailed: deliver per-slot verdicts (cancelled vs deadline).
    const Clock::time_point end = Clock::now();
    for (const auto& s : live) {
      Response r;
      r.id = s->id;
      r.config_hash = job->hash;
      const bool cancelled = s->cancel_requested.load();
      r.error = cancelled ? ErrorCode::kCancelled : ErrorCode::kDeadlineExceeded;
      r.message = cancelled ? "cancelled before execution"
                            : "deadline passed before execution";
      r.queue_ns = std::max<std::int64_t>(0, ns_between(s->submitted, exec_start));
      r.total_ns = ns_between(s->submitted, end);
      fulfill(s, std::move(r), /*tracked=*/true);
    }
    return;
  }
  for (const auto& s : live) notify(s, JobPhase::kStarted);

  JobOutcome outcome;

  // ---- Phase: cache lookup (in-memory memo, then the persistent layer).
  const Clock::time_point t_lookup = Clock::now();
  bool have_result = false;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto mit = memo_.find(job->hash);
    if (mit != memo_.end()) {
      outcome.metrics = mit->second.metrics;
      outcome.payload = mit->second.payload;
      have_result = true;
    } else if (cache_.enabled() && cache_.lookup(job->hash, &outcome.metrics)) {
      have_result = true;  // payload rendered in the serialize phase
    }
  }
  outcome.lookup_ns = ns_between(t_lookup, Clock::now());
  outcome.served_by = have_result ? "cache" : "sim";

  // ---- Phase: simulate (problem build + cycle-accurate run).
  if (!have_result) {
    const Clock::time_point t_sim = Clock::now();
    try {
      const std::shared_ptr<const core::Problem> problem =
          ProblemPool::shared().get(job->n_molecules);
      // Cooperative cancellation, checkpoint 2: between the expensive
      // phases. The problem is pooled (useful to later requests) but the
      // simulation can still be skipped.
      bool any_live = false;
      {
        const std::lock_guard<std::mutex> lock(mu_);
        const Clock::time_point now = Clock::now();
        for (const auto& s : job->slots) {
          if (!slot_dead(*s, now)) {
            any_live = true;
            break;
          }
        }
      }
      if (any_live) {
        outcome.metrics = tune::evaluate(*problem, job->config, opts_.engine);
        reg_.add("svc.jobs.simulated");
      } else {
        outcome.error = ErrorCode::kCancelled;
        outcome.message = "every requester cancelled mid-execution";
      }
    } catch (const std::exception& e) {
      outcome.error = ErrorCode::kInternal;
      outcome.message = e.what();
      reg_.add("svc.jobs.internal_errors");
    }
    outcome.simulate_ns = ns_between(t_sim, Clock::now());
  }

  // ---- Phase: serialize the deterministic payload, once per job.
  if (outcome.error == ErrorCode::kOk && outcome.payload.empty()) {
    const Clock::time_point t_ser = Clock::now();
    outcome.payload = payload_text(job->hash, job->config, job->n_molecules,
                                   outcome.metrics);
    outcome.serialize_ns = ns_between(t_ser, Clock::now());
  }

  // Publish into the memo and (for fresh simulations) the persistent layer.
  if (outcome.error == ErrorCode::kOk) {
    const std::lock_guard<std::mutex> lock(mu_);
    memo_.emplace(job->hash, CachedResult{outcome.metrics, outcome.payload});
    if (!have_result && cache_.enabled()) {
      cache_.insert(job->hash, job->config, outcome.metrics);
    }
  }

  finish(job, exec_start, outcome);
}

void Server::finish(const std::shared_ptr<InflightJob>& job,
                    Clock::time_point exec_start, const JobOutcome& outcome) {
  std::vector<std::shared_ptr<RequestSlot>> slots;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    slots = std::move(job->slots);
    inflight_.erase(job->hash);
  }
  const Clock::time_point end = Clock::now();

  // Per-phase wall-clock timers (job-level: one set of phases ran).
  if (!slots.empty()) {
    reg_.add_seconds("svc.phase.queue", ns_to_seconds(std::max<std::int64_t>(
        0, ns_between(slots.front()->submitted, exec_start))));
    reg_.add_seconds("svc.phase.lookup", ns_to_seconds(outcome.lookup_ns));
    reg_.add_seconds("svc.phase.simulate", ns_to_seconds(outcome.simulate_ns));
    reg_.add_seconds("svc.phase.serialize",
                     ns_to_seconds(outcome.serialize_ns));
  }
  if (outcome.error == ErrorCode::kOk && outcome.served_by == "cache") {
    reg_.add("svc.jobs.cache_hit");
  }

  for (const auto& s : slots) {
    Response r;
    r.id = s->id;
    r.config_hash = job->hash;
    if (s->cancel_requested.load()) {
      r.error = ErrorCode::kCancelled;
      r.message = "cancelled";
    } else if (end > s->deadline) {
      r.error = ErrorCode::kDeadlineExceeded;
      r.message = "deadline exceeded";
    } else if (outcome.error != ErrorCode::kOk) {
      r.error = outcome.error;
      r.message = outcome.message;
    } else {
      r.metrics = outcome.metrics;
      r.payload = outcome.payload;
      r.served_by = s->leader ? outcome.served_by : "dedup";
    }
    r.queue_ns =
        std::max<std::int64_t>(0, ns_between(s->submitted, exec_start));
    r.lookup_ns = outcome.lookup_ns;
    r.simulate_ns = outcome.simulate_ns;
    r.serialize_ns = outcome.serialize_ns;
    r.total_ns = ns_between(s->submitted, end);
    fulfill(s, std::move(r), /*tracked=*/true);
  }
}

void Server::fulfill(const std::shared_ptr<RequestSlot>& slot, Response resp,
                     bool tracked) {
  switch (resp.error) {
    case ErrorCode::kOk:
    case ErrorCode::kInternal:
      // An internal error still consumed the job's turn: the request was
      // processed to completion, just not successfully.
      reg_.add("svc.jobs.completed");
      break;
    case ErrorCode::kCancelled:
    case ErrorCode::kDeadlineExceeded:
      reg_.add("svc.jobs.cancelled");
      break;
    default:
      reg_.add("svc.jobs.rejected");
      break;
  }
  {
    const std::lock_guard<std::mutex> lock(slot->mu);
    slot->resp = std::move(resp);
    slot->done = true;
  }
  slot->cv.notify_all();
  if (tracked) {
    bool drained = false;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      const auto [begin, end] = by_id_.equal_range(slot->id);
      for (auto it = begin; it != end; ++it) {
        if (it->second == slot) {
          by_id_.erase(it);
          break;
        }
      }
      drained = --outstanding_ == 0;
    }
    if (drained) drain_cv_.notify_all();
  }
  notify(slot, JobPhase::kDone);
}

void Server::notify(const std::shared_ptr<RequestSlot>& slot, JobPhase phase) {
  if (!slot->progress) return;
  Progress p;
  p.id = slot->id;
  p.config_hash = slot->hash;
  p.phase = phase;
  slot->progress(p);
}

}  // namespace smd::svc
