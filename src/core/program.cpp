#include "src/core/program.h"

#include <stdexcept>

namespace smd::core {
namespace {

/// Upload a vector<double> to freshly allocated memory; returns the base.
std::uint64_t upload(mem::GlobalMemory& mem, const std::vector<double>& data) {
  const std::uint64_t base = mem.alloc(static_cast<std::int64_t>(data.size()));
  mem.write_block(base, data);
  return base;
}

std::uint64_t upload_indices(mem::GlobalMemory& mem,
                             const std::vector<std::uint64_t>& idx) {
  std::vector<double> as_words(idx.size());
  for (std::size_t i = 0; i < idx.size(); ++i) as_words[i] = static_cast<double>(idx[i]);
  return upload(mem, as_words);
}

/// Add a strided load of an index-array slice (the index stream the AGs
/// will consume; its memory traffic is real even though our MemOpDesc
/// carries the resolved indices by value).
void load_index_stream(sim::StreamProgram& prog, std::uint64_t base,
                       std::int64_t begin, std::int64_t end) {
  mem::MemOpDesc d;
  d.kind = mem::MemOpKind::kLoadStrided;
  d.base = base + static_cast<std::uint64_t>(begin);
  d.n_records = end - begin;
  d.record_words = 1;
  const sim::StreamId s = prog.new_stream(end - begin);
  prog.load(std::move(d), s);
}

mem::MemOpDesc gather_desc(std::uint64_t pos_base, int record_words,
                           const std::vector<std::uint64_t>& idx,
                           std::int64_t begin, std::int64_t end) {
  mem::MemOpDesc d;
  d.kind = mem::MemOpKind::kLoadGather;
  d.base = pos_base;
  d.n_records = end - begin;
  d.record_words = record_words;
  d.indices.assign(idx.begin() + static_cast<std::ptrdiff_t>(begin),
                   idx.begin() + static_cast<std::ptrdiff_t>(end));
  return d;
}

mem::MemOpDesc scatter_add_desc(std::uint64_t force_base, int record_words,
                                const std::vector<std::uint64_t>& idx,
                                std::int64_t begin, std::int64_t end) {
  mem::MemOpDesc d;
  d.kind = mem::MemOpKind::kScatterAdd;
  d.base = force_base;
  d.n_records = end - begin;
  d.record_words = record_words;
  d.indices.assign(idx.begin() + static_cast<std::ptrdiff_t>(begin),
                   idx.begin() + static_cast<std::ptrdiff_t>(end));
  return d;
}

}  // namespace

ProblemImage upload_system(mem::GlobalMemory& mem, const md::WaterSystem& sys) {
  ProblemImage image;
  image.n_molecules = sys.n_molecules();
  const int n = sys.n_molecules();

  std::vector<double> pos(static_cast<std::size_t>((n + 2) * kPosWords));
  for (int m = 0; m < n; ++m) {
    for (int s = 0; s < 3; ++s) {
      const md::Vec3& p = sys.pos(m, s);
      const std::size_t off = static_cast<std::size_t>(m * kPosWords + 3 * s);
      pos[off + 0] = p.x;
      pos[off + 1] = p.y;
      pos[off + 2] = p.z;
    }
  }
  // Dummy neighbor record (n) and dummy central record (n+1), far from the
  // box and from each other.
  for (int s = 0; s < 3; ++s) {
    const std::size_t nb = static_cast<std::size_t>(n * kPosWords + 3 * s);
    pos[nb + 0] = 1.0e6;
    pos[nb + 1] = 1.0e6 + 0.1 * s;
    pos[nb + 2] = 1.0e6;
    const std::size_t ct = static_cast<std::size_t>((n + 1) * kPosWords + 3 * s);
    pos[ct + 0] = -1.0e6;
    pos[ct + 1] = 0.1 * s;
    pos[ct + 2] = 2.0e6;
  }
  image.pos_base = upload(mem, pos);
  image.force_base = mem.alloc(static_cast<std::int64_t>((n + 1) * kForceWords));
  return image;
}

void clear_forces(mem::GlobalMemory& mem, const ProblemImage& image) {
  const std::int64_t words =
      static_cast<std::int64_t>(image.n_molecules + 1) * kForceWords;
  for (std::int64_t w = 0; w < words; ++w) {
    mem.write(image.force_base + static_cast<std::uint64_t>(w), 0.0);
  }
}

sim::StreamProgram build_program(mem::GlobalMemory& mem,
                                 const ProblemImage& image,
                                 const VariantLayout& layout,
                                 const kernel::KernelDef& kernel_def,
                                 std::uint64_t energy_base) {
  sim::StreamProgram prog;
  if (energy_base != 0 && layout.variant != Variant::kExpanded) {
    throw std::runtime_error("energy output only wired for expanded layouts");
  }

  // ---- Upload the scalar-side arrays. ------------------------------------
  const std::uint64_t i_n_base = upload_indices(mem, layout.neighbor_gather_idx);
  const std::uint64_t i_fc_base = upload_indices(mem, layout.force_c_scatter_idx);
  std::uint64_t i_c_base = 0, i_fn_base = 0, pbc_base = 0, central_base = 0;
  if (!layout.central_gather_idx.empty()) {
    i_c_base = upload_indices(mem, layout.central_gather_idx);
  }
  if (!layout.force_n_scatter_idx.empty()) {
    i_fn_base = upload_indices(mem, layout.force_n_scatter_idx);
  }
  if (!layout.pbc_records.empty()) pbc_base = upload(mem, layout.pbc_records);
  if (!layout.central_records.empty()) {
    central_base = upload(mem, layout.central_records);
  }

  const bool expanded = layout.variant == Variant::kExpanded;
  const bool has_fn = !layout.force_n_scatter_idx.empty();

  // ---- One gather/kernel/scatter group per strip (Figure 5). -------------
  for (const StripSlice& s : layout.strips) {
    const std::int64_t n_nbr = s.neighbor_end - s.neighbor_begin;
    const std::int64_t n_ctr = s.central_end - s.central_begin;
    const std::int64_t n_fc = s.fc_end - s.fc_begin;

    // Index streams consumed by the address generators.
    load_index_stream(prog, i_n_base, s.neighbor_begin, s.neighbor_end);
    if (expanded) load_index_stream(prog, i_c_base, s.central_begin, s.central_end);
    if (has_fn) load_index_stream(prog, i_fn_base, s.neighbor_begin, s.neighbor_end);
    load_index_stream(prog, i_fc_base, s.fc_begin, s.fc_end);

    // Central input: gathered (expanded) or materialized records.
    const sim::StreamId st_central =
        prog.new_stream(n_ctr * (expanded ? kPosWords : layout.central_record_words));
    if (expanded) {
      prog.load(gather_desc(image.pos_base, kPosWords, layout.central_gather_idx,
                            s.central_begin, s.central_end),
                st_central);
    } else {
      mem::MemOpDesc d;
      d.kind = mem::MemOpKind::kLoadStrided;
      d.base = central_base + static_cast<std::uint64_t>(
                                  s.central_begin * layout.central_record_words);
      d.n_records = n_ctr;
      d.record_words = layout.central_record_words;
      prog.load(std::move(d), st_central);
    }

    // Neighbor positions: gathered from the shared array.
    const sim::StreamId st_npos = prog.new_stream(n_nbr * kPosWords);
    prog.load(gather_desc(image.pos_base, kPosWords, layout.neighbor_gather_idx,
                          s.neighbor_begin, s.neighbor_end),
              st_npos);

    sim::StreamId st_pbc = -1;
    if (expanded) {
      st_pbc = prog.new_stream(n_nbr * kPbcWords);
      mem::MemOpDesc d;
      d.kind = mem::MemOpKind::kLoadStrided;
      d.base = pbc_base + static_cast<std::uint64_t>(s.neighbor_begin * kPbcWords);
      d.n_records = n_nbr;
      d.record_words = kPbcWords;
      prog.load(std::move(d), st_pbc);
    }

    // Kernel outputs.
    const sim::StreamId st_fc = prog.new_stream(n_fc * kForceWords);
    sim::StreamId st_fn = -1;
    if (has_fn) st_fn = prog.new_stream(n_nbr * kForceWords);

    sim::StreamId st_energy = -1;
    if (energy_base != 0) st_energy = prog.new_stream(n_nbr * 2);

    // Bindings must match the kernel's stream declaration order.
    std::vector<sim::StreamId> bindings;
    switch (layout.variant) {
      case Variant::kExpanded:
        bindings = {st_central, st_npos, st_pbc, st_fc, st_fn};
        if (st_energy >= 0) bindings.push_back(st_energy);
        break;
      case Variant::kFixed:
      case Variant::kVariable:
        bindings = {st_central, st_npos, st_fn, st_fc};
        break;
      case Variant::kDuplicated:
        bindings = {st_central, st_npos, st_fc};
        break;
    }
    prog.kernel(&kernel_def, std::move(bindings), s.round_end - s.round_begin);

    // Partial-force reduction via the scatter-add units.
    if (has_fn) {
      prog.store(scatter_add_desc(image.force_base, kForceWords,
                                  layout.force_n_scatter_idx, s.neighbor_begin,
                                  s.neighbor_end),
                 st_fn);
    }
    prog.store(scatter_add_desc(image.force_base, kForceWords,
                                layout.force_c_scatter_idx, s.fc_begin, s.fc_end),
               st_fc);
    if (st_energy >= 0) {
      mem::MemOpDesc d;
      d.kind = mem::MemOpKind::kStoreStrided;
      d.base = energy_base + static_cast<std::uint64_t>(2 * s.neighbor_begin);
      d.n_records = n_nbr;
      d.record_words = 2;
      prog.store(std::move(d), st_energy);
    }
  }
  return prog;
}

std::vector<md::Vec3> read_forces(const mem::GlobalMemory& mem,
                                  const ProblemImage& image) {
  std::vector<md::Vec3> forces(static_cast<std::size_t>(3 * image.n_molecules));
  for (int m = 0; m < image.n_molecules; ++m) {
    for (int s = 0; s < 3; ++s) {
      const std::uint64_t base =
          image.force_base + static_cast<std::uint64_t>(m * kForceWords + 3 * s);
      forces[static_cast<std::size_t>(3 * m + s)] = {
          mem.read(base), mem.read(base + 1), mem.read(base + 2)};
    }
  }
  return forces;
}

}  // namespace smd::core
