#include "src/core/run.h"

#include "src/sim/kernelexec.h"

namespace smd::core {
namespace {

/// Fill a VariantResult's metrics from a finished run.
VariantResult assemble_result(const Problem& problem, Variant variant,
                              const VariantLayout& layout,
                              const kernel::KernelDef& kdef,
                              const sim::MachineConfig& cfg,
                              sim::Machine& machine, const ProblemImage& image,
                              sim::RunStats run) {
  VariantResult res;
  res.variant = variant;
  res.name = variant_name(variant);
  res.run = std::move(run);

  // ---- Validation: simulated forces vs. the reference implementation. ----
  const std::vector<md::Vec3> forces = read_forces(machine.memory(), image);
  res.max_force_rel_err = md::max_force_rel_err(problem.reference.force, forces);

  // ---- Paper metrics. -----------------------------------------------------
  res.n_real_interactions = layout.n_real_interactions;
  res.n_computed_interactions = layout.n_computed_interactions;
  res.n_central_blocks = layout.n_central_blocks;
  res.n_neighbor_slots = layout.n_neighbor_slots;

  const double seconds = res.run.seconds(cfg.clock_ghz);
  res.time_ms = seconds * 1e3;
  const double solution_flops = problem.flops_per_interaction *
                                static_cast<double>(layout.n_real_interactions);
  res.solution_gflops = solution_flops / seconds / 1e9;
  res.all_gflops =
      static_cast<double>(res.run.interp.executed.flops) / seconds / 1e9;
  res.mem_refs = res.run.mem_words;

  res.ai_calculated = layout.arithmetic_intensity(problem.flops_per_interaction);
  res.ai_measured = static_cast<double>(res.run.interp.executed.flops) /
                    static_cast<double>(res.run.mem_words);

  const double lrf = static_cast<double>(res.run.interp.lrf_refs);
  const double srf = static_cast<double>(res.run.interp.srf_read_words +
                                         res.run.interp.srf_write_words);
  const double mem = static_cast<double>(res.run.mem_words);
  const double total = lrf + srf + mem;
  res.lrf_fraction = lrf / total;
  res.srf_fraction = srf / total;
  res.mem_fraction = mem / total;

  sim::KernelCostCache costs(cfg.sched);
  const sim::KernelCost& cost = costs.get(kdef);
  res.kernel_cycles_per_iteration = cost.body.cycles_per_iteration();
  res.kernel_issue_rate = cost.body.issue_rate;
  return res;
}

}  // namespace

Problem Problem::make(const ExperimentSetup& setup) {
  md::WaterBoxOptions opts;
  opts.n_molecules = setup.n_molecules;
  opts.seed = setup.seed;
  Problem p{setup,
            md::build_water_box(opts),
            {},
            {},
            0.0};
  p.half_list = md::build_neighbor_list(p.system, setup.cutoff);
  p.reference = md::compute_forces_reference(p.system, p.half_list);
  p.flops_per_interaction =
      static_cast<double>(interaction_flops(p.system.model()).flops);
  return p;
}

VariantResult run_variant(const Problem& problem, Variant variant,
                          const sim::MachineConfig& cfg) {
  LayoutOptions lopts;
  lopts.n_clusters = cfg.n_clusters;
  lopts.fixed_list_length = problem.setup.fixed_list_length;
  lopts.strip_rounds = problem.setup.strip_rounds;
  lopts.srf_words = cfg.srf_words;
  const VariantLayout layout =
      build_layout(variant, problem.system, problem.half_list, lopts);

  const kernel::KernelDef kdef = build_water_kernel(
      variant, problem.system.model(), problem.setup.fixed_list_length);

  sim::Machine machine(cfg);
  const ProblemImage image = upload_system(machine.memory(), problem.system);
  const sim::StreamProgram program =
      build_program(machine.memory(), image, layout, kdef);
  sim::RunStats run = machine.run(program);
  return assemble_result(problem, variant, layout, kdef, cfg, machine, image,
                         std::move(run));
}

std::vector<VariantResult> run_all_variants(const Problem& problem,
                                            const sim::MachineConfig& cfg) {
  std::vector<VariantResult> out;
  for (Variant v : {Variant::kExpanded, Variant::kFixed, Variant::kVariable,
                    Variant::kDuplicated}) {
    out.push_back(run_variant(problem, v, cfg));
  }
  return out;
}

EnergyRunResult run_expanded_with_energy(const Problem& problem,
                                         const sim::MachineConfig& cfg) {
  LayoutOptions lopts;
  lopts.n_clusters = cfg.n_clusters;
  lopts.fixed_list_length = problem.setup.fixed_list_length;
  lopts.strip_rounds = problem.setup.strip_rounds;
  lopts.srf_words = cfg.srf_words;
  const VariantLayout layout = build_layout(Variant::kExpanded, problem.system,
                                            problem.half_list, lopts);
  const kernel::KernelDef kdef =
      build_expanded_energy_kernel(problem.system.model());

  sim::Machine machine(cfg);
  const ProblemImage image = upload_system(machine.memory(), problem.system);
  const std::int64_t slots =
      static_cast<std::int64_t>(layout.neighbor_gather_idx.size());
  const std::uint64_t energy_base = machine.memory().alloc(2 * slots);
  const sim::StreamProgram program =
      build_program(machine.memory(), image, layout, kdef, energy_base);
  sim::RunStats run = machine.run(program);

  EnergyRunResult out;
  out.result = assemble_result(problem, Variant::kExpanded, layout, kdef, cfg,
                               machine, image, std::move(run));
  // Dummy padding interactions contribute (numerically zero) rows too;
  // summing all slots is exact to double precision.
  for (std::int64_t i = 0; i < slots; ++i) {
    out.e_coulomb += machine.memory().read(energy_base + static_cast<std::uint64_t>(2 * i));
    out.e_lj += machine.memory().read(energy_base + static_cast<std::uint64_t>(2 * i + 1));
  }
  return out;
}

}  // namespace smd::core
