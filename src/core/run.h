// End-to-end StreamMD runs: dataset -> layout -> stream program ->
// simulation -> validation -> paper metrics.
#pragma once

#include <string>
#include <vector>

#include "src/core/layouts.h"
#include "src/core/program.h"
#include "src/md/force_ref.h"
#include "src/md/neighborlist.h"
#include "src/md/system.h"
#include "src/sim/machine.h"

namespace smd::core {

/// The experiment configuration of the paper's Section 4.1: one time-step
/// of force computation for a 900 water-molecule system.
struct ExperimentSetup {
  int n_molecules = 900;
  double cutoff = 1.0;      ///< nm
  std::uint64_t seed = 42;
  int fixed_list_length = kFixedListLength;
  /// Strip length in kernel rounds (LayoutOptions::strip_rounds); 0 picks
  /// automatically so three strips' buffers fit in the SRF. A tuning axis.
  std::int64_t strip_rounds = 0;
};

/// Everything measured from one variant run (Figures 8-9, Table 4).
struct VariantResult {
  Variant variant;
  std::string name;
  sim::RunStats run;

  // Dataset properties (Table 2).
  std::int64_t n_real_interactions = 0;
  std::int64_t n_computed_interactions = 0;
  std::int64_t n_central_blocks = 0;
  std::int64_t n_neighbor_slots = 0;

  // Performance (Figure 9).
  double time_ms = 0.0;
  double solution_gflops = 0.0;  ///< useful flops / time
  double all_gflops = 0.0;       ///< all executed flops / time
  std::int64_t mem_refs = 0;     ///< words moved SRF <-> memory

  // Arithmetic intensity (Table 4): flops per memory word.
  double ai_calculated = 0.0;  ///< from the layout's analytic counts
  double ai_measured = 0.0;    ///< executed flops / measured memory words

  // Locality (Figure 8): fraction of data references served per level.
  double lrf_fraction = 0.0;
  double srf_fraction = 0.0;
  double mem_fraction = 0.0;

  // Kernel schedule (Figure 10 context).
  double kernel_cycles_per_iteration = 0.0;
  double kernel_issue_rate = 0.0;

  // Validation against the reference forces.
  double max_force_rel_err = 0.0;
};

/// Precomputed problem shared by all variant runs.
struct Problem {
  ExperimentSetup setup;
  md::WaterSystem system;
  md::NeighborList half_list;
  md::ForceEnergy reference;
  double flops_per_interaction = 0.0;  ///< solution-flop census

  static Problem make(const ExperimentSetup& setup = {});
};

/// Run one variant on a machine configuration.
VariantResult run_variant(const Problem& problem, Variant variant,
                          const sim::MachineConfig& cfg =
                              sim::MachineConfig::merrimac());

/// Run all four variants (paper Figure 9 order).
std::vector<VariantResult> run_all_variants(
    const Problem& problem,
    const sim::MachineConfig& cfg = sim::MachineConfig::merrimac());

/// Expanded-variant run whose kernel additionally streams out Equation 1's
/// non-bonded energies (the quantity GROMACS reports on energy steps).
struct EnergyRunResult {
  VariantResult result;
  double e_coulomb = 0.0;
  double e_lj = 0.0;
};
EnergyRunResult run_expanded_with_energy(
    const Problem& problem,
    const sim::MachineConfig& cfg = sim::MachineConfig::merrimac());

}  // namespace smd::core
