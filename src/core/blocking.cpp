#include "src/core/blocking.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "src/core/kernels.h"

namespace smd::core {

BlockingPoint BlockingModel::at(double size) const {
  if (size <= 0.0) throw std::runtime_error("cluster size must be positive");
  BlockingPoint pt;
  pt.size = size;
  pt.molecules = size * size * size;

  // Physical cluster edge (nm): a size-1 cluster holds one molecule.
  const double a0 = std::cbrt(1.0 / p_.number_density);
  const double s = size * a0;
  const double rc = p_.cutoff;

  // Volume actually interacted with: the cutoff sphere padded by the
  // paving granularity (molecules between r_c and r_c + overhead*s).
  const double vc = 4.0 / 3.0 * M_PI * rc * rc * rc;
  const double reff = rc + p_.pave_overhead * s;
  const double veff = 4.0 / 3.0 * M_PI * reff * reff * reff;

  // Kernel work scales with the number of computed pairs.
  pt.kernel_rel = veff / vc;

  // Memory per molecule: neighborhood positions amortized over the s^3
  // cluster, plus the molecule's own position and force record.
  const double words_per_molecule =
      p_.words_per_position * veff / (s * s * s) +
      (p_.words_per_position + p_.words_per_force);
  const double words_per_interaction =
      words_per_molecule / p_.interactions_per_molecule;
  pt.memory_rel = words_per_interaction / p_.variable_words_per_interaction;

  // Run time: memory overlaps computation (Figure 5), so time is the max
  // of the two busy totals, normalized to the variable scheme's.
  const double t_var =
      std::max(p_.variable_kernel_cycles, p_.variable_memory_cycles);
  const double t_blk = std::max(p_.variable_kernel_cycles * pt.kernel_rel,
                                p_.variable_memory_cycles * pt.memory_rel);
  pt.time_rel = t_blk / t_var;
  return pt;
}

std::vector<BlockingPoint> BlockingModel::sweep(double lo, double hi, int n) const {
  std::vector<BlockingPoint> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double x = lo + (hi - lo) * static_cast<double>(i) /
                              static_cast<double>(n - 1);
    pts.push_back(at(x));
  }
  return pts;
}

BlockingPoint BlockingModel::minimum(double lo, double hi, int n) const {
  BlockingPoint best;
  best.time_rel = 1e300;
  for (const auto& pt : sweep(lo, hi, n)) {
    if (pt.time_rel < best.time_rel) best = pt;
  }
  return best;
}

BlockedImplProfile profile_blocked_implementation(
    const md::WaterSystem& sys, const md::NeighborList& half_list,
    double cutoff, int cells_per_dim, const kernel::ScheduleOptions& sched,
    int n_clusters, double mem_words_per_cycle) {
  if (cells_per_dim < 1) throw std::runtime_error("cells_per_dim < 1");
  BlockedImplProfile p;
  p.cells_per_dim = cells_per_dim;
  const double edge = sys.box().length.x;
  const double s = edge / cells_per_dim;
  p.cell_edge = s;
  const double rho = sys.n_molecules() / sys.box().volume();
  p.normalized_size = s / std::cbrt(1.0 / rho);

  // ---- Bin molecules by wrapped oxygen position. --------------------------
  const int n_cells = cells_per_dim * cells_per_dim * cells_per_dim;
  std::vector<int> occupancy(static_cast<std::size_t>(n_cells), 0);
  for (int m = 0; m < sys.n_molecules(); ++m) {
    const md::Vec3 w = sys.box().wrap(sys.molecule_center(m));
    const int cx = std::min(cells_per_dim - 1, static_cast<int>(w.x / s));
    const int cy = std::min(cells_per_dim - 1, static_cast<int>(w.y / s));
    const int cz = std::min(cells_per_dim - 1, static_cast<int>(w.z / s));
    ++occupancy[static_cast<std::size_t>((cx * cells_per_dim + cy) * cells_per_dim + cz)];
  }
  p.avg_occupancy = static_cast<double>(sys.n_molecules()) / n_cells;
  p.max_occupancy = *std::max_element(occupancy.begin(), occupancy.end());

  // ---- Paving: image offsets whose cube-to-cube minimum distance <= r_c.
  // For axis-aligned equal cubes, the per-axis gap is (|d|-1)*s for |d|>=1.
  const int reach = static_cast<int>(std::ceil(cutoff / s)) + 1;
  int k = 0;
  for (int dx = -reach; dx <= reach; ++dx) {
    for (int dy = -reach; dy <= reach; ++dy) {
      for (int dz = -reach; dz <= reach; ++dz) {
        auto gap = [&](int d) {
          return d == 0 ? 0.0 : (std::abs(d) - 1) * s;
        };
        const double g2 = gap(dx) * gap(dx) + gap(dy) * gap(dy) + gap(dz) * gap(dz);
        if (g2 <= cutoff * cutoff) ++k;
      }
    }
  }
  p.paving_cells = k;

  // ---- Work accounting. ----------------------------------------------------
  std::int64_t groups = 0;
  for (int occ : occupancy) groups += (occ + n_clusters - 1) / n_clusters;
  p.central_groups = groups;
  const std::int64_t slots_per_group =
      static_cast<std::int64_t>(k) * p.max_occupancy;  // body iterations
  p.computed_pairs = groups * slots_per_group * n_clusters;
  p.real_pairs = 2 * half_list.n_pairs();  // both directions
  p.compute_inflation = static_cast<double>(p.computed_pairs) /
                        static_cast<double>(std::max<std::int64_t>(p.real_pairs, 1));

  // Memory: central records once per group member, broadcast neighbor
  // records once per (group, paved cell, slot), forces once per member.
  const double central_words = static_cast<double>(groups) * n_clusters * 10;
  const double neighbor_words = static_cast<double>(groups) *
                                static_cast<double>(slots_per_group) * 13;
  const double force_words = static_cast<double>(groups) * n_clusters * 10;
  p.words_total = central_words + neighbor_words + force_words;
  p.words_per_real_pair =
      p.words_total / static_cast<double>(std::max<std::int64_t>(p.real_pairs, 1));

  // Kernel cost from a real schedule of the blocked kernel body.
  const kernel::KernelDef def = build_blocked_kernel(
      sys.model(), cutoff, static_cast<int>(std::min<std::int64_t>(
                               slots_per_group, 1 << 20)));
  const kernel::Schedule schedule = kernel::schedule_body(def, sched);
  p.cycles_per_computed_pair = schedule.cycles_per_iteration();
  p.est_kernel_cycles = static_cast<double>(p.computed_pairs) / n_clusters *
                        p.cycles_per_computed_pair;
  p.est_memory_cycles = p.words_total / mem_words_per_cycle;
  return p;
}

analysis::ScatterAssignment BlockingScheme::to_scatter_assignment(
    std::uint64_t force_base) const {
  analysis::ScatterAssignment a;
  a.name = name;
  a.n_rows = n_molecules + 1;  // + trash row
  a.trash_row = trash_row();
  a.combining = combining;
  a.base = force_base;
  a.record_words = 9;
  a.block_rows = block_rows;
  return a;
}

BlockingScheme build_blocking_scheme(const md::WaterSystem& sys,
                                     int cells_per_dim, int n_clusters) {
  if (cells_per_dim < 1) throw std::runtime_error("cells_per_dim < 1");
  if (n_clusters < 1) throw std::runtime_error("n_clusters < 1");
  BlockingScheme scheme;
  scheme.name = "blocked_c" + std::to_string(cells_per_dim);
  scheme.cells_per_dim = cells_per_dim;
  scheme.n_lanes = n_clusters;
  scheme.n_molecules = sys.n_molecules();

  // Bin molecules by wrapped center, as profile_blocked_implementation does.
  const double edge = sys.box().length.x;
  const double s = edge / cells_per_dim;
  const int n_cells = cells_per_dim * cells_per_dim * cells_per_dim;
  std::vector<std::vector<std::int64_t>> members(
      static_cast<std::size_t>(n_cells));
  for (int m = 0; m < sys.n_molecules(); ++m) {
    const md::Vec3 w = sys.box().wrap(sys.molecule_center(m));
    const int cx = std::min(cells_per_dim - 1, static_cast<int>(w.x / s));
    const int cy = std::min(cells_per_dim - 1, static_cast<int>(w.y / s));
    const int cz = std::min(cells_per_dim - 1, static_cast<int>(w.z / s));
    members[static_cast<std::size_t>((cx * cells_per_dim + cy) * cells_per_dim +
                                     cz)]
        .push_back(m);
  }

  // Pack each cell's molecules into n_clusters-wide central groups; padding
  // lanes update the trash row.
  for (const auto& cell : members) {
    for (std::size_t first = 0; first < cell.size();
         first += static_cast<std::size_t>(n_clusters)) {
      std::vector<std::int64_t> lanes(static_cast<std::size_t>(n_clusters),
                                      scheme.trash_row());
      const std::size_t end =
          std::min(cell.size(), first + static_cast<std::size_t>(n_clusters));
      for (std::size_t k = first; k < end; ++k) lanes[k - first] = cell[k];
      scheme.block_rows.push_back(std::move(lanes));
    }
  }
  return scheme;
}

std::vector<int> builtin_blocking_cells() { return {2, 3, 4}; }

AnalyticEstimate estimate_variant_run(const md::WaterSystem& sys,
                                      const md::NeighborList& half_list,
                                      Variant variant,
                                      const LayoutOptions& lopts,
                                      const kernel::ScheduleOptions& sched,
                                      double mem_words_per_cycle,
                                      int kernel_startup_cycles) {
  if (mem_words_per_cycle <= 0.0) {
    throw std::runtime_error("mem_words_per_cycle must be positive");
  }
  const VariantLayout layout = build_layout(variant, sys, half_list, lopts);
  const kernel::KernelDef def =
      build_water_kernel(variant, sys.model(), lopts.fixed_list_length);
  const kernel::Schedule schedule = kernel::schedule_body(def, sched);

  AnalyticEstimate e;
  e.kernel_cycles = schedule.cycles_per_iteration() *
                    static_cast<double>(layout.rounds) *
                    static_cast<double>(def.block_len);
  e.mem_words = static_cast<double>(layout.memory_words());
  e.memory_cycles = e.mem_words / mem_words_per_cycle;
  e.time_cycles = static_cast<double>(kernel_startup_cycles) *
                      static_cast<double>(layout.strips.size()) +
                  std::max(e.kernel_cycles, e.memory_cycles);
  return e;
}

std::vector<bool> prune_dominated(const std::vector<AnalyticEstimate>& est,
                                  double slack) {
  std::vector<bool> keep(est.size(), true);
  if (slack <= 1.0) return keep;
  for (std::size_t i = 0; i < est.size(); ++i) {
    for (std::size_t j = 0; j < est.size(); ++j) {
      if (i == j) continue;
      if (est[j].time_cycles * slack <= est[i].time_cycles &&
          est[j].mem_words * slack <= est[i].mem_words) {
        keep[i] = false;
        break;
      }
    }
  }
  return keep;
}

}  // namespace smd::core
