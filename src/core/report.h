// Shared reporting of reproduced tables/figures, used by the bench
// binaries and examples so all output is uniform and diff-friendly:
// ASCII tables for humans, and the unified to_json() family + bench
// records for machines (the BENCH_*.json trajectory).
#pragma once

#include <string>
#include <vector>

#include "src/core/blocking.h"
#include "src/core/run.h"
#include "src/obs/json.h"
#include "src/sim/config.h"

namespace smd::core {

/// Paper Table 1: machine parameters.
std::string format_machine_table(const sim::MachineConfig& cfg);

/// Paper Table 2: dataset properties.
std::string format_dataset_table(const Problem& problem,
                                 const std::vector<VariantResult>& results);

/// Paper Table 3: variant descriptions.
std::string format_variants_table();

/// Paper Table 4: arithmetic intensity (calculated vs measured).
std::string format_arithmetic_intensity_table(
    const std::vector<VariantResult>& results);

/// Paper Figure 8: locality (% of references per register-hierarchy level).
std::string format_locality_table(const std::vector<VariantResult>& results);

/// Paper Figure 9: performance. `p4_solution_gflops` <= 0 omits the
/// Pentium 4 row.
std::string format_performance_table(const std::vector<VariantResult>& results,
                                     double p4_solution_gflops,
                                     double optimal_solution_gflops);

/// Figures 11-12: blocking model curves.
std::string format_blocking_table(const std::vector<BlockingPoint>& pts,
                                  const BlockingPoint& minimum);

// ---- Machine-readable reporting. ----------------------------------------
//
// Every stats struct the simulator produces serializes through one of
// these, so bench records, the CLI's --json output, and the tests all
// agree on field names. Integers stay integers; derived fractions are
// emitted alongside the raw counts they come from.

obs::Json to_json(const sim::MachineConfig& cfg);
obs::Json to_json(const kernel::FlopCensus& c);
obs::Json to_json(const kernel::InterpStats& s);
obs::Json to_json(const mem::MemSystemStats& s);
obs::Json to_json(const mem::CacheStats& s);
obs::Json to_json(const mem::DramStats& s);
obs::Json to_json(const mem::ScatterAddStats& s);
obs::Json to_json(const sim::RunStats& s);
obs::Json to_json(const VariantResult& r);
obs::Json to_json(const BlockingPoint& p);

/// The unified bench record written by `--json <path>`: schema version,
/// bench name, machine config, per-variant results, and a snapshot of the
/// global telemetry registry.
obs::Json bench_record(const std::string& bench_name,
                       const sim::MachineConfig& cfg,
                       const std::vector<VariantResult>& results);

}  // namespace smd::core
