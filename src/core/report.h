// Shared formatting of reproduced tables/figures, used by the bench
// binaries and examples so all output is uniform and diff-friendly.
#pragma once

#include <string>
#include <vector>

#include "src/core/blocking.h"
#include "src/core/run.h"
#include "src/sim/config.h"

namespace smd::core {

/// Paper Table 1: machine parameters.
std::string format_machine_table(const sim::MachineConfig& cfg);

/// Paper Table 2: dataset properties.
std::string format_dataset_table(const Problem& problem,
                                 const std::vector<VariantResult>& results);

/// Paper Table 3: variant descriptions.
std::string format_variants_table();

/// Paper Table 4: arithmetic intensity (calculated vs measured).
std::string format_arithmetic_intensity_table(
    const std::vector<VariantResult>& results);

/// Paper Figure 8: locality (% of references per register-hierarchy level).
std::string format_locality_table(const std::vector<VariantResult>& results);

/// Paper Figure 9: performance. `p4_solution_gflops` <= 0 omits the
/// Pentium 4 row.
std::string format_performance_table(const std::vector<VariantResult>& results,
                                     double p4_solution_gflops,
                                     double optimal_solution_gflops);

/// Figures 11-12: blocking model curves.
std::string format_blocking_table(const std::vector<BlockingPoint>& pts,
                                  const BlockingPoint& minimum);

}  // namespace smd::core
