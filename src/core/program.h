// Stream program construction for StreamMD.
//
// Mirrors the paper's pseudo-code (Section 3.1-3.2), strip-mined per
// Figure 5:
//
//   for each strip:
//     c_positions = gather(positions, i_central[strip]);
//     n_positions = gather(positions, i_neighbor[strip]);
//     partial_forces = compute_force(c_positions, n_positions);
//     forces = scatter_add(partial_forces, i_forces[strip]);
//
// The index streams themselves are loaded from memory (they are
// scalar-side data passed "through memory"), the gathers/scatters run on
// the hardware address generators, and the reduction uses the scatter-add
// units. The stream controller overlaps consecutive strips' memory
// operations with kernel execution.
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/kernels.h"
#include "src/core/layouts.h"
#include "src/md/system.h"
#include "src/mem/memsys.h"
#include "src/sim/streamop.h"

namespace smd::core {

/// The scalar-side memory image: shared positions and the force output
/// array (plus one trash row absorbing dummy contributions).
struct ProblemImage {
  std::uint64_t pos_base = 0;    ///< (n+2) x 9 words
  std::uint64_t force_base = 0;  ///< (n+1) x 9 words
  int n_molecules = 0;

  std::uint64_t trash_row() const {
    return static_cast<std::uint64_t>(n_molecules);
  }
};

/// Upload positions (plus the two dummy records) and allocate the force
/// array in the machine's global memory.
ProblemImage upload_system(mem::GlobalMemory& mem, const md::WaterSystem& sys);

/// Zero the force array (between force evaluations).
void clear_forces(mem::GlobalMemory& mem, const ProblemImage& image);

/// Build the strip-mined stream program for a variant.
///
/// `energy_base`: when non-zero (expanded variant with the energy kernel,
/// whose 6th stream is a 2-word [coulomb, lj] record per interaction), the
/// per-interaction energies are stored to that array.
sim::StreamProgram build_program(mem::GlobalMemory& mem,
                                 const ProblemImage& image,
                                 const VariantLayout& layout,
                                 const kernel::KernelDef& kernel_def,
                                 std::uint64_t energy_base = 0);

/// Read the per-atom forces back from the machine's memory.
std::vector<md::Vec3> read_forces(const mem::GlobalMemory& mem,
                                  const ProblemImage& image);

}  // namespace smd::core
