// Water-water interaction kernels (stream IR), one per variant.
//
// All four share the same 9-atom-pair Coulomb + O-O Lennard-Jones
// arithmetic (Equation 1 of the paper, ~230 flops with 9 divides and 9
// square roots per molecule pair -- the paper quotes 234); they differ in
// stream structure:
//
//   expanded   : body reads (cpos 9, npos 9, pbc 9), writes (fc 9, fn 9).
//   fixed      : outer_pre reads a pre-shifted central (9) and zeroes the
//                accumulator; body reads npos 9, writes fn 9 and reduces
//                the central force in the LRF; outer_post writes fc 9.
//   variable   : body conditionally pulls a 10-word central record
//                (pre-shifted positions + neighbor count) when the current
//                one is exhausted, processes one neighbor, and
//                conditionally writes the reduced central force when the
//                count strikes zero -- Merrimac's conditional streams.
//   duplicated : like fixed, but never materializes or writes neighbor
//                partial forces (each pair is computed twice instead).
#pragma once

#include "src/core/streammd.h"
#include "src/kernel/ir.h"
#include "src/kernel/schedule.h"
#include "src/md/water.h"

namespace smd::core {

/// Stream slot order of each kernel (matching KernelDef::streams):
///   expanded:   [c_pos, n_pos, pbc, f_c, f_n]
///   fixed:      [central, n_pos, f_n, f_c]
///   variable:   [central, n_pos, f_n, f_c]
///   duplicated: [central, n_pos, f_c]
kernel::KernelDef build_water_kernel(Variant variant,
                                     const md::WaterModel& model,
                                     int fixed_list_length = kFixedListLength);

/// Solution flops per molecule-pair interaction, in the paper's counting
/// convention, as actually emitted by these kernels (the census of the
/// expanded kernel body). The paper quotes ~234 with 9 div + 9 sqrt.
kernel::FlopCensus interaction_flops(const md::WaterModel& model);

/// Deliberately inefficient twin of the expanded kernel, used to exercise
/// and demonstrate the verified optimizer (kernel/opt.h): it computes the
/// exact same per-pair forces through the same stream interface
/// [c_pos, n_pos, pbc, f_c, f_n], but "computes" its immediates at runtime
/// (constant-folding fodder), recomputes the first pair's distance vector
/// (CSE fodder), carries a dead r^4 temporary (DCE fodder) and packs the
/// force writes through two-step copy chains (copy-propagation fodder).
/// optimize_kernel reduces it to the expanded kernel's cost; the lockstep
/// equivalence sweep proves the rewrite is bit-identical.
kernel::KernelDef build_expanded_naive_kernel(const md::WaterModel& model);

/// Expanded-style kernel that additionally streams out the Equation-1
/// energies (Coulomb, Lennard-Jones) per interaction -- GROMACS evaluates
/// V_nb alongside forces on energy steps. Streams:
/// [c_pos, n_pos, pbc, f_c, f_n, energy(2 words)].
kernel::KernelDef build_expanded_energy_kernel(const md::WaterModel& model);

// ---------------------------------------------------------------------------
// Section 5.4 extension: "more complex water models ... can significantly
// increase the amount of arithmetic intensity."
// ---------------------------------------------------------------------------

/// Build an expanded-style interaction kernel for an arbitrary multi-site
/// water model (TIP5P, PPC-style, ...). Site 0 carries the Lennard-Jones
/// well; site pairs whose charge product is zero and that have no LJ term
/// are skipped (e.g. TIP5P's neutral oxygen against hydrogens).
/// Streams: [c_pos (3S), n_pos (3S), shift (3), f_c (3S), f_n (3S)].
kernel::KernelDef build_multisite_kernel(const md::WaterModel& model);

/// Per-interaction characterization of a multi-site kernel on a cluster:
/// arithmetic + bandwidth + a real VLIW schedule.
struct MultisiteProfile {
  int sites = 0;
  int active_pairs = 0;             ///< site pairs actually computed
  kernel::FlopCensus census;        ///< per molecule-pair interaction
  double words_per_interaction = 0; ///< memory words incl. index streams
  double arithmetic_intensity = 0;  ///< flops / word
  double cycles_per_interaction = 0;  ///< scheduled, per cluster
  /// Projected chip-level solution GFLOPS: min(compute bound from the
  /// schedule, bandwidth bound from AI x sustained memory bandwidth).
  double projected_gflops = 0;
};

MultisiteProfile profile_multisite_kernel(
    const md::WaterModel& model,
    const kernel::ScheduleOptions& sched = {.unroll = 2},
    int n_clusters = 16, double mem_words_per_cycle = 4.0,
    double clock_ghz = 1.0);

// ---------------------------------------------------------------------------
// Section 5.4 extension: the blocking scheme as an implementable kernel.
// ---------------------------------------------------------------------------

/// The blocking-scheme interaction kernel: each cluster holds one central
/// molecule of a 16-molecule group; the neighbor cells' molecules are
/// *broadcast* to all clusters through the inter-cluster switch. The
/// kernel applies the cell-pair minimum-image shift carried in the record,
/// masks invalid pairs (dummy padding slots, self interaction) and applies
/// an explicit r^2 < r_c^2 cutoff so results match the list-based
/// reference exactly; only the central-side force is reduced
/// (duplicated-style -- every pair is computed from both sides).
///
/// Streams: [central (10 = 9 pos + molecule id),
///           neighbor (13 = 9 pos + molecule id + 3 shift, broadcast),
///           f_c (9)]
/// block_len = neighbor slots per central group (paving cells x padded
/// cell occupancy).
kernel::KernelDef build_blocked_kernel(const md::WaterModel& model,
                                       double cutoff, int block_len);

}  // namespace smd::core
