#include "src/core/kernels.h"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "src/md/constants.h"

namespace smd::core {
namespace {

using kernel::KernelBuilder;
using kernel::Section;
using Reg = KernelBuilder::Reg;

/// Constants shared by every variant's kernel, emitted into the prologue
/// (Merrimac preloads immediates through the microcode store).
struct Consts {
  Reg zero, one;
  Reg six, twelve;
  Reg c6, c12;
  std::array<std::array<Reg, 3>, 3> qq;  ///< ke * q_a * q_b per site pair
};

Consts emit_consts(KernelBuilder& kb, const md::WaterModel& model) {
  Consts c;
  kb.section(Section::kPrologue);
  c.zero = kb.constant(0.0);
  c.one = kb.constant(1.0);
  c.six = kb.constant(6.0);
  c.twelve = kb.constant(12.0);
  c.c6 = kb.constant(model.c6);
  c.c12 = kb.constant(model.c12);
  // Three distinct products (OO, OH, HH); reuse registers for symmetry.
  const double qo = model.sites[0].charge;
  const double qh = model.sites[1].charge;
  const Reg oo = kb.constant(md::kCoulombFactor * qo * qo);
  const Reg oh = kb.constant(md::kCoulombFactor * qo * qh);
  const Reg hh = kb.constant(md::kCoulombFactor * qh * qh);
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      const bool ao = a == 0, bo = b == 0;
      c.qq[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] =
          (ao && bo) ? oo : ((ao || bo) ? oh : hh);
    }
  }
  return c;
}

struct PairSums {
  std::array<Reg, 9> central;   ///< force on the central molecule's atoms
  std::array<Reg, 9> neighbor;  ///< force on the neighbor (negated sums)
  Reg e_coulomb{-1};            ///< pair Coulomb energy (if requested)
  Reg e_lj{-1};                 ///< pair Lennard-Jones energy (if requested)
};

/// Emit the 9-atom-pair interaction between central coordinates c[0..8]
/// and neighbor coordinates n[0..8]. Computes central-side force sums
/// always; neighbor-side sums only when `want_neighbor` (the `duplicated`
/// variant skips them entirely -- that is its flop/bandwidth trade);
/// Equation-1 energies only when `want_energy`.
PairSums emit_interaction(KernelBuilder& kb, const Consts& k,
                          const std::array<Reg, 9>& c,
                          const std::array<Reg, 9>& n, bool want_neighbor,
                          bool want_energy = false) {
  PairSums out;
  Reg e_c{-1}, e_lj{-1};
  bool e_c_init = false;
  std::array<std::array<Reg, 3>, 3> csum{};  // [a][xyz]
  std::array<std::array<Reg, 3>, 3> nsum{};  // [b][xyz]
  std::array<std::array<bool, 3>, 3> cinit{};
  std::array<std::array<bool, 3>, 3> ninit{};

  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      const auto ca = [&](int d) { return c[static_cast<std::size_t>(3 * a + d)]; };
      const auto nb = [&](int d) { return n[static_cast<std::size_t>(3 * b + d)]; };
      const Reg dx = kb.sub(ca(0), nb(0));
      const Reg dy = kb.sub(ca(1), nb(1));
      const Reg dz = kb.sub(ca(2), nb(2));
      const Reg r2 = kb.madd(dz, dz, kb.madd(dy, dy, kb.mul(dx, dx)));
      const Reg rinv = kb.rsqrt(r2);
      const Reg rinv2 = kb.mul(rinv, rinv);
      const Reg vc = kb.mul(
          k.qq[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)], rinv);
      Reg fs = kb.mul(vc, rinv2);
      if (want_energy) {
        e_c = e_c_init ? kb.add(e_c, vc) : vc;
        e_c_init = true;
      }
      if (a == 0 && b == 0) {
        const Reg rinv6 = kb.mul(rinv2, kb.mul(rinv2, rinv2));
        const Reg c6t = kb.mul(k.c6, rinv6);
        const Reg c12t = kb.mul(k.c12, kb.mul(rinv6, rinv6));
        const Reg lj = kb.msub(k.twelve, c12t, kb.mul(k.six, c6t));
        fs = kb.madd(lj, rinv2, fs);
        if (want_energy) e_lj = kb.sub(c12t, c6t);
      }
      const Reg f[3] = {kb.mul(fs, dx), kb.mul(fs, dy), kb.mul(fs, dz)};
      for (int d = 0; d < 3; ++d) {
        auto& cs = csum[static_cast<std::size_t>(a)][static_cast<std::size_t>(d)];
        cs = cinit[static_cast<std::size_t>(a)][static_cast<std::size_t>(d)]
                 ? kb.add(cs, f[d])
                 : f[d];
        cinit[static_cast<std::size_t>(a)][static_cast<std::size_t>(d)] = true;
        if (want_neighbor) {
          auto& ns = nsum[static_cast<std::size_t>(b)][static_cast<std::size_t>(d)];
          ns = ninit[static_cast<std::size_t>(b)][static_cast<std::size_t>(d)]
                   ? kb.add(ns, f[d])
                   : f[d];
          ninit[static_cast<std::size_t>(b)][static_cast<std::size_t>(d)] = true;
        }
      }
    }
  }
  for (int a = 0; a < 3; ++a) {
    for (int d = 0; d < 3; ++d) {
      out.central[static_cast<std::size_t>(3 * a + d)] =
          csum[static_cast<std::size_t>(a)][static_cast<std::size_t>(d)];
      if (want_neighbor) {
        // Newton's third law: the neighbor gets the negated sum.
        out.neighbor[static_cast<std::size_t>(3 * a + d)] = kb.sub(
            k.zero, nsum[static_cast<std::size_t>(a)][static_cast<std::size_t>(d)]);
      }
    }
  }
  if (want_energy) {
    out.e_coulomb = e_c;
    out.e_lj = e_lj;
  }
  return out;
}

std::array<Reg, 9> read9(KernelBuilder& kb, int stream) {
  const auto v = kb.read(stream, 9);
  std::array<Reg, 9> a;
  for (int i = 0; i < 9; ++i) a[static_cast<std::size_t>(i)] = v[static_cast<std::size_t>(i)];
  return a;
}

/// Move scattered result registers into a fresh contiguous block for a
/// stream write (MOVs are handled by the cluster switch, no FPU slots).
Reg pack9(KernelBuilder& kb, const std::array<Reg, 9>& vals) {
  const auto block = kb.alloc_n(9);
  for (int i = 0; i < 9; ++i) kb.mov_to(block[static_cast<std::size_t>(i)], vals[static_cast<std::size_t>(i)]);
  return block[0];
}

kernel::KernelDef build_expanded_kernel(const md::WaterModel& model) {
  KernelBuilder kb("water_expanded");
  const int s_c = kb.stream_in("c_pos", kPosWords);
  const int s_n = kb.stream_in("n_pos", kPosWords);
  const int s_p = kb.stream_in("pbc", kPbcWords);
  const int s_fc = kb.stream_out("f_c", kForceWords);
  const int s_fn = kb.stream_out("f_n", kForceWords);
  const Consts k = emit_consts(kb, model);

  kb.section(Section::kBody);
  const auto c = read9(kb, s_c);
  const auto n_raw = read9(kb, s_n);
  const auto p = read9(kb, s_p);
  std::array<Reg, 9> n;
  for (int i = 0; i < 9; ++i) {
    n[static_cast<std::size_t>(i)] =
        kb.add(n_raw[static_cast<std::size_t>(i)], p[static_cast<std::size_t>(i)]);
  }
  const PairSums sums = emit_interaction(kb, k, c, n, /*want_neighbor=*/true);
  kb.write(s_fc, pack9(kb, sums.central), 9);
  kb.write(s_fn, pack9(kb, sums.neighbor), 9);
  return kb.build();
}

/// See kernels.h: same math and stream interface as the expanded kernel,
/// written the way a first draft might be -- every inefficiency here is
/// one the verified optimizer provably removes.
kernel::KernelDef build_naive_kernel(const md::WaterModel& model) {
  KernelBuilder kb("water_expanded_naive");
  const int s_c = kb.stream_in("c_pos", kPosWords);
  const int s_n = kb.stream_in("n_pos", kPosWords);
  const int s_p = kb.stream_in("pbc", kPbcWords);
  const int s_fc = kb.stream_out("f_c", kForceWords);
  const int s_fn = kb.stream_out("f_n", kForceWords);

  // Immediates "computed" at runtime (constant-folding fodder). The
  // products associate left like emit_consts so the folded values match
  // the tuned kernel bit-for-bit.
  kb.section(Section::kPrologue);
  Consts k;
  k.zero = kb.constant(0.0);
  k.one = kb.constant(1.0);  // never consumed: DCE fodder
  const Reg two = kb.constant(2.0);
  const Reg three = kb.constant(3.0);
  k.six = kb.mul(two, three);
  k.twelve = kb.mul(two, k.six);
  k.c6 = kb.constant(model.c6);
  k.c12 = kb.constant(model.c12);
  const Reg ke = kb.constant(md::kCoulombFactor);
  const Reg qo = kb.constant(model.sites[0].charge);
  const Reg qh = kb.constant(model.sites[1].charge);
  const Reg oo = kb.mul(kb.mul(ke, qo), qo);
  const Reg oh = kb.mul(kb.mul(ke, qo), qh);
  const Reg hh = kb.mul(kb.mul(ke, qh), qh);
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      const bool ao = a == 0, bo = b == 0;
      k.qq[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] =
          (ao && bo) ? oo : ((ao || bo) ? oh : hh);
    }
  }

  kb.section(Section::kBody);
  const auto c = read9(kb, s_c);
  const auto n_raw = read9(kb, s_n);
  const auto p = read9(kb, s_p);
  std::array<Reg, 9> n;
  for (int i = 0; i < 9; ++i) {
    n[static_cast<std::size_t>(i)] =
        kb.add(n_raw[static_cast<std::size_t>(i)], p[static_cast<std::size_t>(i)]);
  }
  const PairSums sums = emit_interaction(kb, k, c, n, /*want_neighbor=*/true);

  // Recompute the O-O pair's distance vector and r^2 from scratch (CSE
  // fodder) and fold them into an r^4 nobody reads (DCE fodder).
  const Reg dx2 = kb.sub(c[0], n[0]);
  const Reg dy2 = kb.sub(c[1], n[1]);
  const Reg dz2 = kb.sub(c[2], n[2]);
  const Reg r2b = kb.madd(dz2, dz2, kb.madd(dy2, dy2, kb.mul(dx2, dx2)));
  const Reg waste = kb.mul(r2b, r2b);
  (void)waste;

  // Pack the force writes through a two-step copy chain (copy-propagation
  // fodder; the tuned pack9 moves each value once).
  const auto pack9_chained = [&](const std::array<Reg, 9>& vals) {
    std::array<Reg, 9> tmp;
    for (int i = 0; i < 9; ++i) {
      tmp[static_cast<std::size_t>(i)] = kb.mov(vals[static_cast<std::size_t>(i)]);
    }
    const auto block = kb.alloc_n(9);
    for (int i = 0; i < 9; ++i) {
      kb.mov_to(block[static_cast<std::size_t>(i)], tmp[static_cast<std::size_t>(i)]);
    }
    return block[0];
  };
  kb.write(s_fc, pack9_chained(sums.central), 9);
  kb.write(s_fn, pack9_chained(sums.neighbor), 9);
  return kb.build();
}

kernel::KernelDef build_fixed_like_kernel(const md::WaterModel& model,
                                          int L, bool want_neighbor,
                                          const char* name) {
  KernelBuilder kb(name);
  const int s_c = kb.stream_in("central", kPosWords);
  const int s_n = kb.stream_in("n_pos", kPosWords);
  const int s_fn = want_neighbor ? kb.stream_out("f_n", kForceWords) : -1;
  const int s_fc = kb.stream_out("f_c", kForceWords);
  const Consts k = emit_consts(kb, model);
  kb.block_len(L);

  // Stable registers: central coordinates and the force accumulator.
  const auto cblock = kb.alloc_n(9);
  const auto acc = kb.alloc_n(9);

  kb.section(Section::kOuterPre);
  kb.read_to(s_c, cblock[0], 9);
  for (int i = 0; i < 9; ++i) kb.mov_to(acc[static_cast<std::size_t>(i)], k.zero);

  kb.section(Section::kBody);
  std::array<Reg, 9> c;
  for (int i = 0; i < 9; ++i) c[static_cast<std::size_t>(i)] = cblock[static_cast<std::size_t>(i)];
  const auto n = read9(kb, s_n);
  const PairSums sums = emit_interaction(kb, k, c, n, want_neighbor);
  for (int i = 0; i < 9; ++i) {
    kb.add_to(acc[static_cast<std::size_t>(i)], acc[static_cast<std::size_t>(i)],
              sums.central[static_cast<std::size_t>(i)]);
  }
  if (want_neighbor) kb.write(s_fn, pack9(kb, sums.neighbor), 9);

  kb.section(Section::kOuterPost);
  kb.write(s_fc, acc[0], 9);
  return kb.build();
}

kernel::KernelDef build_variable_kernel(const md::WaterModel& model) {
  KernelBuilder kb("water_variable");
  const int s_c = kb.stream_in("central", kPosWords + 1, /*conditional=*/true);
  const int s_n = kb.stream_in("n_pos", kPosWords);
  const int s_fn = kb.stream_out("f_n", kForceWords);
  const int s_fc = kb.stream_out("f_c", kForceWords, /*conditional=*/true);
  const Consts k = emit_consts(kb, model);

  // Stable state: central record (9 pos + count), remaining counter,
  // force accumulator.
  const auto crec = kb.alloc_n(10);
  const auto acc = kb.alloc_n(9);
  const Reg rem = kb.alloc();

  kb.section(Section::kPrologue);
  kb.mov_to(rem, k.zero);

  kb.section(Section::kBody);
  // Pull a new central when the current one is exhausted. All clusters
  // issue the access every iteration (SIMD); only those whose predicate is
  // set consume a record -- Merrimac's conditional streams.
  const Reg need_new = kb.cmp_eq(rem, k.zero);
  kb.read_cond_to(s_c, crec[0], 10, need_new);
  kb.sel_to(rem, need_new, crec[9], rem);
  for (int i = 0; i < 9; ++i) {
    kb.sel_to(acc[static_cast<std::size_t>(i)], need_new, k.zero,
              acc[static_cast<std::size_t>(i)]);
  }

  std::array<Reg, 9> c;
  for (int i = 0; i < 9; ++i) c[static_cast<std::size_t>(i)] = crec[static_cast<std::size_t>(i)];
  const auto n = read9(kb, s_n);
  const PairSums sums = emit_interaction(kb, k, c, n, /*want_neighbor=*/true);
  for (int i = 0; i < 9; ++i) {
    kb.add_to(acc[static_cast<std::size_t>(i)], acc[static_cast<std::size_t>(i)],
              sums.central[static_cast<std::size_t>(i)]);
  }
  kb.write(s_fn, pack9(kb, sums.neighbor), 9);

  // Retire the central when its last neighbor has been processed.
  const Reg rem2 = kb.sub(rem, k.one);
  kb.mov_to(rem, rem2);
  const Reg done = kb.cmp_eq(rem2, k.zero);
  kb.write_cond(s_fc, acc[0], 9, done);
  (void)s_fn;
  return kb.build();
}

}  // namespace

kernel::KernelDef build_water_kernel(Variant variant,
                                     const md::WaterModel& model,
                                     int fixed_list_length) {
  switch (variant) {
    case Variant::kExpanded:
      return build_expanded_kernel(model);
    case Variant::kFixed:
      return build_fixed_like_kernel(model, fixed_list_length, true,
                                     "water_fixed");
    case Variant::kDuplicated:
      return build_fixed_like_kernel(model, fixed_list_length, false,
                                     "water_duplicated");
    case Variant::kVariable:
      return build_variable_kernel(model);
  }
  throw std::runtime_error("unknown variant");
}

kernel::KernelDef build_expanded_naive_kernel(const md::WaterModel& model) {
  return build_naive_kernel(model);
}

kernel::FlopCensus interaction_flops(const md::WaterModel& model) {
  return build_water_kernel(Variant::kExpanded, model).body_census();
}

kernel::KernelDef build_expanded_energy_kernel(const md::WaterModel& model) {
  KernelBuilder kb("water_expanded_energy");
  const int s_c = kb.stream_in("c_pos", kPosWords);
  const int s_n = kb.stream_in("n_pos", kPosWords);
  const int s_p = kb.stream_in("pbc", kPbcWords);
  const int s_fc = kb.stream_out("f_c", kForceWords);
  const int s_fn = kb.stream_out("f_n", kForceWords);
  const int s_e = kb.stream_out("energy", 2);
  const Consts k = emit_consts(kb, model);

  kb.section(Section::kBody);
  const auto c = read9(kb, s_c);
  const auto n_raw = read9(kb, s_n);
  const auto p = read9(kb, s_p);
  std::array<Reg, 9> n;
  for (int i = 0; i < 9; ++i) {
    n[static_cast<std::size_t>(i)] =
        kb.add(n_raw[static_cast<std::size_t>(i)], p[static_cast<std::size_t>(i)]);
  }
  const PairSums sums = emit_interaction(kb, k, c, n, /*want_neighbor=*/true,
                                         /*want_energy=*/true);
  kb.write(s_fc, pack9(kb, sums.central), 9);
  kb.write(s_fn, pack9(kb, sums.neighbor), 9);
  const auto e_block = kb.alloc_n(2);
  kb.mov_to(e_block[0], sums.e_coulomb);
  kb.mov_to(e_block[1], sums.e_lj);
  kb.write(s_e, e_block[0], 2);
  return kb.build();
}

kernel::KernelDef build_multisite_kernel(const md::WaterModel& model) {
  const int S = static_cast<int>(model.sites.size());
  if (S < 1) throw std::runtime_error("model has no sites");
  KernelBuilder kb("water_" + model.name + "_multisite");
  const int s_c = kb.stream_in("c_pos", 3 * S);
  const int s_n = kb.stream_in("n_pos", 3 * S);
  const int s_sh = kb.stream_in("shift", 3);
  const int s_fc = kb.stream_out("f_c", 3 * S);
  const int s_fn = kb.stream_out("f_n", 3 * S);

  kb.section(Section::kPrologue);
  const Reg zero = kb.constant(0.0);
  const Reg six = kb.constant(6.0);
  const Reg twelve = kb.constant(12.0);
  const Reg c6 = kb.constant(model.c6);
  const Reg c12 = kb.constant(model.c12);
  // Distinct nonzero charge products only (symmetric pairs share a
  // register, like the SPC kernel's OO/OH/HH trio).
  std::vector<std::vector<Reg>> qq(static_cast<std::size_t>(S),
                                   std::vector<Reg>(static_cast<std::size_t>(S)));
  std::vector<std::pair<double, Reg>> pool;
  for (int a = 0; a < S; ++a) {
    for (int b = 0; b < S; ++b) {
      const double v = md::kCoulombFactor *
                       model.sites[static_cast<std::size_t>(a)].charge *
                       model.sites[static_cast<std::size_t>(b)].charge;
      if (v == 0.0) continue;
      Reg r{-1};
      for (const auto& [val, reg] : pool) {
        if (val == v) r = reg;
      }
      if (r.idx < 0) {
        r = kb.constant(v);
        pool.push_back({v, r});
      }
      qq[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] = r;
    }
  }

  kb.section(Section::kBody);
  const auto c = kb.read(s_c, 3 * S);
  const auto n_raw = kb.read(s_n, 3 * S);
  const auto sh = kb.read(s_sh, 3);
  // Apply the minimum-image shift to the neighbor sites.
  std::vector<Reg> n(static_cast<std::size_t>(3 * S));
  for (int i = 0; i < 3 * S; ++i) {
    n[static_cast<std::size_t>(i)] =
        kb.add(n_raw[static_cast<std::size_t>(i)], sh[static_cast<std::size_t>(i % 3)]);
  }

  std::vector<Reg> csum(static_cast<std::size_t>(3 * S));
  std::vector<Reg> nsum(static_cast<std::size_t>(3 * S));
  std::vector<bool> cinit(static_cast<std::size_t>(3 * S), false);
  std::vector<bool> ninit(static_cast<std::size_t>(3 * S), false);
  int active_pairs = 0;

  for (int a = 0; a < S; ++a) {
    for (int b = 0; b < S; ++b) {
      const bool lj = (a == 0 && b == 0) && (model.c6 != 0.0 || model.c12 != 0.0);
      const bool coulomb =
          qq[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)].idx >= 0;
      if (!lj && !coulomb) continue;  // inert site pair: no work emitted
      ++active_pairs;
      const Reg dx = kb.sub(c[static_cast<std::size_t>(3 * a + 0)], n[static_cast<std::size_t>(3 * b + 0)]);
      const Reg dy = kb.sub(c[static_cast<std::size_t>(3 * a + 1)], n[static_cast<std::size_t>(3 * b + 1)]);
      const Reg dz = kb.sub(c[static_cast<std::size_t>(3 * a + 2)], n[static_cast<std::size_t>(3 * b + 2)]);
      const Reg r2 = kb.madd(dz, dz, kb.madd(dy, dy, kb.mul(dx, dx)));
      const Reg rinv = kb.rsqrt(r2);
      const Reg rinv2 = kb.mul(rinv, rinv);
      Reg fs = zero;
      if (coulomb) {
        fs = kb.mul(
            kb.mul(qq[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)], rinv),
            rinv2);
      }
      if (lj) {
        const Reg rinv6 = kb.mul(rinv2, kb.mul(rinv2, rinv2));
        const Reg c6t = kb.mul(c6, rinv6);
        const Reg c12t = kb.mul(c12, kb.mul(rinv6, rinv6));
        const Reg ljs = kb.msub(twelve, c12t, kb.mul(six, c6t));
        fs = coulomb ? kb.madd(ljs, rinv2, fs) : kb.mul(ljs, rinv2);
      }
      const Reg f[3] = {kb.mul(fs, dx), kb.mul(fs, dy), kb.mul(fs, dz)};
      for (int d = 0; d < 3; ++d) {
        auto& cs = csum[static_cast<std::size_t>(3 * a + d)];
        cs = cinit[static_cast<std::size_t>(3 * a + d)] ? kb.add(cs, f[d]) : f[d];
        cinit[static_cast<std::size_t>(3 * a + d)] = true;
        auto& ns = nsum[static_cast<std::size_t>(3 * b + d)];
        ns = ninit[static_cast<std::size_t>(3 * b + d)] ? kb.add(ns, f[d]) : f[d];
        ninit[static_cast<std::size_t>(3 * b + d)] = true;
      }
    }
  }
  (void)active_pairs;

  // Pack results (inert sites get exact zeros) and negate the neighbor sums.
  const auto fc_block = kb.alloc_n(3 * S);
  const auto fn_block = kb.alloc_n(3 * S);
  for (int i = 0; i < 3 * S; ++i) {
    if (cinit[static_cast<std::size_t>(i)]) {
      kb.mov_to(fc_block[static_cast<std::size_t>(i)], csum[static_cast<std::size_t>(i)]);
    } else {
      kb.mov_to(fc_block[static_cast<std::size_t>(i)], zero);
    }
    if (ninit[static_cast<std::size_t>(i)]) {
      kb.mov_to(fn_block[static_cast<std::size_t>(i)],
                kb.sub(zero, nsum[static_cast<std::size_t>(i)]));
    } else {
      kb.mov_to(fn_block[static_cast<std::size_t>(i)], zero);
    }
  }
  kb.write(s_fc, fc_block[0], 3 * S);
  kb.write(s_fn, fn_block[0], 3 * S);
  return kb.build();
}

kernel::KernelDef build_blocked_kernel(const md::WaterModel& model,
                                       double cutoff, int block_len) {
  KernelBuilder kb("water_blocked");
  const int s_c = kb.stream_in("central", kPosWords + 1);
  const int s_n = kb.stream_in("neighbor", kPosWords + 4);
  const int s_fc = kb.stream_out("f_c", kForceWords);
  const Consts k = emit_consts(kb, model);
  kb.section(Section::kPrologue);
  const Reg rc2 = kb.constant(cutoff * cutoff);
  kb.block_len(block_len);

  // Stable state: own central record and the force accumulator.
  const auto crec = kb.alloc_n(kPosWords + 1);  // 9 pos + id
  const auto acc = kb.alloc_n(9);

  kb.section(Section::kOuterPre);
  kb.read_to(s_c, crec[0], kPosWords + 1);
  for (int i = 0; i < 9; ++i) kb.mov_to(acc[static_cast<std::size_t>(i)], k.zero);

  kb.section(Section::kBody);
  // All clusters receive the same neighbor record (broadcast).
  const auto nrec = kb.alloc_n(kPosWords + 4);  // 9 pos + id + shift
  kb.read_bcast_to(s_n, nrec[0], kPosWords + 4);
  const Reg n_id = nrec[9];
  const Reg c_id = crec[9];

  // Validity: not a padding slot on either side, and not the self pair.
  Reg valid = kb.sel(kb.cmp_eq(c_id, n_id), k.zero, k.one);
  valid = kb.sel(kb.cmp_lt(c_id, k.zero), k.zero, valid);
  valid = kb.sel(kb.cmp_lt(n_id, k.zero), k.zero, valid);

  // Shifted neighbor positions (minimum image of the cell pair).
  std::array<Reg, 9> n;
  for (int i = 0; i < 9; ++i) {
    n[static_cast<std::size_t>(i)] =
        kb.add(nrec[static_cast<std::size_t>(i)],
               nrec[static_cast<std::size_t>(10 + i % 3)]);
  }

  // Interaction, central sums only, gated per atom pair by the cutoff --
  // the blocking scheme computes every paved pair and zeroes those beyond
  // r_c so the result matches the neighbor-list reference exactly.
  for (int a = 0; a < 3; ++a) {
    const auto ca = [&](int d) { return crec[static_cast<std::size_t>(3 * a + d)]; };
    for (int b = 0; b < 3; ++b) {
      const auto nb = [&](int d) { return n[static_cast<std::size_t>(3 * b + d)]; };
      const Reg dx = kb.sub(ca(0), nb(0));
      const Reg dy = kb.sub(ca(1), nb(1));
      const Reg dz = kb.sub(ca(2), nb(2));
      const Reg r2_raw = kb.madd(dz, dz, kb.madd(dy, dy, kb.mul(dx, dx)));
      // The self pair has r = 0; substitute a harmless distance so the
      // iterative rsqrt stays finite (its result is masked to zero anyway
      // -- an infinity would poison the masking multiply with NaN).
      const Reg r2 = kb.sel(valid, r2_raw, k.one);
      const Reg rinv = kb.rsqrt(r2);
      const Reg rinv2 = kb.mul(rinv, rinv);
      Reg fs = kb.mul(
          kb.mul(k.qq[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)], rinv),
          rinv2);
      if (a == 0 && b == 0) {
        const Reg rinv6 = kb.mul(rinv2, kb.mul(rinv2, rinv2));
        const Reg c6t = kb.mul(k.c6, rinv6);
        const Reg c12t = kb.mul(k.c12, kb.mul(rinv6, rinv6));
        const Reg lj = kb.msub(k.twelve, c12t, kb.mul(k.six, c6t));
        fs = kb.madd(lj, rinv2, fs);
      }
      // The cutoff is evaluated on the *molecule* (oxygen-oxygen) distance
      // in the list-based variants; the blocking scheme has no list, so it
      // gates per molecule pair on the O-O distance: compute it for the
      // (0,0) pair and reuse the predicate.
      if (a == 0 && b == 0) {
        const Reg incut = kb.cmp_lt(r2, rc2);
        kb.mov_to(valid, kb.mul(valid, incut));
      }
      fs = kb.mul(fs, valid);
      for (int d = 0; d < 3; ++d) {
        const Reg fd = kb.mul(fs, d == 0 ? dx : (d == 1 ? dy : dz));
        kb.add_to(acc[static_cast<std::size_t>(3 * a + d)],
                  acc[static_cast<std::size_t>(3 * a + d)], fd);
      }
    }
  }

  kb.section(Section::kOuterPost);
  kb.write(s_fc, acc[0], 9);
  return kb.build();
}

MultisiteProfile profile_multisite_kernel(const md::WaterModel& model,
                                          const kernel::ScheduleOptions& sched,
                                          int n_clusters,
                                          double mem_words_per_cycle,
                                          double clock_ghz) {
  MultisiteProfile p;
  p.sites = static_cast<int>(model.sites.size());
  const kernel::KernelDef def = build_multisite_kernel(model);
  p.census = def.body_census();
  for (int a = 0; a < p.sites; ++a) {
    for (int b = 0; b < p.sites; ++b) {
      const bool lj = (a == 0 && b == 0);
      const double v = model.sites[static_cast<std::size_t>(a)].charge *
                       model.sites[static_cast<std::size_t>(b)].charge;
      if (lj || v != 0.0) ++p.active_pairs;
    }
  }
  // Memory words per interaction: gathered positions (+1 index word each),
  // 3-word shift, both force records (+1 scatter index each).
  const double s3 = 3.0 * p.sites;
  p.words_per_interaction = (s3 + 1) * 2 + 3 + (s3 + 1) * 2;
  p.arithmetic_intensity =
      static_cast<double>(p.census.flops) / p.words_per_interaction;

  const kernel::Schedule schedule = kernel::schedule_body(def, sched);
  p.cycles_per_interaction = schedule.cycles_per_iteration();

  const double compute_gflops = static_cast<double>(p.census.flops) *
                                n_clusters / p.cycles_per_interaction *
                                clock_ghz;
  const double bandwidth_gflops =
      p.arithmetic_intensity * mem_words_per_cycle * clock_ghz;
  p.projected_gflops = std::min(compute_gflops, bandwidth_gflops);
  return p;
}

}  // namespace smd::core
