#include "src/core/report.h"

#include <sstream>

#include "src/util/table.h"

namespace smd::core {

using util::Table;

std::string format_machine_table(const sim::MachineConfig& cfg) {
  Table t({"Parameter", "Value"});
  const auto& m = cfg.mem;
  t.add_row({"Number of stream cache banks", std::to_string(m.cache.n_banks)});
  t.add_row({"Number of scatter-add units per bank",
             std::to_string(m.scatter_add.units_per_bank)});
  t.add_row({"Latency of scatter-add functional unit",
             std::to_string(m.scatter_add.latency)});
  t.add_row({"Number of combining store entries",
             std::to_string(m.scatter_add.combining_entries)});
  t.add_row({"Number of DRAM interface channels", std::to_string(m.dram.n_channels)});
  t.add_row({"Number of address generators",
             std::to_string(m.n_address_generators)});
  t.add_row({"Operating frequency", Table::num(cfg.clock_ghz, 1) + " GHz"});
  t.add_row({"Peak DRAM bandwidth",
             Table::num(m.dram.n_channels * m.dram.channel_words_per_cycle * 8.0 *
                            cfg.clock_ghz,
                        1) +
                 " GB/s"});
  t.add_row({"Stream cache bandwidth",
             Table::num(m.cache.n_banks * 8.0 * cfg.clock_ghz, 0) + " GB/s"});
  t.add_row({"Number of clusters", std::to_string(cfg.n_clusters)});
  t.add_row({"Peak floating point operations per cycle",
             std::to_string(cfg.n_clusters * cfg.fpus_per_cluster * 2)});
  t.add_row({"SRF bandwidth",
             Table::num(cfg.n_clusters * cfg.srf_words_per_cycle_per_cluster *
                            8.0 * cfg.clock_ghz,
                        0) +
                 " GB/s"});
  t.add_row({"SRF size", Table::num(static_cast<double>(cfg.srf_words) * 8 / (1 << 20), 0) + " MB"});
  t.add_row({"Stream cache size",
             Table::num(static_cast<double>(m.cache.total_words) * 8 / (1 << 20), 0) + " MB"});
  t.add_row({"Peak performance", Table::num(cfg.peak_gflops(), 0) + " GFLOPS"});
  return t.render();
}

std::string format_dataset_table(const Problem& problem,
                                 const std::vector<VariantResult>& results) {
  const VariantResult* fixed = nullptr;
  for (const auto& r : results) {
    if (r.variant == Variant::kFixed) fixed = &r;
  }
  Table t({"Parameter", "Value"});
  t.add_row({"molecules", Table::integer(problem.system.n_molecules())});
  t.add_row({"cutoff (nm)", Table::num(problem.setup.cutoff, 2)});
  t.add_row({"interactions", Table::integer(problem.half_list.n_pairs())});
  t.add_row({"mean neighbors per molecule",
             Table::num(problem.half_list.mean_degree(), 1)});
  if (fixed != nullptr) {
    t.add_row({"repeated molecules for fixed",
               Table::integer(fixed->n_central_blocks)});
    t.add_row({"total neighbors for fixed",
               Table::integer(fixed->n_neighbor_slots)});
  }
  return t.render();
}

std::string format_variants_table() {
  Table t({"Name", "Description"});
  for (Variant v : {Variant::kExpanded, Variant::kFixed, Variant::kVariable,
                    Variant::kDuplicated}) {
    t.add_row({variant_name(v), variant_description(v)});
  }
  t.add_row({"Pentium 4",
             "fully hand-optimized GROMACS on a Pentium 4 with "
             "single-precision SSE (water-water only)"});
  return t.render();
}

std::string format_arithmetic_intensity_table(
    const std::vector<VariantResult>& results) {
  Table t({"Variant", "Calculated", "Measured"});
  for (const auto& r : results) {
    t.add_row({r.name, Table::num(r.ai_calculated, 1), Table::num(r.ai_measured, 1)});
  }
  return t.render();
}

std::string format_locality_table(const std::vector<VariantResult>& results) {
  Table t({"Variant", "%LRF", "%SRF", "%MEM"});
  for (const auto& r : results) {
    t.add_row({r.name, Table::percent(r.lrf_fraction, 1),
               Table::percent(r.srf_fraction, 1),
               Table::percent(r.mem_fraction, 1)});
  }
  return t.render();
}

std::string format_performance_table(const std::vector<VariantResult>& results,
                                     double p4_solution_gflops,
                                     double optimal_solution_gflops) {
  Table t({"Variant", "Solution GFLOPS", "All GFLOPS", "MEM (K refs)",
           "time (ms)"});
  for (const auto& r : results) {
    t.add_row({r.name, Table::num(r.solution_gflops, 2),
               Table::num(r.all_gflops, 2),
               Table::num(static_cast<double>(r.mem_refs) / 1000.0, 0),
               Table::num(r.time_ms, 3)});
  }
  std::ostringstream os;
  os << t.render();
  if (p4_solution_gflops > 0) {
    os << "\nPentium 4 (2.4 GHz, single-precision SSE): "
       << Table::num(p4_solution_gflops, 2) << " solution GFLOPS\n";
  }
  if (optimal_solution_gflops > 0) {
    os << "StreamMD optimal on this machine: "
       << Table::num(optimal_solution_gflops, 2) << " solution GFLOPS\n";
  }
  return os.str();
}

std::string format_blocking_table(const std::vector<BlockingPoint>& pts,
                                  const BlockingPoint& minimum) {
  Table t({"cluster size", "molecules", "kernel (rel)", "memory ops (rel)",
           "run time (rel)"});
  for (const auto& p : pts) {
    t.add_row({Table::num(p.size, 2), Table::num(p.molecules, 1),
               Table::num(p.kernel_rel, 3), Table::num(p.memory_rel, 3),
               Table::num(p.time_rel, 3)});
  }
  std::ostringstream os;
  os << t.render();
  os << "\nminimum: run time " << Table::num(minimum.time_rel, 3)
     << " of variable at cluster size " << Table::num(minimum.size, 2) << " ("
     << Table::num(minimum.molecules, 1) << " molecules per cluster)\n";
  return os.str();
}

}  // namespace smd::core
