#include "src/core/report.h"

#include <sstream>

#include "src/core/schema.h"
#include "src/obs/registry.h"
#include "src/util/table.h"

namespace smd::core {

using util::Table;

std::string format_machine_table(const sim::MachineConfig& cfg) {
  Table t({"Parameter", "Value"});
  const auto& m = cfg.mem;
  t.add_row({"Number of stream cache banks", std::to_string(m.cache.n_banks)});
  t.add_row({"Number of scatter-add units per bank",
             std::to_string(m.scatter_add.units_per_bank)});
  t.add_row({"Latency of scatter-add functional unit",
             std::to_string(m.scatter_add.latency)});
  t.add_row({"Number of combining store entries",
             std::to_string(m.scatter_add.combining_entries)});
  t.add_row({"Number of DRAM interface channels", std::to_string(m.dram.n_channels)});
  t.add_row({"Number of address generators",
             std::to_string(m.n_address_generators)});
  t.add_row({"Operating frequency", Table::num(cfg.clock_ghz, 1) + " GHz"});
  t.add_row({"Peak DRAM bandwidth",
             Table::num(m.dram.n_channels * m.dram.channel_words_per_cycle * 8.0 *
                            cfg.clock_ghz,
                        1) +
                 " GB/s"});
  t.add_row({"Stream cache bandwidth",
             Table::num(m.cache.n_banks * 8.0 * cfg.clock_ghz, 0) + " GB/s"});
  t.add_row({"Number of clusters", std::to_string(cfg.n_clusters)});
  t.add_row({"Peak floating point operations per cycle",
             std::to_string(cfg.n_clusters * cfg.fpus_per_cluster * 2)});
  t.add_row({"SRF bandwidth",
             Table::num(cfg.n_clusters * cfg.srf_words_per_cycle_per_cluster *
                            8.0 * cfg.clock_ghz,
                        0) +
                 " GB/s"});
  t.add_row({"SRF size", Table::num(static_cast<double>(cfg.srf_words) * 8 / (1 << 20), 0) + " MB"});
  t.add_row({"Stream cache size",
             Table::num(static_cast<double>(m.cache.total_words) * 8 / (1 << 20), 0) + " MB"});
  t.add_row({"Peak performance", Table::num(cfg.peak_gflops(), 0) + " GFLOPS"});
  return t.render();
}

std::string format_dataset_table(const Problem& problem,
                                 const std::vector<VariantResult>& results) {
  const VariantResult* fixed = nullptr;
  for (const auto& r : results) {
    if (r.variant == Variant::kFixed) fixed = &r;
  }
  Table t({"Parameter", "Value"});
  t.add_row({"molecules", Table::integer(problem.system.n_molecules())});
  t.add_row({"cutoff (nm)", Table::num(problem.setup.cutoff, 2)});
  t.add_row({"interactions", Table::integer(problem.half_list.n_pairs())});
  t.add_row({"mean neighbors per molecule",
             Table::num(problem.half_list.mean_degree(), 1)});
  if (fixed != nullptr) {
    t.add_row({"repeated molecules for fixed",
               Table::integer(fixed->n_central_blocks)});
    t.add_row({"total neighbors for fixed",
               Table::integer(fixed->n_neighbor_slots)});
  }
  return t.render();
}

std::string format_variants_table() {
  Table t({"Name", "Description"});
  for (Variant v : {Variant::kExpanded, Variant::kFixed, Variant::kVariable,
                    Variant::kDuplicated}) {
    t.add_row({variant_name(v), variant_description(v)});
  }
  t.add_row({"Pentium 4",
             "fully hand-optimized GROMACS on a Pentium 4 with "
             "single-precision SSE (water-water only)"});
  return t.render();
}

std::string format_arithmetic_intensity_table(
    const std::vector<VariantResult>& results) {
  Table t({"Variant", "Calculated", "Measured"});
  for (const auto& r : results) {
    t.add_row({r.name, Table::num(r.ai_calculated, 1), Table::num(r.ai_measured, 1)});
  }
  return t.render();
}

std::string format_locality_table(const std::vector<VariantResult>& results) {
  Table t({"Variant", "%LRF", "%SRF", "%MEM"});
  for (const auto& r : results) {
    t.add_row({r.name, Table::percent(r.lrf_fraction, 1),
               Table::percent(r.srf_fraction, 1),
               Table::percent(r.mem_fraction, 1)});
  }
  return t.render();
}

std::string format_performance_table(const std::vector<VariantResult>& results,
                                     double p4_solution_gflops,
                                     double optimal_solution_gflops) {
  Table t({"Variant", "Solution GFLOPS", "All GFLOPS", "MEM (K refs)",
           "time (ms)"});
  for (const auto& r : results) {
    t.add_row({r.name, Table::num(r.solution_gflops, 2),
               Table::num(r.all_gflops, 2),
               Table::num(static_cast<double>(r.mem_refs) / 1000.0, 0),
               Table::num(r.time_ms, 3)});
  }
  std::ostringstream os;
  os << t.render();
  if (p4_solution_gflops > 0) {
    os << "\nPentium 4 (2.4 GHz, single-precision SSE): "
       << Table::num(p4_solution_gflops, 2) << " solution GFLOPS\n";
  }
  if (optimal_solution_gflops > 0) {
    os << "StreamMD optimal on this machine: "
       << Table::num(optimal_solution_gflops, 2) << " solution GFLOPS\n";
  }
  return os.str();
}

std::string format_blocking_table(const std::vector<BlockingPoint>& pts,
                                  const BlockingPoint& minimum) {
  Table t({"cluster size", "molecules", "kernel (rel)", "memory ops (rel)",
           "run time (rel)"});
  for (const auto& p : pts) {
    t.add_row({Table::num(p.size, 2), Table::num(p.molecules, 1),
               Table::num(p.kernel_rel, 3), Table::num(p.memory_rel, 3),
               Table::num(p.time_rel, 3)});
  }
  std::ostringstream os;
  os << t.render();
  os << "\nminimum: run time " << Table::num(minimum.time_rel, 3)
     << " of variable at cluster size " << Table::num(minimum.size, 2) << " ("
     << Table::num(minimum.molecules, 1) << " molecules per cluster)\n";
  return os.str();
}

obs::Json to_json(const sim::MachineConfig& cfg) {
  obs::Json mem = obs::Json::object();
  mem.set("cache_banks", cfg.mem.cache.n_banks)
      .set("cache_line_words", cfg.mem.cache.line_words)
      .set("cache_total_words", cfg.mem.cache.total_words)
      .set("cache_associativity", cfg.mem.cache.associativity)
      .set("dram_channels", cfg.mem.dram.n_channels)
      .set("dram_channel_words_per_cycle", cfg.mem.dram.channel_words_per_cycle)
      .set("dram_access_latency", cfg.mem.dram.access_latency)
      .set("scatter_add_units_per_bank", cfg.mem.scatter_add.units_per_bank)
      .set("scatter_add_latency", cfg.mem.scatter_add.latency)
      .set("combining_entries", cfg.mem.scatter_add.combining_entries)
      .set("address_generators", cfg.mem.n_address_generators)
      .set("addrs_per_generator", cfg.mem.addrs_per_generator);
  obs::Json sched = obs::Json::object();
  sched.set("n_fpus", cfg.sched.n_fpus)
      .set("srf_words_per_cycle", cfg.sched.srf_words_per_cycle)
      .set("unroll", cfg.sched.unroll)
      .set("software_pipeline", cfg.sched.software_pipeline);
  obs::Json j = obs::Json::object();
  j.set("n_clusters", cfg.n_clusters)
      .set("fpus_per_cluster", cfg.fpus_per_cluster)
      .set("clock_ghz", cfg.clock_ghz)
      .set("peak_gflops", cfg.peak_gflops())
      .set("lrf_words_per_cluster", cfg.lrf_words_per_cluster)
      .set("srf_words", cfg.srf_words)
      .set("srf_words_per_cycle_per_cluster", cfg.srf_words_per_cycle_per_cluster)
      .set("n_stream_descriptor_registers", cfg.n_stream_descriptor_registers)
      .set("sdr_policy", cfg.sdr_policy == sim::SdrPolicy::kConservative
                             ? "conservative"
                             : "transfer-scoped")
      .set("kernel_startup_cycles", cfg.kernel_startup_cycles)
      .set("stream_issue_cycles", cfg.stream_issue_cycles)
      .set("mem", std::move(mem))
      .set("sched", std::move(sched));
  return j;
}

obs::Json to_json(const kernel::FlopCensus& c) {
  obs::Json j = obs::Json::object();
  j.set("flops", c.flops)
      .set("divides", c.divides)
      .set("square_roots", c.square_roots)
      .set("fpu_ops", c.fpu_ops)
      .set("words_read", c.words_read)
      .set("words_written", c.words_written);
  return j;
}

obs::Json to_json(const kernel::InterpStats& s) {
  obs::Json j = obs::Json::object();
  j.set("executed", to_json(s.executed))
      .set("lrf_refs", s.lrf_refs)
      .set("srf_read_words", s.srf_read_words)
      .set("srf_write_words", s.srf_write_words)
      .set("cond_accesses", s.cond_accesses)
      .set("cond_taken", s.cond_taken)
      .set("body_iterations", s.body_iterations);
  return j;
}

obs::Json to_json(const mem::MemSystemStats& s) {
  obs::Json j = obs::Json::object();
  j.set("ops", s.ops)
      .set("words_loaded", s.words_loaded)
      .set("words_stored", s.words_stored)
      .set("addr_generated", s.addr_generated)
      .set("busy_cycles", s.busy_cycles);
  return j;
}

obs::Json to_json(const mem::CacheStats& s) {
  obs::Json j = obs::Json::object();
  j.set("accesses", s.accesses)
      .set("hits", s.hits)
      .set("misses", s.misses)
      .set("secondary_misses", s.secondary_misses)
      .set("dirty_evictions", s.dirty_evictions)
      .set("hit_rate", s.hit_rate());
  return j;
}

obs::Json to_json(const mem::DramStats& s) {
  obs::Json j = obs::Json::object();
  j.set("read_lines", s.read_lines)
      .set("read_words", s.read_words)
      .set("write_words", s.write_words)
      .set("row_misses", s.row_misses)
      .set("busy_cycles", s.busy_cycles);
  return j;
}

obs::Json to_json(const mem::ScatterAddStats& s) {
  obs::Json j = obs::Json::object();
  j.set("requests", s.requests)
      .set("combined", s.combined)
      .set("issued", s.issued)
      .set("stalled", s.stalled);
  return j;
}

obs::Json to_json(const sim::RunStats& s) {
  obs::Json timeline = obs::Json::object();
  timeline.set("n_intervals",
               static_cast<std::int64_t>(s.timeline.intervals().size()))
      .set("kernel_busy_cycles", s.timeline.busy_cycles(sim::Lane::kKernel, s.cycles))
      .set("mem_busy_cycles", s.timeline.busy_cycles(sim::Lane::kMemory, s.cycles))
      .set("overlap_cycles", s.timeline.overlap_cycles(s.cycles));
  obs::Json j = obs::Json::object();
  j.set("cycles", s.cycles)
      .set("kernel_busy_cycles", s.kernel_busy_cycles)
      .set("mem_busy_cycles", s.mem_busy_cycles)
      .set("overlap_cycles", s.overlap_cycles)
      .set("kernel_occupancy",
           s.cycles ? static_cast<double>(s.kernel_busy_cycles) /
                          static_cast<double>(s.cycles)
                    : 0.0)
      .set("mem_hidden_fraction",
           s.mem_busy_cycles ? static_cast<double>(s.overlap_cycles) /
                                   static_cast<double>(s.mem_busy_cycles)
                             : 0.0)
      .set("mem_words", s.mem_words)
      .set("srf_peak_words", s.srf_peak_words)
      .set("n_kernel_launches", s.n_kernel_launches)
      .set("n_memory_ops", s.n_memory_ops)
      .set("sdr_stall_cycles", s.sdr_stall_cycles)
      .set("interp", to_json(s.interp))
      .set("mem", to_json(s.mem_stats))
      .set("cache", to_json(s.cache_stats))
      .set("dram", to_json(s.dram_stats))
      .set("scatter_add", to_json(s.scatter_add_stats))
      .set("timeline", std::move(timeline));
  return j;
}

obs::Json to_json(const VariantResult& r) {
  obs::Json locality = obs::Json::object();
  locality.set("lrf", r.lrf_fraction)
      .set("srf", r.srf_fraction)
      .set("mem", r.mem_fraction);
  obs::Json j = obs::Json::object();
  j.set("variant", r.name)
      .set("n_real_interactions", r.n_real_interactions)
      .set("n_computed_interactions", r.n_computed_interactions)
      .set("n_central_blocks", r.n_central_blocks)
      .set("n_neighbor_slots", r.n_neighbor_slots)
      .set("time_ms", r.time_ms)
      .set("solution_gflops", r.solution_gflops)
      .set("all_gflops", r.all_gflops)
      .set("mem_refs", r.mem_refs)
      .set("ai_calculated", r.ai_calculated)
      .set("ai_measured", r.ai_measured)
      .set("locality", std::move(locality))
      .set("kernel_cycles_per_iteration", r.kernel_cycles_per_iteration)
      .set("kernel_issue_rate", r.kernel_issue_rate)
      .set("max_force_rel_err", r.max_force_rel_err)
      .set("run", to_json(r.run));
  return j;
}

obs::Json to_json(const BlockingPoint& p) {
  obs::Json j = obs::Json::object();
  j.set("size", p.size)
      .set("molecules", p.molecules)
      .set("kernel_rel", p.kernel_rel)
      .set("memory_rel", p.memory_rel)
      .set("time_rel", p.time_rel);
  return j;
}

obs::Json bench_record(const std::string& bench_name,
                       const sim::MachineConfig& cfg,
                       const std::vector<VariantResult>& results) {
  obs::Json rs = obs::Json::array();
  for (const auto& r : results) rs.push_back(to_json(r));
  obs::Json j = obs::Json::object();
  j.set("schema_version", kBenchSchemaVersion)
      .set("bench", bench_name)
      .set("machine", to_json(cfg))
      .set("results", std::move(rs))
      .set("telemetry", obs::CounterRegistry::global().to_json());
  return j;
}

}  // namespace smd::core
