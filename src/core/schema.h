// Schema versions of the repo's machine-readable artifacts.
//
// Every `--json` record (bench binaries, streammd_cli, smdcheck, smdtune,
// smdprof) carries `schema_version` so downstream consumers -- above all
// the prof::Baseline comparator -- can reject a layout they were not
// written for instead of silently mis-reading renamed or re-scoped fields.
//
// History:
//   1  original bench-record layout (telemetry PR)
//   2  timelines gain the SDR-stall lane (n_intervals now counts stall
//      runs and zero-length marker intervals; Chrome traces gain an
//      "SDR stall" track), and records may embed smdprof sections
#pragma once

namespace smd::core {

/// Version stamped into every bench/CLI JSON record. Bump whenever a field
/// is renamed, removed, or changes meaning -- not for pure additions that
/// keep existing fields intact... unless the addition changes how existing
/// fields must be interpreted (as the stall lane did to n_intervals).
inline constexpr int kBenchSchemaVersion = 2;

}  // namespace smd::core
