#include "src/core/layouts.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <stdexcept>

namespace smd::core {
namespace {

/// Positions of molecule `mol` shifted by `-shift` (pre-shifting the
/// central is equivalent to shifting the neighbor by +shift; GROMACS does
/// the same with its shift blocks).
void append_shifted_central(const md::WaterSystem& sys, int mol,
                            const md::Vec3& shift, std::vector<double>* out) {
  for (int s = 0; s < 3; ++s) {
    const md::Vec3 p = sys.pos(mol, s) - shift;
    out->push_back(p.x);
    out->push_back(p.y);
    out->push_back(p.z);
  }
}

void append_dummy_central(std::vector<double>* out) {
  // Far outside the box: interactions with the dummy neighbor (itself far
  // away in a different direction) underflow to zero force.
  for (int s = 0; s < 3; ++s) {
    out->push_back(2.0e6);
    out->push_back(0.1 * s);
    out->push_back(-1.0e6);
  }
}

/// Work unit: one central (molecule, shift-group) and its entries.
struct WorkUnit {
  int mol = -1;  ///< -1 = dummy
  md::Vec3 shift;
  std::vector<std::int32_t> entries;  ///< neighbor-list entry indices
};

std::vector<WorkUnit> make_work_units(const md::NeighborList& list) {
  std::vector<WorkUnit> units;
  for (int i = 0; i < list.n_molecules(); ++i) {
    for (auto& g : group_by_shift(list, i)) {
      WorkUnit u;
      u.mol = i;
      u.shift = g.shift;
      u.entries = std::move(g.entries);
      units.push_back(std::move(u));
    }
  }
  return units;
}

std::int64_t pick_strip_rounds(const LayoutOptions& opts,
                               std::int64_t words_per_round,
                               std::int64_t total_rounds) {
  std::int64_t strip = opts.strip_rounds;
  if (strip <= 0) {
    // Triple-buffering headroom: previous strip's outputs draining, the
    // current strip computing, the next strip's inputs arriving.
    strip = std::max<std::int64_t>(1, opts.srf_words / (3 * words_per_round));
  }
  return std::min(strip, std::max<std::int64_t>(total_rounds, 1));
}

VariantLayout build_expanded(const md::WaterSystem& sys,
                             const md::NeighborList& list,
                             const LayoutOptions& opts) {
  VariantLayout out;
  out.variant = Variant::kExpanded;
  const int n_mol = sys.n_molecules();
  const auto dummy_nbr = static_cast<std::uint64_t>(n_mol);
  const auto dummy_ctr = static_cast<std::uint64_t>(n_mol) + 1;
  const auto trash = static_cast<std::uint64_t>(n_mol);

  out.n_real_interactions = list.n_pairs();
  const int C = opts.n_clusters;
  const std::int64_t rounds = (list.n_pairs() + C - 1) / C;
  const std::int64_t total = rounds * C;

  out.central_gather_idx.reserve(static_cast<std::size_t>(total));
  for (int i = 0; i < list.n_molecules(); ++i) {
    for (std::int32_t k = list.offsets[static_cast<std::size_t>(i)];
         k < list.offsets[static_cast<std::size_t>(i) + 1]; ++k) {
      const auto j = static_cast<std::uint64_t>(
          list.neighbors[static_cast<std::size_t>(k)]);
      const md::Vec3 s = list.shifts[static_cast<std::size_t>(k)];
      out.central_gather_idx.push_back(static_cast<std::uint64_t>(i));
      out.neighbor_gather_idx.push_back(j);
      for (int a = 0; a < 3; ++a) {
        out.pbc_records.push_back(s.x);
        out.pbc_records.push_back(s.y);
        out.pbc_records.push_back(s.z);
      }
      out.force_c_scatter_idx.push_back(static_cast<std::uint64_t>(i));
      out.force_n_scatter_idx.push_back(j);
    }
  }
  // Pad the last round with dummy interactions.
  while (static_cast<std::int64_t>(out.neighbor_gather_idx.size()) < total) {
    out.central_gather_idx.push_back(dummy_ctr);
    out.neighbor_gather_idx.push_back(dummy_nbr);
    for (int w = 0; w < kPbcWords; ++w) out.pbc_records.push_back(0.0);
    out.force_c_scatter_idx.push_back(trash);
    out.force_n_scatter_idx.push_back(trash);
  }

  out.rounds = rounds;
  out.n_computed_interactions = total;
  out.n_central_blocks = total;  // every interaction re-reads its central
  out.n_neighbor_slots = total;

  // SRF words per round: 16 x (cpos 9 + npos 9 + pbc 9 + fc 9 + fn 9 +
  // 4 index words).
  const std::int64_t wpr = C * (3 * kPosWords + 2 * kForceWords + 4);
  const std::int64_t strip = pick_strip_rounds(opts, wpr, rounds);
  for (std::int64_t r = 0; r < rounds; r += strip) {
    StripSlice s;
    s.round_begin = r;
    s.round_end = std::min(rounds, r + strip);
    s.neighbor_begin = s.round_begin * C;
    s.neighbor_end = s.round_end * C;
    s.central_begin = s.neighbor_begin;
    s.central_end = s.neighbor_end;
    s.fc_begin = s.neighbor_begin;
    s.fc_end = s.neighbor_end;
    out.strips.push_back(s);
  }
  return out;
}

/// Shared builder for `fixed` and `duplicated`: fixed-length blocks of L,
/// centrals replicated per block, dummies padding short blocks, block
/// count padded to a multiple of n_clusters.
VariantLayout build_fixed_like(Variant variant, const md::WaterSystem& sys,
                               const md::NeighborList& list,
                               const LayoutOptions& opts) {
  VariantLayout out;
  out.variant = variant;
  const int n_mol = sys.n_molecules();
  const auto dummy_nbr = static_cast<std::uint64_t>(n_mol);
  const auto trash = static_cast<std::uint64_t>(n_mol);
  const int L = opts.fixed_list_length;
  const int C = opts.n_clusters;
  const bool write_fn = (variant == Variant::kFixed);

  out.central_record_words = kPosWords;
  out.n_real_interactions =
      variant == Variant::kDuplicated ? list.n_pairs() / 2 : list.n_pairs();

  // Blocks in (central, shift-group) order.
  struct Block {
    const WorkUnit* unit;
    int first;  ///< first entry offset within the unit
    int count;
  };
  const std::vector<WorkUnit> units = make_work_units(list);
  std::vector<Block> blocks;
  for (const auto& u : units) {
    for (int f = 0; f < static_cast<int>(u.entries.size()); f += L) {
      blocks.push_back(
          {&u, f, std::min<int>(L, static_cast<int>(u.entries.size()) - f)});
    }
  }
  out.n_central_blocks = static_cast<std::int64_t>(blocks.size());
  const std::int64_t rounds =
      (static_cast<std::int64_t>(blocks.size()) + C - 1) / C;
  const std::int64_t padded_blocks = rounds * C;

  // Emit central records in (round, cluster) order == block order.
  for (std::int64_t b = 0; b < padded_blocks; ++b) {
    if (b < static_cast<std::int64_t>(blocks.size())) {
      const Block& blk = blocks[static_cast<std::size_t>(b)];
      append_shifted_central(sys, blk.unit->mol, blk.unit->shift,
                             &out.central_records);
      out.force_c_scatter_idx.push_back(
          static_cast<std::uint64_t>(blk.unit->mol));
    } else {
      append_dummy_central(&out.central_records);
      out.force_c_scatter_idx.push_back(trash);
    }
  }

  // Neighbor slots in (round, l, cluster) order.
  out.neighbor_gather_idx.assign(
      static_cast<std::size_t>(padded_blocks) * static_cast<std::size_t>(L),
      dummy_nbr);
  if (write_fn) {
    out.force_n_scatter_idx.assign(out.neighbor_gather_idx.size(), trash);
  }
  std::int64_t computed = 0;
  for (std::int64_t b = 0; b < static_cast<std::int64_t>(blocks.size()); ++b) {
    const Block& blk = blocks[static_cast<std::size_t>(b)];
    const std::int64_t r = b / C;
    const std::int64_t c = b % C;
    for (int l = 0; l < blk.count; ++l) {
      const std::int64_t slot = (r * L + l) * C + c;
      const std::int32_t entry = blk.unit->entries[static_cast<std::size_t>(blk.first + l)];
      const auto j = static_cast<std::uint64_t>(
          list.neighbors[static_cast<std::size_t>(entry)]);
      out.neighbor_gather_idx[static_cast<std::size_t>(slot)] = j;
      if (write_fn) out.force_n_scatter_idx[static_cast<std::size_t>(slot)] = j;
      ++computed;
    }
  }
  out.rounds = rounds;
  out.n_neighbor_slots = padded_blocks * L;
  out.n_computed_interactions = out.n_neighbor_slots;  // dummies computed too
  (void)computed;

  // SRF words per round: C x (central 9 + fc 9 + fc idx 1 +
  //                           L x (npos 9 + n idx 1 [+ fn 9 + fn idx 1])).
  const std::int64_t per_iter = kPosWords + 1 + (write_fn ? kForceWords + 1 : 0);
  const std::int64_t wpr = C * (kPosWords + kForceWords + 1 + L * per_iter);
  const std::int64_t strip = pick_strip_rounds(opts, wpr, rounds);
  for (std::int64_t r = 0; r < rounds; r += strip) {
    StripSlice s;
    s.round_begin = r;
    s.round_end = std::min(rounds, r + strip);
    s.neighbor_begin = s.round_begin * C * L;
    s.neighbor_end = s.round_end * C * L;
    s.central_begin = s.round_begin * C;
    s.central_end = s.round_end * C;
    s.fc_begin = s.central_begin;
    s.fc_end = s.central_end;
    out.strips.push_back(s);
  }
  return out;
}

VariantLayout build_variable(const md::WaterSystem& sys,
                             const md::NeighborList& list,
                             const LayoutOptions& opts) {
  VariantLayout out;
  out.variant = Variant::kVariable;
  const int n_mol = sys.n_molecules();
  const auto dummy_nbr = static_cast<std::uint64_t>(n_mol);
  const auto trash = static_cast<std::uint64_t>(n_mol);
  const int C = opts.n_clusters;

  out.central_record_words = kPosWords + 1;  // + neighbor count
  out.n_real_interactions = list.n_pairs();

  std::vector<WorkUnit> units = make_work_units(list);

  // Rough total iterations for strip sizing (refined by the simulation).
  std::int64_t total_work = 0;
  for (const auto& u : units) total_work += static_cast<std::int64_t>(u.entries.size());
  const std::int64_t t_estimate = (total_work + C - 1) / C;

  // Strip length in iterations. SRF words per iteration: C x (npos 9 +
  // n idx 1 + fn 9 + fn idx 1 + amortized central ~ (10 + fc 9 + 1)).
  const std::int64_t wpr = C * (kPosWords + 1 + kForceWords + 1 + 20);
  const std::int64_t strip_len = pick_strip_rounds(opts, wpr, t_estimate);

  // ---- Simulate the conditional-stream pull order, truncating blocks at
  // strip boundaries so a kernel invocation never needs loop-carried state
  // from the previous strip (the two partial central forces meet again in
  // the scatter-add). Clusters that run dry while others still have work
  // pull one-iteration dummy centrals, so the simulation self-terminates
  // exactly when the real work does.
  struct ClusterState {
    std::int64_t rem = 0;
    int mol = -1;  ///< current central (or -1 for dummies)
    std::vector<std::int32_t> entries;
    std::int64_t pos = 0;
  };
  std::deque<WorkUnit> queue(units.begin(), units.end());
  std::vector<ClusterState> cs(static_cast<std::size_t>(C));
  std::vector<std::int64_t> pull_cum;   // centrals pulled by end of iter t
  std::int64_t pulls = 0;

  auto work_left = [&] {
    if (!queue.empty()) return true;
    for (const auto& k : cs) {
      if (k.rem > 0) return true;
    }
    return false;
  };

  std::int64_t T = 0;
  for (std::int64_t t = 0; work_left(); ++t, ++T) {
    const std::int64_t to_boundary =
        strip_len - (t % strip_len);  // iterations left incl. this one
    for (int c = 0; c < C; ++c) {
      ClusterState& k = cs[static_cast<std::size_t>(c)];
      if (k.rem == 0) {
        // Pull the next unit, or a one-iteration dummy for a dry cluster.
        WorkUnit u;
        if (!queue.empty()) {
          u = std::move(queue.front());
          queue.pop_front();
        } else {
          u.mol = -1;
          u.entries.assign(1, -1);
        }
        // Truncate at the strip boundary; push the remainder back.
        if (static_cast<std::int64_t>(u.entries.size()) > to_boundary) {
          WorkUnit rest = u;
          rest.entries.assign(u.entries.begin() + static_cast<std::ptrdiff_t>(to_boundary),
                              u.entries.end());
          queue.push_front(std::move(rest));
          u.entries.resize(static_cast<std::size_t>(to_boundary));
        }
        // Emit the central record (pull order == stream order).
        if (u.mol >= 0) {
          append_shifted_central(sys, u.mol, u.shift, &out.central_records);
        } else {
          append_dummy_central(&out.central_records);
        }
        out.central_records.push_back(static_cast<double>(u.entries.size()));
        ++pulls;
        k.rem = static_cast<std::int64_t>(u.entries.size());
        k.mol = u.mol;
        k.entries = std::move(u.entries);
        k.pos = 0;
      }
      // Consume one neighbor.
      const std::int32_t entry = k.entries[static_cast<std::size_t>(k.pos++)];
      if (entry >= 0) {
        const auto j = static_cast<std::uint64_t>(
            list.neighbors[static_cast<std::size_t>(entry)]);
        out.neighbor_gather_idx.push_back(j);
        out.force_n_scatter_idx.push_back(j);
        ++out.n_computed_interactions;
      } else {
        out.neighbor_gather_idx.push_back(dummy_nbr);
        out.force_n_scatter_idx.push_back(trash);
        ++out.n_computed_interactions;
      }
      --k.rem;
      // The kernel writes the reduced central force the moment the last
      // neighbor is consumed, so the scatter-index stream must be in
      // *write* order, not pull order.
      if (k.rem == 0) {
        out.force_c_scatter_idx.push_back(
            k.mol >= 0 ? static_cast<std::uint64_t>(k.mol) : trash);
      }
    }
    pull_cum.push_back(pulls);
  }

  out.rounds = T;
  out.n_central_blocks = pulls;
  out.n_neighbor_slots = T * C;

  for (std::int64_t r = 0; r < T; r += strip_len) {
    StripSlice s;
    s.round_begin = r;
    s.round_end = std::min(T, r + strip_len);
    s.neighbor_begin = r * C;
    s.neighbor_end = s.round_end * C;
    s.central_begin = r == 0 ? 0 : pull_cum[static_cast<std::size_t>(r) - 1];
    s.central_end = pull_cum[static_cast<std::size_t>(s.round_end) - 1];
    // Every central pulled in a strip also retires in it (blocks are
    // truncated at boundaries), so force writes == pulls.
    s.fc_begin = s.central_begin;
    s.fc_end = s.central_end;
    out.strips.push_back(s);
  }
  return out;
}

}  // namespace

std::vector<ShiftGroup> group_by_shift(const md::NeighborList& list, int mol) {
  std::vector<ShiftGroup> groups;
  for (std::int32_t k = list.offsets[static_cast<std::size_t>(mol)];
       k < list.offsets[static_cast<std::size_t>(mol) + 1]; ++k) {
    const md::Vec3 s = list.shifts[static_cast<std::size_t>(k)];
    ShiftGroup* g = nullptr;
    for (auto& existing : groups) {
      if (existing.shift.x == s.x && existing.shift.y == s.y &&
          existing.shift.z == s.z) {
        g = &existing;
        break;
      }
    }
    if (g == nullptr) {
      groups.push_back({s, {}});
      g = &groups.back();
    }
    g->entries.push_back(k);
  }
  return groups;
}

md::NeighborList make_full_list(const md::NeighborList& half) {
  md::NeighborList full;
  full.cutoff = half.cutoff;
  const int n = half.n_molecules();
  std::vector<std::vector<std::pair<std::int32_t, md::Vec3>>> rows(
      static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (std::int32_t k = half.offsets[static_cast<std::size_t>(i)];
         k < half.offsets[static_cast<std::size_t>(i) + 1]; ++k) {
      const std::int32_t j = half.neighbors[static_cast<std::size_t>(k)];
      const md::Vec3 s = half.shifts[static_cast<std::size_t>(k)];
      rows[static_cast<std::size_t>(i)].push_back({j, s});
      rows[static_cast<std::size_t>(j)].push_back({i, -s});
    }
  }
  full.offsets.assign(static_cast<std::size_t>(n) + 1, 0);
  for (int i = 0; i < n; ++i) {
    auto& row = rows[static_cast<std::size_t>(i)];
    std::sort(row.begin(), row.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [j, s] : row) {
      full.neighbors.push_back(j);
      full.shifts.push_back(s);
    }
    full.offsets[static_cast<std::size_t>(i) + 1] =
        static_cast<std::int32_t>(full.neighbors.size());
  }
  return full;
}

std::int64_t VariantLayout::memory_words() const {
  std::int64_t words = 0;
  words += static_cast<std::int64_t>(central_records.size());
  words += static_cast<std::int64_t>(central_gather_idx.size()) * (1 + kPosWords);
  words += static_cast<std::int64_t>(neighbor_gather_idx.size()) * (1 + kPosWords);
  words += static_cast<std::int64_t>(pbc_records.size());
  words += static_cast<std::int64_t>(force_n_scatter_idx.size()) * (1 + kForceWords);
  words += static_cast<std::int64_t>(force_c_scatter_idx.size()) * (1 + kForceWords);
  return words;
}

double VariantLayout::arithmetic_intensity(double flops_per_interaction) const {
  const double flops =
      flops_per_interaction * static_cast<double>(n_computed_interactions);
  return flops / static_cast<double>(memory_words());
}

VariantLayout build_layout(Variant variant, const md::WaterSystem& sys,
                           const md::NeighborList& half_list,
                           const LayoutOptions& opts) {
  switch (variant) {
    case Variant::kExpanded:
      return build_expanded(sys, half_list, opts);
    case Variant::kFixed:
      return build_fixed_like(Variant::kFixed, sys, half_list, opts);
    case Variant::kDuplicated:
      return build_fixed_like(Variant::kDuplicated, sys,
                              make_full_list(half_list), opts);
    case Variant::kVariable:
      return build_variable(sys, half_list, opts);
  }
  throw std::runtime_error("unknown variant");
}

}  // namespace smd::core
