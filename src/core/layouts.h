// Stream data layouts for the four StreamMD variants.
//
// The neighbor lists are "calculated in scalar-code and passed to the
// stream program through memory" (paper Section 3): these builders play the
// scalar-code role. Each builder turns a molecule-level half neighbor list
// into the exact streams the variant's kernel consumes, in SRF consumption
// order -- (round, body-iteration, cluster)-major, matching the
// interpreter -- including replication of central molecules, padding with
// dummy records, and (for `variable`) a simulation of the conditional-
// stream pull order so gather/scatter index streams line up with what the
// SIMD kernel will actually consume.
//
// Shared memory image conventions:
//   * positions array: (n_molecules + 2) records of 9 words; record
//     n_molecules     = dummy neighbor ("far away" molecule),
//     n_molecules + 1 = dummy central. Dummies are ~1e6 nm from the box so
//     their computed interactions are denormal-free zeros to double
//     precision, and their outputs scatter into the trash force row.
//   * forces array: (n_molecules + 1) records of 9 words; record
//     n_molecules = trash row absorbing dummy partial forces.
#pragma once

#include <cstdint>
#include <vector>

#include "src/md/neighborlist.h"
#include "src/md/system.h"
#include "src/core/streammd.h"

namespace smd::core {

/// One strip's slice boundaries into the layout's flat arrays.
struct StripSlice {
  std::int64_t round_begin = 0;   ///< kernel rounds [begin, end)
  std::int64_t round_end = 0;
  std::int64_t neighbor_begin = 0;  ///< neighbor-slot records
  std::int64_t neighbor_end = 0;
  std::int64_t central_begin = 0;   ///< central records / blocks
  std::int64_t central_end = 0;
  std::int64_t fc_begin = 0;        ///< central-force output records
  std::int64_t fc_end = 0;
};

/// Everything the stream program needs, laid out scalar-side.
struct VariantLayout {
  Variant variant;

  /// Materialized central records, in pull/consumption order.
  /// Record width = central_record_words:
  ///   expanded:        -- (centrals are gathered; this is empty)
  ///   fixed/duplicated: 9 (pre-shifted positions)
  ///   variable:        10 (pre-shifted positions + neighbor count)
  std::vector<double> central_records;
  int central_record_words = 0;

  /// Gather indices (into the positions array) per neighbor slot, in
  /// consumption order. Dummy slots point at the dummy-neighbor record.
  std::vector<std::uint64_t> neighbor_gather_idx;

  /// expanded only: gather indices for the central of each interaction.
  std::vector<std::uint64_t> central_gather_idx;
  /// expanded only: per-interaction 9-word PBC records (per-atom shifts
  /// applied to the neighbor molecule).
  std::vector<double> pbc_records;

  /// Scatter-add indices (rows of the forces array) for neighbor partial
  /// forces (empty for duplicated) and central partial forces (empty for
  /// expanded -- its central forces scatter via central_force_scatter too).
  std::vector<std::uint64_t> force_n_scatter_idx;
  std::vector<std::uint64_t> force_c_scatter_idx;

  /// Kernel rounds (kernel::Interpreter semantics: outer rounds for
  /// blocked kernels, body iterations otherwise).
  std::int64_t rounds = 0;

  /// Strips (software-pipelined chunks; Figure 5).
  std::vector<StripSlice> strips;

  // ---- Dataset properties (paper Table 2). -------------------------------
  std::int64_t n_real_interactions = 0;    ///< half-list molecule pairs
  std::int64_t n_computed_interactions = 0;  ///< incl. dummies/duplicates
  std::int64_t n_central_blocks = 0;       ///< "repeated molecules"
  std::int64_t n_neighbor_slots = 0;       ///< "total neighbors" incl. dummies

  /// Analytic arithmetic intensity (flops per memory word) given a
  /// flops-per-interaction census, using this data set's actual counts.
  double arithmetic_intensity(double flops_per_interaction) const;
  /// Memory words this layout moves (loads + stores + index streams).
  std::int64_t memory_words() const;
};

/// Options shared by the layout builders.
struct LayoutOptions {
  int n_clusters = 16;
  int fixed_list_length = kFixedListLength;  ///< L
  /// Strip length in kernel rounds; 0 = pick automatically so that three
  /// strips' buffers fit in srf_words.
  std::int64_t strip_rounds = 0;
  std::int64_t srf_words = 131072;
};

/// Build the layout for a variant from a half neighbor list.
VariantLayout build_layout(Variant variant, const md::WaterSystem& sys,
                           const md::NeighborList& half_list,
                           const LayoutOptions& opts = {});

/// The full (directed) list used by `duplicated`, derived from a half list.
md::NeighborList make_full_list(const md::NeighborList& half_list);

/// Group a molecule's neighbor-list entries by identical shift vector;
/// returns (first_entry_index, count) runs after a stable partition.
/// Exposed for testing.
struct ShiftGroup {
  md::Vec3 shift;
  std::vector<std::int32_t> entries;  ///< indices into list.neighbors
};
std::vector<ShiftGroup> group_by_shift(const md::NeighborList& list, int mol);

}  // namespace smd::core
