// Blocking-scheme trade-off model (paper Section 5.4, Figures 11-12).
//
// Molecules are grouped into cubic clusters of normalized linear size x
// (a cluster of size 1 contains exactly one molecule at liquid density).
// The cutoff sphere of radius r_c is paved with such cubes:
//   * computation rises -- every molecule in cubes intersecting the sphere
//     is interacted with, adding pairs between r_c and r_c + O(x);
//   * memory traffic falls -- positions are loaded once per cluster rather
//     than once per neighbor-list entry, and the per-interaction index
//     streams disappear, so bandwidth scales as O(1/x^3) toward a floor.
//
// Like the paper's MATLAB estimate, the model is calibrated with measured
// kernel-busy and memory-busy cycle counts from a simulated run of the
// `variable` scheme, and run time is the max of the (overlapped) kernel
// and memory times.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/analysis/check_stream.h"
#include "src/core/layouts.h"
#include "src/kernel/schedule.h"
#include "src/md/neighborlist.h"
#include "src/md/system.h"

namespace smd::core {

struct BlockingModelParams {
  double cutoff = 1.0;            ///< r_c, nm
  double number_density = 33.33;  ///< molecules / nm^3
  /// Extra interaction-shell thickness in cluster edges: cluster pairs are
  /// culled by center distance, so the average over-computation shell is
  /// about half a cluster edge rather than the full diagonal.
  double pave_overhead = 0.5;
  double words_per_position = 9.0;
  double words_per_force = 9.0;

  // Calibration from a simulated run of the `variable` scheme.
  double variable_kernel_cycles = 1.0;
  double variable_memory_cycles = 1.0;
  double variable_words_per_interaction = 22.0;
  double interactions_per_molecule = 70.0;  ///< rho * (4/3) pi r_c^3 / 2
};

struct BlockingPoint {
  double size = 0.0;           ///< normalized cluster size x
  double molecules = 0.0;      ///< molecules per cluster (x^3)
  double kernel_rel = 0.0;     ///< kernel cycles / variable kernel cycles
  double memory_rel = 0.0;     ///< memory cycles / variable memory cycles
  double time_rel = 0.0;       ///< estimated run time / variable run time
};

class BlockingModel {
 public:
  explicit BlockingModel(const BlockingModelParams& params) : p_(params) {}

  /// Evaluate the model at one normalized cluster size x > 0.
  BlockingPoint at(double size) const;

  /// Sweep x over [lo, hi] with `n` points (Figure 11/12 curves).
  std::vector<BlockingPoint> sweep(double lo, double hi, int n) const;

  /// The sweep's run-time minimum (Figure 12's marked point).
  BlockingPoint minimum(double lo = 0.4, double hi = 6.0, int n = 561) const;

  const BlockingModelParams& params() const { return p_; }

 private:
  BlockingModelParams p_;
};

// ---------------------------------------------------------------------------
// The blocking scheme as a SIMD-implementable design (the "future work"
// the paper left to simulator confirmation). 16-molecule central groups,
// cube paving with exact box-distance culling, occupancy padding, and a
// real scheduled kernel (core::build_blocked_kernel) -- confronting the
// analytical estimate above with what a 16-wide machine can actually do.
// ---------------------------------------------------------------------------

struct BlockedImplProfile {
  int cells_per_dim = 0;
  double cell_edge = 0.0;         ///< nm
  double normalized_size = 0.0;   ///< x: cell edge in one-molecule units
  double avg_occupancy = 0.0;
  int max_occupancy = 0;          ///< padded neighbor slots per cell
  int paving_cells = 0;           ///< neighbor cells per central group (k)
  std::int64_t central_groups = 0;
  std::int64_t computed_pairs = 0;   ///< incl. padding & out-of-cutoff
  std::int64_t real_pairs = 0;       ///< directed pairs within the cutoff
  double compute_inflation = 0.0;    ///< computed / real
  double words_total = 0.0;          ///< memory words moved
  double words_per_real_pair = 0.0;
  double cycles_per_computed_pair = 0.0;  ///< per cluster, scheduled
  double est_kernel_cycles = 0.0;    ///< chip level
  double est_memory_cycles = 0.0;
};

/// Characterize a blocked implementation of the given system at a cell
/// granularity of `cells_per_dim` per box edge.
BlockedImplProfile profile_blocked_implementation(
    const md::WaterSystem& sys, const md::NeighborList& half_list,
    double cutoff, int cells_per_dim,
    const kernel::ScheduleOptions& sched = {.unroll = 2}, int n_clusters = 16,
    double mem_words_per_cycle = 4.0);

/// The blocking scheme's interaction *assignment*: which central-force row
/// each SIMD lane of each kernel block updates. This is the artifact the
/// scatter-add race detector (analysis::check_scatter_assignment) walks --
/// the paper's Section 4 argument that colliding force updates are safe
/// holds only while every collision goes through the scatter-add unit, so
/// the assignment records whether writeback combines and where padding
/// lanes park their dummy contributions (the trash row).
struct BlockingScheme {
  std::string name;
  int cells_per_dim = 0;
  int n_lanes = 0;                ///< SIMD clusters per central group
  std::int64_t n_molecules = 0;
  bool combining = true;          ///< writeback uses the scatter-add units
  /// blocks x lanes: force row updated by each lane (row n_molecules = the
  /// trash row absorbing padding-lane contributions).
  std::vector<std::vector<std::int64_t>> block_rows;

  std::int64_t trash_row() const { return n_molecules; }

  /// Reduce to the analysis pass's input (force rows are 9-word records
  /// starting at `force_base`, matching the shared memory-image layout).
  analysis::ScatterAssignment to_scatter_assignment(
      std::uint64_t force_base = 0) const;
};

/// Build the blocking scheme's assignment for a system: molecules are
/// binned by wrapped center into cells_per_dim^3 cells (exactly as
/// profile_blocked_implementation does) and each cell's molecules are
/// packed into groups of `n_clusters` lanes, padding the last group with
/// trash-row lanes.
BlockingScheme build_blocking_scheme(const md::WaterSystem& sys,
                                     int cells_per_dim, int n_clusters = 16);

/// Cell granularities smdcheck lints by default (the Figure 11/12 sweep's
/// implementable range for small boxes).
std::vector<int> builtin_blocking_cells();

// ---------------------------------------------------------------------------
// Analytic pre-pass for the tuner (tune::Runner): estimate a candidate's
// kernel and memory time from the layout's traffic census and a real
// kernel schedule -- everything but the cycle-driven controller/memsys
// loop, which is ~1000x more expensive -- then drop candidates another
// candidate dominates on both axes before paying for full simulation.
// ---------------------------------------------------------------------------

struct AnalyticEstimate {
  double kernel_cycles = 0.0;  ///< scheduled kernel time for all rounds
  double memory_cycles = 0.0;  ///< layout words / peak words-per-cycle
  double time_cycles = 0.0;    ///< startup + max(kernel, memory) (Figure 5)
  double mem_words = 0.0;      ///< words moved SRF <-> memory
};

/// Estimate one variant run without simulating it: builds the layout,
/// schedules the kernel (memoized machinery in sim::KernelCostCache is
/// not needed -- scheduling here is per-call but cheap), and assumes
/// perfectly overlapped transfers at `mem_words_per_cycle`.
AnalyticEstimate estimate_variant_run(const md::WaterSystem& sys,
                                      const md::NeighborList& half_list,
                                      Variant variant,
                                      const LayoutOptions& lopts,
                                      const kernel::ScheduleOptions& sched,
                                      double mem_words_per_cycle,
                                      int kernel_startup_cycles = 100);

/// keep[i] is false iff some estimate j dominates i: time_cycles and
/// mem_words both at least `slack` (> 1) times better. With slack <= 1
/// everything is kept.
std::vector<bool> prune_dominated(const std::vector<AnalyticEstimate>& est,
                                  double slack);

}  // namespace smd::core
