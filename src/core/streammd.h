// StreamMD: shared definitions for the four implementation variants.
//
// Variant overview (paper Table 3):
//   expanded   -- fully expanded interaction list
//   fixed      -- fixed-length (L=8) neighbor lists, replicated centrals,
//                 dummy neighbors, in-cluster central-force reduction
//   variable   -- variable-length neighbor lists via conditional streams
//   duplicated -- fixed-length lists, every pair computed twice, no
//                 neighbor partial-force output
#pragma once

#include <string>

namespace smd::core {

enum class Variant { kExpanded, kFixed, kVariable, kDuplicated };

inline const char* variant_name(Variant v) {
  switch (v) {
    case Variant::kExpanded: return "expanded";
    case Variant::kFixed: return "fixed";
    case Variant::kVariable: return "variable";
    case Variant::kDuplicated: return "duplicated";
  }
  return "?";
}

inline const char* variant_description(Variant v) {
  switch (v) {
    case Variant::kExpanded:
      return "fully expanded interaction list";
    case Variant::kFixed:
      return "fixed length neighbor list of 8 neighbors";
    case Variant::kVariable:
      return "reduction with variable length list (conditional streams)";
    case Variant::kDuplicated:
      return "fixed length lists with duplicated computation";
  }
  return "?";
}

/// Fixed-length neighbor list length L (paper Section 3.3: "a fixed-length
/// list of 8 neighbors was chosen").
inline constexpr int kFixedListLength = 8;

/// Words per position record: 3 atoms x 3 coordinates.
inline constexpr int kPosWords = 9;
/// Words per force record.
inline constexpr int kForceWords = 9;
/// Words of the expanded variant's periodic-boundary record (per-atom shift
/// triples, as in the paper's 27-word input accounting).
inline constexpr int kPbcWords = 9;

}  // namespace smd::core
