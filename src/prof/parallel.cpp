#include "src/prof/parallel.h"

#include <sstream>

#include "src/util/table.h"

namespace smd::prof {
namespace {

double fraction(std::uint64_t part, std::uint64_t total) {
  return total > 0 ? static_cast<double>(part) / static_cast<double>(total)
                   : 0.0;
}

}  // namespace

double ParallelTaxonomy::parallel_efficiency() const {
  return fraction(compute_ns, total_node_ns);
}
double ParallelTaxonomy::communication_fraction() const {
  return fraction(communication_ns, total_node_ns);
}
double ParallelTaxonomy::serialization_fraction() const {
  return fraction(serialization_ns, total_node_ns);
}
double ParallelTaxonomy::imbalance_fraction() const {
  return fraction(imbalance_ns, total_node_ns);
}

ParallelTaxonomy attribute_parallel(const net::StepBreakdown& b) {
  ParallelTaxonomy t;
  t.nodes = b.nodes;
  t.step_ns = b.step_ns;
  t.total_node_ns = b.step_ns * static_cast<std::uint64_t>(b.nodes);
  for (const auto& ledger : b.ledgers) {
    t.compute_ns += ledger.compute_ns;
    t.communication_ns += ledger.halo_gather_ns + ledger.force_scatter_ns;
    t.serialization_ns += ledger.network_latency_ns;
    t.imbalance_ns += ledger.imbalance_wait_ns;
  }
  return t;
}

obs::Json to_json(const ParallelTaxonomy& t) {
  obs::Json j = obs::Json::object();
  j.set("nodes", t.nodes)
      .set("step_ns", t.step_ns)
      .set("total_node_ns", t.total_node_ns)
      .set("compute_ns", t.compute_ns)
      .set("communication_ns", t.communication_ns)
      .set("serialization_ns", t.serialization_ns)
      .set("imbalance_ns", t.imbalance_ns)
      .set("parallel_efficiency", t.parallel_efficiency())
      .set("communication_fraction", t.communication_fraction())
      .set("serialization_fraction", t.serialization_fraction())
      .set("imbalance_fraction", t.imbalance_fraction());
  return j;
}

std::string format_parallel_table(
    const std::vector<net::StepBreakdown>& breakdowns) {
  util::Table t({"nodes", "grid", "step (us)", "compute", "comm", "serial",
                 "imbal", "imb ratio", "halo frac", "crit node"});
  for (const auto& b : breakdowns) {
    const ParallelTaxonomy tax = attribute_parallel(b);
    std::ostringstream grid;
    grid << b.grid.nx << "x" << b.grid.ny << "x" << b.grid.nz;
    t.add_row({std::to_string(b.nodes), grid.str(),
               util::Table::num(static_cast<double>(b.step_ns) * 1e-3, 1),
               util::Table::percent(tax.parallel_efficiency(), 1),
               util::Table::percent(tax.communication_fraction(), 1),
               util::Table::percent(tax.serialization_fraction(), 1),
               util::Table::percent(tax.imbalance_fraction(), 1),
               util::Table::num(b.imbalance_ratio, 3),
               util::Table::num(b.halo_fraction, 2),
               std::to_string(b.critical_node)});
  }
  return t.render();
}

}  // namespace smd::prof
