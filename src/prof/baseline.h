// Benchmark-regression baselines.
//
// The simulator is fully deterministic (fixed dataset seed, cycle-accurate
// counts), so a baseline of cycle-derived metrics is byte-stable across
// runs on an unchanged tree -- any delta is a real behaviour change, not
// noise. `smdprof --record-baseline` captures one (BENCH_baseline.json,
// committed at the repo root); `smdprof --check-baseline` re-runs the
// experiment and exits nonzero if any metric worsened beyond its per-metric
// tolerance. Improvements are reported but never fail the check, so the
// gate only catches regressions; refresh the baseline when an intentional
// improvement lands.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/run.h"
#include "src/net/parallel.h"
#include "src/obs/json.h"
#include "src/sim/config.h"

namespace smd::prof {

/// Baseline file layout version (independent of core::kBenchSchemaVersion,
/// which the file also records for provenance).
/// History:
///   1  per-variant single-node metrics
///   2  adds the "scaling" section: per-node-count parallel decomposition
///      metrics (step_ns, bucket node-times, efficiency, imbalance, halo)
///      captured from the multi-node ledger model; v1 files still load
///      (their scaling section is simply empty).
inline constexpr int kBaselineSchemaVersion = 2;

/// How to judge one metric's drift.
struct MetricPolicy {
  bool lower_is_better = true;
  double rel_tol = 0.05;    ///< allowed relative worsening
  double abs_floor = 0.0;   ///< ignore absolute drifts at or below this
};

/// Tolerance policy for a metric name; unknown names get a conservative
/// default (lower is better, 5%).
MetricPolicy policy_for(const std::string& metric);

struct BaselineMetric {
  std::string name;
  double value = 0.0;
};

struct VariantBaseline {
  std::string variant;
  std::vector<BaselineMetric> metrics;  ///< insertion-ordered
};

struct Baseline {
  int schema_version = kBaselineSchemaVersion;
  int bench_schema_version = 0;
  int n_molecules = 0;
  std::uint64_t seed = 0;
  int fixed_list_length = 0;
  std::string sdr_policy;
  double peak_gflops = 0.0;
  std::vector<VariantBaseline> variants;
  /// Multi-node scaling decomposition, one entry per node count (named
  /// "p=<nodes>"); empty when loaded from a schema-v1 file.
  std::vector<VariantBaseline> scaling;

  /// Deterministic metric snapshot of a full run_all_variants() result.
  static Baseline capture(const std::vector<core::VariantResult>& results,
                          const core::ExperimentSetup& setup,
                          const sim::MachineConfig& cfg);

  /// Append scaling metrics (the multi-node model is deterministic, so
  /// these are byte-stable like the single-node metrics).
  void capture_scaling(const std::vector<net::StepBreakdown>& breakdowns);

  obs::Json to_json() const;
  /// Throws std::runtime_error on an unrecognized schema_version.
  static Baseline from_json(const obs::Json& j);

  void write(const std::string& path) const;
  static Baseline load(const std::string& path);
};

/// One metric's drift between two baselines.
struct MetricDelta {
  std::string variant;
  std::string metric;
  double baseline = 0.0;
  double current = 0.0;
  double rel_change = 0.0;  ///< (current - baseline) / |baseline|
  bool regression = false;
  bool improvement = false;
};

struct CompareReport {
  std::vector<MetricDelta> deltas;
  std::vector<std::string> notes;  ///< setup mismatches, missing metrics
  std::vector<MetricDelta> regressions() const;
  std::vector<MetricDelta> improvements() const;
  bool ok() const { return regressions().empty() && notes.empty(); }
};

/// Compare `current` against `base`. Setup mismatches (molecule count,
/// seed, machine) and metrics present in the baseline but absent from the
/// current capture are reported as notes and fail ok(); metrics new in
/// `current` are ignored (they will enter the file on the next refresh).
CompareReport compare(const Baseline& base, const Baseline& current);

std::string format_compare(const CompareReport& report);

}  // namespace smd::prof
