#include "src/prof/baseline.h"

#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "src/core/schema.h"
#include "src/prof/attribution.h"
#include "src/prof/parallel.h"
#include "src/util/table.h"

namespace smd::prof {
namespace {

/// Metric -> tolerance table. Structural counts are exact; cycle totals
/// get 5%; small stall buckets get looser relative slack plus an absolute
/// floor so a handful of cycles of jitter in a tiny bucket cannot fail
/// the gate.
struct NamedPolicy {
  const char* name;
  MetricPolicy policy;
};

constexpr NamedPolicy kPolicies[] = {
    {"cycles", {true, 0.05, 0.0}},
    {"time_ms", {true, 0.05, 0.0}},
    {"kernel_busy_cycles", {true, 0.10, 0.0}},
    {"mem_busy_cycles", {true, 0.10, 0.0}},
    {"overlap_cycles", {false, 0.10, 0.0}},
    {"sdr_stall_cycles", {true, 0.15, 128.0}},
    {"memory_exposed_cycles", {true, 0.15, 128.0}},
    {"scatter_serialization_cycles", {true, 0.15, 128.0}},
    {"schedule_drain_cycles", {true, 0.15, 128.0}},
    {"mem_words", {true, 0.02, 0.0}},
    {"srf_peak_words", {true, 0.10, 0.0}},
    {"n_kernel_launches", {true, 0.0, 0.0}},
    {"n_memory_ops", {true, 0.0, 0.0}},
    {"executed_flops", {true, 0.0, 0.0}},
    {"solution_gflops", {false, 0.05, 0.0}},
    {"ai_measured", {false, 0.05, 0.0}},
    {"lrf_fraction", {false, 0.02, 0.0}},
    {"max_force_rel_err", {true, 0.0, 1e-9}},
    // Multi-node scaling decomposition (schema v2). Node-time buckets in
    // integer ns; small buckets (latency, imbalance) get absolute floors
    // so single-digit-ns calibration drift cannot fail the gate.
    {"step_ns", {true, 0.05, 0.0}},
    {"compute_node_ns", {true, 0.05, 0.0}},
    {"communication_node_ns", {true, 0.05, 64.0}},
    {"serialization_node_ns", {true, 0.10, 64.0}},
    {"imbalance_node_ns", {true, 0.15, 256.0}},
    {"parallel_efficiency", {false, 0.02, 0.0}},
    {"imbalance_ratio", {true, 0.10, 0.01}},
    {"halo_fraction", {true, 0.0, 1e-9}},
};

double metric_or_throw(const VariantBaseline& v, const std::string& name,
                       bool* found) {
  for (const auto& m : v.metrics) {
    if (m.name == name) {
      *found = true;
      return m.value;
    }
  }
  *found = false;
  return 0.0;
}

}  // namespace

MetricPolicy policy_for(const std::string& metric) {
  for (const auto& p : kPolicies) {
    if (metric == p.name) return p.policy;
  }
  return MetricPolicy{};
}

Baseline Baseline::capture(const std::vector<core::VariantResult>& results,
                           const core::ExperimentSetup& setup,
                           const sim::MachineConfig& cfg) {
  Baseline b;
  b.bench_schema_version = core::kBenchSchemaVersion;
  b.n_molecules = setup.n_molecules;
  b.seed = setup.seed;
  b.fixed_list_length = setup.fixed_list_length;
  b.sdr_policy = cfg.sdr_policy == sim::SdrPolicy::kConservative
                     ? "conservative"
                     : "transfer-scoped";
  b.peak_gflops = cfg.peak_gflops();
  for (const auto& r : results) {
    const StallTaxonomy tax = attribute_cycles(r.run);
    VariantBaseline v;
    v.variant = r.name;
    auto put = [&v](const char* name, double value) {
      v.metrics.push_back({name, value});
    };
    put("cycles", static_cast<double>(r.run.cycles));
    put("time_ms", r.time_ms);
    put("kernel_busy_cycles", static_cast<double>(r.run.kernel_busy_cycles));
    put("mem_busy_cycles", static_cast<double>(r.run.mem_busy_cycles));
    put("overlap_cycles", static_cast<double>(r.run.overlap_cycles));
    put("sdr_stall_cycles", static_cast<double>(r.run.sdr_stall_cycles));
    put("memory_exposed_cycles", static_cast<double>(tax.memory_exposed));
    put("scatter_serialization_cycles",
        static_cast<double>(tax.scatter_serialization));
    put("schedule_drain_cycles", static_cast<double>(tax.schedule_drain));
    put("mem_words", static_cast<double>(r.run.mem_words));
    put("srf_peak_words", static_cast<double>(r.run.srf_peak_words));
    put("n_kernel_launches", static_cast<double>(r.run.n_kernel_launches));
    put("n_memory_ops", static_cast<double>(r.run.n_memory_ops));
    put("executed_flops", static_cast<double>(r.run.interp.executed.flops));
    put("solution_gflops", r.solution_gflops);
    put("ai_measured", r.ai_measured);
    put("lrf_fraction", r.lrf_fraction);
    put("max_force_rel_err", r.max_force_rel_err);
    b.variants.push_back(std::move(v));
  }
  return b;
}

void Baseline::capture_scaling(
    const std::vector<net::StepBreakdown>& breakdowns) {
  for (const auto& bd : breakdowns) {
    const ParallelTaxonomy tax = attribute_parallel(bd);
    VariantBaseline v;
    v.variant = "p=" + std::to_string(bd.nodes);
    auto put = [&v](const char* name, double value) {
      v.metrics.push_back({name, value});
    };
    put("step_ns", static_cast<double>(tax.step_ns));
    put("compute_node_ns", static_cast<double>(tax.compute_ns));
    put("communication_node_ns", static_cast<double>(tax.communication_ns));
    put("serialization_node_ns", static_cast<double>(tax.serialization_ns));
    put("imbalance_node_ns", static_cast<double>(tax.imbalance_ns));
    put("parallel_efficiency", tax.parallel_efficiency());
    put("imbalance_ratio", bd.imbalance_ratio);
    put("halo_fraction", bd.halo_fraction);
    scaling.push_back(std::move(v));
  }
}

obs::Json Baseline::to_json() const {
  obs::Json j = obs::Json::object();
  j.set("schema_version", schema_version);
  j.set("bench_schema_version", bench_schema_version);
  obs::Json setup = obs::Json::object();
  setup.set("n_molecules", n_molecules);
  setup.set("seed", seed);
  setup.set("fixed_list_length", fixed_list_length);
  j.set("setup", std::move(setup));
  obs::Json machine = obs::Json::object();
  machine.set("sdr_policy", sdr_policy);
  machine.set("peak_gflops", peak_gflops);
  j.set("machine", std::move(machine));
  auto section_json = [](const std::vector<VariantBaseline>& section) {
    obs::Json arr = obs::Json::array();
    for (const auto& v : section) {
      obs::Json jv = obs::Json::object();
      jv.set("variant", v.variant);
      obs::Json metrics = obs::Json::object();
      for (const auto& m : v.metrics) metrics.set(m.name, m.value);
      jv.set("metrics", std::move(metrics));
      arr.push_back(std::move(jv));
    }
    return arr;
  };
  j.set("variants", section_json(variants));
  j.set("scaling", section_json(scaling));
  return j;
}

Baseline Baseline::from_json(const obs::Json& j) {
  Baseline b;
  b.schema_version = static_cast<int>(j.at("schema_version").as_int());
  // v1 files are still readable: they predate the scaling section, which
  // stays empty (compare() then simply has no scaling rows to gate).
  if (b.schema_version < 1 || b.schema_version > kBaselineSchemaVersion) {
    throw std::runtime_error(
        "unsupported baseline schema_version " +
        std::to_string(b.schema_version) + " (this build reads 1.." +
        std::to_string(kBaselineSchemaVersion) + "); re-record the baseline");
  }
  b.bench_schema_version =
      static_cast<int>(j.at("bench_schema_version").as_int());
  const obs::Json& setup = j.at("setup");
  b.n_molecules = static_cast<int>(setup.at("n_molecules").as_int());
  b.seed = static_cast<std::uint64_t>(setup.at("seed").as_int());
  b.fixed_list_length =
      static_cast<int>(setup.at("fixed_list_length").as_int());
  const obs::Json& machine = j.at("machine");
  b.sdr_policy = machine.at("sdr_policy").as_string();
  b.peak_gflops = machine.at("peak_gflops").as_double();
  auto read_section = [](const obs::Json& arr,
                         std::vector<VariantBaseline>& out) {
    for (const obs::Json& jv : arr.elements()) {
      VariantBaseline v;
      v.variant = jv.at("variant").as_string();
      for (const auto& [name, value] : jv.at("metrics").items()) {
        v.metrics.push_back({name, value.as_double()});
      }
      out.push_back(std::move(v));
    }
  };
  read_section(j.at("variants"), b.variants);
  if (const obs::Json* scaling = j.find("scaling")) {
    read_section(*scaling, b.scaling);
  }
  return b;
}

void Baseline::write(const std::string& path) const {
  obs::write_file(to_json(), path);
}

Baseline Baseline::load(const std::string& path) {
  return from_json(obs::load_file(path));
}

std::vector<MetricDelta> CompareReport::regressions() const {
  std::vector<MetricDelta> out;
  for (const auto& d : deltas) {
    if (d.regression) out.push_back(d);
  }
  return out;
}

std::vector<MetricDelta> CompareReport::improvements() const {
  std::vector<MetricDelta> out;
  for (const auto& d : deltas) {
    if (d.improvement) out.push_back(d);
  }
  return out;
}

CompareReport compare(const Baseline& base, const Baseline& current) {
  CompareReport rep;
  if (base.n_molecules != current.n_molecules ||
      base.seed != current.seed ||
      base.fixed_list_length != current.fixed_list_length) {
    rep.notes.push_back("experiment setup differs from the baseline's");
  }
  if (base.sdr_policy != current.sdr_policy ||
      base.peak_gflops != current.peak_gflops) {
    rep.notes.push_back("machine configuration differs from the baseline's");
  }
  auto compare_section = [&rep](const std::vector<VariantBaseline>& base_sec,
                                const std::vector<VariantBaseline>& cur_sec,
                                const char* kind) {
    for (const auto& bv : base_sec) {
      const VariantBaseline* cv = nullptr;
      for (const auto& v : cur_sec) {
        if (v.variant == bv.variant) {
          cv = &v;
          break;
        }
      }
      if (cv == nullptr) {
        rep.notes.push_back(std::string(kind) + " '" + bv.variant +
                            "' missing from the current run");
        continue;
      }
      for (const auto& m : bv.metrics) {
        bool found = false;
        const double cur = metric_or_throw(*cv, m.name, &found);
        if (!found) {
          rep.notes.push_back("metric '" + bv.variant + "." + m.name +
                              "' missing from the current run");
          continue;
        }
        MetricDelta d;
        d.variant = bv.variant;
        d.metric = m.name;
        d.baseline = m.value;
        d.current = cur;
        const double denom = std::abs(m.value);
        d.rel_change = denom > 0.0 ? (cur - m.value) / denom
                                   : (cur == m.value ? 0.0 : 1.0);
        const MetricPolicy pol = policy_for(m.name);
        const double drift =
            pol.lower_is_better ? cur - m.value : m.value - cur;
        if (drift > pol.rel_tol * denom + pol.abs_floor) {
          d.regression = true;
        } else if (-drift > pol.rel_tol * denom + pol.abs_floor) {
          d.improvement = true;
        }
        rep.deltas.push_back(std::move(d));
      }
    }
  };
  compare_section(base.variants, current.variants, "variant");
  compare_section(base.scaling, current.scaling, "scaling point");
  return rep;
}

std::string format_compare(const CompareReport& report) {
  std::ostringstream os;
  for (const auto& note : report.notes) os << "note: " << note << "\n";
  const auto regs = report.regressions();
  const auto imps = report.improvements();
  if (!regs.empty()) {
    util::Table t({"Variant", "Metric", "Baseline", "Current", "Change"});
    for (const auto& d : regs) {
      char change[32];
      std::snprintf(change, sizeof change, "%+.2f%%", 100.0 * d.rel_change);
      t.add_row({d.variant, d.metric, std::to_string(d.baseline),
                 std::to_string(d.current), change});
    }
    os << "REGRESSIONS:\n" << t.render();
  }
  if (!imps.empty()) {
    os << "improvements (informational):\n";
    for (const auto& d : imps) {
      char change[32];
      std::snprintf(change, sizeof change, "%+.2f%%", 100.0 * d.rel_change);
      os << "  " << d.variant << "." << d.metric << ": " << d.baseline
         << " -> " << d.current << " (" << change << ")\n";
    }
  }
  os << (report.ok() ? "baseline check OK" : "baseline check FAILED")
     << " (" << report.deltas.size() << " metrics, " << regs.size()
     << " regressions, " << imps.size() << " improvements)\n";
  return os.str();
}

}  // namespace smd::prof
