#include "src/prof/attribution.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "src/util/table.h"

namespace smd::prof {
namespace {

using Span = std::pair<std::uint64_t, std::uint64_t>;

/// Merge a raw span soup into sorted, disjoint spans clipped to [0, horizon).
std::vector<Span> merge_spans(std::vector<Span> spans, std::uint64_t horizon) {
  std::vector<Span> clipped;
  for (auto [s, e] : spans) {
    if (s >= horizon || e <= s) continue;
    clipped.emplace_back(s, std::min(e, horizon));
  }
  std::sort(clipped.begin(), clipped.end());
  std::vector<Span> out;
  for (const auto& s : clipped) {
    if (!out.empty() && s.first <= out.back().second) {
      out.back().second = std::max(out.back().second, s.second);
    } else {
      out.push_back(s);
    }
  }
  return out;
}

/// Memory-lane intervals whose label marks a scatter-add drain.
std::vector<Span> scatter_add_spans(const sim::Timeline& tl,
                                    std::uint64_t horizon) {
  std::vector<Span> raw;
  for (const auto& iv : tl.intervals()) {
    if (iv.lane == sim::Lane::kMemory &&
        iv.label.rfind("scatter-add", 0) == 0) {
      raw.emplace_back(iv.start, iv.end);
    }
  }
  return merge_spans(std::move(raw), horizon);
}

/// Is cycle t covered by the (sorted, disjoint) span list?
bool covered(const std::vector<Span>& spans, std::uint64_t t) {
  auto it = std::upper_bound(
      spans.begin(), spans.end(), t,
      [](std::uint64_t v, const Span& s) { return v < s.first; });
  return it != spans.begin() && t < std::prev(it)->second;
}

std::string pct(std::uint64_t part, std::uint64_t total) {
  char buf[32];
  const double p =
      total ? 100.0 * static_cast<double>(part) / static_cast<double>(total)
            : 0.0;
  std::snprintf(buf, sizeof buf, "%.1f%%", p);
  return buf;
}

}  // namespace

StallTaxonomy& StallTaxonomy::operator+=(const StallTaxonomy& o) {
  total_cycles += o.total_cycles;
  kernel_busy += o.kernel_busy;
  overlap += o.overlap;
  memory_exposed += o.memory_exposed;
  scatter_serialization += o.scatter_serialization;
  sdr_stall += o.sdr_stall;
  schedule_drain += o.schedule_drain;
  return *this;
}

StallTaxonomy attribute_window(const sim::Timeline& tl, std::uint64_t lo,
                               std::uint64_t hi) {
  StallTaxonomy t;
  if (hi <= lo) return t;
  t.total_cycles = hi - lo;

  const auto k = tl.merged(sim::Lane::kKernel, hi);
  const auto m = tl.merged(sim::Lane::kMemory, hi);
  const auto s = tl.merged(sim::Lane::kStall, hi);
  const auto sa = scatter_add_spans(tl, hi);

  // Boundary-event sweep: within each elementary segment every predicate
  // is constant, so classifying the segment start classifies every cycle
  // in it. The segments tile [lo, hi) exactly, hence sum() == total.
  std::vector<std::uint64_t> bounds{lo, hi};
  for (const auto* lanes : {&k, &m, &s, &sa}) {
    for (const auto& [a, b] : *lanes) {
      if (a > lo && a < hi) bounds.push_back(a);
      if (b > lo && b < hi) bounds.push_back(b);
    }
  }
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());

  for (std::size_t i = 0; i + 1 < bounds.size(); ++i) {
    const std::uint64_t a = bounds[i];
    const std::uint64_t len = bounds[i + 1] - a;
    const bool in_k = covered(k, a);
    const bool in_m = covered(m, a);
    if (in_k && in_m) {
      t.overlap += len;
    } else if (in_m && covered(sa, a)) {
      t.scatter_serialization += len;
    } else if (in_m) {
      t.memory_exposed += len;
    } else if (covered(s, a)) {
      t.sdr_stall += len;
    } else if (in_k) {
      t.kernel_busy += len;
    } else {
      t.schedule_drain += len;
    }
  }
  return t;
}

StallTaxonomy attribute_cycles(const sim::RunStats& stats) {
  return attribute_window(stats.timeline, 0, stats.cycles);
}

std::vector<KernelSlice> kernel_slices(const sim::Timeline& tl,
                                       std::uint64_t horizon) {
  std::vector<KernelSlice> slices;
  for (const auto& iv : tl.intervals()) {
    if (iv.lane != sim::Lane::kKernel || iv.start >= horizon) continue;
    const std::uint64_t end = std::min(iv.end, horizon);
    auto it = std::find_if(slices.begin(), slices.end(),
                           [&](const KernelSlice& s) { return s.label == iv.label; });
    if (it == slices.end()) {
      slices.push_back({iv.label, 0, 0});
      it = std::prev(slices.end());
    }
    ++it->launches;
    if (end > iv.start) it->busy_cycles += end - iv.start;
  }
  std::sort(slices.begin(), slices.end(),
            [](const KernelSlice& a, const KernelSlice& b) {
              return a.busy_cycles > b.busy_cycles;
            });
  return slices;
}

std::vector<StripWindow> strip_attribution(const sim::RunStats& stats) {
  // One window per kernel launch: the strip "owns" the span from its
  // launch to the next launch (the tail strip runs to the end of the run),
  // and the pre-first-launch priming window joins the first strip.
  std::vector<std::uint64_t> starts;
  for (const auto& iv : stats.timeline.intervals()) {
    if (iv.lane == sim::Lane::kKernel && iv.start < stats.cycles) {
      starts.push_back(iv.start);
    }
  }
  std::sort(starts.begin(), starts.end());
  starts.erase(std::unique(starts.begin(), starts.end()), starts.end());

  std::vector<StripWindow> strips;
  if (stats.cycles == 0) return strips;
  std::uint64_t lo = 0;
  for (std::size_t i = 0; i < starts.size(); ++i) {
    const std::uint64_t hi = i + 1 < starts.size() ? starts[i + 1] : stats.cycles;
    if (hi <= lo) continue;
    StripWindow w;
    w.index = static_cast<int>(strips.size());
    w.lo = lo;
    w.hi = hi;
    w.taxonomy = attribute_window(stats.timeline, lo, hi);
    strips.push_back(std::move(w));
    lo = hi;
  }
  if (strips.empty()) {
    StripWindow w;
    w.lo = 0;
    w.hi = stats.cycles;
    w.taxonomy = attribute_cycles(stats);
    strips.push_back(std::move(w));
  }
  return strips;
}

WasteAccounting waste_accounting(const core::VariantResult& r,
                                 double flops_per_interaction,
                                 int n_molecules) {
  WasteAccounting w;
  w.variant = r.name;
  w.executed_flops = r.run.interp.executed.flops;
  w.useful_flops =
      flops_per_interaction * static_cast<double>(r.n_real_interactions);
  w.wasted_flops = static_cast<double>(w.executed_flops) - w.useful_flops;
  if (w.wasted_flops < 0.0) w.wasted_flops = 0.0;
  if (w.executed_flops > 0) {
    w.wasted_flop_fraction =
        w.wasted_flops / static_cast<double>(w.executed_flops);
  }
  if (r.variant == core::Variant::kExpanded) {
    // The expanded layout stores a 9-word central-position copy in every
    // interaction record (vs. one canonical copy per molecule) and a
    // PBC-shifted 9-word neighbor image per interaction: pure replication
    // traffic that the blocked layouts avoid.
    const std::int64_t n = r.n_computed_interactions;
    w.replication_words = core::kPosWords * (n - n_molecules) +
                          core::kPosWords * n;
    if (w.replication_words < 0) w.replication_words = 0;
  }
  if (r.variant == core::Variant::kVariable) {
    w.cond_overhead_accesses =
        r.run.interp.cond_accesses - r.run.interp.cond_taken;
  }
  return w;
}

obs::Json to_json(const StallTaxonomy& t) {
  obs::Json j = obs::Json::object();
  j.set("total_cycles", t.total_cycles);
  j.set("kernel_busy", t.kernel_busy);
  j.set("overlap", t.overlap);
  j.set("memory_exposed", t.memory_exposed);
  j.set("scatter_serialization", t.scatter_serialization);
  j.set("sdr_stall", t.sdr_stall);
  j.set("schedule_drain", t.schedule_drain);
  j.set("exhaustive", t.exhaustive());
  return j;
}

obs::Json to_json(const WasteAccounting& w) {
  obs::Json j = obs::Json::object();
  j.set("variant", w.variant);
  j.set("executed_flops", w.executed_flops);
  j.set("useful_flops", w.useful_flops);
  j.set("wasted_flops", w.wasted_flops);
  j.set("wasted_flop_fraction", w.wasted_flop_fraction);
  j.set("replication_words", w.replication_words);
  j.set("cond_overhead_accesses", w.cond_overhead_accesses);
  return j;
}

std::string format_attribution(const StallTaxonomy& t,
                               const std::vector<KernelSlice>& slices,
                               const WasteAccounting& waste) {
  std::ostringstream os;
  util::Table tax({"Bucket", "Cycles", "% of total"});
  const std::vector<std::pair<const char*, std::uint64_t>> rows = {
      {"kernel busy (compute only)", t.kernel_busy},
      {"overlap (memory hidden)", t.overlap},
      {"memory exposed", t.memory_exposed},
      {"scatter-add serialization", t.scatter_serialization},
      {"SDR stall", t.sdr_stall},
      {"schedule drain", t.schedule_drain},
  };
  for (const auto& [name, cycles] : rows) {
    tax.add_row({name, std::to_string(cycles), pct(cycles, t.total_cycles)});
  }
  tax.add_row({"total", std::to_string(t.total_cycles),
               t.exhaustive() ? "100.0% (exact)" : "MISMATCH"});
  os << tax.render();

  if (!slices.empty()) {
    util::Table ks({"Kernel", "Launches", "Busy cycles"});
    for (const auto& s : slices) {
      ks.add_row({s.label, std::to_string(s.launches),
                  std::to_string(s.busy_cycles)});
    }
    os << "\n" << ks.render();
  }

  os << "\nwaste (" << waste.variant << "): executed "
     << waste.executed_flops << " flops, useful "
     << static_cast<std::int64_t>(waste.useful_flops) << ", wasted "
     << static_cast<std::int64_t>(waste.wasted_flops) << " ("
     << pct(static_cast<std::uint64_t>(waste.wasted_flops),
            static_cast<std::uint64_t>(waste.executed_flops))
     << ")\n";
  if (waste.replication_words > 0) {
    os << "  replication traffic: " << waste.replication_words
       << " position words stored per-interaction instead of per-molecule\n";
  }
  if (waste.cond_overhead_accesses > 0) {
    os << "  conditional-stream overhead: " << waste.cond_overhead_accesses
       << " slots accessed but not transferred\n";
  }
  return os.str();
}

}  // namespace smd::prof
