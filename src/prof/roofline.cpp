#include "src/prof/roofline.h"

#include <algorithm>
#include <cstdio>

#include "src/util/table.h"

namespace smd::prof {
namespace {

std::string num(double v, int decimals) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

}  // namespace

const char* binding_verdict(std::uint64_t kernel_busy_cycles,
                            std::uint64_t mem_busy_cycles) {
  return kernel_busy_cycles >= mem_busy_cycles ? "compute" : "memory";
}

double paper_lrf_fraction(core::Variant v) {
  switch (v) {
    case core::Variant::kExpanded: return 0.89;
    case core::Variant::kFixed: return 0.93;
    case core::Variant::kVariable: return 0.95;
    case core::Variant::kDuplicated: return 0.96;
  }
  return 0.0;
}

RooflinePoint roofline_point(const core::VariantResult& r,
                             const sim::MachineConfig& cfg) {
  RooflinePoint p;
  p.variant = r.name;
  p.ai_flops_per_word = r.ai_measured;
  p.ai_flops_per_byte = r.ai_measured / 8.0;
  p.peak_gflops = cfg.peak_gflops();
  p.dram_bw_gbps = cfg.mem.dram.n_channels *
                   cfg.mem.dram.channel_words_per_cycle * 8.0 * cfg.clock_ghz;
  p.cache_bw_gbps = cfg.mem.cache.n_banks * 8.0 * cfg.clock_ghz;
  p.dram_bound_gflops = p.ai_flops_per_byte * p.dram_bw_gbps;
  p.roofline_gflops = std::min(p.peak_gflops, p.dram_bound_gflops);
  p.sustained_gflops = r.solution_gflops;
  p.fraction_of_roofline =
      p.roofline_gflops > 0.0 ? p.sustained_gflops / p.roofline_gflops : 0.0;
  p.model_binding =
      p.dram_bound_gflops < p.peak_gflops ? "memory" : "compute";
  p.measured_binding = binding_verdict(r.run.kernel_busy_cycles,
                                       r.run.mem_busy_cycles);
  p.lrf_fraction = r.lrf_fraction;
  p.paper_lrf = paper_lrf_fraction(r.variant);
  return p;
}

obs::Json to_json(const RooflinePoint& p) {
  obs::Json j = obs::Json::object();
  j.set("variant", p.variant);
  j.set("ai_flops_per_word", p.ai_flops_per_word);
  j.set("ai_flops_per_byte", p.ai_flops_per_byte);
  j.set("peak_gflops", p.peak_gflops);
  j.set("dram_bw_gbps", p.dram_bw_gbps);
  j.set("cache_bw_gbps", p.cache_bw_gbps);
  j.set("dram_bound_gflops", p.dram_bound_gflops);
  j.set("roofline_gflops", p.roofline_gflops);
  j.set("sustained_gflops", p.sustained_gflops);
  j.set("fraction_of_roofline", p.fraction_of_roofline);
  j.set("model_binding", p.model_binding);
  j.set("measured_binding", p.measured_binding);
  j.set("lrf_fraction", p.lrf_fraction);
  j.set("paper_lrf_fraction", p.paper_lrf);
  return j;
}

std::string format_roofline_table(const std::vector<RooflinePoint>& points) {
  util::Table t({"Variant", "AI (f/w)", "Roof GFLOPS", "Sustained", "% roof",
                 "Model", "Measured", "%LRF", "%LRF paper"});
  for (const auto& p : points) {
    t.add_row({p.variant, num(p.ai_flops_per_word, 1),
               num(p.roofline_gflops, 1), num(p.sustained_gflops, 1),
               num(100.0 * p.fraction_of_roofline, 1), p.model_binding,
               p.measured_binding, num(100.0 * p.lrf_fraction, 1),
               num(100.0 * p.paper_lrf, 0)});
  }
  return t.render();
}

}  // namespace smd::prof
