// Roofline placement of variant runs (paper Table 4 + Section 5.1).
//
// The paper argues each layout's performance from its arithmetic
// intensity (Table 4, flops per word of memory traffic): at Merrimac's
// 128 GFLOPS peak and 38.4 GB/s (4.8 Gwords/s) DRAM bandwidth, an AI of A
// flops/word caps sustainable performance at A x 4.8 GFLOPS, so the
// roofline model predicts which resource binds each layout. The measured
// kernel-vs-memory busy-cycle split gives an independent verdict on which
// resource actually bound the run -- smdprof reports both, the
// sustained-vs-roofline fraction, and the paper's Figure 8 LRF fractions
// for comparison.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/run.h"
#include "src/obs/json.h"
#include "src/sim/config.h"

namespace smd::prof {

/// "compute" when kernel-busy cycles dominate memory-busy cycles, else
/// "memory" -- the measured binding resource of a run.
const char* binding_verdict(std::uint64_t kernel_busy_cycles,
                            std::uint64_t mem_busy_cycles);

/// Figure 8's published LRF reference fractions per variant
/// (expanded 0.89, fixed 0.93, variable 0.95, duplicated 0.96).
double paper_lrf_fraction(core::Variant v);

/// One variant's position against the machine's roofline.
struct RooflinePoint {
  std::string variant;
  double ai_flops_per_word = 0.0;  ///< measured AI (paper Table 4 unit)
  double ai_flops_per_byte = 0.0;  ///< same, per byte (8-byte words)
  double peak_gflops = 0.0;        ///< compute roof
  double dram_bw_gbps = 0.0;
  double cache_bw_gbps = 0.0;
  double dram_bound_gflops = 0.0;  ///< bandwidth roof at this AI
  double roofline_gflops = 0.0;    ///< min(compute roof, bandwidth roof)
  double sustained_gflops = 0.0;   ///< solution GFLOPS actually achieved
  double fraction_of_roofline = 0.0;
  std::string model_binding;       ///< what the roofline model predicts
  std::string measured_binding;    ///< what the busy-cycle split says
  double lrf_fraction = 0.0;       ///< measured
  double paper_lrf = 0.0;          ///< published Figure 8 value
};

RooflinePoint roofline_point(const core::VariantResult& r,
                             const sim::MachineConfig& cfg);

obs::Json to_json(const RooflinePoint& p);

/// Table over all variants: AI, roofs, sustained, bindings, LRF vs paper.
std::string format_roofline_table(const std::vector<RooflinePoint>& points);

}  // namespace smd::prof
