// Parallel-performance attribution: where did every node-nanosecond of a
// multi-node step go?
//
// The per-node ledgers of src/net/parallel.h tile each node's copy of the
// step exactly (integer nanoseconds, barrier wait explicit). Summing them
// across nodes therefore decomposes the step's total node-time --
// P x step_ns -- into four disjoint buckets with the same exact
// sum-to-total invariant as prof::StallTaxonomy (DESIGN.md section 9):
//
//   compute         interaction evaluation overlapped with local memory,
//   communication   halo gather + force scatter-add bandwidth time,
//   serialization   per-message network tier latency (does not shrink
//                   with P; the latency wall of strong scaling),
//   imbalance       barrier wait for the slowest node (GROMACS's load
//                   imbalance term).
//
// exhaustive() is the invariant the `smdprof --scaling` ctest and the
// randomized property test in tests/prof_test.cpp pin: the four buckets
// sum *exactly* to total_node_ns for every workload x node count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/net/parallel.h"
#include "src/obs/json.h"

namespace smd::prof {

/// Exhaustive, disjoint decomposition of a multi-node step's node-time.
struct ParallelTaxonomy {
  std::int64_t nodes = 1;
  std::uint64_t step_ns = 0;         ///< barrier makespan
  std::uint64_t total_node_ns = 0;   ///< nodes * step_ns
  std::uint64_t compute_ns = 0;
  std::uint64_t communication_ns = 0;
  std::uint64_t serialization_ns = 0;
  std::uint64_t imbalance_ns = 0;

  std::uint64_t sum() const {
    return compute_ns + communication_ns + serialization_ns + imbalance_ns;
  }
  /// The defining invariant: every node-nanosecond lands in one bucket.
  bool exhaustive() const { return sum() == total_node_ns; }

  /// Fraction of total node-time spent computing -- the GROMACS-style
  /// parallel efficiency of the decomposition (1.0 = perfect scaling of
  /// the compute phase with zero overhead).
  double parallel_efficiency() const;
  double communication_fraction() const;
  double serialization_fraction() const;
  double imbalance_fraction() const;
};

/// Fold a per-node breakdown into the four-bucket taxonomy.
ParallelTaxonomy attribute_parallel(const net::StepBreakdown& b);

obs::Json to_json(const ParallelTaxonomy& t);

/// Human-readable sweep report: one row per node count with the bucket
/// shares and the derived metrics (efficiency, imbalance ratio, halo
/// fraction, critical node). Used by `smdprof --scaling`.
std::string format_parallel_table(
    const std::vector<net::StepBreakdown>& breakdowns);

}  // namespace smd::prof
