// Cycle attribution: where did every cycle of a run go?
//
// The paper explains its performance results (Section 5) by decomposing
// execution time into compute, exposed memory, and serialization effects
// (the SDR allocation flaw of Figure 7, scatter-add drains). smdprof makes
// that decomposition a first-class artifact: every cycle of a run is
// assigned to exactly one bucket of a stall taxonomy, so the buckets sum
// to the total cycle count by construction -- no "other" fudge term, no
// double counting.
//
// Classification uses the controller-recorded Timeline. For each
// elementary segment between lane-boundary events, with predicates
//   k  = kernel lane busy
//   m  = memory lane busy
//   sa = a scatter-add drain active (memory-lane interval labelled
//        "scatter-add ...")
//   s  = SDR-stall lane busy (a memory op was ready but no SDR was free)
// the first matching rule wins:
//   1. k && m   -> overlap               (memory hidden under compute)
//   2. m && sa  -> scatter_serialization (exposed memory that is a
//                                         scatter-add drain)
//   3. m        -> memory_exposed        (other exposed memory time)
//   4. s        -> sdr_stall             (nothing running; blocked on SDRs)
//   5. k        -> kernel_busy           (pure compute)
//   6. else     -> schedule_drain        (dependence/startup bubbles)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/run.h"
#include "src/obs/json.h"
#include "src/sim/controller.h"
#include "src/sim/trace.h"

namespace smd::prof {

/// Exhaustive, disjoint decomposition of a cycle window.
struct StallTaxonomy {
  std::uint64_t total_cycles = 0;
  std::uint64_t kernel_busy = 0;
  std::uint64_t overlap = 0;
  std::uint64_t memory_exposed = 0;
  std::uint64_t scatter_serialization = 0;
  std::uint64_t sdr_stall = 0;
  std::uint64_t schedule_drain = 0;

  std::uint64_t sum() const {
    return kernel_busy + overlap + memory_exposed + scatter_serialization +
           sdr_stall + schedule_drain;
  }
  /// The defining invariant: every cycle lands in exactly one bucket.
  bool exhaustive() const { return sum() == total_cycles; }

  StallTaxonomy& operator+=(const StallTaxonomy& o);
};

/// Attribute the window [lo, hi) of a timeline. total_cycles == hi - lo.
StallTaxonomy attribute_window(const sim::Timeline& tl, std::uint64_t lo,
                               std::uint64_t hi);

/// Attribute a whole run: attribute_window(stats.timeline, 0, stats.cycles).
StallTaxonomy attribute_cycles(const sim::RunStats& stats);

/// Kernel-lane busy cycles grouped by kernel label (one entry per distinct
/// kernel), sorted by descending busy cycles.
struct KernelSlice {
  std::string label;           ///< trace label, e.g. "kernel interact"
  int launches = 0;
  std::uint64_t busy_cycles = 0;
};
std::vector<KernelSlice> kernel_slices(const sim::Timeline& tl,
                                       std::uint64_t horizon);

/// Per-strip attribution: the run window partitioned at kernel-launch
/// starts (one strip per launch under the one-kernel-launch-per-strip
/// software pipelining of Figure 5). Windows tile [0, total), so summing
/// the per-strip taxonomies reproduces the whole-run taxonomy exactly.
struct StripWindow {
  int index = 0;
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  StallTaxonomy taxonomy;
};
std::vector<StripWindow> strip_attribution(const sim::RunStats& stats);

/// Per-variant waste accounting: work executed beyond what the solution
/// strictly needs, in the coin each layout pays it in.
///   * all variants: wasted flops = executed - useful (fixed pays dummy
///     neighbors, duplicated computes each pair twice);
///   * expanded: replication traffic -- position words stored per
///     interaction record instead of once per molecule;
///   * variable: conditional-stream overhead -- slots accessed but not
///     transferred.
struct WasteAccounting {
  std::string variant;
  std::int64_t executed_flops = 0;
  double useful_flops = 0.0;
  double wasted_flops = 0.0;
  double wasted_flop_fraction = 0.0;    ///< wasted / executed
  std::int64_t replication_words = 0;   ///< expanded only
  std::int64_t cond_overhead_accesses = 0;  ///< variable only
};
WasteAccounting waste_accounting(const core::VariantResult& r,
                                 double flops_per_interaction,
                                 int n_molecules);

obs::Json to_json(const StallTaxonomy& t);
obs::Json to_json(const WasteAccounting& w);

/// Human-readable one-run explanation: taxonomy table (cycles and % of
/// total), per-kernel slices, waste lines. Used by `smdprof --explain`.
std::string format_attribution(const StallTaxonomy& t,
                               const std::vector<KernelSlice>& slices,
                               const WasteAccounting& waste);

}  // namespace smd::prof
