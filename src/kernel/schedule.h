// VLIW kernel scheduling for a Merrimac arithmetic cluster.
//
// Models the "communication scheduling" stage of the Merrimac compiler
// (Section 5.1 / Figure 10): the kernel body is scheduled onto the
// cluster's 4 FPU issue slots per cycle, the SRF port (4 words/cycle) and
// the conditional-stream access unit, in two modes:
//
//  * unoptimized -- plain resource-constrained list scheduling; loop
//    iterations do not overlap (cycles/iteration = schedule depth);
//  * optimized   -- loop unrolling by a factor U plus modulo (software-
//    pipelined) scheduling; steady-state cost is the initiation interval
//    II, i.e. II/U cycles per original iteration.
//
// The scheduler is exact about resource reservations (multi-slot iterative
// ops reserve consecutive cycles on one FPU; stream transfers reserve SRF
// port words over consecutive cycles) and conservative about dependences
// (true, anti and output register dependences plus same-stream ordering).
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "src/kernel/cost.h"
#include "src/kernel/ir.h"

namespace smd::kernel {

/// Structured diagnostic thrown when scheduling fails (modulo scheduling
/// exhausts max_ii, or list scheduling cannot place an op): carries the
/// kernel name, the search bounds and the binding conflict that set the
/// resource lower bound, so callers can report it instead of a bare string.
class ScheduleError : public std::runtime_error {
 public:
  ScheduleError(std::string kernel, int res_mii, int max_ii,
                std::string conflict);

  const std::string& kernel() const { return kernel_; }
  /// Resource-bound lower limit on II (the best any schedule could do).
  int res_mii() const { return res_mii_; }
  /// Largest II the search tried before giving up (0 for list mode).
  int max_ii() const { return max_ii_; }
  /// The binding conflict behind the bound ("FPU slots", "SRF port", ...).
  const std::string& conflict() const { return conflict_; }

 private:
  std::string kernel_;
  int res_mii_ = 0;
  int max_ii_ = 0;
  std::string conflict_;
};

struct ScheduleOptions {
  int n_fpus = 4;
  int srf_words_per_cycle = 4;
  int cond_units = 1;
  int unroll = 1;                 ///< body unroll factor
  bool software_pipeline = true;  ///< modulo schedule vs. plain list schedule
  int max_ii = 4096;              ///< give-up bound
};

/// Placement of one (possibly unrolled) body instruction.
struct ScheduledOp {
  int instr = 0;   ///< index into the original body
  int copy = 0;    ///< unroll copy
  int cycle = 0;   ///< issue cycle (modulo II in pipelined mode)
  int fpu = -1;    ///< FPU column, -1 for non-FPU ops
  Opcode op = Opcode::kMov;
};

/// Result of scheduling a kernel body.
struct Schedule {
  int ii = 0;              ///< steady-state cycles per *unrolled* body
  int unroll = 1;
  int depth = 0;           ///< schedule length of one unrolled body instance
  int fpu_slot_cycles = 0; ///< FPU slot-cycles consumed per unrolled body
  double fpu_occupancy = 0.0;  ///< fpu_slot_cycles / (n_fpus * ii)
  double issue_rate = 0.0;     ///< fraction of II cycles issuing >= 1 op
  bool pipelined = false;
  std::vector<ScheduledOp> ops;

  /// Steady-state cycles per original body iteration.
  double cycles_per_iteration() const {
    return static_cast<double>(ii) / static_cast<double>(unroll);
  }

  /// Figure 10 style rendering: one row per cycle, one column per FPU;
  /// continuation cycles of iterative ops shown as '|'.
  std::string ascii(int max_rows = 0) const;
};

/// Schedule the body of a kernel.
Schedule schedule_body(const KernelDef& def, const ScheduleOptions& opts);

/// Resource-constrained list-schedule length of an arbitrary straight-line
/// program (used for outer_pre/outer_post and prologue costs).
int straightline_cycles(const std::vector<Instr>& prog,
                        const ScheduleOptions& opts);

}  // namespace smd::kernel
