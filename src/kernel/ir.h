// Stream-kernel intermediate representation.
//
// Merrimac kernels are VLIW programs running in SIMD lockstep on 16
// arithmetic clusters, reading/writing sequential streams held in the SRF.
// We model a kernel as a small register-machine program over per-cluster
// registers (the LRF) with explicit stream accesses, in four sections:
//
//   prologue   -- once per kernel invocation (constants, accumulator init)
//   outer_pre  -- once per block of `block_len` iterations (e.g. read a new
//                 central molecule in the `fixed` variant)
//   body       -- once per iteration (the interaction computation)
//   outer_post -- once per block, after its last body iteration (e.g. write
//                 the reduced central force)
//
// The same instruction list serves two purposes:
//   * the functional interpreter (interp.h) executes it per cluster and
//     produces bit-accurate double-precision results, including conditional
//     stream semantics, and
//   * the VLIW scheduler (schedule.h) builds its dependence graph from it
//     and derives cycles/iteration, slot occupancy and issue rate.
//
// Conditional stream accesses (READ_COND/WRITE_COND) model Merrimac's
// conditional-streams mechanism: every cluster issues the access on every
// iteration (SIMD-legal) but only clusters whose predicate is non-zero
// consume/produce an element; the inter-cluster switch compacts the stream.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace smd::kernel {

enum class Opcode : std::uint8_t {
  kConst,     // dst = imm
  kMov,       // dst = a
  kAdd,       // dst = a + b
  kSub,       // dst = a - b
  kMul,       // dst = a * b
  kMadd,      // dst = a * b + c
  kMsub,      // dst = a * b - c
  kDiv,       // dst = a / b        (iterative on the MADD units)
  kSqrt,      // dst = sqrt(a)      (iterative)
  kRsqrt,     // dst = 1/sqrt(a)    (iterative; counts as div+sqrt flops)
  kCmpEq,     // dst = (a == b) ? 1.0 : 0.0
  kCmpLt,     // dst = (a < b)  ? 1.0 : 0.0
  kSel,       // dst = (c != 0) ? a : b
  kRead,      // regs[dst..dst+count) = next `count` words of stream
  kReadCond,  // as kRead but only when (c != 0); else dst regs unchanged
  kReadBcast, // all clusters read the SAME next record (inter-cluster
              // switch broadcast); the cursor advances once per iteration
  kWrite,     // append regs[a..a+count) to stream
  kWriteCond, // as kWrite but only when (c != 0)
};

const char* opcode_name(Opcode op);

/// One IR instruction. Field use depends on the opcode; unused fields -1/0.
struct Instr {
  Opcode op;
  int dst = -1;     ///< destination register (base register for kRead*)
  int a = -1;       ///< source register (base register for kWrite*)
  int b = -1;       ///< second source
  int c = -1;       ///< third source / predicate register
  int stream = -1;  ///< stream slot for stream ops
  int count = 0;    ///< word count for stream ops
  double imm = 0.0; ///< immediate for kConst
};

/// Direction of a stream slot as seen by the kernel.
enum class StreamDir : std::uint8_t { kIn, kOut };

/// Declaration of a stream slot referenced by the kernel.
struct StreamDecl {
  std::string name;
  StreamDir dir;
  int record_words;    ///< words accessed per (taken) access
  bool conditional;    ///< accessed via conditional-stream mechanism
};

/// Sections of a kernel program.
enum class Section : std::uint8_t { kPrologue, kOuterPre, kBody, kOuterPost };

/// Floating-point-operation census in the paper's counting convention
/// (divide = 1 flop, square root = 1 flop, rsqrt = 1 div + 1 sqrt = 2).
struct FlopCensus {
  std::int64_t flops = 0;
  std::int64_t divides = 0;
  std::int64_t square_roots = 0;
  std::int64_t fpu_ops = 0;       ///< schedulable FPU instructions
  std::int64_t words_read = 0;    ///< max stream words read (uncond + cond)
  std::int64_t words_written = 0;

  FlopCensus& operator+=(const FlopCensus& o);
};

/// A complete kernel definition.
struct KernelDef {
  std::string name;
  int n_regs = 0;
  int block_len = 1;  ///< body iterations per outer block (L); 1 = no blocks
  std::vector<StreamDecl> streams;
  std::vector<Instr> prologue;
  std::vector<Instr> outer_pre;
  std::vector<Instr> body;
  std::vector<Instr> outer_post;

  /// Census of one body iteration (conditional accesses counted as taken).
  FlopCensus body_census() const;
  /// Census of one outer_pre + outer_post pass.
  FlopCensus outer_census() const;

  /// Structural validation: register indices in range, stream slots match
  /// declarations and directions, counts positive. Throws on violation.
  void validate() const;
};

/// Census of a single instruction.
FlopCensus instr_census(const Instr& in);

/// Builder with a tiny typed register handle, to keep kernel construction
/// readable in core/kernels.cpp.
class KernelBuilder {
 public:
  explicit KernelBuilder(std::string name);

  /// Register handle.
  struct Reg {
    int idx = -1;
  };

  /// Declare a stream slot; returns its index.
  int stream_in(const std::string& name, int record_words, bool conditional = false);
  int stream_out(const std::string& name, int record_words, bool conditional = false);

  /// Select the section subsequent emissions go to.
  void section(Section s) { section_ = s; }

  /// Set body iterations per block.
  void block_len(int l);

  Reg alloc();                      ///< allocate an uninitialized register
  std::vector<Reg> alloc_n(int n);  ///< allocate n consecutive registers

  Reg constant(double v);  ///< emits kConst into the *current* section
  Reg mov(Reg a);
  void mov_to(Reg dst, Reg a);
  Reg add(Reg a, Reg b);
  void add_to(Reg dst, Reg a, Reg b);
  Reg sub(Reg a, Reg b);
  Reg mul(Reg a, Reg b);
  Reg madd(Reg a, Reg b, Reg c);
  void madd_to(Reg dst, Reg a, Reg b, Reg c);
  Reg msub(Reg a, Reg b, Reg c);
  Reg div(Reg a, Reg b);
  Reg sqrt(Reg a);
  Reg rsqrt(Reg a);
  Reg cmp_eq(Reg a, Reg b);
  Reg cmp_lt(Reg a, Reg b);
  Reg sel(Reg pred, Reg a, Reg b);
  void sel_to(Reg dst, Reg pred, Reg a, Reg b);

  /// Read `n` words from stream into `n` fresh consecutive registers.
  std::vector<Reg> read(int stream, int n);
  /// Read into existing consecutive registers starting at base.
  void read_to(int stream, Reg base, int n);
  /// Conditional read into existing registers (unchanged when not taken).
  void read_cond_to(int stream, Reg base, int n, Reg pred);
  /// Broadcast read: every cluster receives the same record via the
  /// inter-cluster switch; at most one per stream per body.
  void read_bcast_to(int stream, Reg base, int n);
  /// Write `n` consecutive registers starting at base.
  void write(int stream, Reg base, int n);
  void write_cond(int stream, Reg base, int n, Reg pred);

  /// Finalize; validates the kernel.
  KernelDef build();

 private:
  void emit(Instr in);
  KernelDef def_;
  Section section_ = Section::kBody;
};

}  // namespace smd::kernel
