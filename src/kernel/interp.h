// Functional interpreter for stream kernels.
//
// Executes a KernelDef in SIMD lockstep across `n_clusters` clusters over
// bound stream buffers, producing bit-accurate double-precision results and
// an execution census (flops actually executed, LRF/SRF reference counts,
// conditional-stream activity). Stream elements are consumed in
// (round, body-iteration, cluster) order, which is exactly how the layout
// builders lay records out; conditional accesses consume from a shared
// compacted stream in cluster order -- the semantics of Merrimac's
// conditional-streams mechanism.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/kernel/ir.h"

namespace smd::kernel {

/// Execution census from one kernel run.
struct InterpStats {
  FlopCensus executed;            ///< ops actually executed (all clusters)
  std::int64_t lrf_refs = 0;      ///< LRF reads + writes
  std::int64_t srf_read_words = 0;
  std::int64_t srf_write_words = 0;
  std::int64_t cond_accesses = 0; ///< conditional stream ops issued
  std::int64_t cond_taken = 0;    ///< ... of which actually transferred
  std::int64_t body_iterations = 0;  ///< per-cluster iterations x clusters

  InterpStats& operator+=(const InterpStats& o);
};

/// Input/output buffers bound to the kernel's stream slots, in declaration
/// order. Input spans must outlive the run; outputs are appended to.
struct StreamBindings {
  std::vector<std::span<const double>> inputs;   // slot -> data (empty span for outputs)
  std::vector<std::vector<double>*> outputs;     // slot -> sink (nullptr for inputs)
};

/// Interpreter for one kernel invocation.
class Interpreter {
 public:
  Interpreter(const KernelDef& def, int n_clusters);

  /// Run `rounds` block rounds. Each round executes outer_pre once, the
  /// body `block_len` times, and outer_post once, on every cluster.
  /// Returns the execution census. Throws std::runtime_error if an input
  /// stream is exhausted (layout bug).
  InterpStats run(const StreamBindings& bindings, std::int64_t rounds);

 private:
  const KernelDef& def_;
  int n_clusters_;
};

}  // namespace smd::kernel
