// Per-operation cost model for the Merrimac arithmetic cluster.
//
// Each cluster has 4 fully pipelined 64-bit multiply-add (MADD) FPUs.
// Divides and square roots have no dedicated unit: they are iterative
// Newton-Raphson sequences executed on a MADD FPU, occupying it for several
// consecutive issue slots ("divides and square-roots are computed
// iteratively and require several operations", Section 5.1). This is the
// reason sustained "solution" GFLOPS is far below the 128 GFLOPS peak.
//
// MOV/CONST are handled by the intra-cluster switch and preloaded
// microcode immediates; they cost no FPU slot.
#pragma once

#include "src/kernel/ir.h"

namespace smd::kernel {

struct OpCost {
  int fpu_slots;  ///< consecutive issue slots on one FPU (0 = no FPU use)
  int latency;    ///< cycles until the result may be consumed
};

constexpr OpCost op_cost(Opcode op) {
  switch (op) {
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kMadd:
    case Opcode::kMsub:
      return {1, 4};
    case Opcode::kCmpEq:
    case Opcode::kCmpLt:
      return {1, 2};
    case Opcode::kSel:
      return {1, 1};
    case Opcode::kDiv:
      // Double-precision Newton-Raphson reciprocal: seed + 4 iterations
      // (the MADD datapath has no wide seed table) + rounding fix-up.
      return {14, 20};
    case Opcode::kSqrt:
    case Opcode::kRsqrt:
      // Double-precision reciprocal square root: seed + 4 NR iterations of
      // 3 fused ops + correction.
      return {16, 24};
    case Opcode::kConst:
    case Opcode::kMov:
      return {0, 1};
    case Opcode::kRead:
    case Opcode::kReadCond:
      return {0, 3};    // SRF access; bandwidth modeled separately
    case Opcode::kReadBcast:
      return {0, 4};    // SRF access + inter-cluster switch traversal
    case Opcode::kWrite:
    case Opcode::kWriteCond:
      return {0, 1};
  }
  return {1, 1};
}

constexpr bool is_stream_op(Opcode op) {
  return op == Opcode::kRead || op == Opcode::kReadCond ||
         op == Opcode::kReadBcast || op == Opcode::kWrite ||
         op == Opcode::kWriteCond;
}

constexpr bool is_conditional_stream_op(Opcode op) {
  return op == Opcode::kReadCond || op == Opcode::kWriteCond;
}

}  // namespace smd::kernel
