#include "src/kernel/interp.h"

#include <cmath>
#include <stdexcept>

#include "src/analysis/verify_ir.h"

namespace smd::kernel {

InterpStats& InterpStats::operator+=(const InterpStats& o) {
  executed += o.executed;
  lrf_refs += o.lrf_refs;
  srf_read_words += o.srf_read_words;
  srf_write_words += o.srf_write_words;
  cond_accesses += o.cond_accesses;
  cond_taken += o.cond_taken;
  body_iterations += o.body_iterations;
  return *this;
}

namespace {

/// Runtime backstop behind the static pre-flight: report through the
/// diagnostics engine and fail the run cleanly instead of indexing out of
/// range (defined behavior in release builds too).
[[noreturn]] void runtime_fail(const KernelDef& def, const char* id,
                               std::string message) {
  analysis::Diagnostics d;
  d.error(id, {def.name, "runtime", -1}, std::move(message));
  d.count_into_registry("analysis.runtime");
  throw analysis::CheckFailure(std::move(d));
}

struct Cursors {
  std::vector<std::size_t> in;  // per stream slot
};

}  // namespace

Interpreter::Interpreter(const KernelDef& def, int n_clusters)
    : def_(def), n_clusters_(n_clusters) {
  // Static pre-flight: bounds, def-before-use, stream-decl conformance and
  // SIMD legality (fatal on error; warnings land in the obs registry).
  // Subsumes KernelDef::validate().
  analysis::require_valid_kernel(def_);
}

InterpStats Interpreter::run(const StreamBindings& bindings, std::int64_t rounds) {
  if (bindings.inputs.size() != def_.streams.size() ||
      bindings.outputs.size() != def_.streams.size()) {
    throw std::runtime_error(def_.name + ": binding arity mismatch");
  }

  InterpStats stats;
  std::vector<std::vector<double>> regs(
      static_cast<std::size_t>(n_clusters_),
      std::vector<double>(static_cast<std::size_t>(def_.n_regs), 0.0));
  Cursors cur;
  cur.in.assign(def_.streams.size(), 0);

  auto exec = [&](int cluster, const std::vector<Instr>& prog) {
    auto& r = regs[static_cast<std::size_t>(cluster)];
    // Checked LRF access: the verifier proves these statically, so the
    // branch never fires for verified kernels; it exists to keep a
    // malformed instruction from becoming UB.
    auto R = [&](int idx) -> double& {
      if (idx < 0 || idx >= def_.n_regs) {
        runtime_fail(def_, "IR001",
                     "register " + std::to_string(idx) +
                         " out of range [0, " + std::to_string(def_.n_regs) +
                         ")");
      }
      return r[static_cast<std::size_t>(idx)];
    };
    auto slot = [&](int s) -> std::size_t {
      if (s < 0 || s >= static_cast<int>(def_.streams.size())) {
        runtime_fail(def_, "IR002",
                     "stream slot " + std::to_string(s) + " out of range (" +
                         std::to_string(def_.streams.size()) + " declared)");
      }
      return static_cast<std::size_t>(s);
    };
    for (const auto& in : prog) {
      switch (in.op) {
        case Opcode::kConst:
          R(in.dst) = in.imm;
          stats.lrf_refs += 1;
          break;
        case Opcode::kMov:
          R(in.dst) = R(in.a);
          stats.lrf_refs += 2;
          break;
        case Opcode::kAdd:
          R(in.dst) = R(in.a) + R(in.b);
          stats.lrf_refs += 3;
          break;
        case Opcode::kSub:
          R(in.dst) = R(in.a) - R(in.b);
          stats.lrf_refs += 3;
          break;
        case Opcode::kMul:
          R(in.dst) = R(in.a) * R(in.b);
          stats.lrf_refs += 3;
          break;
        case Opcode::kMadd:
          R(in.dst) = R(in.a) * R(in.b) + R(in.c);
          stats.lrf_refs += 4;
          break;
        case Opcode::kMsub:
          R(in.dst) = R(in.a) * R(in.b) - R(in.c);
          stats.lrf_refs += 4;
          break;
        case Opcode::kDiv:
          R(in.dst) = R(in.a) / R(in.b);
          stats.lrf_refs += 3;
          break;
        case Opcode::kSqrt:
          R(in.dst) = std::sqrt(R(in.a));
          stats.lrf_refs += 2;
          break;
        case Opcode::kRsqrt:
          R(in.dst) = 1.0 / std::sqrt(R(in.a));
          stats.lrf_refs += 2;
          break;
        case Opcode::kCmpEq:
          R(in.dst) = (R(in.a) == R(in.b)) ? 1.0 : 0.0;
          stats.lrf_refs += 3;
          break;
        case Opcode::kCmpLt:
          R(in.dst) = (R(in.a) < R(in.b)) ? 1.0 : 0.0;
          stats.lrf_refs += 3;
          break;
        case Opcode::kSel:
          R(in.dst) = (R(in.c) != 0.0) ? R(in.a) : R(in.b);
          stats.lrf_refs += 4;
          break;
        case Opcode::kReadBcast: {
          // Every cluster receives the same record through the
          // inter-cluster switch; the shared cursor advances after the
          // last cluster has read it.
          const std::size_t s = slot(in.stream);
          auto& cursor = cur.in[s];
          const auto& src = bindings.inputs[s];
          if (cursor + static_cast<std::size_t>(in.count) > src.size()) {
            throw std::runtime_error(def_.name + ": input stream '" +
                                     def_.streams[s].name + "' exhausted");
          }
          for (int w = 0; w < in.count; ++w) {
            R(in.dst + w) = src[cursor + static_cast<std::size_t>(w)];
          }
          stats.lrf_refs += in.count;
          if (cluster == n_clusters_ - 1) {
            cursor += static_cast<std::size_t>(in.count);
            stats.srf_read_words += in.count;  // fetched once, fanned out
          }
          break;
        }
        case Opcode::kRead:
        case Opcode::kReadCond: {
          const bool cond = (in.op == Opcode::kReadCond);
          if (cond) {
            ++stats.cond_accesses;
            if (R(in.c) == 0.0) break;
            ++stats.cond_taken;
          }
          const std::size_t s = slot(in.stream);
          auto& cursor = cur.in[s];
          const auto& src = bindings.inputs[s];
          if (cursor + static_cast<std::size_t>(in.count) > src.size()) {
            throw std::runtime_error(def_.name + ": input stream '" +
                                     def_.streams[s].name + "' exhausted");
          }
          for (int w = 0; w < in.count; ++w) {
            R(in.dst + w) = src[cursor + static_cast<std::size_t>(w)];
          }
          cursor += static_cast<std::size_t>(in.count);
          stats.srf_read_words += in.count;
          stats.lrf_refs += in.count;  // LRF writes of the loaded words
          break;
        }
        case Opcode::kWrite:
        case Opcode::kWriteCond: {
          const bool cond = (in.op == Opcode::kWriteCond);
          if (cond) {
            ++stats.cond_accesses;
            if (R(in.c) == 0.0) break;
            ++stats.cond_taken;
          }
          auto* sink = bindings.outputs[slot(in.stream)];
          if (sink == nullptr) {
            throw std::runtime_error(def_.name + ": output stream not bound");
          }
          for (int w = 0; w < in.count; ++w) {
            sink->push_back(R(in.a + w));
          }
          stats.srf_write_words += in.count;
          stats.lrf_refs += in.count;  // LRF reads of the stored words
          break;
        }
      }
      // Census of executed arithmetic (stream words handled above).
      if (in.op != Opcode::kRead && in.op != Opcode::kReadCond &&
          in.op != Opcode::kWrite && in.op != Opcode::kWriteCond) {
        stats.executed += instr_census(in);
      }
    }
  };

  for (int c = 0; c < n_clusters_; ++c) exec(c, def_.prologue);
  for (std::int64_t round = 0; round < rounds; ++round) {
    for (int c = 0; c < n_clusters_; ++c) exec(c, def_.outer_pre);
    for (int l = 0; l < def_.block_len; ++l) {
      for (int c = 0; c < n_clusters_; ++c) exec(c, def_.body);
      stats.body_iterations += n_clusters_;
    }
    for (int c = 0; c < n_clusters_; ++c) exec(c, def_.outer_post);
  }
  // Stream words are tallied during execution; fold them into the census.
  stats.executed.words_read = stats.srf_read_words;
  stats.executed.words_written = stats.srf_write_words;
  return stats;
}

}  // namespace smd::kernel
