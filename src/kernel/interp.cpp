#include "src/kernel/interp.h"

#include <cmath>
#include <stdexcept>

namespace smd::kernel {

InterpStats& InterpStats::operator+=(const InterpStats& o) {
  executed += o.executed;
  lrf_refs += o.lrf_refs;
  srf_read_words += o.srf_read_words;
  srf_write_words += o.srf_write_words;
  cond_accesses += o.cond_accesses;
  cond_taken += o.cond_taken;
  body_iterations += o.body_iterations;
  return *this;
}

Interpreter::Interpreter(const KernelDef& def, int n_clusters)
    : def_(def), n_clusters_(n_clusters) {
  def_.validate();
}

namespace {

struct Cursors {
  std::vector<std::size_t> in;  // per stream slot
};

}  // namespace

InterpStats Interpreter::run(const StreamBindings& bindings, std::int64_t rounds) {
  if (bindings.inputs.size() != def_.streams.size() ||
      bindings.outputs.size() != def_.streams.size()) {
    throw std::runtime_error(def_.name + ": binding arity mismatch");
  }

  InterpStats stats;
  std::vector<std::vector<double>> regs(
      static_cast<std::size_t>(n_clusters_),
      std::vector<double>(static_cast<std::size_t>(def_.n_regs), 0.0));
  Cursors cur;
  cur.in.assign(def_.streams.size(), 0);

  auto exec = [&](int cluster, const std::vector<Instr>& prog) {
    auto& r = regs[static_cast<std::size_t>(cluster)];
    for (const auto& in : prog) {
      switch (in.op) {
        case Opcode::kConst:
          r[static_cast<std::size_t>(in.dst)] = in.imm;
          stats.lrf_refs += 1;
          break;
        case Opcode::kMov:
          r[static_cast<std::size_t>(in.dst)] = r[static_cast<std::size_t>(in.a)];
          stats.lrf_refs += 2;
          break;
        case Opcode::kAdd:
          r[static_cast<std::size_t>(in.dst)] =
              r[static_cast<std::size_t>(in.a)] + r[static_cast<std::size_t>(in.b)];
          stats.lrf_refs += 3;
          break;
        case Opcode::kSub:
          r[static_cast<std::size_t>(in.dst)] =
              r[static_cast<std::size_t>(in.a)] - r[static_cast<std::size_t>(in.b)];
          stats.lrf_refs += 3;
          break;
        case Opcode::kMul:
          r[static_cast<std::size_t>(in.dst)] =
              r[static_cast<std::size_t>(in.a)] * r[static_cast<std::size_t>(in.b)];
          stats.lrf_refs += 3;
          break;
        case Opcode::kMadd:
          r[static_cast<std::size_t>(in.dst)] =
              r[static_cast<std::size_t>(in.a)] * r[static_cast<std::size_t>(in.b)] +
              r[static_cast<std::size_t>(in.c)];
          stats.lrf_refs += 4;
          break;
        case Opcode::kMsub:
          r[static_cast<std::size_t>(in.dst)] =
              r[static_cast<std::size_t>(in.a)] * r[static_cast<std::size_t>(in.b)] -
              r[static_cast<std::size_t>(in.c)];
          stats.lrf_refs += 4;
          break;
        case Opcode::kDiv:
          r[static_cast<std::size_t>(in.dst)] =
              r[static_cast<std::size_t>(in.a)] / r[static_cast<std::size_t>(in.b)];
          stats.lrf_refs += 3;
          break;
        case Opcode::kSqrt:
          r[static_cast<std::size_t>(in.dst)] =
              std::sqrt(r[static_cast<std::size_t>(in.a)]);
          stats.lrf_refs += 2;
          break;
        case Opcode::kRsqrt:
          r[static_cast<std::size_t>(in.dst)] =
              1.0 / std::sqrt(r[static_cast<std::size_t>(in.a)]);
          stats.lrf_refs += 2;
          break;
        case Opcode::kCmpEq:
          r[static_cast<std::size_t>(in.dst)] =
              (r[static_cast<std::size_t>(in.a)] == r[static_cast<std::size_t>(in.b)])
                  ? 1.0
                  : 0.0;
          stats.lrf_refs += 3;
          break;
        case Opcode::kCmpLt:
          r[static_cast<std::size_t>(in.dst)] =
              (r[static_cast<std::size_t>(in.a)] < r[static_cast<std::size_t>(in.b)])
                  ? 1.0
                  : 0.0;
          stats.lrf_refs += 3;
          break;
        case Opcode::kSel:
          r[static_cast<std::size_t>(in.dst)] =
              (r[static_cast<std::size_t>(in.c)] != 0.0)
                  ? r[static_cast<std::size_t>(in.a)]
                  : r[static_cast<std::size_t>(in.b)];
          stats.lrf_refs += 4;
          break;
        case Opcode::kReadBcast: {
          // Every cluster receives the same record through the
          // inter-cluster switch; the shared cursor advances after the
          // last cluster has read it.
          auto& cursor = cur.in[static_cast<std::size_t>(in.stream)];
          const auto& src = bindings.inputs[static_cast<std::size_t>(in.stream)];
          if (cursor + static_cast<std::size_t>(in.count) > src.size()) {
            throw std::runtime_error(def_.name + ": input stream '" +
                                     def_.streams[static_cast<std::size_t>(in.stream)].name +
                                     "' exhausted");
          }
          for (int w = 0; w < in.count; ++w) {
            r[static_cast<std::size_t>(in.dst + w)] = src[cursor + static_cast<std::size_t>(w)];
          }
          stats.lrf_refs += in.count;
          if (cluster == n_clusters_ - 1) {
            cursor += static_cast<std::size_t>(in.count);
            stats.srf_read_words += in.count;  // fetched once, fanned out
          }
          break;
        }
        case Opcode::kRead:
        case Opcode::kReadCond: {
          const bool cond = (in.op == Opcode::kReadCond);
          if (cond) {
            ++stats.cond_accesses;
            if (r[static_cast<std::size_t>(in.c)] == 0.0) break;
            ++stats.cond_taken;
          }
          auto& cursor = cur.in[static_cast<std::size_t>(in.stream)];
          const auto& src = bindings.inputs[static_cast<std::size_t>(in.stream)];
          if (cursor + static_cast<std::size_t>(in.count) > src.size()) {
            throw std::runtime_error(def_.name + ": input stream '" +
                                     def_.streams[static_cast<std::size_t>(in.stream)].name +
                                     "' exhausted");
          }
          for (int w = 0; w < in.count; ++w) {
            r[static_cast<std::size_t>(in.dst + w)] = src[cursor + static_cast<std::size_t>(w)];
          }
          cursor += static_cast<std::size_t>(in.count);
          stats.srf_read_words += in.count;
          stats.lrf_refs += in.count;  // LRF writes of the loaded words
          break;
        }
        case Opcode::kWrite:
        case Opcode::kWriteCond: {
          const bool cond = (in.op == Opcode::kWriteCond);
          if (cond) {
            ++stats.cond_accesses;
            if (r[static_cast<std::size_t>(in.c)] == 0.0) break;
            ++stats.cond_taken;
          }
          auto* sink = bindings.outputs[static_cast<std::size_t>(in.stream)];
          if (sink == nullptr) {
            throw std::runtime_error(def_.name + ": output stream not bound");
          }
          for (int w = 0; w < in.count; ++w) {
            sink->push_back(r[static_cast<std::size_t>(in.a + w)]);
          }
          stats.srf_write_words += in.count;
          stats.lrf_refs += in.count;  // LRF reads of the stored words
          break;
        }
      }
      // Census of executed arithmetic (stream words handled above).
      if (in.op != Opcode::kRead && in.op != Opcode::kReadCond &&
          in.op != Opcode::kWrite && in.op != Opcode::kWriteCond) {
        stats.executed += instr_census(in);
      }
    }
  };

  for (int c = 0; c < n_clusters_; ++c) exec(c, def_.prologue);
  for (std::int64_t round = 0; round < rounds; ++round) {
    for (int c = 0; c < n_clusters_; ++c) exec(c, def_.outer_pre);
    for (int l = 0; l < def_.block_len; ++l) {
      for (int c = 0; c < n_clusters_; ++c) exec(c, def_.body);
      stats.body_iterations += n_clusters_;
    }
    for (int c = 0; c < n_clusters_; ++c) exec(c, def_.outer_post);
  }
  // Stream words are tallied during execution; fold them into the census.
  stats.executed.words_read = stats.srf_read_words;
  stats.executed.words_written = stats.srf_write_words;
  return stats;
}

}  // namespace smd::kernel
