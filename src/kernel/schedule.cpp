#include "src/kernel/schedule.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <sstream>
#include <stdexcept>

#include "src/analysis/verify_ir.h"

namespace smd::kernel {

ScheduleError::ScheduleError(std::string kernel, int res_mii, int max_ii,
                             std::string conflict)
    : std::runtime_error(kernel + ": no schedule found up to II=" +
                         std::to_string(max_ii) + " (resource lower bound " +
                         std::to_string(res_mii) + ", binding conflict: " +
                         conflict + ")"),
      kernel_(std::move(kernel)),
      res_mii_(res_mii),
      max_ii_(max_ii),
      conflict_(std::move(conflict)) {}

namespace {

/// Unrolled, register-renamed op with explicit source/destination value ids.
struct UOp {
  int instr = 0;
  int copy = 0;
  Opcode op = Opcode::kMov;
  int count = 0;          // stream words
  bool conditional = false;
  OpCost cost{0, 1};
  std::vector<int> srcs;  // value ids
  std::vector<int> dsts;  // value ids
  int stream = -1;
};

struct Dep {
  int from;     // producer uop index
  int to;       // consumer uop index
  int latency;
  int distance; // iterations (0 = same unrolled instance)
};

struct Graph {
  std::vector<UOp> ops;
  std::vector<Dep> deps;        // distance 0
  std::vector<Dep> carried;     // distance >= 1 (for modulo verification)
};

/// Unroll the body `unroll` times with value renaming. Loop-carried values
/// (read in the body before being rewritten) generate carried dependences
/// from their final producer back to their first consumers.
Graph build_graph(const KernelDef& def, int unroll) {
  Graph g;
  // Value numbering: value id = name of a register version.
  int next_value = def.n_regs;  // ids [0, n_regs) are the incoming versions
  std::vector<int> current(static_cast<std::size_t>(def.n_regs));
  for (int r = 0; r < def.n_regs; ++r) current[static_cast<std::size_t>(r)] = r;

  // producer[value] = uop index that defines it (-1 for incoming versions).
  std::map<int, int> producer;

  auto src_regs = [](const Instr& in) {
    std::vector<int> s;
    switch (in.op) {
      case Opcode::kConst: break;
      case Opcode::kMov:
      case Opcode::kSqrt:
      case Opcode::kRsqrt:
        s = {in.a};
        break;
      case Opcode::kAdd:
      case Opcode::kSub:
      case Opcode::kMul:
      case Opcode::kDiv:
      case Opcode::kCmpEq:
      case Opcode::kCmpLt:
        s = {in.a, in.b};
        break;
      case Opcode::kMadd:
      case Opcode::kMsub:
      case Opcode::kSel:
        s = {in.a, in.b, in.c};
        break;
      case Opcode::kRead:
      case Opcode::kReadBcast:
        break;
      case Opcode::kReadCond:
        s = {in.c};
        break;
      case Opcode::kWrite:
        for (int w = 0; w < in.count; ++w) s.push_back(in.a + w);
        break;
      case Opcode::kWriteCond:
        for (int w = 0; w < in.count; ++w) s.push_back(in.a + w);
        s.push_back(in.c);
        break;
    }
    return s;
  };
  auto dst_regs = [](const Instr& in) {
    std::vector<int> d;
    switch (in.op) {
      case Opcode::kRead:
      case Opcode::kReadCond:
      case Opcode::kReadBcast:
        for (int w = 0; w < in.count; ++w) d.push_back(in.dst + w);
        break;
      case Opcode::kWrite:
      case Opcode::kWriteCond:
        break;
      default:
        if (in.dst >= 0) d.push_back(in.dst);
    }
    return d;
  };

  // First consumers of each incoming value (for carried deps).
  std::map<int, std::vector<int>> incoming_consumers;
  std::map<int, int> last_stream_op;  // stream slot -> uop index

  for (int copy = 0; copy < unroll; ++copy) {
    for (std::size_t i = 0; i < def.body.size(); ++i) {
      const Instr& in = def.body[i];
      UOp u;
      u.instr = static_cast<int>(i);
      u.copy = copy;
      u.op = in.op;
      u.count = in.count;
      u.conditional = is_conditional_stream_op(in.op);
      u.cost = op_cost(in.op);
      u.stream = in.stream;
      for (int r : src_regs(in)) {
        const int v = current[static_cast<std::size_t>(r)];
        u.srcs.push_back(v);
        if (v < def.n_regs) incoming_consumers[v].push_back(static_cast<int>(g.ops.size()));
      }
      // Conditional reads merge old and new register contents: the untaken
      // path keeps the previous value, so the previous version is a source.
      if (in.op == Opcode::kReadCond) {
        for (int w = 0; w < in.count; ++w) {
          const int v = current[static_cast<std::size_t>(in.dst + w)];
          u.srcs.push_back(v);
          if (v < def.n_regs) incoming_consumers[v].push_back(static_cast<int>(g.ops.size()));
        }
      }
      for (int r : dst_regs(in)) {
        const int v = next_value++;
        current[static_cast<std::size_t>(r)] = v;
        u.dsts.push_back(v);
        producer[v] = static_cast<int>(g.ops.size());
      }
      const int idx = static_cast<int>(g.ops.size());
      // Same-stream ordering (the SRF cursor advances sequentially).
      if (is_stream_op(in.op)) {
        auto it = last_stream_op.find(in.stream);
        if (it != last_stream_op.end()) {
          g.deps.push_back({it->second, idx, 1, 0});
        }
        last_stream_op[in.stream] = idx;
      }
      g.ops.push_back(std::move(u));
    }
  }

  // True dependences inside the window.
  for (std::size_t i = 0; i < g.ops.size(); ++i) {
    for (int v : g.ops[i].srcs) {
      auto it = producer.find(v);
      if (it != producer.end()) {
        const UOp& p = g.ops[static_cast<std::size_t>(it->second)];
        g.deps.push_back({it->second, static_cast<int>(i), p.cost.latency, 0});
      }
    }
  }

  // Carried dependences: the final version of each register feeds the
  // consumers of that register's incoming version in the next instance.
  for (int r = 0; r < def.n_regs; ++r) {
    const int final_v = current[static_cast<std::size_t>(r)];
    if (final_v == r) continue;  // never rewritten in the body
    auto cons = incoming_consumers.find(r);
    if (cons == incoming_consumers.end()) continue;
    const int prod = producer.at(final_v);
    for (int consumer : cons->second) {
      g.carried.push_back({prod, consumer,
                           g.ops[static_cast<std::size_t>(prod)].cost.latency, 1});
    }
  }
  // Stream cursors also carry across instances.
  for (const auto& [stream, last] : last_stream_op) {
    // first op on the same stream:
    for (std::size_t i = 0; i < g.ops.size(); ++i) {
      if (g.ops[i].stream == stream && is_stream_op(g.ops[i].op)) {
        g.carried.push_back({last, static_cast<int>(i), 1, 1});
        break;
      }
    }
  }
  return g;
}

/// Resource reservation tables. In modulo mode all indices are mod II.
struct Resources {
  int n_fpus;
  int srf_capacity;
  int cond_units;
  int ii;  // 0 = non-modulo (absolute time)
  std::vector<std::vector<bool>> fpu;  // [fpu][cycle]
  std::vector<int> srf_words;          // [cycle]
  std::vector<int> cond;               // [cycle]

  explicit Resources(const ScheduleOptions& o, int ii_)
      : n_fpus(o.n_fpus),
        srf_capacity(o.srf_words_per_cycle),
        cond_units(o.cond_units),
        ii(ii_) {
    const int init = ii_ > 0 ? ii_ : 256;
    fpu.assign(static_cast<std::size_t>(n_fpus),
               std::vector<bool>(static_cast<std::size_t>(init), false));
    srf_words.assign(static_cast<std::size_t>(init), 0);
    cond.assign(static_cast<std::size_t>(init), 0);
  }

  int slot(int t) {
    if (ii > 0) return t % ii;
    if (t >= static_cast<int>(srf_words.size())) {
      const auto n = static_cast<std::size_t>(t) * 2 + 1;
      for (auto& f : fpu) f.resize(n, false);
      srf_words.resize(n, 0);
      cond.resize(n, 0);
    }
    return t;
  }

  /// Try to place op at issue cycle t; returns chosen fpu (or -1 for
  /// non-FPU ops) via out param, false if resources unavailable.
  bool try_place(const UOp& u, int t, int* fpu_out) {
    *fpu_out = -1;
    if (u.cost.fpu_slots > 0) {
      if (ii > 0 && u.cost.fpu_slots > ii) return false;
      for (int f = 0; f < n_fpus; ++f) {
        bool free = true;
        for (int k = 0; k < u.cost.fpu_slots; ++k) {
          if (fpu[static_cast<std::size_t>(f)][static_cast<std::size_t>(slot(t + k))]) {
            free = false;
            break;
          }
        }
        if (free) {
          for (int k = 0; k < u.cost.fpu_slots; ++k)
            fpu[static_cast<std::size_t>(f)][static_cast<std::size_t>(slot(t + k))] = true;
          *fpu_out = f;
          return true;
        }
      }
      return false;
    }
    if (is_stream_op(u.op)) {
      // Reserve `count` SRF port words over consecutive cycles from t.
      // All words of the access must fit in ceil(count/capacity) cycles.
      int remaining = u.count;
      int k = 0;
      std::vector<std::pair<int, int>> taken;  // (slot, words)
      while (remaining > 0) {
        const int s = slot(t + k);
        const int avail = srf_capacity - srf_words[static_cast<std::size_t>(s)];
        if (avail <= 0 && k >= (u.count + srf_capacity - 1) / srf_capacity + 2) {
          return false;  // too congested at this offset
        }
        const int take = std::min(avail, remaining);
        if (take > 0) {
          taken.push_back({s, take});
          remaining -= take;
        }
        ++k;
        if (ii > 0 && k > ii) return false;
        if (k > 64) return false;
      }
      if (u.conditional) {
        const int s = slot(t);
        if (cond[static_cast<std::size_t>(s)] >= cond_units) return false;
        ++cond[static_cast<std::size_t>(s)];
      }
      for (auto [s, w] : taken) srf_words[static_cast<std::size_t>(s)] += w;
      return true;
    }
    return true;  // MOV/CONST: free
  }
};

int transfer_cycles(const UOp& u, int capacity) {
  if (!is_stream_op(u.op)) return 0;
  return (u.count + capacity - 1) / capacity;
}

struct Placement {
  std::vector<int> time;
  std::vector<int> fpu;
  bool ok = false;
};

Placement try_schedule(const Graph& g, const ScheduleOptions& opts, int ii) {
  const auto n = g.ops.size();
  Placement p;
  p.time.assign(n, -1);
  p.fpu.assign(n, -1);

  std::vector<std::vector<std::pair<int, int>>> preds(n);  // (from, lat)
  for (const auto& d : g.deps) {
    preds[static_cast<std::size_t>(d.to)].push_back({d.from, d.latency});
  }

  Resources res(opts, ii);
  // Schedule in priority order, but never before all predecessors are
  // placed: process in emission order groups -- emission order is
  // topological, so a simple pass in priority order with a ready check and
  // retry loop works; we instead iterate in topological (emission) order
  // and rely on height-based tie-breaks being unnecessary for correctness.
  for (std::size_t i = 0; i < n; ++i) {
    int ready = 0;
    for (auto [from, lat] : preds[i]) {
      const UOp& pu = g.ops[static_cast<std::size_t>(from)];
      int done = p.time[static_cast<std::size_t>(from)] + lat;
      // Stream transfers complete only after all words have moved.
      done += transfer_cycles(pu, opts.srf_words_per_cycle) > 1
                  ? transfer_cycles(pu, opts.srf_words_per_cycle) - 1
                  : 0;
      ready = std::max(ready, done);
    }
    const int horizon = ii > 0 ? ii : 4096;
    bool placed = false;
    for (int t = ready; t < ready + horizon; ++t) {
      int f = -1;
      if (res.try_place(g.ops[i], t, &f)) {
        p.time[i] = t;
        p.fpu[i] = f;
        placed = true;
        break;
      }
    }
    if (!placed) return p;  // ok = false
  }

  // Verify carried dependences under the candidate II.
  if (ii > 0) {
    for (const auto& d : g.carried) {
      const UOp& pu = g.ops[static_cast<std::size_t>(d.from)];
      int lat = d.latency;
      lat += transfer_cycles(pu, opts.srf_words_per_cycle) > 1
                 ? transfer_cycles(pu, opts.srf_words_per_cycle) - 1
                 : 0;
      if (p.time[static_cast<std::size_t>(d.to)] + d.distance * ii <
          p.time[static_cast<std::size_t>(d.from)] + lat) {
        p.ok = false;
        return p;
      }
    }
  }
  p.ok = true;
  return p;
}

}  // namespace

Schedule schedule_body(const KernelDef& def, const ScheduleOptions& opts) {
  // Static pre-flight: reject malformed IR with located diagnostics before
  // the scheduler walks it (fatal on error, warnings counted).
  analysis::require_valid_kernel(def);
  if (def.body.empty()) {
    Schedule s;
    s.ii = 0;
    s.unroll = opts.unroll;
    return s;
  }
  const Graph g = build_graph(def, opts.unroll);

  // Resource lower bound.
  int fpu_slot_cycles = 0;
  int srf_words = 0;
  int cond_ops = 0;
  for (const auto& u : g.ops) {
    fpu_slot_cycles += u.cost.fpu_slots;
    if (is_stream_op(u.op)) srf_words += u.count;
    if (u.conditional) ++cond_ops;
  }
  int max_slots = 1;
  for (const auto& u : g.ops) max_slots = std::max(max_slots, u.cost.fpu_slots);

  Schedule out;
  out.unroll = opts.unroll;
  out.fpu_slot_cycles = fpu_slot_cycles;
  out.pipelined = opts.software_pipeline;

  // The binding conflict that sets the resource lower bound on II.
  const int fpu_bound = (fpu_slot_cycles + opts.n_fpus - 1) / opts.n_fpus;
  const int srf_bound =
      (srf_words + opts.srf_words_per_cycle - 1) / opts.srf_words_per_cycle;
  const int cond_bound = (cond_ops + opts.cond_units - 1) / opts.cond_units;
  const int res_mii = std::max({fpu_bound, srf_bound, cond_bound, max_slots});
  auto conflict_name = [&]() -> const char* {
    if (res_mii == fpu_bound) return "FPU slots";
    if (res_mii == srf_bound) return "SRF port";
    if (res_mii == cond_bound) return "conditional units";
    return "iterative-op occupancy";
  };

  Placement placement;
  int ii = 0;
  if (opts.software_pipeline) {
    for (ii = std::max(res_mii, 1); ii <= opts.max_ii; ++ii) {
      placement = try_schedule(g, opts, ii);
      if (placement.ok) break;
    }
    if (!placement.ok) {
      throw ScheduleError(def.name, res_mii, opts.max_ii, conflict_name());
    }
  } else {
    placement = try_schedule(g, opts, 0);
    if (!placement.ok) {
      throw ScheduleError(def.name, res_mii, 0, conflict_name());
    }
  }

  int depth = 0;
  for (std::size_t i = 0; i < g.ops.size(); ++i) {
    const UOp& u = g.ops[i];
    depth = std::max(depth, placement.time[i] + std::max(u.cost.latency,
                                                         u.cost.fpu_slots));
    out.ops.push_back({u.instr, u.copy, placement.time[i], placement.fpu[i], u.op});
  }
  out.depth = depth;
  out.ii = opts.software_pipeline ? ii : depth;

  // Issue rate & occupancy over the steady-state window.
  const int window = out.ii > 0 ? out.ii : 1;
  std::vector<bool> issued(static_cast<std::size_t>(window), false);
  for (std::size_t i = 0; i < g.ops.size(); ++i) {
    if (g.ops[i].cost.fpu_slots == 0 && !is_stream_op(g.ops[i].op)) continue;
    issued[static_cast<std::size_t>(placement.time[i] % window)] = true;
  }
  int busy = 0;
  for (bool b : issued) busy += b ? 1 : 0;
  out.issue_rate = static_cast<double>(busy) / static_cast<double>(window);
  out.fpu_occupancy = static_cast<double>(fpu_slot_cycles) /
                      static_cast<double>(opts.n_fpus * window);
  return out;
}

int straightline_cycles(const std::vector<Instr>& prog,
                        const ScheduleOptions& opts) {
  if (prog.empty()) return 0;
  KernelDef tmp;
  tmp.name = "straightline";
  tmp.body = prog;
  // Upper bound on register indices for validation-free scheduling.
  int max_reg = 0;
  for (const auto& in : prog) {
    max_reg = std::max({max_reg, in.dst + std::max(in.count, 1), in.a + std::max(in.count, 1),
                        in.b + 1, in.c + 1});
  }
  tmp.n_regs = max_reg + 1;
  // Streams: synthesize declarations covering referenced slots.
  int max_stream = -1;
  for (const auto& in : prog) max_stream = std::max(max_stream, in.stream);
  for (int s = 0; s <= max_stream; ++s) {
    tmp.streams.push_back({"s", StreamDir::kIn, 1, false});
  }
  ScheduleOptions o = opts;
  o.unroll = 1;
  o.software_pipeline = false;
  const Graph g = build_graph(tmp, 1);
  Placement p = try_schedule(g, o, 0);
  if (!p.ok) return 0;
  int depth = 0;
  for (std::size_t i = 0; i < g.ops.size(); ++i) {
    const UOp& u = g.ops[i];
    depth = std::max(depth, p.time[i] + std::max(u.cost.latency, u.cost.fpu_slots));
  }
  return depth;
}

std::string Schedule::ascii(int max_rows) const {
  const int rows = max_rows > 0 ? std::min(max_rows, ii) : ii;
  // Column per FPU; mark issue cycles with the op mnemonic and occupied
  // continuation cycles of iterative ops with '|'.
  constexpr int kColWidth = 7;
  int n_fpus = 0;
  for (const auto& op : ops) n_fpus = std::max(n_fpus, op.fpu + 1);
  n_fpus = std::max(n_fpus, 4);
  std::vector<std::vector<std::string>> grid(
      static_cast<std::size_t>(ii),
      std::vector<std::string>(static_cast<std::size_t>(n_fpus)));
  for (const auto& op : ops) {
    if (op.fpu < 0) continue;
    const OpCost c = op_cost(op.op);
    const int t0 = pipelined ? op.cycle % ii : op.cycle;
    if (t0 >= ii) continue;
    grid[static_cast<std::size_t>(t0)][static_cast<std::size_t>(op.fpu)] =
        opcode_name(op.op);
    for (int k = 1; k < c.fpu_slots; ++k) {
      const int t = pipelined ? (op.cycle + k) % ii : op.cycle + k;
      if (t < ii && grid[static_cast<std::size_t>(t)][static_cast<std::size_t>(op.fpu)].empty()) {
        grid[static_cast<std::size_t>(t)][static_cast<std::size_t>(op.fpu)] = "|";
      }
    }
  }
  std::ostringstream os;
  os << "cycle";
  for (int f = 0; f < n_fpus; ++f) {
    std::string h = "FPU" + std::to_string(f);
    os << " " << h << std::string(static_cast<std::size_t>(kColWidth) - h.size(), ' ');
  }
  os << "\n";
  for (int t = 0; t < rows; ++t) {
    std::string c = std::to_string(t);
    os << c << std::string(5 - std::min<std::size_t>(5, c.size()), ' ');
    for (int f = 0; f < n_fpus; ++f) {
      std::string cell = grid[static_cast<std::size_t>(t)][static_cast<std::size_t>(f)];
      if (cell.empty()) cell = ".";
      cell.resize(static_cast<std::size_t>(kColWidth), ' ');
      os << " " << cell;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace smd::kernel
