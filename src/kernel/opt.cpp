#include "src/kernel/opt.h"

#include <cmath>
#include <utility>
#include <vector>

#include "src/analysis/dataflow.h"
#include "src/analysis/verify_ir.h"
#include "src/kernel/cost.h"

namespace smd::kernel {
namespace {

using analysis::ConstEnv;
using analysis::DefSite;
using analysis::InstrEffects;
using analysis::KernelDataflow;
using analysis::kSectionOrder;

std::vector<Instr>& section_of(KernelDef& def, Section s) {
  switch (s) {
    case Section::kPrologue:
      return def.prologue;
    case Section::kOuterPre:
      return def.outer_pre;
    case Section::kBody:
      return def.body;
    case Section::kOuterPost:
      return def.outer_post;
  }
  return def.body;
}

/// Operand fields of `in` that may legally be redirected by copy
/// propagation: arithmetic sources and conditional-access predicates.
/// Stream base registers (kRead dst, kWrite a) address CONSECUTIVE
/// registers and are never rewritten.
std::vector<int*> rewritable_operands(Instr& in) {
  switch (in.op) {
    case Opcode::kMov:
    case Opcode::kSqrt:
    case Opcode::kRsqrt:
      return {&in.a};
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kDiv:
    case Opcode::kCmpEq:
    case Opcode::kCmpLt:
      return {&in.a, &in.b};
    case Opcode::kMadd:
    case Opcode::kMsub:
    case Opcode::kSel:
      return {&in.a, &in.b, &in.c};
    case Opcode::kReadCond:
    case Opcode::kWriteCond:
      return {&in.c};
    case Opcode::kConst:
    case Opcode::kRead:
    case Opcode::kReadBcast:
    case Opcode::kWrite:
      return {};
  }
  return {};
}

/// Constant folding + kSel predicate resolution over one whole kernel.
int fold_constants(KernelDef& def, const KernelDataflow& dfa) {
  int rewrites = 0;
  for (Section s : kSectionOrder) {
    ConstEnv env = dfa.const_env_at_entry(s);
    for (Instr& in : section_of(def, s)) {
      const Instr before = in;
      if (!is_stream_op(in.op) && op_cost(in.op).fpu_slots > 0) {
        const InstrEffects fx = analysis::instr_effects(in);
        bool all_const = true;
        for (int r : fx.uses) {
          all_const = all_const && env[static_cast<std::size_t>(r)].has_value();
        }
        if (all_const) {
          auto val = [&](int r) {
            return r >= 0 ? *env[static_cast<std::size_t>(r)] : 0.0;
          };
          const auto folded =
              analysis::fold_instr(in, val(in.a), val(in.b), val(in.c));
          Instr repl;
          repl.op = Opcode::kConst;
          repl.dst = in.dst;
          repl.imm = *folded;
          in = repl;
          ++rewrites;
        } else if (in.op == Opcode::kSel &&
                   env[static_cast<std::size_t>(in.c)].has_value()) {
          // The predicate alone is constant: the select is statically
          // resolved to a free copy of the chosen input.
          const int chosen =
              (*env[static_cast<std::size_t>(in.c)] != 0.0) ? in.a : in.b;
          Instr repl;
          repl.op = Opcode::kMov;
          repl.dst = in.dst;
          repl.a = chosen;
          in = repl;
          ++rewrites;
        }
      }
      // Advance the environment with the ORIGINAL transfer -- identical
      // result by construction (the rewrite preserves the value), and it
      // keeps this walk in sync with the fixpoint the engine computed.
      analysis::apply_const_transfer(before, env);
    }
  }
  return rewrites;
}

/// Copy propagation within sections.
int propagate_copies(KernelDef& def, const KernelDataflow& dfa) {
  int rewrites = 0;
  for (Section s : kSectionOrder) {
    auto& instrs = section_of(def, s);
    for (std::size_t i = 0; i < instrs.size(); ++i) {
      for (int* operand : rewritable_operands(instrs[i])) {
        const int reg = *operand;
        DefSite site;
        if (!dfa.unique_reaching_def(s, static_cast<int>(i), reg, &site)) {
          continue;
        }
        // Same section, textually before the use: in a straight-line
        // section the defining instance executed in this very pass.
        if (site.sec != s || site.instr < 0 ||
            site.instr >= static_cast<int>(i)) {
          continue;
        }
        const Instr& copy = instrs[static_cast<std::size_t>(site.instr)];
        if (copy.op != Opcode::kMov || copy.a == reg) continue;
        // The copy source must be unchanged between the mov and the use.
        bool src_stable = true;
        for (int j = site.instr + 1; j < static_cast<int>(i) && src_stable;
             ++j) {
          for (int d :
               analysis::instr_effects(instrs[static_cast<std::size_t>(j)])
                   .defs) {
            if (d == copy.a) src_stable = false;
          }
        }
        if (!src_stable) continue;
        *operand = copy.a;
        ++rewrites;
      }
    }
  }
  return rewrites;
}

/// CSE: rewrite LVN-detected recomputations to copies from the holder.
int eliminate_common_subexpressions(KernelDef& def,
                                    const KernelDataflow& dfa) {
  int rewrites = 0;
  for (const analysis::Redundancy& r : dfa.redundancies()) {
    Instr& in = section_of(def, r.sec)[static_cast<std::size_t>(r.instr)];
    if (in.op == Opcode::kMov && in.a == r.holder) continue;  // already done
    Instr repl;
    repl.op = Opcode::kMov;
    repl.dst = in.dst;
    repl.a = r.holder;
    in = repl;
    ++rewrites;
  }
  return rewrites;
}

/// DCE: drop pure instructions none of whose results are live.
int eliminate_dead_code(KernelDef& def, const KernelDataflow& dfa) {
  int removed = 0;
  for (Section s : kSectionOrder) {
    auto& instrs = section_of(def, s);
    std::vector<Instr> kept;
    kept.reserve(instrs.size());
    for (std::size_t i = 0; i < instrs.size(); ++i) {
      const Instr& in = instrs[i];
      bool dead = !is_stream_op(in.op) && in.dst >= 0 &&
                  !dfa.live_after(s, static_cast<int>(i)).test(in.dst);
      if (dead) {
        ++removed;
      } else {
        kept.push_back(in);
      }
    }
    instrs = std::move(kept);
  }
  return removed;
}

/// Remove ONE eliminable stream per call (the fixpoint loop finds the
/// rest): an input stream all of whose reads have only dead destination
/// words, or any stream with no accesses at all. Returns the number of
/// read instructions dropped, or -1 if nothing was eliminable.
int eliminate_dead_stream(KernelDef& def, const KernelDataflow& dfa,
                          int* streams_removed) {
  const int n_streams = static_cast<int>(def.streams.size());
  for (int slot = 0; slot < n_streams; ++slot) {
    bool only_dead_reads = true;
    int n_accesses = 0;
    for (Section s : kSectionOrder) {
      const auto& instrs = section_of(def, s);
      for (std::size_t i = 0; i < instrs.size(); ++i) {
        const Instr& in = instrs[i];
        if (!is_stream_op(in.op) || in.stream != slot) continue;
        ++n_accesses;
        if (in.op == Opcode::kWrite || in.op == Opcode::kWriteCond) {
          only_dead_reads = false;
          continue;
        }
        const analysis::Bitset& live = dfa.live_after(s, static_cast<int>(i));
        for (int w = 0; w < in.count; ++w) {
          if (live.test(in.dst + w)) only_dead_reads = false;
        }
      }
    }
    if (n_accesses > 0 && !only_dead_reads) continue;
    // Eliminable: drop its accesses (reads whose words were never
    // observable) and the declaration, renumbering higher slots.
    int dropped = 0;
    for (Section s : kSectionOrder) {
      auto& instrs = section_of(def, s);
      std::vector<Instr> kept;
      kept.reserve(instrs.size());
      for (Instr in : instrs) {
        if (is_stream_op(in.op) && in.stream == slot) {
          ++dropped;
          continue;
        }
        if (is_stream_op(in.op) && in.stream > slot) in.stream -= 1;
        kept.push_back(in);
      }
      instrs = std::move(kept);
    }
    def.streams.erase(def.streams.begin() + slot);
    *streams_removed += 1;
    return dropped;
  }
  return -1;
}

double try_cycles_per_iteration(const KernelDef& def,
                                const ScheduleOptions& sched) {
  if (def.body.empty()) return 0.0;
  try {
    return schedule_body(def, sched).cycles_per_iteration();
  } catch (const ScheduleError&) {
    return std::nan("");
  }
}

}  // namespace

std::string OptReport::str() const {
  std::string out = kernel + ": ";
  if (total_rewrites() == 0) {
    out += "no rewrites (already optimal under these passes)\n";
  } else {
    out += std::to_string(total_rewrites()) + " rewrites in " +
           std::to_string(passes) + " pass(es)\n";
    auto line = [&](const char* what, int n) {
      if (n > 0) {
        out += "  " + std::string(what) + ": " + std::to_string(n) + "\n";
      }
    };
    line("constants folded / selects resolved", const_folded);
    line("copies propagated", copies_propagated);
    line("common subexpressions reused", cse_replaced);
    line("dead instructions removed", dce_removed);
    line("dead stream reads removed", dead_stream_reads_removed);
    line("dead stream declarations removed", dead_streams_removed);
  }
  auto cyc = [](double c) {
    if (std::isnan(c)) return std::string("unschedulable");
    return std::to_string(c);
  };
  out += "  scheduled cycles/iteration: " + cyc(cycles_per_iteration_before) +
         " -> " + cyc(cycles_per_iteration_after);
  if (reverted_schedule_regression) {
    out += " (REGRESSION: original kernel returned unchanged)";
  }
  out += "\n";
  return out;
}

KernelDef optimize_kernel(const KernelDef& def, OptReport* report,
                          const ScheduleOptions& sched) {
  analysis::require_valid_kernel(def);

  OptReport local;
  OptReport& rep = report != nullptr ? *report : local;
  rep = OptReport{};
  rep.kernel = def.name;

  KernelDef out = def;
  // Fixpoint over the passes: each pass consumes analyses of the CURRENT
  // definition, so the engine is recomputed before each pass. Every
  // rewrite either shrinks the instruction list or replaces an op with a
  // free one that later passes can only shrink further, so this
  // terminates; the bound is a safety net.
  for (int round = 0; round < 64; ++round) {
    int changed = 0;
    {
      const KernelDataflow dfa(out);
      const int n = fold_constants(out, dfa);
      rep.const_folded += n;
      changed += n;
    }
    {
      const KernelDataflow dfa(out);
      const int n = propagate_copies(out, dfa);
      rep.copies_propagated += n;
      changed += n;
    }
    {
      const KernelDataflow dfa(out);
      const int n = eliminate_common_subexpressions(out, dfa);
      rep.cse_replaced += n;
      changed += n;
    }
    {
      const KernelDataflow dfa(out);
      const int n = eliminate_dead_code(out, dfa);
      rep.dce_removed += n;
      changed += n;
    }
    {
      const KernelDataflow dfa(out);
      const int n = eliminate_dead_stream(out, dfa, &rep.dead_streams_removed);
      if (n >= 0) {
        rep.dead_stream_reads_removed += n;
        changed += n + 1;
      }
    }
    if (changed == 0) break;
    ++rep.passes;
  }

  rep.cycles_per_iteration_before = try_cycles_per_iteration(def, sched);
  rep.cycles_per_iteration_after = try_cycles_per_iteration(out, sched);

  // Non-regression guard: the rewritten kernel must schedule at least as
  // well as the original, or we ship the original. NaN (unschedulable
  // original) skips the guard; an optimized kernel that became
  // unschedulable while the original scheduled is a regression.
  if (!std::isnan(rep.cycles_per_iteration_before)) {
    if (std::isnan(rep.cycles_per_iteration_after) ||
        rep.cycles_per_iteration_after > rep.cycles_per_iteration_before) {
      rep.reverted_schedule_regression = true;
      rep.cycles_per_iteration_after = rep.cycles_per_iteration_before;
      return def;
    }
  }
  return out;
}

}  // namespace smd::kernel
