// Verified IR optimizer: legality-checked rewrites over KernelDef.
//
// Consumes the analyses of analysis/dataflow.h and applies, to fixpoint:
//
//   * constant folding  -- an FPU op whose operands are provably constant
//     (bit-exact lattice, interpreter-identical arithmetic) becomes a
//     kConst of the folded value; a kSel with a provably constant
//     predicate becomes a kMov of the statically selected input;
//   * copy propagation  -- an operand whose unique reaching definition is
//     a same-section kMov, with the copy source unchanged in between, is
//     rewritten to read the source directly. Stream base registers are
//     never rewritten (kRead/kWrite address consecutive registers, so the
//     packing movs are load-bearing); only arithmetic operands and
//     conditional-access predicates are;
//   * CSE               -- a local-value-numbering redundancy (the value is
//     still held in a register) becomes a kMov from the holder;
//   * DCE               -- a pure (non-stream) instruction none of whose
//     results are live is dropped. Stream ops are never dropped here:
//     even a dead read advances the SRF cursor;
//   * dead-stream elimination -- an input stream ALL of whose reads have
//     only dead destination words (or a stream never accessed at all) is
//     removed: the reads are dropped together with the declaration, and
//     remaining stream slots are renumbered. Removing individual reads
//     would desync the cursor; removing all of them is exact.
//
// Legality argument (DESIGN.md "Dataflow analysis and the verified
// optimizer"): every rewrite preserves the bit-exact value of every
// register that is live at any point, and the exact sequence of stream
// words read and written (except for streams whose every read is dead,
// where the words were never observable). CSE never canonicalizes
// commutative operands, and folding uses the interpreter's own double
// expressions, so NaN payloads and signed zeros survive. The claim is
// machine-checked: the lockstep equivalence sweep (tests/
// opt_equivalence_test.cpp, wired into scripts/check.sh) runs every
// built-in kernel x Table-3 variant x both SDR policies through the
// simulator comparing RunStats field-by-field and memory word-by-word.
//
// The optimizer is OFF by default everywhere: nothing in the simulation
// path rewrites a kernel unless a caller explicitly invokes it.
#pragma once

#include <string>

#include "src/kernel/ir.h"
#include "src/kernel/schedule.h"

namespace smd::kernel {

/// What one optimize_kernel call did.
struct OptReport {
  std::string kernel;
  int const_folded = 0;       ///< ops rewritten to kConst / resolved kSel
  int copies_propagated = 0;  ///< operand uses redirected past a kMov
  int cse_replaced = 0;       ///< recomputations rewritten to kMov
  int dce_removed = 0;        ///< dead pure instructions dropped
  int dead_stream_reads_removed = 0;
  int dead_streams_removed = 0;  ///< stream declarations dropped
  int passes = 0;                ///< fixpoint iterations that changed something

  /// Scheduled steady-state cycles per body iteration before/after
  /// (0 when the body could not be scheduled under the given options).
  double cycles_per_iteration_before = 0.0;
  double cycles_per_iteration_after = 0.0;
  /// True when the rewritten kernel scheduled WORSE than the original and
  /// the optimizer returned the original unchanged (the non-regression
  /// guard; with free-op rewrites this should never trigger, but the
  /// guarantee is enforced, not assumed).
  bool reverted_schedule_regression = false;

  int total_rewrites() const {
    return const_folded + copies_propagated + cse_replaced + dce_removed +
           dead_stream_reads_removed + dead_streams_removed;
  }

  /// Human-readable multi-line summary (for smdcheck --opt-report).
  std::string str() const;
};

/// Optimize a kernel. Pre-flights the input through
/// analysis::require_valid_kernel (throws CheckFailure on errors), applies
/// the passes to fixpoint, then enforces the schedule non-regression
/// guard: if the rewritten body schedules to more cycles/iteration than
/// the original under `sched`, the original definition is returned and
/// the report says so. `report` may be null.
KernelDef optimize_kernel(const KernelDef& def, OptReport* report = nullptr,
                          const ScheduleOptions& sched = {});

}  // namespace smd::kernel
