#include "src/kernel/ir.h"

#include <stdexcept>

namespace smd::kernel {

const char* opcode_name(Opcode op) {
  switch (op) {
    case Opcode::kConst: return "CONST";
    case Opcode::kMov: return "MOV";
    case Opcode::kAdd: return "ADD";
    case Opcode::kSub: return "SUB";
    case Opcode::kMul: return "MUL";
    case Opcode::kMadd: return "MADD";
    case Opcode::kMsub: return "MSUB";
    case Opcode::kDiv: return "DIV";
    case Opcode::kSqrt: return "SQRT";
    case Opcode::kRsqrt: return "RSQRT";
    case Opcode::kCmpEq: return "CMPEQ";
    case Opcode::kCmpLt: return "CMPLT";
    case Opcode::kSel: return "SEL";
    case Opcode::kRead: return "READ";
    case Opcode::kReadCond: return "READC";
    case Opcode::kReadBcast: return "READB";
    case Opcode::kWrite: return "WRITE";
    case Opcode::kWriteCond: return "WRITEC";
  }
  return "?";
}

FlopCensus& FlopCensus::operator+=(const FlopCensus& o) {
  flops += o.flops;
  divides += o.divides;
  square_roots += o.square_roots;
  fpu_ops += o.fpu_ops;
  words_read += o.words_read;
  words_written += o.words_written;
  return *this;
}

FlopCensus instr_census(const Instr& in) {
  FlopCensus c;
  switch (in.op) {
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
      c.flops = 1;
      c.fpu_ops = 1;
      break;
    case Opcode::kMadd:
    case Opcode::kMsub:
      c.flops = 2;
      c.fpu_ops = 1;
      break;
    case Opcode::kDiv:
      c.flops = 1;
      c.divides = 1;
      c.fpu_ops = 1;
      break;
    case Opcode::kSqrt:
      c.flops = 1;
      c.square_roots = 1;
      c.fpu_ops = 1;
      break;
    case Opcode::kRsqrt:
      // Paper convention: rinv = 1/sqrt(r2) is "1 divide + 1 square root".
      c.flops = 2;
      c.divides = 1;
      c.square_roots = 1;
      c.fpu_ops = 1;
      break;
    case Opcode::kCmpEq:
    case Opcode::kCmpLt:
    case Opcode::kSel:
      // Not counted as solution flops, but they occupy FPU issue slots.
      c.fpu_ops = 1;
      break;
    case Opcode::kConst:
    case Opcode::kMov:
      break;  // handled by the cluster switch / preloaded constants
    case Opcode::kRead:
    case Opcode::kReadCond:
    case Opcode::kReadBcast:
      // For kReadBcast this is the per-iteration SRF traffic; the record
      // is fanned out to all clusters by the switch, not re-read.
      c.words_read = in.count;
      break;
    case Opcode::kWrite:
    case Opcode::kWriteCond:
      c.words_written = in.count;
      break;
  }
  return c;
}

namespace {

FlopCensus census_of(const std::vector<Instr>& prog) {
  FlopCensus c;
  for (const auto& in : prog) c += instr_census(in);
  return c;
}

}  // namespace

FlopCensus KernelDef::body_census() const { return census_of(body); }

FlopCensus KernelDef::outer_census() const {
  FlopCensus c = census_of(outer_pre);
  c += census_of(outer_post);
  return c;
}

void KernelDef::validate() const {
  auto check_reg = [&](int r, const char* what) {
    if (r < 0 || r >= n_regs) {
      throw std::runtime_error(name + ": register out of range (" + what + ")");
    }
  };
  auto check_prog = [&](const std::vector<Instr>& prog) {
    for (const auto& in : prog) {
      switch (in.op) {
        case Opcode::kConst:
          check_reg(in.dst, "const dst");
          break;
        case Opcode::kMov:
        case Opcode::kSqrt:
        case Opcode::kRsqrt:
          check_reg(in.dst, "dst");
          check_reg(in.a, "a");
          break;
        case Opcode::kAdd:
        case Opcode::kSub:
        case Opcode::kMul:
        case Opcode::kDiv:
        case Opcode::kCmpEq:
        case Opcode::kCmpLt:
          check_reg(in.dst, "dst");
          check_reg(in.a, "a");
          check_reg(in.b, "b");
          break;
        case Opcode::kMadd:
        case Opcode::kMsub:
        case Opcode::kSel:
          check_reg(in.dst, "dst");
          check_reg(in.a, "a");
          check_reg(in.b, "b");
          check_reg(in.c, "c");
          break;
        case Opcode::kRead:
        case Opcode::kReadCond:
        case Opcode::kReadBcast: {
          if (in.stream < 0 || in.stream >= static_cast<int>(streams.size()))
            throw std::runtime_error(name + ": bad stream slot");
          const auto& s = streams[static_cast<std::size_t>(in.stream)];
          if (s.dir != StreamDir::kIn)
            throw std::runtime_error(name + ": read of output stream " + s.name);
          if (in.count <= 0) throw std::runtime_error(name + ": read count");
          check_reg(in.dst, "read base");
          check_reg(in.dst + in.count - 1, "read end");
          if (in.op == Opcode::kReadCond) check_reg(in.c, "read pred");
          break;
        }
        case Opcode::kWrite:
        case Opcode::kWriteCond: {
          if (in.stream < 0 || in.stream >= static_cast<int>(streams.size()))
            throw std::runtime_error(name + ": bad stream slot");
          const auto& s = streams[static_cast<std::size_t>(in.stream)];
          if (s.dir != StreamDir::kOut)
            throw std::runtime_error(name + ": write of input stream " + s.name);
          if (in.count <= 0) throw std::runtime_error(name + ": write count");
          check_reg(in.a, "write base");
          check_reg(in.a + in.count - 1, "write end");
          if (in.op == Opcode::kWriteCond) check_reg(in.c, "write pred");
          break;
        }
      }
    }
  };
  check_prog(prologue);
  check_prog(outer_pre);
  check_prog(body);
  check_prog(outer_post);
  if (block_len < 1) throw std::runtime_error(name + ": block_len < 1");
  // Broadcast cursor bookkeeping supports one access per stream per body.
  std::vector<int> bcasts(streams.size(), 0);
  for (const auto& in : body) {
    if (in.op == Opcode::kReadBcast &&
        ++bcasts[static_cast<std::size_t>(in.stream)] > 1) {
      throw std::runtime_error(name + ": multiple broadcast reads of one stream");
    }
  }
}

KernelBuilder::KernelBuilder(std::string name) { def_.name = std::move(name); }

int KernelBuilder::stream_in(const std::string& name, int record_words,
                             bool conditional) {
  def_.streams.push_back({name, StreamDir::kIn, record_words, conditional});
  return static_cast<int>(def_.streams.size()) - 1;
}

int KernelBuilder::stream_out(const std::string& name, int record_words,
                              bool conditional) {
  def_.streams.push_back({name, StreamDir::kOut, record_words, conditional});
  return static_cast<int>(def_.streams.size()) - 1;
}

void KernelBuilder::block_len(int l) { def_.block_len = l; }

KernelBuilder::Reg KernelBuilder::alloc() { return {def_.n_regs++}; }

std::vector<KernelBuilder::Reg> KernelBuilder::alloc_n(int n) {
  std::vector<Reg> v;
  v.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) v.push_back(alloc());
  return v;
}

void KernelBuilder::emit(Instr in) {
  switch (section_) {
    case Section::kPrologue: def_.prologue.push_back(in); break;
    case Section::kOuterPre: def_.outer_pre.push_back(in); break;
    case Section::kBody: def_.body.push_back(in); break;
    case Section::kOuterPost: def_.outer_post.push_back(in); break;
  }
}

KernelBuilder::Reg KernelBuilder::constant(double v) {
  Reg r = alloc();
  emit({.op = Opcode::kConst, .dst = r.idx, .imm = v});
  return r;
}

KernelBuilder::Reg KernelBuilder::mov(Reg a) {
  Reg r = alloc();
  mov_to(r, a);
  return r;
}

void KernelBuilder::mov_to(Reg dst, Reg a) {
  emit({.op = Opcode::kMov, .dst = dst.idx, .a = a.idx});
}

#define SMD_BINOP(fn, opc)                                  \
  KernelBuilder::Reg KernelBuilder::fn(Reg a, Reg b) {      \
    Reg r = alloc();                                        \
    emit({.op = Opcode::opc, .dst = r.idx, .a = a.idx, .b = b.idx}); \
    return r;                                               \
  }

SMD_BINOP(add, kAdd)
SMD_BINOP(sub, kSub)
SMD_BINOP(mul, kMul)
SMD_BINOP(div, kDiv)
SMD_BINOP(cmp_eq, kCmpEq)
SMD_BINOP(cmp_lt, kCmpLt)
#undef SMD_BINOP

void KernelBuilder::add_to(Reg dst, Reg a, Reg b) {
  emit({.op = Opcode::kAdd, .dst = dst.idx, .a = a.idx, .b = b.idx});
}

KernelBuilder::Reg KernelBuilder::madd(Reg a, Reg b, Reg c) {
  Reg r = alloc();
  madd_to(r, a, b, c);
  return r;
}

void KernelBuilder::madd_to(Reg dst, Reg a, Reg b, Reg c) {
  emit({.op = Opcode::kMadd, .dst = dst.idx, .a = a.idx, .b = b.idx, .c = c.idx});
}

KernelBuilder::Reg KernelBuilder::msub(Reg a, Reg b, Reg c) {
  Reg r = alloc();
  emit({.op = Opcode::kMsub, .dst = r.idx, .a = a.idx, .b = b.idx, .c = c.idx});
  return r;
}

KernelBuilder::Reg KernelBuilder::sqrt(Reg a) {
  Reg r = alloc();
  emit({.op = Opcode::kSqrt, .dst = r.idx, .a = a.idx});
  return r;
}

KernelBuilder::Reg KernelBuilder::rsqrt(Reg a) {
  Reg r = alloc();
  emit({.op = Opcode::kRsqrt, .dst = r.idx, .a = a.idx});
  return r;
}

KernelBuilder::Reg KernelBuilder::sel(Reg pred, Reg a, Reg b) {
  Reg r = alloc();
  sel_to(r, pred, a, b);
  return r;
}

void KernelBuilder::sel_to(Reg dst, Reg pred, Reg a, Reg b) {
  emit({.op = Opcode::kSel, .dst = dst.idx, .a = a.idx, .b = b.idx, .c = pred.idx});
}

std::vector<KernelBuilder::Reg> KernelBuilder::read(int stream, int n) {
  auto regs = alloc_n(n);
  read_to(stream, regs.front(), n);
  return regs;
}

void KernelBuilder::read_to(int stream, Reg base, int n) {
  emit({.op = Opcode::kRead, .dst = base.idx, .stream = stream, .count = n});
}

void KernelBuilder::read_cond_to(int stream, Reg base, int n, Reg pred) {
  emit({.op = Opcode::kReadCond, .dst = base.idx, .c = pred.idx,
        .stream = stream, .count = n});
}

void KernelBuilder::read_bcast_to(int stream, Reg base, int n) {
  emit({.op = Opcode::kReadBcast, .dst = base.idx, .stream = stream, .count = n});
}

void KernelBuilder::write(int stream, Reg base, int n) {
  emit({.op = Opcode::kWrite, .a = base.idx, .stream = stream, .count = n});
}

void KernelBuilder::write_cond(int stream, Reg base, int n, Reg pred) {
  emit({.op = Opcode::kWriteCond, .a = base.idx, .c = pred.idx,
        .stream = stream, .count = n});
}

KernelDef KernelBuilder::build() {
  def_.validate();
  return def_;
}

}  // namespace smd::kernel
