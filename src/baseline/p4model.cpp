#include "src/baseline/p4model.h"

namespace smd::baseline {

double P4Model::cycles_per_interaction(const kernel::FlopCensus& census) const {
  // Regular (non-iterative) flops vectorize across `simd_width` molecule
  // pairs; each SSE uop retires `simd_width` flops.
  const double rsqrts = static_cast<double>(census.square_roots);
  const double regular_flops =
      static_cast<double>(census.flops) - 2.0 * rsqrts;  // rsqrt = div+sqrt
  const double regular_uops = regular_flops / simd_width;
  const double rsqrt_uops_total = rsqrts / simd_width * rsqrt_uops;
  const double uops = (regular_uops + rsqrt_uops_total) * overhead_factor;
  return uops / sse_uops_per_cycle;
}

double P4Model::interactions_per_second(const kernel::FlopCensus& census) const {
  return clock_ghz * 1e9 / cycles_per_interaction(census);
}

double P4Model::solution_gflops(const kernel::FlopCensus& census) const {
  return interactions_per_second(census) * static_cast<double>(census.flops) /
         1e9;
}

}  // namespace smd::baseline
