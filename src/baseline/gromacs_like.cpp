#include "src/baseline/gromacs_like.h"

#include <bit>
#include <cstdint>

#include "src/md/constants.h"

namespace smd::baseline {

float approx_rsqrt(float x) {
  // 12-bit initial estimate via exponent manipulation (the classic
  // rsqrtps-style seed), then one Newton-Raphson iteration:
  //   y' = y * (1.5 - 0.5 * x * y * y)
  const std::uint32_t bits = std::bit_cast<std::uint32_t>(x);
  float y = std::bit_cast<float>(0x5f375a86u - (bits >> 1));
  y = y * (1.5f - 0.5f * x * y * y);
  y = y * (1.5f - 0.5f * x * y * y);  // second NR step: full single precision
  return y;
}

md::ForceEnergy compute_forces_sse_style(const md::WaterSystem& sys,
                                         const md::NeighborList& list) {
  const md::WaterModel& model = sys.model();
  md::ForceEnergy out;
  out.force.assign(static_cast<std::size_t>(sys.n_atoms()), md::Vec3{});

  // Charges and LJ parameters in single precision, as the SSE loops use.
  const float qo = static_cast<float>(model.sites[0].charge);
  const float qh = static_cast<float>(model.sites[1].charge);
  const float ke = static_cast<float>(md::kCoulombFactor);
  const float qq[3][3] = {
      {ke * qo * qo, ke * qo * qh, ke * qo * qh},
      {ke * qh * qo, ke * qh * qh, ke * qh * qh},
      {ke * qh * qo, ke * qh * qh, ke * qh * qh}};
  const float c6 = static_cast<float>(model.c6);
  const float c12 = static_cast<float>(model.c12);

  for (int i = 0; i < list.n_molecules(); ++i) {
    // Load the central molecule once per row (the "i-water" registers).
    float ci[9];
    for (int s = 0; s < 3; ++s) {
      ci[3 * s + 0] = static_cast<float>(sys.pos(i, s).x);
      ci[3 * s + 1] = static_cast<float>(sys.pos(i, s).y);
      ci[3 * s + 2] = static_cast<float>(sys.pos(i, s).z);
    }
    float fi[9] = {};

    for (std::int32_t k = list.offsets[static_cast<std::size_t>(i)];
         k < list.offsets[static_cast<std::size_t>(i) + 1]; ++k) {
      const std::int32_t j = list.neighbors[static_cast<std::size_t>(k)];
      const md::Vec3 shift = list.shifts[static_cast<std::size_t>(k)];
      float cj[9];
      for (int s = 0; s < 3; ++s) {
        cj[3 * s + 0] = static_cast<float>(sys.pos(j, s).x + shift.x);
        cj[3 * s + 1] = static_cast<float>(sys.pos(j, s).y + shift.y);
        cj[3 * s + 2] = static_cast<float>(sys.pos(j, s).z + shift.z);
      }
      float fj[9] = {};

      for (int a = 0; a < 3; ++a) {
        for (int b = 0; b < 3; ++b) {
          const float dx = ci[3 * a + 0] - cj[3 * b + 0];
          const float dy = ci[3 * a + 1] - cj[3 * b + 1];
          const float dz = ci[3 * a + 2] - cj[3 * b + 2];
          const float r2 = dx * dx + dy * dy + dz * dz;
          const float rinv = approx_rsqrt(r2);
          const float rinv2 = rinv * rinv;
          const float vc = qq[a][b] * rinv;
          float fs = vc * rinv2;
          out.e_coulomb += vc;
          if (a == 0 && b == 0) {
            const float rinv6 = rinv2 * rinv2 * rinv2;
            const float c6t = c6 * rinv6;
            const float c12t = c12 * rinv6 * rinv6;
            out.e_lj += c12t - c6t;
            fs += (12.0f * c12t - 6.0f * c6t) * rinv2;
          }
          const float fx = fs * dx, fy = fs * dy, fz = fs * dz;
          fi[3 * a + 0] += fx;
          fi[3 * a + 1] += fy;
          fi[3 * a + 2] += fz;
          fj[3 * b + 0] -= fx;
          fj[3 * b + 1] -= fy;
          fj[3 * b + 2] -= fz;
        }
      }
      for (int s = 0; s < 3; ++s) {
        out.force[static_cast<std::size_t>(3 * j + s)] +=
            md::Vec3{fj[3 * s + 0], fj[3 * s + 1], fj[3 * s + 2]};
      }
    }
    for (int s = 0; s < 3; ++s) {
      out.force[static_cast<std::size_t>(3 * i + s)] +=
          md::Vec3{fi[3 * s + 0], fi[3 * s + 1], fi[3 * s + 2]};
    }
  }
  return out;
}

}  // namespace smd::baseline
