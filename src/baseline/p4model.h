// Analytic Pentium 4 (Northwood, 2.4 GHz, 90 nm) cost model.
//
// The paper estimates the conventional-processor comparison point from
// wall-clock runs of GROMACS's hand-written single-precision SSE loops.
// We reconstruct that estimate microarchitecturally: the water-water loop
// is 4-wide SIMD over molecule pairs; packed FP adds and multiplies both
// issue through the P4's single FP execution port at a sustained rate of
// about one SSE uop every two cycles; 1/sqrt(x) uses rsqrtps plus one
// Newton-Raphson iteration; and the pack/unpack + address arithmetic of a
// SIMD-across-pairs loop on a conventional memory system adds a constant
// overhead factor (the paper notes Merrimac's hardware gathers eliminate
// exactly this cost).
#pragma once

#include "src/kernel/ir.h"

namespace smd::baseline {

struct P4Model {
  double clock_ghz = 2.4;
  int simd_width = 4;              ///< single-precision SSE
  double sse_uops_per_cycle = 0.5; ///< FP port sustained issue rate
  double rsqrt_uops = 4.0;         ///< rsqrtps + NR (3 mul/sub ops)
  double overhead_factor = 1.35;   ///< pack/unpack, loads, loop control

  /// Cycles per molecule-pair interaction given a solution-flop census of
  /// the interaction (flops include div+sqrt counts per the paper).
  double cycles_per_interaction(const kernel::FlopCensus& census) const;

  /// Sustained solution GFLOPS on the water-water calculation.
  double solution_gflops(const kernel::FlopCensus& census) const;

  /// Interactions per second.
  double interactions_per_second(const kernel::FlopCensus& census) const;
};

}  // namespace smd::baseline
