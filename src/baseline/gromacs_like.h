// GROMACS-style conventional-CPU water-water kernel.
//
// This is the comparison baseline of the paper's Figure 9: the
// hand-optimized single-precision SSE water-water inner loop of GROMACS
// 3.x on a Pentium 4. We provide (a) a faithful single-precision C++
// implementation structured like the SSE loop -- reciprocal-square-root
// approximation with one Newton-Raphson iteration, neighbor-list driven,
// molecule-pair blocked -- that runs natively for functional validation
// and host micro-benchmarks, and (b) an analytic Pentium 4 cost model
// (p4model.h) that converts the loop's op counts into cycles on the
// paper's 2.4 GHz, 90 nm part.
#pragma once

#include <vector>

#include "src/md/force_ref.h"
#include "src/md/neighborlist.h"
#include "src/md/system.h"

namespace smd::baseline {

/// Single-precision force evaluation over a half neighbor list, structured
/// like the GROMACS SSE water loop (rsqrt approximation + one NR step).
/// Returns per-atom forces in double for comparison against the reference.
md::ForceEnergy compute_forces_sse_style(const md::WaterSystem& sys,
                                         const md::NeighborList& list);

/// Fast inverse square root in single precision: hardware-style 12-bit
/// approximation refined by one Newton-Raphson iteration (the exact
/// structure of GROMACS's SSE invsqrt).
float approx_rsqrt(float x);

}  // namespace smd::baseline
