#include "src/net/parallel.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>

#include "src/net/multinode.h"
#include "src/util/rng.h"

namespace smd::net {
namespace {

std::uint64_t ns_round(double ns) {
  if (!(ns > 0.0)) return 0;
  return static_cast<std::uint64_t>(std::llround(ns));
}

/// Grid coordinates of a linearized node id (x fastest, so x-neighbors
/// stay on-board for as long as the board holds a row).
struct GridCoord {
  std::int64_t x = 0, y = 0, z = 0;
};

GridCoord coord_of(std::int64_t id, const DecompositionGrid& g) {
  return {id % g.nx, (id / g.nx) % g.ny, id / (g.nx * g.ny)};
}

std::int64_t id_of(const GridCoord& c, const DecompositionGrid& g) {
  return c.x + g.nx * (c.y + g.ny * c.z);
}

/// Deterministic partition of n molecules over `nodes` weights: floor of
/// the proportional share, then the leftover distributed by descending
/// fractional remainder (index breaks ties), so the counts always sum to
/// n exactly.
std::vector<std::int64_t> partition_molecules(
    std::int64_t n, const std::vector<double>& weights) {
  const std::size_t p = weights.size();
  const double total =
      std::accumulate(weights.begin(), weights.end(), 0.0);
  std::vector<std::int64_t> counts(p, 0);
  if (n <= 0 || total <= 0.0) return counts;
  std::vector<std::pair<double, std::size_t>> remainder(p);
  std::int64_t assigned = 0;
  for (std::size_t i = 0; i < p; ++i) {
    const double share = static_cast<double>(n) * weights[i] / total;
    counts[i] = static_cast<std::int64_t>(share);
    assigned += counts[i];
    remainder[i] = {share - static_cast<double>(counts[i]), i};
  }
  std::sort(remainder.begin(), remainder.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  for (std::int64_t k = 0; k < n - assigned; ++k) {
    ++counts[remainder[static_cast<std::size_t>(k) % p].second];
  }
  return counts;
}

}  // namespace

DecompositionGrid decomposition_grid(std::int64_t nodes) {
  DecompositionGrid best{1, 1, nodes};
  std::int64_t best_sum = 2 + nodes;
  for (std::int64_t nx = 1; nx * nx * nx <= nodes; ++nx) {
    if (nodes % nx != 0) continue;
    const std::int64_t rest = nodes / nx;
    for (std::int64_t ny = nx; ny * ny <= rest; ++ny) {
      if (rest % ny != 0) continue;
      const std::int64_t nz = rest / ny;
      const std::int64_t sum = nx + ny + nz;
      if (sum < best_sum) {
        best_sum = sum;
        best = {nx, ny, nz};
      }
    }
  }
  return best;
}

StepBreakdown simulate_step(const ScalingWorkload& w, const Topology& topo,
                            std::int64_t nodes) {
  if (nodes < 1) {
    throw std::invalid_argument("simulate_step: nodes must be >= 1, got " +
                                std::to_string(nodes));
  }
  if (nodes > topo.config().max_nodes()) {
    throw std::invalid_argument(
        "simulate_step: " + std::to_string(nodes) +
        " nodes exceeds the modeled machine's max_nodes() = " +
        std::to_string(topo.config().max_nodes()));
  }

  StepBreakdown b;
  b.nodes = nodes;
  b.grid = decomposition_grid(nodes);
  b.ledgers.resize(static_cast<std::size_t>(nodes));

  // Owned molecule counts: proportional share with seeded jitter. The
  // jitter amplitude is clamped so a pathological workload cannot produce
  // negative weights.
  const double jitter = std::clamp(w.load_jitter, 0.0, 0.95);
  util::Rng rng(w.seed ^ (0x9e3779b97f4a7c15ULL *
                          static_cast<std::uint64_t>(nodes)));
  std::vector<double> weights(static_cast<std::size_t>(nodes));
  for (auto& wt : weights) wt = 1.0 + jitter * (2.0 * rng.uniform() - 1.0);
  const std::vector<std::int64_t> owned =
      partition_molecules(std::max<std::int64_t>(w.n_molecules, 0), weights);

  // Subdomain geometry: the cubic periodic box split on the grid. The
  // halo extent in each dimension is clipped to the box edge so slab
  // decompositions cannot gather more than the box holds.
  const double n_total = static_cast<double>(std::max<std::int64_t>(
      w.n_molecules, 0));
  const double volume = w.number_density > 0.0 ? n_total / w.number_density
                                               : 0.0;
  const double box = std::cbrt(std::max(volume, 0.0));
  const double lx = box / static_cast<double>(b.grid.nx);
  const double ly = box / static_cast<double>(b.grid.ny);
  const double lz = box / static_cast<double>(b.grid.nz);
  const double rc = std::max(w.cutoff, 0.0);
  const double halo_volume =
      std::min(lx + 2.0 * rc, box) * std::min(ly + 2.0 * rc, box) *
          std::min(lz + 2.0 * rc, box) -
      lx * ly * lz;

  // Face weights: a face's halo slab volume scales with its area, so the
  // per-direction share of the halo bytes follows the subdomain areas.
  const double area[3] = {ly * lz, lx * lz, lx * ly};
  const std::int64_t dims[3] = {b.grid.nx, b.grid.ny, b.grid.nz};
  double active_area = 0.0;
  for (int d = 0; d < 3; ++d) {
    if (dims[d] > 1) active_area += 2.0 * area[d];
  }

  const double interactions = w.interactions();
  const double ghz = w.node_clock_ghz > 0.0 ? w.node_clock_ghz : 1.0;
  double halo_total = 0.0;
  std::uint64_t max_busy = 0;
  long double busy_sum = 0.0;

  for (std::int64_t i = 0; i < nodes; ++i) {
    NodeLedger& ledger = b.ledgers[static_cast<std::size_t>(i)];
    ledger.node = i;
    ledger.molecules = owned[static_cast<std::size_t>(i)];

    // Compute phase: this node's interaction share, overlapped with its
    // local memory traffic exactly as on a single node (the larger of the
    // two binds).
    const double share =
        n_total > 0.0 ? static_cast<double>(ledger.molecules) / n_total : 0.0;
    const double node_interactions = interactions * share;
    const double compute_ns =
        node_interactions * w.cycles_per_interaction / ghz;
    const double local_mem_ns =
        w.local_mem_words_per_cycle > 0.0
            ? node_interactions * w.words_per_interaction /
                  (w.local_mem_words_per_cycle * ghz)
            : 0.0;
    ledger.compute_ns = ns_round(std::max(compute_ns, local_mem_ns));

    // Halo: molecules within r_c of the subdomain faces, clamped to what
    // the rest of the box actually holds.
    double halo = std::min(halo_volume * w.number_density,
                           n_total - static_cast<double>(ledger.molecules));
    ledger.halo_molecules = std::max(halo, 0.0);
    halo_total += ledger.halo_molecules;

    // Face messages: one gather + one scatter per active face, each
    // charged its tier's latency; bandwidth time follows the face's area
    // share of the halo bytes. GB/s == bytes/ns, so ns = bytes / GB/s.
    double gather_ns = 0.0;
    double scatter_ns = 0.0;
    double latency_ns = 0.0;
    if (nodes > 1 && active_area > 0.0 && ledger.halo_molecules > 0.0) {
      const double gather_bytes = ledger.halo_molecules * w.position_words * 8.0;
      const double scatter_bytes = ledger.halo_molecules * w.force_words * 8.0;
      const GridCoord c = coord_of(i, b.grid);
      for (int d = 0; d < 3; ++d) {
        if (dims[d] <= 1) continue;
        for (const std::int64_t dir : {std::int64_t{-1}, std::int64_t{1}}) {
          GridCoord nb = c;
          auto& axis = d == 0 ? nb.x : d == 1 ? nb.y : nb.z;
          axis = (axis + dir + dims[d]) % dims[d];
          const Route r = topo.route(i, id_of(nb, b.grid));
          ledger.tier = std::max(ledger.tier, r.tier);
          const double frac = area[d] / active_area;
          gather_ns += gather_bytes * frac / r.bandwidth_gbytes;
          scatter_ns += scatter_bytes * frac / r.bandwidth_gbytes;
          latency_ns += 2.0 * r.latency_ns;  // one gather + one scatter msg
        }
      }
    }
    ledger.halo_gather_ns = ns_round(gather_ns);
    ledger.force_scatter_ns = ns_round(scatter_ns);
    ledger.network_latency_ns = ns_round(latency_ns);

    max_busy = std::max(max_busy, ledger.busy_ns());
    busy_sum += static_cast<long double>(ledger.busy_ns());
  }

  // Barrier: everyone waits for the slowest node; the wait is charged to
  // the imbalance bucket, so every ledger tiles [0, step_ns) exactly.
  b.step_ns = max_busy;
  for (auto& ledger : b.ledgers) {
    ledger.imbalance_wait_ns = b.step_ns - ledger.busy_ns();
  }
  for (const auto& ledger : b.ledgers) {
    if (ledger.busy_ns() == max_busy) {
      b.critical_node = ledger.node;
      break;
    }
  }
  const double mean_busy =
      static_cast<double>(busy_sum / static_cast<long double>(nodes));
  b.imbalance_ratio =
      mean_busy > 0.0
          ? (static_cast<double>(max_busy) - mean_busy) / mean_busy
          : 0.0;
  b.halo_fraction = n_total > 0.0 ? halo_total / n_total : 0.0;
  return b;
}

void append_trace(const StepBreakdown& b, obs::TraceSink& sink) {
  const int pid = static_cast<int>(b.nodes);
  sink.set_process_name(
      pid, "scaling P=" + std::to_string(b.nodes) + " (" +
               std::to_string(b.grid.nx) + "x" + std::to_string(b.grid.ny) +
               "x" + std::to_string(b.grid.nz) + ")");
  for (const auto& ledger : b.ledgers) {
    const int tid = static_cast<int>(ledger.node);
    sink.set_track_name(pid, tid, "node " + std::to_string(ledger.node));
    std::uint64_t t = 0;
    const std::pair<const char*, std::uint64_t> phases[] = {
        {"halo gather", ledger.halo_gather_ns},
        {"compute", ledger.compute_ns},
        {"force scatter-add", ledger.force_scatter_ns},
        {"network latency", ledger.network_latency_ns},
        {"barrier wait", ledger.imbalance_wait_ns},
    };
    for (const auto& [name, dur] : phases) {
      if (dur == 0) continue;
      sink.add({name, "parallel", pid, tid, t, dur, {}});
      t += dur;
    }
  }
}

}  // namespace smd::net
