// Merrimac interconnection network: five-stage folded Clos (fat tree).
//
// Paper Section 2.3: 16 nodes + 4 high-radix routers per board; each
// on-board router gives every processor two 2.5 GB/s channels and eight
// channels up to the backplane; backplane routers connect the boards of a
// cabinet and uplink through optics to the system-level switch, which
// scales the machine to 16,384 nodes (2 PFLOPS).
#pragma once

#include <cstdint>
#include <string>

namespace smd::net {

struct NetworkConfig {
  int nodes_per_board = 16;
  int routers_per_board = 4;
  int boards_per_backplane = 32;
  int backplanes_per_system = 32;
  double channel_gbps = 2.5 * 8.0;      ///< one 2.5 GB/s channel, in Gb/s
  int channels_per_node_per_router = 2;

  // Per-hop latencies (ns).
  double router_latency_ns = 40.0;
  double board_wire_ns = 5.0;
  double backplane_wire_ns = 20.0;
  double optics_ns = 150.0;  ///< electro-optic conversion + fiber

  int nodes_per_backplane() const { return nodes_per_board * boards_per_backplane; }
  std::int64_t max_nodes() const {
    return static_cast<std::int64_t>(nodes_per_backplane()) * backplanes_per_system;
  }

  /// Per-node injection bandwidth in GB/s: routers x channels x 2.5 GB/s.
  double node_injection_gbytes() const {
    return routers_per_board * channels_per_node_per_router * channel_gbps / 8.0;
  }
};

/// Tier of the network a message must climb to.
enum class Tier { kSelf, kBoard, kBackplane, kSystem };

const char* tier_name(Tier t);

struct Route {
  Tier tier = Tier::kSelf;
  int hops = 0;                ///< router traversals
  double latency_ns = 0.0;     ///< one-way, unloaded
  double bandwidth_gbytes = 0; ///< min channel bandwidth on the path (GB/s)
};

/// Static routing analysis on the folded Clos.
class Topology {
 public:
  explicit Topology(const NetworkConfig& cfg) : cfg_(cfg) {}

  /// Which tier two nodes communicate through.
  Tier tier(std::int64_t src, std::int64_t dst) const;

  /// Unloaded route properties between two nodes.
  Route route(std::int64_t src, std::int64_t dst) const;

  /// Time (seconds) for an n-byte message between two nodes, unloaded
  /// (LogGP-style: latency + bytes / bandwidth).
  double message_seconds(std::int64_t src, std::int64_t dst,
                         std::int64_t bytes) const;

  /// Aggregate bisection bandwidth of a p-node system in GB/s.
  double bisection_gbytes(std::int64_t p) const;

  const NetworkConfig& config() const { return cfg_; }

 private:
  NetworkConfig cfg_;
};

}  // namespace smd::net
