#include "src/net/multinode.h"

#include <algorithm>
#include <cmath>

#include "src/net/parallel.h"

namespace smd::net {

StepBreakdown ScalingModel::breakdown(std::int64_t nodes) const {
  return simulate_step(w_, topo_, nodes);
}

ScalingPoint ScalingModel::at(std::int64_t nodes) const {
  const StepBreakdown b = breakdown(nodes);
  ScalingPoint pt;
  pt.nodes = nodes;
  pt.step_s = static_cast<double>(b.step_ns) * 1e-9;
  pt.halo_fraction = b.halo_fraction;
  pt.imbalance_ratio = b.imbalance_ratio;
  pt.critical_node = b.critical_node;

  const NodeLedger& crit =
      b.ledgers[static_cast<std::size_t>(b.critical_node)];
  pt.compute_s = static_cast<double>(crit.compute_ns) * 1e-9;
  pt.network_s =
      static_cast<double>(crit.halo_gather_ns + crit.force_scatter_ns) * 1e-9;
  pt.serialization_s = static_cast<double>(crit.network_latency_ns) * 1e-9;

  // Balanced per-node local-memory time, reported for comparison with the
  // compute phase (which is the max of the two on the critical node).
  const double per_node_interactions =
      w_.interactions() / static_cast<double>(nodes);
  const double ghz = w_.node_clock_ghz > 0.0 ? w_.node_clock_ghz : 1.0;
  pt.local_mem_s = w_.local_mem_words_per_cycle > 0.0
                       ? per_node_interactions * w_.words_per_interaction /
                             (w_.local_mem_words_per_cycle * ghz * 1e9)
                       : 0.0;

  long double wait_sum = 0.0;
  for (const auto& ledger : b.ledgers) {
    wait_sum += static_cast<long double>(ledger.imbalance_wait_ns);
  }
  pt.imbalance_s = static_cast<double>(
      wait_sum / static_cast<long double>(nodes) * 1e-9L);

  // Speedup against the single-node step. A degenerate workload (zero
  // molecules, zero interactions) has a zero-length step everywhere;
  // define speedup = 1 there so efficiency stays finite (1/P: extra nodes
  // buy nothing on no work).
  const ScalingPoint base = nodes == 1 ? pt : at(1);
  pt.speedup = (base.step_s > 0.0 && pt.step_s > 0.0)
                   ? base.step_s / pt.step_s
                   : 1.0;
  pt.efficiency = pt.speedup / static_cast<double>(nodes);
  return pt;
}

std::vector<ScalingPoint> ScalingModel::sweep(
    const std::vector<std::int64_t>& node_counts) const {
  std::vector<ScalingPoint> out;
  out.reserve(node_counts.size());
  for (auto n : node_counts) out.push_back(at(n));
  return out;
}

}  // namespace smd::net
