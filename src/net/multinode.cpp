#include "src/net/multinode.h"

#include <algorithm>
#include <cmath>

namespace smd::net {

ScalingPoint ScalingModel::at(std::int64_t nodes) const {
  ScalingPoint pt;
  pt.nodes = nodes;

  const double interactions = w_.interactions();
  const double per_node_interactions = interactions / static_cast<double>(nodes);

  // Compute: calibrated chip-level cycles per interaction.
  pt.compute_s = per_node_interactions * w_.cycles_per_interaction /
                 (w_.node_clock_ghz * 1e9);

  // Local memory: the single-node traffic, split across nodes.
  const double words = per_node_interactions * w_.words_per_interaction;
  pt.local_mem_s = words / (w_.local_mem_words_per_cycle * w_.node_clock_ghz * 1e9);

  // Halo exchange: each node owns a cube of edge Lp; molecules within r_c
  // of a face are remote-gathered (positions) and remote-reduced (forces).
  const double volume = static_cast<double>(w_.n_molecules) / w_.number_density;
  const double lp = std::cbrt(volume / static_cast<double>(nodes));
  const double own = static_cast<double>(w_.n_molecules) / static_cast<double>(nodes);
  // Halo shell volume around the cube, clipped to at most replicating the
  // entire rest of the box.
  const double rc = w_.cutoff;
  const double halo_volume =
      std::pow(lp + 2.0 * rc, 3.0) - lp * lp * lp;
  double halo_molecules = std::min(
      halo_volume * w_.number_density,
      static_cast<double>(w_.n_molecules) - own);
  halo_molecules = std::max(halo_molecules, 0.0);
  pt.halo_fraction = nodes > 1 ? halo_molecules / own : 0.0;

  if (nodes > 1) {
    const double bytes =
        halo_molecules * (w_.position_words + w_.force_words) * 8.0;
    // Neighbors in a 3-D decomposition sit mostly one tier up; charge the
    // tier a node of this system size typically crosses.
    const std::int64_t peer = std::min<std::int64_t>(
        nodes - 1, topo_.config().nodes_per_board);
    pt.network_s = topo_.message_seconds(0, peer, static_cast<std::int64_t>(bytes));
  }

  pt.step_s = std::max({pt.compute_s, pt.local_mem_s, pt.network_s});

  const ScalingPoint base = nodes == 1 ? pt : at(1);
  pt.speedup = base.step_s / pt.step_s;
  pt.efficiency = pt.speedup / static_cast<double>(nodes);
  return pt;
}

std::vector<ScalingPoint> ScalingModel::sweep(
    const std::vector<std::int64_t>& node_counts) const {
  std::vector<ScalingPoint> out;
  out.reserve(node_counts.size());
  for (auto n : node_counts) out.push_back(at(n));
  return out;
}

}  // namespace smd::net
