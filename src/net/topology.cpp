#include "src/net/topology.h"

#include <stdexcept>

namespace smd::net {

const char* tier_name(Tier t) {
  switch (t) {
    case Tier::kSelf: return "self";
    case Tier::kBoard: return "board";
    case Tier::kBackplane: return "backplane";
    case Tier::kSystem: return "system";
  }
  return "?";
}

Tier Topology::tier(std::int64_t src, std::int64_t dst) const {
  if (src == dst) return Tier::kSelf;
  if (src / cfg_.nodes_per_board == dst / cfg_.nodes_per_board) return Tier::kBoard;
  if (src / cfg_.nodes_per_backplane() == dst / cfg_.nodes_per_backplane()) {
    return Tier::kBackplane;
  }
  return Tier::kSystem;
}

Route Topology::route(std::int64_t src, std::int64_t dst) const {
  if (src < 0 || dst < 0 || src >= cfg_.max_nodes() || dst >= cfg_.max_nodes()) {
    throw std::runtime_error("node id out of range");
  }
  Route r;
  r.tier = tier(src, dst);
  // A single channel carries the minimal path; the folded Clos is
  // non-blocking so the unloaded bottleneck is one channel's bandwidth.
  r.bandwidth_gbytes = cfg_.channel_gbps / 8.0;
  switch (r.tier) {
    case Tier::kSelf:
      r.hops = 0;
      r.latency_ns = 0.0;
      // Local memory: not a network path; report node injection bandwidth.
      r.bandwidth_gbytes = cfg_.node_injection_gbytes();
      break;
    case Tier::kBoard:
      r.hops = 1;  // up to the board router and back down
      r.latency_ns = cfg_.router_latency_ns + 2 * cfg_.board_wire_ns;
      break;
    case Tier::kBackplane:
      r.hops = 3;  // board router -> backplane router -> board router
      r.latency_ns = 3 * cfg_.router_latency_ns + 2 * cfg_.board_wire_ns +
                     2 * cfg_.backplane_wire_ns;
      break;
    case Tier::kSystem:
      r.hops = 5;  // the full five-stage folded Clos
      r.latency_ns = 5 * cfg_.router_latency_ns + 2 * cfg_.board_wire_ns +
                     2 * cfg_.backplane_wire_ns + 2 * cfg_.optics_ns;
      break;
  }
  return r;
}

double Topology::message_seconds(std::int64_t src, std::int64_t dst,
                                 std::int64_t bytes) const {
  const Route r = route(src, dst);
  if (r.tier == Tier::kSelf) return 0.0;
  return r.latency_ns * 1e-9 +
         static_cast<double>(bytes) / (r.bandwidth_gbytes * 1e9);
}

double Topology::bisection_gbytes(std::int64_t p) const {
  // Each half of the machine reaches the other through the per-node
  // injection bandwidth up to the top switch tier.
  const double per_node = cfg_.node_injection_gbytes();
  return per_node * static_cast<double>(p) / 2.0;
}

}  // namespace smd::net
