// Per-node parallel-performance decomposition of a multi-node StreamMD
// step (the instrument behind `smdprof --scaling`).
//
// The closed-form scaling model answered "how long is a step on P nodes"
// with one aggregate number. This layer answers "where did every
// node-nanosecond of that step go", the way the GROMACS performance
// papers (Andersson et al. 2022; Pall et al. 2015) decompose a parallel
// run: each simulated node keeps a ledger of its step --
//
//   halo gather     receive neighbor positions for molecules within r_c
//                   of its subdomain faces (bandwidth term),
//   compute         its share of the pair interactions, overlapped with
//                   local memory traffic (the max of the two, as on a
//                   single node),
//   force scatter   push partial forces back across the same halo
//                   (bandwidth term; Merrimac's network scatter-add),
//   network latency the per-message tier latency of every halo message
//                   (a serialization term: it does not shrink with P),
//   imbalance wait  idle time at the step barrier until the slowest
//                   node finishes.
//
// All ledger entries are integer nanoseconds, so the five buckets tile
// the step makespan *exactly* per node -- the same sum-to-total-by-
// construction discipline as prof::StallTaxonomy (DESIGN.md section 9),
// with no "other" term to hide accounting bugs in.
//
// The load model is deterministic: molecules are partitioned over a
// near-cubic decomposition grid with a seeded per-node jitter
// (xoshiro256**), so repeated simulations of the same workload are
// byte-identical and the baseline gate can pin the derived metrics.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "src/net/topology.h"
#include "src/obs/trace_event.h"

namespace smd::net {

struct ScalingWorkload;  // multinode.h

/// The 3-D decomposition grid a node count factors into: nodes =
/// nx*ny*nz, chosen as close to cubic as the factorization allows (prime
/// counts degrade to slabs -- the "non-cubic" regime).
struct DecompositionGrid {
  std::int64_t nx = 1;
  std::int64_t ny = 1;
  std::int64_t nz = 1;
  std::int64_t nodes() const { return nx * ny * nz; }
};
DecompositionGrid decomposition_grid(std::int64_t nodes);

/// One node's accounting of one simulated step. The five time buckets
/// are integer nanoseconds and tile the step makespan exactly:
/// busy_ns() + imbalance_wait_ns == StepBreakdown::step_ns for every
/// ledger of a breakdown.
struct NodeLedger {
  std::int64_t node = 0;           ///< node id (grid-linearized)
  std::int64_t molecules = 0;      ///< owned molecules after load jitter
  double halo_molecules = 0.0;     ///< remote molecules gathered/reduced
  Tier tier = Tier::kSelf;         ///< highest tier its halo crosses

  std::uint64_t halo_gather_ns = 0;
  std::uint64_t compute_ns = 0;
  std::uint64_t force_scatter_ns = 0;
  std::uint64_t network_latency_ns = 0;
  std::uint64_t imbalance_wait_ns = 0;

  /// Time the node is doing something (everything but the barrier wait).
  std::uint64_t busy_ns() const {
    return halo_gather_ns + compute_ns + force_scatter_ns +
           network_latency_ns;
  }
  std::uint64_t total_ns() const { return busy_ns() + imbalance_wait_ns; }
};

/// Per-node decomposition of one step at one node count.
struct StepBreakdown {
  std::int64_t nodes = 1;
  DecompositionGrid grid;
  std::uint64_t step_ns = 0;        ///< makespan: max over ledgers of busy
  std::vector<NodeLedger> ledgers;  ///< size == nodes

  std::int64_t critical_node = 0;   ///< argmax busy (first on ties)
  double imbalance_ratio = 0.0;     ///< (max busy - mean busy) / mean busy
  double halo_fraction = 0.0;       ///< total halo molecules / owned
};

/// Simulate one step of `w` spatially decomposed over `nodes` nodes of
/// the network described by `topo`. Throws std::invalid_argument when
/// nodes < 1 or nodes > topo.config().max_nodes() (the machine being
/// modeled simply has no such configuration).
StepBreakdown simulate_step(const ScalingWorkload& w, const Topology& topo,
                            std::int64_t nodes);

/// Append the breakdown to a Chrome-trace sink: one process per node
/// count (pid == nodes), one track per simulated node, with one slice per
/// non-empty ledger bucket laid out in phase order (gather, compute,
/// scatter, latency, barrier wait). Loadable next to the single-node
/// Timeline traces in chrome://tracing / Perfetto.
void append_trace(const StepBreakdown& b, obs::TraceSink& sink);

}  // namespace smd::net
