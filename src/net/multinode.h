// Multi-node StreamMD scaling model (the paper's "initial results of the
// scaling of the algorithm to larger configurations of the system").
//
// Spatial decomposition: the periodic box is split into P sub-volumes on
// a near-cubic grid, one per node. Each step a node must
//   * gather halo positions for molecules within r_c of its boundary from
//     neighbor nodes,
//   * compute its share of the pair interactions (calibrated with the
//     single-node simulator's cycles/interaction, overlapped with its
//     local memory traffic), and
//   * scatter-add partial forces back across the same halo (Merrimac's
//     network scatter-add works across nodes at full cache bandwidth).
// The step time and its decomposition come from the per-node ledger
// model of src/net/parallel.h: every node accounts each phase in integer
// nanoseconds, the step is the barrier makespan, and the slack of the
// faster nodes is charged to an explicit load-imbalance bucket.
#pragma once

#include <cstdint>
#include <vector>

#include "src/net/parallel.h"
#include "src/net/topology.h"

namespace smd::net {

struct ScalingWorkload {
  std::int64_t n_molecules = 900;
  double cutoff = 1.0;             ///< nm
  double number_density = 33.33;   ///< nm^-3
  double flops_per_interaction = 208.0;
  double words_per_interaction = 22.0;   ///< single-node memory traffic
  double position_words = 9.0;
  double force_words = 9.0;

  // Single-node calibration.
  double node_clock_ghz = 1.0;
  double cycles_per_interaction = 4.0;   ///< measured, chip-level
  double local_mem_words_per_cycle = 4.8;

  // Per-node load model: owned molecule counts jitter around n/P by up to
  // +/- load_jitter (spatial decomposition never splits perfectly), drawn
  // deterministically from `seed` so every simulation of this workload is
  // byte-identical.
  double load_jitter = 0.04;
  std::uint64_t seed = 42;

  double interactions() const {
    const double vc = 4.0 / 3.0 * 3.14159265358979 * cutoff * cutoff * cutoff;
    return static_cast<double>(n_molecules) * number_density * vc / 2.0;
  }
};

struct ScalingPoint {
  std::int64_t nodes = 1;
  double compute_s = 0.0;    ///< critical node: compute phase (max of flops/local mem)
  double local_mem_s = 0.0;  ///< balanced per-node local-memory time
  double network_s = 0.0;    ///< critical node: halo gather + force scatter bandwidth
  double serialization_s = 0.0;  ///< critical node: per-message tier latency
  double imbalance_s = 0.0;      ///< mean barrier wait across nodes
  double step_s = 0.0;           ///< barrier makespan
  double speedup = 1.0;
  double efficiency = 1.0;
  double halo_fraction = 0.0;    ///< remote molecules / local molecules
  double imbalance_ratio = 0.0;  ///< (max busy - mean busy) / mean busy
  std::int64_t critical_node = 0;
};

class ScalingModel {
 public:
  ScalingModel(const ScalingWorkload& w, const NetworkConfig& net)
      : w_(w), topo_(net) {}

  /// Aggregate view of breakdown(nodes). Throws std::invalid_argument on
  /// nodes < 1 or nodes > config().max_nodes().
  ScalingPoint at(std::int64_t nodes) const;
  std::vector<ScalingPoint> sweep(const std::vector<std::int64_t>& node_counts) const;

  /// The full per-node ledger view (src/net/parallel.h).
  StepBreakdown breakdown(std::int64_t nodes) const;

  const ScalingWorkload& workload() const { return w_; }
  const Topology& topology() const { return topo_; }

 private:
  ScalingWorkload w_;
  Topology topo_;
};

}  // namespace smd::net
