// Multi-node StreamMD scaling model (the paper's "initial results of the
// scaling of the algorithm to larger configurations of the system").
//
// Spatial decomposition: the periodic box is split into P equal
// sub-volumes, one per node. Each step a node must
//   * compute its share of the pair interactions (calibrated with the
//     single-node simulator's cycles/interaction),
//   * gather halo positions for molecules within r_c of its boundary from
//     neighbor nodes, and
//   * scatter-add partial forces back across the same halo (Merrimac's
//     network scatter-add works across nodes at full cache bandwidth).
// Time per step = max(compute, local memory, network) + per-tier latency.
#pragma once

#include <cstdint>
#include <vector>

#include "src/net/topology.h"

namespace smd::net {

struct ScalingWorkload {
  std::int64_t n_molecules = 900;
  double cutoff = 1.0;             ///< nm
  double number_density = 33.33;   ///< nm^-3
  double flops_per_interaction = 208.0;
  double words_per_interaction = 22.0;   ///< single-node memory traffic
  double position_words = 9.0;
  double force_words = 9.0;

  // Single-node calibration.
  double node_clock_ghz = 1.0;
  double cycles_per_interaction = 4.0;   ///< measured, chip-level
  double local_mem_words_per_cycle = 4.8;

  double interactions() const {
    const double vc = 4.0 / 3.0 * 3.14159265358979 * cutoff * cutoff * cutoff;
    return static_cast<double>(n_molecules) * number_density * vc / 2.0;
  }
};

struct ScalingPoint {
  std::int64_t nodes = 1;
  double compute_s = 0.0;
  double local_mem_s = 0.0;
  double network_s = 0.0;
  double step_s = 0.0;
  double speedup = 1.0;
  double efficiency = 1.0;
  double halo_fraction = 0.0;  ///< remote molecules / local molecules
};

class ScalingModel {
 public:
  ScalingModel(const ScalingWorkload& w, const NetworkConfig& net)
      : w_(w), topo_(net) {}

  ScalingPoint at(std::int64_t nodes) const;
  std::vector<ScalingPoint> sweep(const std::vector<std::int64_t>& node_counts) const;

  const ScalingWorkload& workload() const { return w_; }

 private:
  ScalingWorkload w_;
  Topology topo_;
};

}  // namespace smd::net
