// Design-space definition for the autotuner.
//
// The paper's best StreamMD mapping is a *search outcome*: `variable`
// beats `expanded` by 84% and `fixed` by 46% (Figure 9), the fixed-list
// length L = 8 is a tuned constant (Section 3.3), and the blocking scheme
// has an interior run-time minimum at a few molecules per cluster
// (Figure 12). A Candidate names one point of that space -- implementation
// variant plus algorithm knobs plus machine overrides relative to the
// Table 1 Merrimac node -- and a ConfigSpace enumerates axes into the
// cartesian candidate list the tune::Runner evaluates.
//
// Every candidate has a stable 64-bit hash over its canonical key string;
// the persistent result cache (tune/cache.h) is keyed by that hash mixed
// with a model-version salt, so cached metrics survive exactly as long as
// the cost model that produced them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/streammd.h"
#include "src/obs/json.h"
#include "src/sim/config.h"

namespace smd::tune {

/// One point in the design space. Defaults reproduce the paper's tuned
/// configuration: `variable` on the Table 1 machine with L = 8.
struct Candidate {
  core::Variant variant = core::Variant::kVariable;
  int fixed_list_length = core::kFixedListLength;  ///< L
  /// Blocking-scheme granularity in cells per box edge; 0 = unblocked
  /// (the candidate runs the plain variant through the full simulator).
  int blocking_cells = 0;
  sim::SdrPolicy sdr_policy = sim::SdrPolicy::kTransferScoped;
  std::int64_t strip_rounds = 0;  ///< strip length in kernel rounds; 0 = auto
  int unroll = 2;
  bool software_pipeline = true;

  // Machine overrides (Table 1 values by default).
  int n_clusters = 16;
  std::int64_t srf_kb = 1024;  ///< SRF size in KB (1 KB = 128 words)
  double dram_gbps = 38.4;     ///< peak DRAM bandwidth
  double cache_gbps = 64.0;    ///< stream cache bandwidth (8 GB/s per bank)

  /// Materialize the machine configuration this candidate runs on.
  sim::MachineConfig machine() const;

  /// Canonical "axis=value|axis=value" form; the hash input, and unique
  /// per distinct candidate.
  std::string key() const;
  /// Short human-readable label for tables ("variable L=8 c16").
  std::string label() const;

  obs::Json to_json() const;
  static Candidate from_json(const obs::Json& j);

  bool operator==(const Candidate& o) const { return key() == o.key(); }
};

/// FNV-1a over key() and the salt: stable across runs and platforms.
std::uint64_t config_hash(const Candidate& c, const std::string& salt = "");

/// Axis-value parsing/printing shared by the sweep parser, the candidate
/// JSON round-trip and the svc wire format. Throw std::invalid_argument
/// on unknown names.
core::Variant parse_variant(const std::string& s);
sim::SdrPolicy parse_sdr(const std::string& s);
const char* sdr_name(sim::SdrPolicy p);

/// Axis names ConfigSpace::set accepts, in canonical order:
///   variant, L, blocking, sdr, strip, unroll, swp, clusters, srf_kb,
///   dram_gbps, cache_gbps
std::vector<std::string> axis_names();

/// A set of axes, each with an explicit value list; enumerate() takes the
/// cartesian product (axes absent from the space keep the base candidate's
/// value).
class ConfigSpace {
 public:
  /// Set one axis. Values are strings parsed per-axis; throws
  /// std::invalid_argument on an unknown axis or an unparsable value.
  ConfigSpace& set(const std::string& axis, std::vector<std::string> values);

  /// Parse a sweep spec: axes separated by ';', values by ','. Numeric
  /// axes also accept lo:hi:step ranges (inclusive ends):
  ///   "variant=fixed,variable;L=4:16:4;clusters=8,16,32"
  static ConfigSpace parse(const std::string& spec);

  /// Number of candidates the cartesian product yields (1 when empty).
  std::int64_t size() const;

  std::vector<Candidate> enumerate(const Candidate& base = {}) const;

  const std::vector<std::pair<std::string, std::vector<std::string>>>& axes()
      const {
    return axes_;
  }

 private:
  std::vector<std::pair<std::string, std::vector<std::string>>> axes_;
};

}  // namespace smd::tune
