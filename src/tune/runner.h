// Parallel design-space runner.
//
// Evaluates a candidate list through the existing cycle-accurate path
// (core::run_variant -> sim::Machine) on a std::thread worker pool. Each
// worker owns its simulator and an obs registry shard (ScopedRegistryRedirect),
// so per-run counters and timelines never interleave across workers; shards
// merge into the process registry when the worker retires. Results are
// written by candidate index, so the output -- and, with a cache, the file
// on disk -- is byte-identical for any --jobs value.
//
// Before paying for simulation, an analytical pre-pass estimates every
// candidate via core/blocking (layout traffic + real kernel schedule, or
// the blocked-implementation profile) and drops candidates another
// candidate dominates on both time and traffic by more than the
// configured slack factor.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/blocking.h"
#include "src/core/run.h"
#include "src/obs/json.h"
#include "src/tune/cache.h"
#include "src/tune/space.h"

namespace smd::tune {

/// Everything measured (or, for pruned candidates, estimated) for one
/// candidate. The persistent cache stores exactly this struct.
struct Metrics {
  double time_ms = 0.0;
  std::uint64_t cycles = 0;
  std::int64_t mem_words = 0;         ///< memory traffic, words
  std::int64_t srf_peak_words = 0;    ///< SRF pressure
  std::uint64_t kernel_busy_cycles = 0;
  std::uint64_t mem_busy_cycles = 0;
  double solution_gflops = 0.0;
  double max_force_rel_err = 0.0;
  /// "sim" (full cycle-accurate run), "blocked_profile" (scheduled-kernel
  /// estimate of the blocking scheme), or "estimate" (pruned candidate).
  std::string source;

  obs::Json to_json() const;
  static Metrics from_json(const obs::Json& j);
};

struct EvalResult {
  Candidate cand;
  std::uint64_t hash = 0;
  Metrics metrics;
  bool cached = false;  ///< served from the persistent cache
  bool pruned = false;  ///< analytic pre-pass skipped the simulation
  std::string error;    ///< non-empty when evaluation failed

  bool ok() const { return error.empty(); }
};

struct RunnerOptions {
  int jobs = 1;
  /// Path of the persistent result cache; "" disables it.
  std::string cache_path;
  /// Salt mixed into every config hash (see tune::kModelVersion).
  std::string salt = kModelVersion;
  /// Dominated-candidate pruning slack (> 1 enables; 0/1 disables). A
  /// candidate is pruned when another candidate's analytic estimate is at
  /// least `slack` times better on *both* run time and memory traffic.
  double prune_slack = 0.0;
  bool verbose = false;
  /// Simulation core for every candidate run. The engines produce
  /// bit-identical metrics (DESIGN.md section 10), so this is not a sweep
  /// axis and is deliberately excluded from config hashes: cached results
  /// stay valid across engines. kLockstep turns every evaluation into a
  /// stepped-vs-event cross-check.
  sim::SimEngine engine = sim::SimEngine::kEvent;
};

/// Evaluate one candidate synchronously (what pool workers call):
/// validates the machine config, then either a full simulated variant run
/// (blocking_cells == 0) or the blocked-implementation profile.
/// Throws on invalid configurations.
Metrics evaluate(const core::Problem& problem, const Candidate& cand,
                 sim::SimEngine engine = sim::SimEngine::kEvent);

/// The cheap analytic estimate of one candidate (the pruning pre-pass).
core::AnalyticEstimate estimate(const core::Problem& problem,
                                const Candidate& cand);

class Runner {
 public:
  Runner(const core::Problem& problem, RunnerOptions opts);

  /// Evaluate all candidates; results are index-aligned with the input.
  /// Registry counters: tune.evaluated, tune.cache.hits, tune.cache.misses,
  /// tune.pruned, tune.errors.
  std::vector<EvalResult> run(const std::vector<Candidate>& cands);

  const RunnerOptions& options() const { return opts_; }

 private:
  const core::Problem& problem_;
  RunnerOptions opts_;
};

}  // namespace smd::tune
