#include "src/tune/cache.h"

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "src/obs/registry.h"
#include "src/tune/runner.h"

namespace smd::tune {

std::string hash_hex(std::uint64_t h) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

namespace {

std::uint64_t parse_hash_hex(const std::string& s) {
  if (s.size() != 16) throw std::runtime_error("bad cache key '" + s + "'");
  return std::stoull(s, nullptr, 16);
}

}  // namespace

ResultCache::ResultCache(std::string path, std::string salt)
    : path_(std::move(path)), salt_(std::move(salt)) {}

std::size_t ResultCache::load() {
  entries_.clear();
  dirty_ = false;
  if (!enabled()) return 0;
  std::ifstream in(path_);
  if (!in.good()) return 0;  // missing file: empty cache
  obs::Json doc;
  try {
    doc = obs::load_file(path_);
  } catch (const std::exception&) {
    // Unreadable or torn file (e.g. a crash mid-write before the atomic
    // rename discipline existed): an empty cache, never a poisoned warm
    // start. The counter makes the silent skip observable.
    obs::CounterRegistry::global().add("tune.cache.load_corrupt");
    return 0;
  }
  const obs::Json* version = doc.find("schema_version");
  const obs::Json* salt = doc.find("salt");
  const obs::Json* entries = doc.find("entries");
  if (version == nullptr || !version->is_number() || version->as_int() != 1 ||
      salt == nullptr || !salt->is_string() || salt->as_string() != salt_ ||
      entries == nullptr || !entries->is_object()) {
    return 0;  // model version changed: every entry is stale
  }
  for (const auto& [key, value] : entries->items()) {
    // A malformed entry (hand-edited, or produced by a newer layout) is
    // skipped -- it will simply re-simulate -- instead of discarding the
    // whole cache or throwing out of a warm start.
    try {
      Entry e;
      e.config = value.at("config");
      e.metrics = value.at("metrics");
      (void)Metrics::from_json(e.metrics);  // must parse back as metrics
      entries_.emplace(parse_hash_hex(key), std::move(e));
    } catch (const std::exception&) {
      obs::CounterRegistry::global().add("tune.cache.load_skipped");
    }
  }
  return entries_.size();
}

bool ResultCache::lookup(std::uint64_t hash, Metrics* out) const {
  const auto it = entries_.find(hash);
  if (it == entries_.end()) return false;
  *out = Metrics::from_json(it->second.metrics);
  return true;
}

void ResultCache::insert(std::uint64_t hash, const Candidate& cand,
                         const Metrics& m) {
  if (!enabled()) return;
  Entry e;
  e.config = cand.to_json();
  e.metrics = m.to_json();
  entries_[hash] = std::move(e);
  dirty_ = true;
}

void ResultCache::save() {
  if (!enabled() || !dirty_) return;
  obs::Json entries = obs::Json::object();
  for (const auto& [hash, entry] : entries_) {
    obs::Json e = obs::Json::object();
    e.set("config", entry.config);
    e.set("metrics", entry.metrics);
    entries.set(hash_hex(hash), std::move(e));
  }
  obs::Json doc = obs::Json::object();
  doc.set("schema_version", 1);
  doc.set("salt", salt_);
  doc.set("entries", std::move(entries));
  // Atomic temp-file + rename: a crash mid-save leaves the previous cache
  // intact instead of a torn JSON document poisoning every warm start.
  obs::write_file_atomic(doc, path_);
  dirty_ = false;
}

}  // namespace smd::tune
