#include "src/tune/runner.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <stdexcept>
#include <thread>

#include "src/core/blocking.h"
#include "src/obs/registry.h"

namespace smd::tune {
namespace {

/// Aggregate DRAM bandwidth in words per cycle for a machine config.
double dram_words_per_cycle(const sim::MachineConfig& cfg) {
  return cfg.mem.dram.n_channels * cfg.mem.dram.channel_words_per_cycle;
}

Metrics metrics_from_estimate(const core::AnalyticEstimate& e,
                              const sim::MachineConfig& cfg,
                              std::string source) {
  Metrics m;
  m.cycles = static_cast<std::uint64_t>(e.time_cycles);
  m.time_ms = e.time_cycles / (cfg.clock_ghz * 1e9) * 1e3;
  m.mem_words = static_cast<std::int64_t>(e.mem_words);
  m.kernel_busy_cycles = static_cast<std::uint64_t>(e.kernel_cycles);
  m.mem_busy_cycles = static_cast<std::uint64_t>(e.memory_cycles);
  m.source = std::move(source);
  return m;
}

}  // namespace

obs::Json Metrics::to_json() const {
  obs::Json j = obs::Json::object();
  j.set("time_ms", time_ms);
  j.set("cycles", static_cast<std::int64_t>(cycles));
  j.set("mem_words", mem_words);
  j.set("srf_peak_words", srf_peak_words);
  j.set("kernel_busy_cycles", static_cast<std::int64_t>(kernel_busy_cycles));
  j.set("mem_busy_cycles", static_cast<std::int64_t>(mem_busy_cycles));
  j.set("solution_gflops", solution_gflops);
  j.set("max_force_rel_err", max_force_rel_err);
  j.set("source", source);
  return j;
}

Metrics Metrics::from_json(const obs::Json& j) {
  Metrics m;
  m.time_ms = j.at("time_ms").as_double();
  m.cycles = static_cast<std::uint64_t>(j.at("cycles").as_int());
  m.mem_words = j.at("mem_words").as_int();
  m.srf_peak_words = j.at("srf_peak_words").as_int();
  m.kernel_busy_cycles =
      static_cast<std::uint64_t>(j.at("kernel_busy_cycles").as_int());
  m.mem_busy_cycles =
      static_cast<std::uint64_t>(j.at("mem_busy_cycles").as_int());
  m.solution_gflops = j.at("solution_gflops").as_double();
  m.max_force_rel_err = j.at("max_force_rel_err").as_double();
  m.source = j.at("source").as_string();
  return m;
}

Metrics evaluate(const core::Problem& problem, const Candidate& cand,
                 sim::SimEngine engine) {
  sim::MachineConfig cfg = cand.machine();
  cfg.engine = engine;
  {
    analysis::Diagnostics diags = cfg.validate();
    if (diags.errors() > 0) throw analysis::CheckFailure(std::move(diags));
  }

  if (cand.blocking_cells > 0) {
    // The blocking scheme: scheduled-kernel + traffic-census estimate of
    // the blocked implementation (the Figure 11/12 path). No cycle-driven
    // simulation exists for it yet, so this is its sim-path stand-in.
    const core::BlockedImplProfile p = core::profile_blocked_implementation(
        problem.system, problem.half_list, problem.setup.cutoff,
        cand.blocking_cells, cfg.sched, cfg.n_clusters,
        dram_words_per_cycle(cfg));
    core::AnalyticEstimate e;
    e.kernel_cycles = p.est_kernel_cycles;
    e.memory_cycles = p.est_memory_cycles;
    e.time_cycles = std::max(p.est_kernel_cycles, p.est_memory_cycles);
    e.mem_words = p.words_total;
    Metrics m = metrics_from_estimate(e, cfg, "blocked_profile");
    const double solution_flops =
        problem.flops_per_interaction *
        static_cast<double>(problem.half_list.n_pairs());
    m.solution_gflops =
        solution_flops / (e.time_cycles / (cfg.clock_ghz * 1e9)) / 1e9;
    return m;
  }

  // Full cycle-accurate path. L and strip length live in the problem
  // setup; the expensive members (system, neighbor list, reference
  // forces) don't depend on them, so a shallow copy re-points the knobs.
  core::VariantResult res;
  if (cand.fixed_list_length == problem.setup.fixed_list_length &&
      cand.strip_rounds == problem.setup.strip_rounds) {
    res = core::run_variant(problem, cand.variant, cfg);
  } else {
    core::Problem local = problem;
    local.setup.fixed_list_length = cand.fixed_list_length;
    local.setup.strip_rounds = cand.strip_rounds;
    res = core::run_variant(local, cand.variant, cfg);
  }

  Metrics m;
  m.time_ms = res.time_ms;
  m.cycles = res.run.cycles;
  m.mem_words = res.mem_refs;
  m.srf_peak_words = res.run.srf_peak_words;
  m.kernel_busy_cycles = res.run.kernel_busy_cycles;
  m.mem_busy_cycles = res.run.mem_busy_cycles;
  m.solution_gflops = res.solution_gflops;
  m.max_force_rel_err = res.max_force_rel_err;
  m.source = "sim";
  return m;
}

core::AnalyticEstimate estimate(const core::Problem& problem,
                                const Candidate& cand) {
  const sim::MachineConfig cfg = cand.machine();
  if (cand.blocking_cells > 0) {
    const core::BlockedImplProfile p = core::profile_blocked_implementation(
        problem.system, problem.half_list, problem.setup.cutoff,
        cand.blocking_cells, cfg.sched, cfg.n_clusters,
        dram_words_per_cycle(cfg));
    core::AnalyticEstimate e;
    e.kernel_cycles = p.est_kernel_cycles;
    e.memory_cycles = p.est_memory_cycles;
    e.time_cycles = std::max(p.est_kernel_cycles, p.est_memory_cycles);
    e.mem_words = p.words_total;
    return e;
  }
  core::LayoutOptions lopts;
  lopts.n_clusters = cfg.n_clusters;
  lopts.fixed_list_length = cand.fixed_list_length;
  lopts.strip_rounds = cand.strip_rounds;
  lopts.srf_words = cfg.srf_words;
  return core::estimate_variant_run(problem.system, problem.half_list,
                                    cand.variant, lopts, cfg.sched,
                                    dram_words_per_cycle(cfg),
                                    cfg.kernel_startup_cycles);
}

Runner::Runner(const core::Problem& problem, RunnerOptions opts)
    : problem_(problem), opts_(std::move(opts)) {}

std::vector<EvalResult> Runner::run(const std::vector<Candidate>& cands) {
  auto& reg = obs::CounterRegistry::global();
  reg.add("tune.sweeps");

  std::vector<EvalResult> out(cands.size());
  ResultCache cache(opts_.cache_path, opts_.salt);
  cache.load();

  // ---- Cache pre-pass (single-threaded). ----------------------------------
  std::vector<std::size_t> todo;
  for (std::size_t i = 0; i < cands.size(); ++i) {
    out[i].cand = cands[i];
    out[i].hash = config_hash(cands[i], opts_.salt);
    Metrics m;
    if (cache.enabled() && cache.lookup(out[i].hash, &m)) {
      out[i].metrics = std::move(m);
      out[i].cached = true;
      reg.add("tune.cache.hits");
      continue;
    }
    if (cache.enabled()) reg.add("tune.cache.misses");
    todo.push_back(i);
  }

  // ---- Analytic pruning pre-pass. -----------------------------------------
  if (opts_.prune_slack > 1.0 && todo.size() > 1) {
    obs::ScopedTimer timer(reg, "tune.prune_prepass");
    std::vector<core::AnalyticEstimate> est(todo.size());
    std::vector<bool> estimable(todo.size(), false);
    for (std::size_t k = 0; k < todo.size(); ++k) {
      try {
        est[k] = estimate(problem_, cands[todo[k]]);
        estimable[k] = true;
      } catch (const std::exception&) {
        // Leave it to evaluate(), which reports the structured error.
        est[k].time_cycles = 0.0;  // never dominates, never dominated
        est[k].mem_words = 0.0;
      }
    }
    const std::vector<bool> keep = core::prune_dominated(est, opts_.prune_slack);
    std::vector<std::size_t> kept;
    for (std::size_t k = 0; k < todo.size(); ++k) {
      const std::size_t idx = todo[k];
      if (keep[k] || !estimable[k]) {
        kept.push_back(idx);
        continue;
      }
      out[idx].metrics =
          metrics_from_estimate(est[k], cands[idx].machine(), "estimate");
      out[idx].pruned = true;
      reg.add("tune.pruned");
      if (opts_.verbose) {
        std::printf("tune: pruned %s (analytically dominated)\n",
                    cands[idx].label().c_str());
      }
    }
    todo = std::move(kept);
  }

  // ---- Parallel evaluation. -----------------------------------------------
  std::atomic<std::size_t> next{0};
  auto worker = [&]() {
    // Each worker owns a registry shard: per-run counters and timers from
    // the simulator accumulate privately and merge (commutatively) on
    // retirement, so totals match the single-threaded run exactly.
    obs::CounterRegistry shard;
    {
      obs::ScopedRegistryRedirect redirect(shard);
      while (true) {
        const std::size_t k = next.fetch_add(1);
        if (k >= todo.size()) break;
        EvalResult& r = out[todo[k]];
        try {
          r.metrics = evaluate(problem_, r.cand, opts_.engine);
          obs::CounterRegistry::global().add("tune.evaluated");
        } catch (const std::exception& e) {
          r.error = e.what();
          obs::CounterRegistry::global().add("tune.errors");
        }
        if (opts_.verbose) {
          std::printf("tune: %-40s %s\n", r.cand.label().c_str(),
                      r.ok() ? "done" : ("error: " + r.error).c_str());
        }
      }
    }
    obs::CounterRegistry::global().merge(shard);
  };

  const int jobs = std::max(
      1, std::min<int>(opts_.jobs, static_cast<int>(todo.size())));
  if (jobs <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(jobs));
    for (int t = 0; t < jobs; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }

  // ---- Fill the cache with the new simulations. ---------------------------
  if (cache.enabled()) {
    for (const std::size_t idx : todo) {
      if (out[idx].ok()) cache.insert(out[idx].hash, out[idx].cand,
                                      out[idx].metrics);
    }
    cache.save();
  }
  return out;
}

}  // namespace smd::tune
