#include "src/tune/space.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace smd::tune {
namespace {

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

core::Variant parse_variant(const std::string& s) {
  for (core::Variant v :
       {core::Variant::kExpanded, core::Variant::kFixed,
        core::Variant::kVariable, core::Variant::kDuplicated}) {
    if (s == core::variant_name(v)) return v;
  }
  throw std::invalid_argument("unknown variant '" + s + "'");
}

sim::SdrPolicy parse_sdr(const std::string& s) {
  if (s == "conservative") return sim::SdrPolicy::kConservative;
  if (s == "transfer") return sim::SdrPolicy::kTransferScoped;
  throw std::invalid_argument("unknown sdr policy '" + s +
                              "' (conservative|transfer)");
}

const char* sdr_name(sim::SdrPolicy p) {
  return p == sim::SdrPolicy::kConservative ? "conservative" : "transfer";
}

namespace {

std::int64_t parse_int(const std::string& axis, const std::string& s) {
  try {
    std::size_t pos = 0;
    const std::int64_t v = std::stoll(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("axis '" + axis + "': bad integer '" + s + "'");
  }
}

double parse_double(const std::string& axis, const std::string& s) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("axis '" + axis + "': bad number '" + s + "'");
  }
}

bool parse_bool(const std::string& axis, const std::string& s) {
  if (s == "1" || s == "true" || s == "on") return true;
  if (s == "0" || s == "false" || s == "off") return false;
  throw std::invalid_argument("axis '" + axis + "': bad flag '" + s + "'");
}

/// Apply one axis value to a candidate; the single point where axis names
/// map to Candidate fields (set/enumerate and the CLI both go through it).
void apply(Candidate& c, const std::string& axis, const std::string& value) {
  if (axis == "variant") {
    c.variant = parse_variant(value);
  } else if (axis == "L") {
    c.fixed_list_length = static_cast<int>(parse_int(axis, value));
  } else if (axis == "blocking") {
    c.blocking_cells = static_cast<int>(parse_int(axis, value));
  } else if (axis == "sdr") {
    c.sdr_policy = parse_sdr(value);
  } else if (axis == "strip") {
    c.strip_rounds = parse_int(axis, value);
  } else if (axis == "unroll") {
    c.unroll = static_cast<int>(parse_int(axis, value));
  } else if (axis == "swp") {
    c.software_pipeline = parse_bool(axis, value);
  } else if (axis == "clusters") {
    c.n_clusters = static_cast<int>(parse_int(axis, value));
  } else if (axis == "srf_kb") {
    c.srf_kb = parse_int(axis, value);
  } else if (axis == "dram_gbps") {
    c.dram_gbps = parse_double(axis, value);
  } else if (axis == "cache_gbps") {
    c.cache_gbps = parse_double(axis, value);
  } else {
    throw std::invalid_argument("unknown axis '" + axis + "'");
  }
}

bool numeric_axis(const std::string& axis) {
  return axis != "variant" && axis != "sdr";
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t end = s.find(sep, start);
    if (end == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

/// Expand "lo:hi:step" into inclusive values; pass plain values through.
std::vector<std::string> expand_range(const std::string& axis,
                                      const std::string& token) {
  const std::vector<std::string> parts = split(token, ':');
  if (parts.size() == 1) return {token};
  if (parts.size() != 3 || !numeric_axis(axis)) {
    throw std::invalid_argument("axis '" + axis + "': bad range '" + token +
                                "' (want lo:hi:step)");
  }
  const double lo = parse_double(axis, parts[0]);
  const double hi = parse_double(axis, parts[1]);
  const double step = parse_double(axis, parts[2]);
  if (step <= 0.0 || hi < lo) {
    throw std::invalid_argument("axis '" + axis + "': empty range '" + token +
                                "'");
  }
  std::vector<std::string> out;
  for (double v = lo; v <= hi + 1e-9 * step; v += step) {
    const bool integral = axis != "dram_gbps" && axis != "cache_gbps";
    out.push_back(integral
                      ? std::to_string(static_cast<std::int64_t>(
                            std::llround(v)))
                      : fmt_double(v));
  }
  return out;
}

}  // namespace

sim::MachineConfig Candidate::machine() const {
  sim::MachineConfig cfg = sim::MachineConfig::merrimac();
  cfg.n_clusters = n_clusters;
  cfg.srf_words = srf_kb * 128;  // 1 KB = 128 64-bit words
  cfg.sdr_policy = sdr_policy;
  cfg.sched.unroll = unroll;
  cfg.sched.software_pipeline = software_pipeline;
  // Bandwidth overrides keep the channel/bank counts of Table 1 and scale
  // per-channel rates, so latency modeling stays comparable across points.
  const double dram_words_per_cycle = dram_gbps / 8.0 / cfg.clock_ghz;
  cfg.mem.dram.channel_words_per_cycle =
      dram_words_per_cycle / cfg.mem.dram.n_channels;
  // One cache bank moves one word/cycle; resize the bank count to match
  // the requested aggregate bandwidth (8 GB/s per bank at 1 GHz).
  cfg.mem.cache.n_banks = std::max(
      1, static_cast<int>(std::llround(cache_gbps / (8.0 * cfg.clock_ghz))));
  return cfg;
}

std::string Candidate::key() const {
  std::string k;
  k += "variant=";
  k += core::variant_name(variant);
  k += "|L=" + std::to_string(fixed_list_length);
  k += "|blocking=" + std::to_string(blocking_cells);
  k += "|sdr=";
  k += sdr_name(sdr_policy);
  k += "|strip=" + std::to_string(strip_rounds);
  k += "|unroll=" + std::to_string(unroll);
  k += "|swp=" + std::string(software_pipeline ? "1" : "0");
  k += "|clusters=" + std::to_string(n_clusters);
  k += "|srf_kb=" + std::to_string(srf_kb);
  k += "|dram_gbps=" + fmt_double(dram_gbps);
  k += "|cache_gbps=" + fmt_double(cache_gbps);
  return k;
}

std::string Candidate::label() const {
  std::string l = core::variant_name(variant);
  if (blocking_cells > 0) l += " blk=" + std::to_string(blocking_cells);
  if (variant == core::Variant::kFixed ||
      variant == core::Variant::kDuplicated) {
    l += " L=" + std::to_string(fixed_list_length);
  }
  Candidate base;
  if (sdr_policy != base.sdr_policy) l += " sdr=" + std::string(sdr_name(sdr_policy));
  if (strip_rounds != base.strip_rounds) l += " strip=" + std::to_string(strip_rounds);
  if (unroll != base.unroll) l += " u=" + std::to_string(unroll);
  if (software_pipeline != base.software_pipeline) l += " swp=0";
  if (n_clusters != base.n_clusters) l += " c=" + std::to_string(n_clusters);
  if (srf_kb != base.srf_kb) l += " srf=" + std::to_string(srf_kb) + "K";
  if (dram_gbps != base.dram_gbps) l += " dram=" + fmt_double(dram_gbps);
  if (cache_gbps != base.cache_gbps) l += " cache=" + fmt_double(cache_gbps);
  return l;
}

obs::Json Candidate::to_json() const {
  obs::Json j = obs::Json::object();
  j.set("variant", core::variant_name(variant));
  j.set("L", fixed_list_length);
  j.set("blocking", blocking_cells);
  j.set("sdr", sdr_name(sdr_policy));
  j.set("strip", strip_rounds);
  j.set("unroll", unroll);
  j.set("swp", software_pipeline);
  j.set("clusters", n_clusters);
  j.set("srf_kb", srf_kb);
  j.set("dram_gbps", dram_gbps);
  j.set("cache_gbps", cache_gbps);
  return j;
}

Candidate Candidate::from_json(const obs::Json& j) {
  Candidate c;
  c.variant = parse_variant(j.at("variant").as_string());
  c.fixed_list_length = static_cast<int>(j.at("L").as_int());
  c.blocking_cells = static_cast<int>(j.at("blocking").as_int());
  c.sdr_policy = parse_sdr(j.at("sdr").as_string());
  c.strip_rounds = j.at("strip").as_int();
  c.unroll = static_cast<int>(j.at("unroll").as_int());
  c.software_pipeline = j.at("swp").as_bool();
  c.n_clusters = static_cast<int>(j.at("clusters").as_int());
  c.srf_kb = j.at("srf_kb").as_int();
  c.dram_gbps = j.at("dram_gbps").as_double();
  c.cache_gbps = j.at("cache_gbps").as_double();
  return c;
}

std::uint64_t config_hash(const Candidate& c, const std::string& salt) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  const auto mix = [&h](const std::string& s) {
    for (const char ch : s) {
      h ^= static_cast<unsigned char>(ch);
      h *= 1099511628211ULL;  // FNV prime
    }
  };
  mix(c.key());
  mix("#");
  mix(salt);
  return h;
}

std::vector<std::string> axis_names() {
  return {"variant", "L",   "blocking", "sdr",    "strip",     "unroll",
          "swp",     "clusters", "srf_kb", "dram_gbps", "cache_gbps"};
}

ConfigSpace& ConfigSpace::set(const std::string& axis,
                              std::vector<std::string> values) {
  if (values.empty()) {
    throw std::invalid_argument("axis '" + axis + "': empty value list");
  }
  {
    // Validate axis name and every value eagerly so errors surface at
    // parse time, not mid-sweep.
    Candidate probe;
    for (const auto& v : values) apply(probe, axis, v);
  }
  for (auto& [name, vals] : axes_) {
    if (name == axis) {
      vals = std::move(values);
      return *this;
    }
  }
  axes_.emplace_back(axis, std::move(values));
  return *this;
}

ConfigSpace ConfigSpace::parse(const std::string& spec) {
  ConfigSpace space;
  for (const std::string& clause : split(spec, ';')) {
    if (clause.empty()) continue;
    const std::size_t eq = clause.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("bad sweep clause '" + clause +
                                  "' (want axis=v1,v2,...)");
    }
    const std::string axis = clause.substr(0, eq);
    std::vector<std::string> values;
    for (const std::string& token : split(clause.substr(eq + 1), ',')) {
      if (token.empty()) {
        throw std::invalid_argument("axis '" + axis + "': empty value");
      }
      for (auto& v : expand_range(axis, token)) values.push_back(std::move(v));
    }
    space.set(axis, std::move(values));
  }
  return space;
}

std::int64_t ConfigSpace::size() const {
  std::int64_t n = 1;
  for (const auto& [axis, values] : axes_) {
    n *= static_cast<std::int64_t>(values.size());
  }
  return n;
}

std::vector<Candidate> ConfigSpace::enumerate(const Candidate& base) const {
  std::vector<Candidate> out;
  out.reserve(static_cast<std::size_t>(size()));
  std::vector<std::size_t> idx(axes_.size(), 0);
  while (true) {
    Candidate c = base;
    for (std::size_t a = 0; a < axes_.size(); ++a) {
      apply(c, axes_[a].first, axes_[a].second[idx[a]]);
    }
    out.push_back(std::move(c));
    // Odometer increment, last axis fastest.
    std::size_t a = axes_.size();
    while (a > 0) {
      --a;
      if (++idx[a] < axes_[a].second.size()) break;
      idx[a] = 0;
      if (a == 0) return out;
    }
    if (axes_.empty()) return out;
  }
}

}  // namespace smd::tune
