// Persistent result cache: JSON-on-disk memoization of candidate metrics.
//
// Sweeps are incremental: a re-run of any sweep whose candidates were
// already evaluated performs zero simulations (the golden test asserts
// bit-identical metrics and a 100% hit rate). Entries are keyed by the
// candidate's 64-bit config hash, which mixes in a model-version salt --
// bump tune::kModelVersion whenever the simulator's cost model changes and
// every stale entry silently misses.
//
// File format (schema_version 1, entries sorted by hash so the file is
// byte-stable and diffable):
//   {"schema_version": 1, "salt": "...",
//    "entries": {"<16-hex-digit hash>": {"config": {...}, "metrics": {...}},
//                ...}}
//
// The cache itself is not thread-safe: the Runner performs lookups before
// spawning workers and inserts after joining them, and the svc::Server
// serializes all access behind its own mutex. save() is crash-safe
// (atomic temp-file + rename) and load() tolerates torn or hand-mangled
// files, so concurrent *processes* sharing one cache path get
// last-writer-wins rather than corruption.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "src/obs/json.h"
#include "src/tune/space.h"

namespace smd::tune {

struct Metrics;  // runner.h

/// Version salt mixed into every config hash. Bump when simulator timing
/// or layout changes invalidate previously cached metrics.
inline constexpr const char* kModelVersion = "smd-tune-v1";

class ResultCache {
 public:
  /// An empty path disables the cache (all operations no-op).
  explicit ResultCache(std::string path, std::string salt = kModelVersion);

  bool enabled() const { return !path_.empty(); }
  const std::string& path() const { return path_; }
  const std::string& salt() const { return salt_; }

  /// Load path() if it exists. A missing file is an empty cache; a file
  /// with a different salt or schema version is discarded wholesale; a
  /// corrupt/truncated file or a malformed entry is skipped with a
  /// counter (tune.cache.load_corrupt / tune.cache.load_skipped), never
  /// thrown. Returns the number of entries loaded.
  std::size_t load();

  /// Copy the cached metrics for `hash` into *out; false on miss.
  bool lookup(std::uint64_t hash, Metrics* out) const;

  void insert(std::uint64_t hash, const Candidate& cand, const Metrics& m);

  /// Write the cache (pretty JSON, sorted by hash) via an atomic
  /// temp-file + rename, so a crash mid-save never leaves a torn file.
  /// No-op when disabled or when nothing was inserted since load().
  /// Throws on I/O failure.
  void save();

  std::size_t size() const { return entries_.size(); }
  bool dirty() const { return dirty_; }

 private:
  struct Entry {
    obs::Json config;
    obs::Json metrics;
  };

  std::string path_;
  std::string salt_;
  std::map<std::uint64_t, Entry> entries_;
  bool dirty_ = false;
};

/// "0123456789abcdef" rendering used for cache keys.
std::string hash_hex(std::uint64_t h);

}  // namespace smd::tune
