#include "src/tune/pareto.h"

#include <algorithm>

#include "src/obs/registry.h"
#include "src/prof/roofline.h"
#include "src/util/table.h"

namespace smd::tune {
namespace {

/// a dominates b: no worse on all three objectives, better on one.
bool dominates(const Metrics& a, const Metrics& b) {
  const bool no_worse = a.time_ms <= b.time_ms && a.mem_words <= b.mem_words &&
                        a.srf_peak_words <= b.srf_peak_words;
  const bool better = a.time_ms < b.time_ms || a.mem_words < b.mem_words ||
                      a.srf_peak_words < b.srf_peak_words;
  return no_worse && better;
}

}  // namespace

std::vector<std::size_t> pareto_front(const std::vector<EvalResult>& results) {
  const auto equal = [](const Metrics& a, const Metrics& b) {
    return a.time_ms == b.time_ms && a.mem_words == b.mem_words &&
           a.srf_peak_words == b.srf_peak_words;
  };
  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (!results[i].ok()) continue;
    bool drop = false;
    for (std::size_t j = 0; j < results.size() && !drop; ++j) {
      if (i == j || !results[j].ok()) continue;
      // Dominated, or a duplicate of an earlier point (keep the first).
      drop = dominates(results[j].metrics, results[i].metrics) ||
             (j < i && equal(results[j].metrics, results[i].metrics));
    }
    if (!drop) front.push_back(i);
  }
  return front;
}

std::size_t best_index(const std::vector<EvalResult>& results) {
  std::size_t best = results.size();
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (!results[i].ok()) continue;
    if (best == results.size() ||
        results[i].metrics.time_ms < results[best].metrics.time_ms) {
      best = i;
    }
  }
  return best;
}

std::vector<std::size_t> best_per_variant(
    const std::vector<EvalResult>& results) {
  std::vector<std::size_t> best;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (!results[i].ok()) continue;
    bool found = false;
    for (std::size_t& b : best) {
      if (results[b].cand.variant != results[i].cand.variant) continue;
      found = true;
      if (results[i].metrics.time_ms < results[b].metrics.time_ms) b = i;
    }
    if (!found) best.push_back(i);
  }
  std::sort(best.begin(), best.end(), [&](std::size_t a, std::size_t b) {
    return results[a].metrics.time_ms < results[b].metrics.time_ms;
  });
  return best;
}

std::string format_results_table(const std::vector<EvalResult>& results,
                                 const std::vector<std::size_t>& front) {
  util::Table t({"", "candidate", "time (ms)", "mem (Kwords)", "SRF peak",
                 "GFLOPS", "source"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const EvalResult& r = results[i];
    if (!r.ok()) {
      t.add_row({" ", r.cand.label(), "error", "-", "-", "-", r.error});
      continue;
    }
    const bool on_front =
        std::find(front.begin(), front.end(), i) != front.end();
    std::string tag;
    if (on_front) tag += "*";
    if (r.cached) tag += "c";
    if (r.pruned) tag += "p";
    t.add_row({tag.empty() ? " " : tag, r.cand.label(),
               util::Table::num(r.metrics.time_ms, 3),
               util::Table::num(static_cast<double>(r.metrics.mem_words) / 1e3,
                                1),
               std::to_string(r.metrics.srf_peak_words),
               util::Table::num(r.metrics.solution_gflops, 2),
               r.metrics.source});
  }
  return t.render();
}

obs::Json to_json(const EvalResult& r) {
  obs::Json j = obs::Json::object();
  j.set("config", r.cand.to_json());
  j.set("hash", hash_hex(r.hash));
  j.set("label", r.cand.label());
  j.set("cached", r.cached);
  j.set("pruned", r.pruned);
  if (!r.ok()) {
    j.set("error", r.error);
  } else {
    j.set("metrics", r.metrics.to_json());
    // Which resource bound this candidate's run -- lets a sweep consumer
    // separate "needs more compute" from "needs more bandwidth" points
    // without re-running anything.
    j.set("binding_resource",
          prof::binding_verdict(r.metrics.kernel_busy_cycles,
                                r.metrics.mem_busy_cycles));
  }
  return j;
}

obs::Json report_json(const std::vector<EvalResult>& results) {
  const std::vector<std::size_t> front = pareto_front(results);
  obs::Json rows = obs::Json::array();
  for (const EvalResult& r : results) rows.push_back(to_json(r));
  obs::Json front_json = obs::Json::array();
  for (const std::size_t i : front) {
    front_json.push_back(static_cast<std::int64_t>(i));
  }
  obs::Json best_json = obs::Json::array();
  for (const std::size_t i : best_per_variant(results)) {
    best_json.push_back(static_cast<std::int64_t>(i));
  }
  obs::Json out = obs::Json::object();
  out.set("results", std::move(rows));
  out.set("pareto_front", std::move(front_json));
  const std::size_t best = best_index(results);
  out.set("best", best < results.size()
                      ? obs::Json(static_cast<std::int64_t>(best))
                      : obs::Json(nullptr));
  out.set("best_per_variant", std::move(best_json));
  out.set("telemetry", obs::CounterRegistry::global().to_json());
  return out;
}

}  // namespace smd::tune
