// Report layer for tuner sweeps: Pareto front over (run time, memory
// traffic, SRF pressure), best-per-variant tables, and the unified JSON
// record smdtune --json emits (schema shared with the bench records:
// candidates, front, telemetry snapshot).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "src/obs/json.h"
#include "src/tune/runner.h"

namespace smd::tune {

/// Indices of the non-dominated successful results, minimizing
/// (time_ms, mem_words, srf_peak_words), in input order. A result
/// dominates another when it is <= on all three metrics and < on at
/// least one.
std::vector<std::size_t> pareto_front(const std::vector<EvalResult>& results);

/// Index of the fastest successful result; results.size() when none.
std::size_t best_index(const std::vector<EvalResult>& results);

/// Fastest successful result per variant, ordered by runtime (best
/// first) -- the paper's Figure 9 ordering when the sweep covers the four
/// variants.
std::vector<std::size_t> best_per_variant(
    const std::vector<EvalResult>& results);

/// Human-readable results table; rows on the Pareto front are starred.
std::string format_results_table(const std::vector<EvalResult>& results,
                                 const std::vector<std::size_t>& front);

obs::Json to_json(const EvalResult& r);

/// {"results": [...], "pareto_front": [indices], "best": index|null,
///  "best_per_variant": [...], "telemetry": registry snapshot}
obs::Json report_json(const std::vector<EvalResult>& results);

}  // namespace smd::tune
