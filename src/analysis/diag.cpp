#include "src/analysis/diag.h"

#include <algorithm>
#include <tuple>

#include "src/obs/registry.h"

namespace smd::analysis {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

std::string Location::str() const {
  std::string out = unit.empty() ? std::string("<unknown>") : unit;
  if (!section.empty()) {
    out += ":" + section;
    if (index >= 0) out += "[" + std::to_string(index) + "]";
  }
  return out;
}

std::string Diagnostic::str() const {
  return std::string(severity_name(severity)) + " " + id + " at " + loc.str() +
         ": " + message;
}

void Diagnostics::add(Diagnostic d) {
  if (d.severity == Severity::kError) ++n_errors_;
  if (d.severity == Severity::kWarning) ++n_warnings_;
  diags_.push_back(std::move(d));
}

void Diagnostics::merge(const Diagnostics& other) {
  for (const auto& d : other.diags_) add(d);
}

const Diagnostic* Diagnostics::find(const std::string& id) const {
  for (const auto& d : diags_) {
    if (d.id == id) return &d;
  }
  return nullptr;
}

int Diagnostics::count(const std::string& id) const {
  int n = 0;
  for (const auto& d : diags_) n += d.id == id ? 1 : 0;
  return n;
}

std::vector<const Diagnostic*> Diagnostics::sorted() const {
  std::vector<const Diagnostic*> view;
  view.reserve(diags_.size());
  for (const auto& d : diags_) view.push_back(&d);
  std::stable_sort(view.begin(), view.end(),
                   [](const Diagnostic* a, const Diagnostic* b) {
                     return std::tie(a->loc.unit, a->loc.section, a->loc.index,
                                     a->id) < std::tie(b->loc.unit,
                                                       b->loc.section,
                                                       b->loc.index, b->id);
                   });
  return view;
}

std::string Diagnostics::format() const {
  std::string out;
  for (const Diagnostic* d : sorted()) {
    out += d->str();
    out += '\n';
  }
  return out;
}

obs::Json Diagnostics::to_json() const {
  obs::Json root = obs::Json::object();
  root.set("errors", n_errors_);
  root.set("warnings", n_warnings_);
  obs::Json list = obs::Json::array();
  for (const Diagnostic* dp : sorted()) {
    const Diagnostic& d = *dp;
    obs::Json j = obs::Json::object();
    j.set("id", d.id);
    j.set("severity", severity_name(d.severity));
    j.set("unit", d.loc.unit);
    j.set("section", d.loc.section);
    j.set("index", d.loc.index);
    j.set("message", d.message);
    list.push_back(std::move(j));
  }
  root.set("diagnostics", std::move(list));
  return root;
}

void Diagnostics::count_into_registry(const std::string& prefix) const {
  if (diags_.empty()) return;
  auto& reg = obs::CounterRegistry::global();
  if (n_errors_ > 0) reg.add(prefix + ".errors", n_errors_);
  if (n_warnings_ > 0) reg.add(prefix + ".warnings", n_warnings_);
  for (const auto& d : diags_) reg.add(prefix + "." + d.id);
}

std::vector<std::string> known_check_ids() {
  std::vector<std::string> ids;
  auto family = [&](const char* prefix, int first, int last) {
    for (int n = first; n <= last; ++n) {
      std::string num = std::to_string(n);
      while (num.size() < 3) num.insert(num.begin(), '0');
      ids.push_back(prefix + num);
    }
  };
  family("IR", 1, 24);
  family("SP", 1, 16);
  family("MC", 1, 15);
  ids.push_back("MC106");  // one-SDR-overlap warning, variant of MC006
  return ids;
}

CheckFailure::CheckFailure(Diagnostics diags)
    : std::runtime_error(diags.format()), diags_(std::move(diags)) {}

}  // namespace smd::analysis
