#include "src/analysis/verify_ir.h"

#include <algorithm>
#include <array>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/analysis/dataflow.h"
#include "src/kernel/cost.h"

namespace smd::analysis {
namespace {

using kernel::Instr;
using kernel::KernelDef;
using kernel::Opcode;
using kernel::StreamDecl;
using kernel::StreamDir;

bool is_stream_access(Opcode op) {
  return op == Opcode::kRead || op == Opcode::kReadCond ||
         op == Opcode::kReadBcast || op == Opcode::kWrite ||
         op == Opcode::kWriteCond;
}

bool is_read_access(Opcode op) {
  return op == Opcode::kRead || op == Opcode::kReadCond ||
         op == Opcode::kReadBcast;
}

bool is_conditional_access(Opcode op) {
  return op == Opcode::kReadCond || op == Opcode::kWriteCond;
}

/// Registers an instruction reads. Conditional-read destinations are
/// returned separately: the untaken path preserves the old value, so they
/// are merge-style uses, exempt from the maybe-uninitialized lint.
struct InstrUses {
  std::vector<int> srcs;        ///< plain source registers
  std::vector<int> merge_srcs;  ///< destination-also-source merges
  int pred = -1;                ///< predicate of a conditional access
};

InstrUses instr_uses(const Instr& in) {
  InstrUses u;
  switch (in.op) {
    case Opcode::kConst:
    case Opcode::kRead:
    case Opcode::kReadBcast:
      break;
    case Opcode::kMov:
    case Opcode::kSqrt:
    case Opcode::kRsqrt:
      u.srcs = {in.a};
      break;
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kDiv:
    case Opcode::kCmpEq:
    case Opcode::kCmpLt:
      u.srcs = {in.a, in.b};
      break;
    case Opcode::kMadd:
    case Opcode::kMsub:
    case Opcode::kSel:
      u.srcs = {in.a, in.b, in.c};
      break;
    case Opcode::kReadCond:
      u.pred = in.c;
      for (int w = 0; w < in.count; ++w) u.merge_srcs.push_back(in.dst + w);
      break;
    case Opcode::kWrite:
      for (int w = 0; w < in.count; ++w) u.srcs.push_back(in.a + w);
      break;
    case Opcode::kWriteCond:
      u.pred = in.c;
      for (int w = 0; w < in.count; ++w) u.srcs.push_back(in.a + w);
      break;
  }
  // A source that is also the destination is a deliberate loop-carried
  // merge (sel-accumulate, conditional-read merge): exempt from IR004.
  if (in.op != Opcode::kWrite && in.op != Opcode::kWriteCond) {
    auto it = std::remove_if(u.srcs.begin(), u.srcs.end(), [&](int r) {
      if (r != in.dst) return false;
      u.merge_srcs.push_back(r);
      return true;
    });
    u.srcs.erase(it, u.srcs.end());
  }
  return u;
}

std::vector<int> instr_defs(const Instr& in) {
  std::vector<int> d;
  switch (in.op) {
    case Opcode::kRead:
    case Opcode::kReadCond:
    case Opcode::kReadBcast:
      for (int w = 0; w < in.count; ++w) d.push_back(in.dst + w);
      break;
    case Opcode::kWrite:
    case Opcode::kWriteCond:
      break;
    default:
      if (in.dst >= 0) d.push_back(in.dst);
  }
  return d;
}

struct SectionRef {
  kernel::Section id;
  const std::vector<Instr>* instrs;
};

std::array<SectionRef, 4> sections_of(const KernelDef& def) {
  return {{{kernel::Section::kPrologue, &def.prologue},
           {kernel::Section::kOuterPre, &def.outer_pre},
           {kernel::Section::kBody, &def.body},
           {kernel::Section::kOuterPost, &def.outer_post}}};
}

class Verifier {
 public:
  Verifier(const KernelDef& def, const VerifyOptions& opts)
      : def_(def), opts_(opts) {}

  Diagnostics run() {
    structural();
    if (def_.block_len < 1) {
      out_.error("IR014", {def_.name, "", -1},
                 "block_len " + std::to_string(def_.block_len) + " < 1");
    }
    dataflow();
    stream_usage();
    pressure();
    semantic();
    return std::move(out_);
  }

 private:
  Location at(kernel::Section s, int idx) const {
    return {def_.name, section_name(s), idx};
  }

  bool reg_ok(int r) const { return r >= 0 && r < def_.n_regs; }

  void check_reg(int r, const char* what, kernel::Section s, int idx,
                 bool& ok) {
    if (reg_ok(r)) return;
    out_.error("IR001", at(s, idx),
               std::string("register ") + std::to_string(r) + " (" + what +
                   ") out of range [0, " + std::to_string(def_.n_regs) + ")");
    ok = false;
  }

  /// Bounds and per-opcode shape checks; records which instructions are
  /// well-formed enough for the dataflow passes.
  void structural() {
    for (const auto& [sec, instrs] : sections_of(def_)) {
      auto& valid = valid_[sec];
      valid.assign(instrs->size(), 1);
      for (std::size_t i = 0; i < instrs->size(); ++i) {
        const Instr& in = (*instrs)[i];
        const int idx = static_cast<int>(i);
        bool ok = true;
        if (is_stream_access(in.op)) {
          if (in.stream < 0 ||
              in.stream >= static_cast<int>(def_.streams.size())) {
            out_.error("IR002", at(sec, idx),
                       std::string(opcode_name(in.op)) + " of stream slot " +
                           std::to_string(in.stream) + " (kernel declares " +
                           std::to_string(def_.streams.size()) + ")");
            ok = false;
          }
          if (in.count <= 0) {
            out_.error("IR011", at(sec, idx),
                       std::string(opcode_name(in.op)) + " with count " +
                           std::to_string(in.count));
            ok = false;
          }
          if (ok) {
            const int base = is_read_access(in.op) ? in.dst : in.a;
            check_reg(base, "stream access base", sec, idx, ok);
            check_reg(base + in.count - 1, "stream access end", sec, idx, ok);
            if (is_conditional_access(in.op)) {
              check_reg(in.c, "predicate", sec, idx, ok);
            }
          }
          valid[i] = ok ? 1 : 0;
          continue;
        }
        const InstrUses u = instr_uses(in);
        for (int r : u.srcs) check_reg(r, "source", sec, idx, ok);
        check_reg(in.dst, "destination", sec, idx, ok);
        valid[i] = ok ? 1 : 0;
      }
    }
  }

  /// Def-before-use (IR003/IR004/IR009) and dead writes (IR012), walking
  /// prologue -> outer_pre -> body -> outer_post: the first-iteration
  /// execution order, which is the conservative one.
  void dataflow() {
    if (def_.n_regs <= 0) return;
    const auto n = static_cast<std::size_t>(def_.n_regs);
    std::vector<bool> defined_anywhere(n, false);
    std::vector<bool> used_anywhere(n, false);
    std::vector<char> const_def(n, 0);  ///< reg only ever defined by kConst
    for (const auto& [sec, instrs] : sections_of(def_)) {
      for (std::size_t i = 0; i < instrs->size(); ++i) {
        if (!valid_[sec][i]) continue;
        const Instr& in = (*instrs)[i];
        const InstrUses u = instr_uses(in);
        for (int r : u.srcs) used_anywhere[static_cast<std::size_t>(r)] = true;
        for (int r : u.merge_srcs) used_anywhere[static_cast<std::size_t>(r)] = true;
        if (u.pred >= 0) used_anywhere[static_cast<std::size_t>(u.pred)] = true;
        for (int r : instr_defs(in)) {
          const auto ri = static_cast<std::size_t>(r);
          const_def[ri] = defined_anywhere[ri]
                              ? static_cast<char>(0)
                              : static_cast<char>(in.op == Opcode::kConst);
          defined_anywhere[ri] = true;
        }
      }
    }

    std::vector<bool> defined(n, false);
    std::vector<bool> reported(n, false);  // one finding per register
    for (const auto& [sec, instrs] : sections_of(def_)) {
      for (std::size_t i = 0; i < instrs->size(); ++i) {
        if (!valid_[sec][i]) continue;
        const Instr& in = (*instrs)[i];
        const InstrUses u = instr_uses(in);
        const int idx = static_cast<int>(i);
        auto check_use = [&](int r, bool merge) {
          const auto ri = static_cast<std::size_t>(r);
          if (defined[ri] || reported[ri]) return;
          if (!defined_anywhere[ri]) {
            out_.error("IR003", at(sec, idx),
                       "register " + std::to_string(r) +
                           " is read but never defined");
            reported[ri] = true;
          } else if (!merge) {
            out_.warn("IR004", at(sec, idx),
                      "register " + std::to_string(r) +
                          " may be read before its first definition on the "
                          "first iteration");
            reported[ri] = true;
          }
        };
        if (u.pred >= 0) {
          const auto pi = static_cast<std::size_t>(u.pred);
          if (!defined[pi] && !reported[pi]) {
            out_.error("IR009", at(sec, idx),
                       std::string(opcode_name(in.op)) +
                           " predicate register " + std::to_string(u.pred) +
                           " is not defined before the conditional access; "
                           "every cluster must evaluate the predicate");
            reported[pi] = true;
          }
        }
        for (int r : u.srcs) check_use(r, /*merge=*/false);
        for (int r : u.merge_srcs) check_use(r, /*merge=*/true);
        for (int r : instr_defs(in)) defined[static_cast<std::size_t>(r)] = true;
      }
    }

    // Dead writes: a defined register whose value no instruction reads.
    std::vector<bool> flagged(n, false);
    for (const auto& [sec, instrs] : sections_of(def_)) {
      for (std::size_t i = 0; i < instrs->size(); ++i) {
        if (!valid_[sec][i]) continue;
        const Instr& in = (*instrs)[i];
        for (int r : instr_defs(in)) {
          const auto ri = static_cast<std::size_t>(r);
          if (used_anywhere[ri] || flagged[ri]) continue;
          flagged[ri] = true;
          const std::string msg = "register " + std::to_string(r) +
                                  " is written but its value is never read";
          if (const_def[ri]) {
            out_.note("IR012", at(sec, static_cast<int>(i)),
                      msg + " (preloaded constant)");
          } else {
            out_.warn("IR012", at(sec, static_cast<int>(i)), msg);
          }
        }
      }
    }
  }

  /// Stream-declaration conformance: direction, record width, conditional
  /// flag, broadcast multiplicity, unused declarations.
  void stream_usage() {
    std::vector<int> accesses(def_.streams.size(), 0);
    std::vector<int> body_bcasts(def_.streams.size(), 0);
    for (const auto& [sec, instrs] : sections_of(def_)) {
      for (std::size_t i = 0; i < instrs->size(); ++i) {
        const Instr& in = (*instrs)[i];
        if (!is_stream_access(in.op)) continue;
        if (in.stream < 0 ||
            in.stream >= static_cast<int>(def_.streams.size())) {
          continue;  // IR002 already reported
        }
        const int idx = static_cast<int>(i);
        const auto& decl = def_.streams[static_cast<std::size_t>(in.stream)];
        ++accesses[static_cast<std::size_t>(in.stream)];
        const bool is_read = is_read_access(in.op);
        if (is_read && decl.dir != StreamDir::kIn) {
          out_.error("IR005", at(sec, idx),
                     std::string(opcode_name(in.op)) + " of output stream '" +
                         decl.name + "'");
        }
        if (!is_read && decl.dir != StreamDir::kOut) {
          out_.error("IR005", at(sec, idx),
                     std::string(opcode_name(in.op)) + " of input stream '" +
                         decl.name + "'");
        }
        if (in.count > 0 && in.count != decl.record_words) {
          out_.error("IR006", at(sec, idx),
                     std::string(opcode_name(in.op)) + " of " +
                         std::to_string(in.count) + " words from stream '" +
                         decl.name + "' declaring record_words=" +
                         std::to_string(decl.record_words));
        }
        if (is_conditional_access(in.op) && !decl.conditional) {
          out_.error("IR007", at(sec, idx),
                     std::string(opcode_name(in.op)) + " of stream '" +
                         decl.name +
                         "' which is not declared conditional; the "
                         "inter-cluster switch cannot compact it");
        }
        if (!is_conditional_access(in.op) && decl.conditional) {
          out_.error("IR008", at(sec, idx),
                     std::string(opcode_name(in.op)) + " of stream '" +
                         decl.name +
                         "' which is declared conditional; only "
                         "conditional accesses keep the clusters in step");
        }
        if (in.op == Opcode::kReadBcast && sec == kernel::Section::kBody) {
          if (++body_bcasts[static_cast<std::size_t>(in.stream)] == 2) {
            out_.error("IR010", at(sec, idx),
                       "multiple broadcast reads of stream '" + decl.name +
                           "' in the body (the shared cursor advances once "
                           "per iteration)");
          }
        }
      }
    }
    for (std::size_t s = 0; s < def_.streams.size(); ++s) {
      if (accesses[s] == 0) {
        out_.warn("IR013", {def_.name, "", -1},
                  "stream '" + def_.streams[s].name + "' (slot " +
                      std::to_string(s) + ") is declared but never accessed");
      }
    }
  }

  void pressure() {
    const int peak = kernel_lrf_pressure(def_);
    if (peak > opts_.lrf_words) {
      out_.warn("IR015", {def_.name, "", -1},
                "peak LRF pressure " + std::to_string(peak) +
                    " words exceeds the per-cluster capacity of " +
                    std::to_string(opts_.lrf_words));
    }
    if (opts_.report_pressure) {
      out_.note("IR016", {def_.name, "", -1},
                "LRF pressure: peak " + std::to_string(peak) +
                    " simultaneously-live registers, " +
                    std::to_string(def_.n_regs) + " allocated, capacity " +
                    std::to_string(opts_.lrf_words) + " words");
    }
  }

  /// Dataflow-backed precision checks IR017-IR024 (see dataflow.h). Only
  /// runs when every earlier pass is error-free: the engine indexes
  /// registers and sections directly, so it needs a structurally valid
  /// kernel, and semantic refinements are pointless on broken IR anyway.
  void semantic() {
    if (!opts_.dataflow) return;
    if (out_.errors() > 0 || def_.n_regs <= 0 || def_.block_len < 1) return;
    const KernelDataflow dfa(def_);
    const auto n = static_cast<std::size_t>(def_.n_regs);

    // Registers read by at least one instruction: IR017 restricts itself
    // to these, because a register never read anywhere is already IR012.
    std::vector<bool> used_anywhere(n, false);
    for (const auto& [sec, instrs] : sections_of(def_)) {
      for (const Instr& in : *instrs) {
        const InstrUses u = instr_uses(in);
        for (int r : u.srcs) used_anywhere[static_cast<std::size_t>(r)] = true;
        for (int r : u.merge_srcs) {
          used_anywhere[static_cast<std::size_t>(r)] = true;
        }
        if (u.pred >= 0) used_anywhere[static_cast<std::size_t>(u.pred)] = true;
      }
    }

    for (const auto& [sec, instrs] : sections_of(def_)) {
      ConstEnv env = dfa.const_env_at_entry(sec);
      for (std::size_t i = 0; i < instrs->size(); ++i) {
        const Instr& in = (*instrs)[i];
        const int idx = static_cast<int>(i);
        const InstrEffects fx = instr_effects(in);
        const Bitset& live = dfa.live_after(sec, idx);

        if (!fx.stream && in.dst >= 0 && !live.test(in.dst) &&
            used_anywhere[static_cast<std::size_t>(in.dst)]) {
          const std::string msg =
              std::string(opcode_name(in.op)) + " into register " +
              std::to_string(in.dst) +
              " is dead: the value is overwritten before any use";
          if (in.op == Opcode::kConst) {
            out_.note("IR017", at(sec, idx), msg + " (preloaded constant)");
          } else {
            out_.warn("IR017", at(sec, idx), msg);
          }
        }

        if (in.op == Opcode::kRead || in.op == Opcode::kReadCond ||
            in.op == Opcode::kReadBcast) {
          bool any_live = false;
          for (int w = 0; w < in.count; ++w) {
            any_live = any_live || live.test(in.dst + w);
          }
          if (!any_live) {
            out_.warn("IR021", at(sec, idx),
                      std::string(opcode_name(in.op)) + " of " +
                          std::to_string(in.count) + " words from stream '" +
                          def_.streams[static_cast<std::size_t>(in.stream)]
                              .name +
                          "' whose destination words are never used "
                          "(removable only together with the whole stream: "
                          "dropping a single read desyncs the SRF cursor)");
          }
        }

        if (!fx.stream && kernel::op_cost(in.op).fpu_slots > 0) {
          bool all_const = true;
          for (int r : fx.uses) {
            all_const = all_const && env[static_cast<std::size_t>(r)].has_value();
          }
          if (all_const) {
            const std::string msg =
                std::string(opcode_name(in.op)) + " into register " +
                std::to_string(in.dst) +
                " has provably constant operands: foldable to a preloaded "
                "constant";
            if (sec == kernel::Section::kPrologue) {
              out_.note("IR019", at(sec, idx),
                        msg + " (prologue: cost paid once per launch)");
            } else {
              out_.warn("IR019", at(sec, idx), msg);
            }
          }
        }

        if (in.op == Opcode::kMov) {
          DefSite site;
          if (dfa.unique_reaching_def(sec, idx, in.a, &site) &&
              site.instr >= 0 &&
              section_instrs(def_, site.sec)[static_cast<std::size_t>(
                  site.instr)].op == Opcode::kMov) {
            out_.note("IR020", at(sec, idx),
                      "copy chain: register " + std::to_string(in.a) +
                          "'s unique reaching definition (" +
                          section_name(site.sec) + "[" +
                          std::to_string(site.instr) +
                          "]) is itself a mov; the copy source could be "
                          "forwarded");
          }
        }

        if (in.op == Opcode::kReadCond && in.c >= in.dst &&
            in.c < in.dst + in.count) {
          out_.warn("IR023", at(sec, idx),
                    "self-overwriting conditional read: predicate register " +
                        std::to_string(in.c) +
                        " lies inside the destination range [" +
                        std::to_string(in.dst) + ", " +
                        std::to_string(in.dst + in.count) +
                        "); a taken access clobbers its own predicate");
        }

        if ((in.op == Opcode::kReadCond || in.op == Opcode::kWriteCond) &&
            env[static_cast<std::size_t>(in.c)].has_value()) {
          const double p = *env[static_cast<std::size_t>(in.c)];
          out_.warn("IR024", at(sec, idx),
                    std::string(opcode_name(in.op)) +
                        " predicate register " + std::to_string(in.c) +
                        " is provably the constant " + std::to_string(p) +
                        ": the access is " +
                        (p != 0.0 ? "always" : "never") +
                        " taken and need not be conditional");
        }

        apply_const_transfer(in, env);
      }
    }

    for (const Redundancy& r : dfa.redundancies()) {
      const Instr& in =
          section_instrs(def_, r.sec)[static_cast<std::size_t>(r.instr)];
      const std::string msg =
          std::string(opcode_name(in.op)) + " into register " +
          std::to_string(in.dst) + " recomputes the value of " +
          section_name(r.sec) + "[" + std::to_string(r.prior) +
          "], still available in register " + std::to_string(r.holder);
      if (r.free_op) {
        out_.note("IR018", at(r.sec, r.instr), msg + " (free op)");
      } else {
        out_.warn("IR018", at(r.sec, r.instr), msg);
      }
    }

    const int exact = dfa.max_live_pressure();
    if (exact > opts_.lrf_words) {
      out_.warn("IR022", {def_.name, "", -1},
                "exact peak LRF live-pressure " + std::to_string(exact) +
                    " registers exceeds the per-cluster capacity of " +
                    std::to_string(opts_.lrf_words) + " words");
    }
  }

  const KernelDef& def_;
  const VerifyOptions& opts_;
  std::map<kernel::Section, std::vector<char>> valid_;
  Diagnostics out_;
};

}  // namespace

int kernel_lrf_pressure(const kernel::KernelDef& def) {
  if (def.n_regs <= 0) return 0;
  const auto n = static_cast<std::size_t>(def.n_regs);
  constexpr int kNone = -1;
  std::vector<int> first(n, kNone), last(n, kNone);
  std::vector<bool> in_body(n, false), elsewhere(n, false);
  std::vector<bool> carried(n, false);  // body use at/before first body def
  std::vector<int> first_body_def(n, kNone);

  int pos = 0;
  int body_begin = 0, body_end = 0;
  for (const auto sec : {kernel::Section::kPrologue, kernel::Section::kOuterPre,
                         kernel::Section::kBody, kernel::Section::kOuterPost}) {
    const std::vector<kernel::Instr>* instrs = nullptr;
    switch (sec) {
      case kernel::Section::kPrologue: instrs = &def.prologue; break;
      case kernel::Section::kOuterPre: instrs = &def.outer_pre; break;
      case kernel::Section::kBody: instrs = &def.body; break;
      case kernel::Section::kOuterPost: instrs = &def.outer_post; break;
    }
    if (sec == kernel::Section::kBody) body_begin = pos;
    for (const auto& in : *instrs) {
      const bool body = sec == kernel::Section::kBody;
      auto touch = [&](int r, bool is_def) {
        if (r < 0 || r >= def.n_regs) return;
        const auto ri = static_cast<std::size_t>(r);
        if (first[ri] == kNone) first[ri] = pos;
        last[ri] = pos;
        (body ? in_body : elsewhere)[ri] = true;
        if (body && is_def && first_body_def[ri] == kNone) {
          first_body_def[ri] = pos;
        }
        if (body && !is_def && first_body_def[ri] == kNone) {
          carried[ri] = true;  // read in the body before any body def
        }
      };
      const InstrUses u = instr_uses(in);
      for (int r : u.srcs) touch(r, false);
      for (int r : u.merge_srcs) touch(r, false);
      if (u.pred >= 0) touch(u.pred, false);
      for (int r : instr_defs(in)) touch(r, true);
      ++pos;
    }
    if (sec == kernel::Section::kBody) body_end = pos;
  }
  if (pos == 0) return 0;

  // Loop-carried or cross-section registers stay live across the body.
  std::vector<int> delta(static_cast<std::size_t>(pos) + 1, 0);
  for (std::size_t r = 0; r < n; ++r) {
    if (first[r] == kNone) continue;
    int lo = first[r], hi = last[r];
    const bool spans = in_body[r] && (carried[r] || elsewhere[r]);
    if (spans && body_end > body_begin) {
      lo = std::min(lo, body_begin);
      hi = std::max(hi, body_end - 1);
    }
    ++delta[static_cast<std::size_t>(lo)];
    --delta[static_cast<std::size_t>(hi) + 1];
  }
  int live = 0, peak = 0;
  for (int p = 0; p < pos; ++p) {
    live += delta[static_cast<std::size_t>(p)];
    peak = std::max(peak, live);
  }
  return peak;
}

Diagnostics verify_kernel(const kernel::KernelDef& def,
                          const VerifyOptions& opts) {
  return Verifier(def, opts).run();
}

void require_valid_kernel(const kernel::KernelDef& def,
                          const VerifyOptions& opts) {
  VerifyOptions o = opts;
  o.report_pressure = false;
  // The semantic checks (IR017-IR024) are warnings-only and cost a full
  // dataflow fixpoint; this entry point runs on every Interpreter
  // construction and schedule_body call, so skip them here.
  o.dataflow = false;
  Diagnostics d = verify_kernel(def, o);
  d.count_into_registry("analysis.ir");
  if (d.errors() > 0) throw CheckFailure(std::move(d));
}

}  // namespace smd::analysis
