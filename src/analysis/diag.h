// Diagnostics engine for the static-analysis passes (smdcheck).
//
// Every check the IR verifier (verify_ir.h) and the stream-program checker
// (check_stream.h) perform reports through this one type: a stable check
// ID (the catalogue lives in DESIGN.md "Static checking"), a severity, a
// human-readable message and a source location that points into the thing
// being checked -- kernel section + instruction index for IR diagnostics,
// stream-instruction index for stream-program diagnostics. Text rendering
// is one-line-per-diagnostic (grep-friendly); machine rendering reuses the
// telemetry layer's Json type so smdcheck --json artifacts parse back with
// the same code paths as every other record the repo emits.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "src/obs/json.h"

namespace smd::analysis {

enum class Severity : int { kNote = 0, kWarning = 1, kError = 2 };

const char* severity_name(Severity s);

/// Where a diagnostic points. `unit` is the kernel or program name;
/// `section` is the IR section ("body", ...) or "program" for stream-level
/// checks; `index` is the instruction index within that section (-1 when
/// the diagnostic is about the unit as a whole, e.g. an unused stream
/// declaration).
struct Location {
  std::string unit;
  std::string section;
  int index = -1;

  std::string str() const;
};

struct Diagnostic {
  std::string id;       ///< stable check ID, e.g. "IR003" / "SP010"
  Severity severity = Severity::kError;
  std::string message;
  Location loc;

  /// "error IR003 at water_fixed:body[4]: ..." rendering.
  std::string str() const;
};

/// An ordered list of diagnostics plus severity tallies.
class Diagnostics {
 public:
  void add(Diagnostic d);
  void note(std::string id, Location loc, std::string message) {
    add({std::move(id), Severity::kNote, std::move(message), std::move(loc)});
  }
  void warn(std::string id, Location loc, std::string message) {
    add({std::move(id), Severity::kWarning, std::move(message), std::move(loc)});
  }
  void error(std::string id, Location loc, std::string message) {
    add({std::move(id), Severity::kError, std::move(message), std::move(loc)});
  }

  /// Append another pass's findings.
  void merge(const Diagnostics& other);

  const std::vector<Diagnostic>& all() const { return diags_; }
  bool empty() const { return diags_.empty(); }
  int errors() const { return n_errors_; }
  int warnings() const { return n_warnings_; }
  bool clean() const { return n_errors_ == 0 && n_warnings_ == 0; }

  /// First diagnostic whose check ID matches, or nullptr.
  const Diagnostic* find(const std::string& id) const;
  /// Number of diagnostics carrying the given check ID.
  int count(const std::string& id) const;

  /// One line per diagnostic; "" when empty. Rendered in the deterministic
  /// (unit, section, index, id) order of sorted() so output is byte-stable
  /// regardless of pass-internal iteration order.
  std::string format() const;

  /// {"errors": n, "warnings": n, "diagnostics": [{id, severity, unit,
  ///  section, index, message}, ...]} -- same deterministic order as
  /// format().
  obs::Json to_json() const;

  /// Deterministic render order: stable-sorted by unit, then section, then
  /// instruction index, then check ID (ties keep insertion order). all()
  /// keeps raw insertion order for callers that care about pass order.
  std::vector<const Diagnostic*> sorted() const;

  /// Bump `<prefix>.errors` / `<prefix>.warnings` counters plus one
  /// per-check counter `<prefix>.<id>` in the global telemetry registry.
  void count_into_registry(const std::string& prefix) const;

 private:
  std::vector<Diagnostic> diags_;
  int n_errors_ = 0;
  int n_warnings_ = 0;
};

/// Every check ID the analysis passes can emit, in catalogue order:
/// IR001-IR024 (verify_ir.h), SP001-SP016 (check_stream.h), MC001-MC015 +
/// MC106 (sim::MachineConfig::validate). The doc-drift guard test asserts
/// this list matches the DESIGN.md catalogue one-to-one, so adding a check
/// means extending this list AND the catalogue.
std::vector<std::string> known_check_ids();

/// Thrown by the require_* pre-flight entry points when a pass reports
/// errors. Carries the full diagnostic list; what() is the formatted text.
class CheckFailure : public std::runtime_error {
 public:
  explicit CheckFailure(Diagnostics diags);
  const Diagnostics& diagnostics() const { return diags_; }

 private:
  Diagnostics diags_;
};

}  // namespace smd::analysis
