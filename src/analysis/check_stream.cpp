#include "src/analysis/check_stream.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <variant>

namespace smd::analysis {
namespace {

using sim::KernelOp;
using sim::LoadOp;
using sim::StoreOp;
using sim::StreamId;
using sim::StreamProgram;

std::string slot_str(StreamId s) { return "s" + std::to_string(s); }

const char* mem_op_verb(mem::MemOpKind kind) {
  switch (kind) {
    case mem::MemOpKind::kLoadStrided: return "load";
    case mem::MemOpKind::kLoadGather: return "gather";
    case mem::MemOpKind::kStoreStrided: return "store";
    case mem::MemOpKind::kStoreScatter: return "scatter";
    case mem::MemOpKind::kScatterAdd: return "scatter-add";
  }
  return "mem";
}

bool is_indexed(mem::MemOpKind kind) {
  return kind == mem::MemOpKind::kLoadGather ||
         kind == mem::MemOpKind::kStoreScatter ||
         kind == mem::MemOpKind::kScatterAdd;
}

/// Merged, sorted half-open word-address intervals of one memory op.
using Footprint = std::vector<std::pair<std::uint64_t, std::uint64_t>>;

Footprint footprint_of(const mem::MemOpDesc& desc) {
  Footprint iv;
  if (desc.n_records <= 0 || desc.record_words <= 0) return iv;
  const auto rw = static_cast<std::uint64_t>(desc.record_words);
  if (is_indexed(desc.kind)) {
    iv.reserve(desc.indices.size());
    for (std::uint64_t idx : desc.indices) {
      const std::uint64_t lo = desc.base + idx * rw;
      iv.emplace_back(lo, lo + rw);
    }
  } else {
    const auto stride = static_cast<std::uint64_t>(
        desc.stride_words == 0 ? desc.record_words : desc.stride_words);
    for (std::int64_t r = 0; r < desc.n_records; ++r) {
      const std::uint64_t lo = desc.base + static_cast<std::uint64_t>(r) * stride;
      iv.emplace_back(lo, lo + rw);
    }
  }
  std::sort(iv.begin(), iv.end());
  Footprint merged;
  for (const auto& [lo, hi] : iv) {
    if (!merged.empty() && lo <= merged.back().second) {
      merged.back().second = std::max(merged.back().second, hi);
    } else {
      merged.emplace_back(lo, hi);
    }
  }
  return merged;
}

/// First overlapping word address of two footprints, if any.
std::optional<std::uint64_t> first_overlap(const Footprint& a,
                                           const Footprint& b) {
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const std::uint64_t lo = std::max(a[i].first, b[j].first);
    const std::uint64_t hi = std::min(a[i].second, b[j].second);
    if (lo < hi) return lo;
    if (a[i].second < b[j].second) {
      ++i;
    } else {
      ++j;
    }
  }
  return std::nullopt;
}

/// Guaranteed (unconditional) SRF words a kernel moves per bound slot.
/// Conditional accesses contribute zero: they may never fire, so only the
/// unconditional traffic gives a capacity lower bound.
struct SlotTraffic {
  std::int64_t read_words = 0;
  std::int64_t write_words = 0;
  /// Whether any access (conditional included) can execute at all --
  /// prologue accesses always run, the other sections only when rounds > 0.
  bool may_access = false;
};

std::vector<SlotTraffic> kernel_guaranteed_traffic(const kernel::KernelDef& def,
                                                   std::int64_t rounds,
                                                   int n_clusters) {
  std::vector<SlotTraffic> traffic(def.streams.size());
  auto accumulate = [&](const std::vector<kernel::Instr>& instrs,
                        std::int64_t repeat) {
    for (const auto& in : instrs) {
      if (in.stream < 0 || in.stream >= static_cast<int>(def.streams.size())) {
        continue;  // the IR verifier reports this
      }
      auto& t = traffic[static_cast<std::size_t>(in.stream)];
      if (repeat > 0) t.may_access = true;
      const std::int64_t words = static_cast<std::int64_t>(in.count) * repeat;
      switch (in.op) {
        case kernel::Opcode::kRead:
          t.read_words += words * n_clusters;
          break;
        case kernel::Opcode::kReadBcast:
          // One fetch fanned out through the inter-cluster switch.
          t.read_words += words;
          break;
        case kernel::Opcode::kWrite:
          t.write_words += words * n_clusters;
          break;
        case kernel::Opcode::kReadCond:
        case kernel::Opcode::kWriteCond:
        default:
          break;
      }
    }
  };
  accumulate(def.prologue, 1);
  if (rounds > 0) {
    accumulate(def.outer_pre, rounds);
    accumulate(def.body, rounds * def.block_len);
    accumulate(def.outer_post, rounds);
  }
  return traffic;
}

class StreamChecker {
 public:
  StreamChecker(const StreamProgram& program, const StreamCheckOptions& opts)
      : program_(program), opts_(opts) {}

  Diagnostics run() {
    declarations();
    const int n = static_cast<int>(program_.instrs.size());
    slots_.resize(program_.stream_words.size());
    st_.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) check_instr(i);
    races();
    return std::move(out_);
  }

 private:
  Location at(int index) const { return {opts_.program_name, "program", index}; }

  bool slot_ok(StreamId s) const {
    return s >= 0 && s < static_cast<int>(program_.stream_words.size());
  }

  std::int64_t capacity(StreamId s) const {
    return program_.stream_words[static_cast<std::size_t>(s)];
  }

  void declarations() {
    for (std::size_t s = 0; s < program_.stream_words.size(); ++s) {
      const std::int64_t words = program_.stream_words[s];
      if (words < 0) {
        out_.error("SP001", {opts_.program_name, "program", -1},
                   "stream " + slot_str(static_cast<StreamId>(s)) +
                       " declared with negative capacity " +
                       std::to_string(words));
      } else if (opts_.srf_words > 0 && words > opts_.srf_words) {
        out_.error("SP015", {opts_.program_name, "program", -1},
                   "stream " + slot_str(static_cast<StreamId>(s)) +
                       " declares " + std::to_string(words) +
                       " words, more than the whole SRF (" +
                       std::to_string(opts_.srf_words) +
                       " words); it can never be allocated");
      }
    }
  }

  // ---- Per-slot lifetime (program order). --------------------------------
  struct SlotState {
    bool produced = false;
    bool read_since_produce = false;
  };

  /// `touches`: whether the consumer is guaranteed to access the slot at
  /// all (a zero-round kernel or empty store never reads, so an absent
  /// producer is harmless for it).
  void consume(StreamId s, int i, bool touches) {
    auto& ss = slots_[static_cast<std::size_t>(s)];
    if (!ss.produced && touches) {
      out_.error("SP002", at(i),
                 "read of stream " + slot_str(s) +
                     " with no prior producing load or kernel");
    }
    ss.read_since_produce = true;
  }

  void produce(StreamId s, int i) {
    auto& ss = slots_[static_cast<std::size_t>(s)];
    if (ss.produced && !ss.read_since_produce) {
      out_.warn("SP003", at(i),
                "stream " + slot_str(s) +
                    " is overwritten before its previous value was read");
    }
    if (ss.produced) {
      out_.note("SP004", at(i),
                "stream " + slot_str(s) +
                    " is produced again; the controller serializes the reuse "
                    "on WAW/WAR dependences (a second buffer would overlap)");
    }
    ss.produced = true;
    ss.read_since_produce = false;
  }

  // ---- Per-instruction structure + dependence bookkeeping. ---------------
  struct InstrState {
    std::vector<int> deps;
    std::vector<StreamId> produces;
    std::vector<StreamId> consumes;
    std::vector<char> consume_touches;  ///< aligned with `consumes`
    bool is_mem = false;
    bool is_store = false;
    mem::MemOpKind kind = mem::MemOpKind::kLoadStrided;
    Footprint footprint;
    std::string label;
  };

  void check_desc(const mem::MemOpDesc& desc, int i, InstrState& is) {
    is.is_mem = true;
    is.is_store = mem::is_store(desc.kind);
    is.kind = desc.kind;
    is.label = mem_op_verb(desc.kind);
    if (is_indexed(desc.kind) &&
        static_cast<std::int64_t>(desc.indices.size()) != desc.n_records) {
      out_.error("SP009", at(i),
                 is.label + " declares " + std::to_string(desc.n_records) +
                     " records but carries " +
                     std::to_string(desc.indices.size()) + " indices");
      return;  // the footprint would be wrong
    }
    is.footprint = footprint_of(desc);
    if (opts_.memory_words > 0 && !is.footprint.empty()) {
      const std::uint64_t hi = is.footprint.back().second;
      if (hi > static_cast<std::uint64_t>(opts_.memory_words)) {
        out_.error("SP008", at(i),
                   is.label + " touches word address " + std::to_string(hi - 1) +
                       ", beyond the memory extent of " +
                       std::to_string(opts_.memory_words) + " words");
      }
    }
    if (desc.kind == mem::MemOpKind::kStoreScatter) {
      // Duplicate target records inside one plain scatter are a lost
      // update: unlike scatter-add, nothing combines the colliding writes.
      std::vector<std::uint64_t> sorted = desc.indices;
      std::sort(sorted.begin(), sorted.end());
      const auto dup = std::adjacent_find(sorted.begin(), sorted.end());
      if (dup != sorted.end()) {
        out_.error(
            "SP010", at(i),
            "plain scatter targets record " + std::to_string(*dup) +
                " (word address " +
                std::to_string(desc.base +
                               *dup * static_cast<std::uint64_t>(
                                          desc.record_words)) +
                ") more than once; colliding stores are only combined by "
                "the scatter-add unit");
      }
    }
  }

  void check_instr(int i) {
    auto& is = st_[static_cast<std::size_t>(i)];
    const auto& instr = program_.instrs[static_cast<std::size_t>(i)];
    if (const auto* load = std::get_if<LoadOp>(&instr)) {
      check_desc(load->desc, i, is);
      if (!slot_ok(load->dst)) {
        out_.error("SP001", at(i),
                   "load destination stream " + slot_str(load->dst) +
                       " out of range (" +
                       std::to_string(program_.stream_words.size()) +
                       " streams declared)");
        return;
      }
      if (load->desc.total_words() > capacity(load->dst)) {
        out_.error("SP007", at(i),
                   is.label + " of " + std::to_string(load->desc.total_words()) +
                       " words into stream " + slot_str(load->dst) +
                       " declaring only " +
                       std::to_string(capacity(load->dst)) + " words");
      }
      is.produces.push_back(load->dst);
    } else if (const auto* store = std::get_if<StoreOp>(&instr)) {
      check_desc(store->desc, i, is);
      if (!slot_ok(store->src)) {
        out_.error("SP001", at(i),
                   "store source stream " + slot_str(store->src) +
                       " out of range (" +
                       std::to_string(program_.stream_words.size()) +
                       " streams declared)");
        return;
      }
      if (store->desc.total_words() > capacity(store->src)) {
        out_.error("SP007", at(i),
                   is.label + " of " + std::to_string(store->desc.total_words()) +
                       " words from stream " + slot_str(store->src) +
                       " declaring only " +
                       std::to_string(capacity(store->src)) + " words");
      }
      is.consumes.push_back(store->src);
      is.consume_touches.push_back(store->desc.total_words() > 0 ? 1 : 0);
    } else {
      check_kernel(std::get<KernelOp>(instr), i, is);
    }
    // Dependence edges exactly as the controller builds them.
    for (std::size_t c = 0; c < is.consumes.size(); ++c) {
      const StreamId s = is.consumes[c];
      consume(s, i, is.consume_touches[c] != 0);
      auto& sl = dep_slots_[s];
      if (sl.producer >= 0) is.deps.push_back(sl.producer);
      sl.consumers.push_back(i);
    }
    for (StreamId s : is.produces) {
      produce(s, i);
      auto& sl = dep_slots_[s];
      if (sl.producer >= 0) {
        is.deps.push_back(sl.producer);
        for (int c : sl.consumers) is.deps.push_back(c);
      }
      sl.producer = i;
      sl.consumers.clear();
    }
  }

  void check_kernel(const KernelOp& k, int i, InstrState& is) {
    if (k.def == nullptr) {
      out_.error("SP005", at(i), "kernel op with null kernel definition");
      return;
    }
    is.label = "kernel " + k.def->name;
    if (k.bindings.size() != k.def->streams.size()) {
      out_.error("SP005", at(i),
                 "kernel '" + k.def->name + "' declares " +
                     std::to_string(k.def->streams.size()) +
                     " streams but is bound to " +
                     std::to_string(k.bindings.size()));
      return;
    }
    if (k.rounds < 0) {
      out_.error("SP006", at(i),
                 "kernel '" + k.def->name + "' invoked with negative rounds " +
                     std::to_string(k.rounds));
    } else if (k.rounds == 0) {
      out_.warn("SP006", at(i),
                "kernel '" + k.def->name +
                    "' invoked with zero rounds (prologue only, no body "
                    "iterations)");
    }
    const auto traffic = kernel_guaranteed_traffic(
        *k.def, std::max<std::int64_t>(k.rounds, 0), opts_.n_clusters);
    for (std::size_t s = 0; s < k.bindings.size(); ++s) {
      const StreamId b = k.bindings[s];
      const auto& decl = k.def->streams[s];
      if (!slot_ok(b)) {
        out_.error("SP001", at(i),
                   "kernel '" + k.def->name + "' stream '" + decl.name +
                       "' bound to stream " + slot_str(b) + " out of range (" +
                       std::to_string(program_.stream_words.size()) +
                       " streams declared)");
        continue;
      }
      const auto& t = traffic[s];
      if (decl.dir == kernel::StreamDir::kIn) {
        is.consumes.push_back(b);
        is.consume_touches.push_back(t.may_access ? 1 : 0);
        if (t.read_words > capacity(b)) {
          out_.error("SP007", at(i),
                     "kernel '" + k.def->name + "' is guaranteed to read " +
                         std::to_string(t.read_words) + " words from '" +
                         decl.name + "' (stream " + slot_str(b) +
                         ") declaring only " + std::to_string(capacity(b)) +
                         " words; the stream would be exhausted");
        }
      } else {
        is.produces.push_back(b);
        if (t.write_words > capacity(b)) {
          out_.error("SP007", at(i),
                     "kernel '" + k.def->name + "' is guaranteed to write " +
                         std::to_string(t.write_words) + " words to '" +
                         decl.name + "' (stream " + slot_str(b) +
                         ") declaring only " + std::to_string(capacity(b)) +
                         " words; the SRF allocation would overflow");
        }
      }
    }
  }

  // ---- Concurrency races over unordered memory-op pairs. -----------------
  void races() {
    const auto n = st_.size();
    if (n == 0) return;
    // ancestors[i] = every instruction ordered before i. Dependence edges
    // always point backwards in program order, so one forward pass closes
    // the relation transitively.
    const std::size_t words = (n + 63) / 64;
    std::vector<std::vector<std::uint64_t>> anc(
        n, std::vector<std::uint64_t>(words, 0));
    auto set_bit = [](std::vector<std::uint64_t>& bits, std::size_t b) {
      bits[b / 64] |= std::uint64_t{1} << (b % 64);
    };
    auto test_bit = [](const std::vector<std::uint64_t>& bits, std::size_t b) {
      return (bits[b / 64] >> (b % 64)) & 1;
    };
    for (std::size_t i = 0; i < n; ++i) {
      for (int d : st_[i].deps) {
        const auto di = static_cast<std::size_t>(d);
        set_bit(anc[i], di);
        for (std::size_t w = 0; w < words; ++w) anc[i][w] |= anc[di][w];
      }
    }

    for (std::size_t i = 0; i < n; ++i) {
      if (!st_[i].is_mem) continue;
      for (std::size_t j = i + 1; j < n; ++j) {
        if (!st_[j].is_mem) continue;
        if (!st_[i].is_store && !st_[j].is_store) continue;
        if (test_bit(anc[j], i)) continue;  // ordered: i happens-before j
        const bool both_stores = st_[i].is_store && st_[j].is_store;
        if (both_stores && st_[i].kind == mem::MemOpKind::kScatterAdd &&
            st_[j].kind == mem::MemOpKind::kScatterAdd) {
          continue;  // the scatter-add unit combines colliding updates
        }
        const auto hit = first_overlap(st_[i].footprint, st_[j].footprint);
        if (!hit) continue;
        const std::string pair = st_[i].label + " (op " + std::to_string(i) +
                                 ") and " + st_[j].label + " (op " +
                                 std::to_string(j) + ")";
        if (both_stores) {
          out_.error("SP011", at(static_cast<int>(j)),
                     "potentially concurrent " + pair +
                         " both write word address " + std::to_string(*hit) +
                         " outside the scatter-add combining guarantee");
        } else {
          out_.error("SP012", at(static_cast<int>(j)),
                     "potentially concurrent " + pair +
                         " read and write word address " +
                         std::to_string(*hit) + " with no dependence between "
                         "them");
        }
      }
    }
  }

  struct DepSlot {
    int producer = -1;
    std::vector<int> consumers;
  };

  const StreamProgram& program_;
  const StreamCheckOptions& opts_;
  std::vector<SlotState> slots_;
  std::map<StreamId, DepSlot> dep_slots_;
  std::vector<InstrState> st_;
  Diagnostics out_;
};

}  // namespace

Diagnostics check_stream_program(const StreamProgram& program,
                                 const StreamCheckOptions& opts) {
  return StreamChecker(program, opts).run();
}

void require_valid_stream_program(const StreamProgram& program,
                                  const StreamCheckOptions& opts) {
  Diagnostics d = check_stream_program(program, opts);
  d.count_into_registry("analysis.stream");
  if (d.errors() > 0) throw CheckFailure(std::move(d));
}

Diagnostics check_scatter_assignment(const ScatterAssignment& a) {
  Diagnostics out;
  for (std::size_t b = 0; b < a.block_rows.size(); ++b) {
    const auto& lanes = a.block_rows[b];
    std::map<std::int64_t, int> first_lane;
    for (std::size_t l = 0; l < lanes.size(); ++l) {
      const std::int64_t row = lanes[l];
      const Location loc{a.name, "block", static_cast<int>(b)};
      if (row < 0 || row >= a.n_rows) {
        out.error("SP016", loc,
                  "lane " + std::to_string(l) + " targets row " +
                      std::to_string(row) + ", outside the force array of " +
                      std::to_string(a.n_rows) + " rows");
        continue;
      }
      if (row == a.trash_row) continue;  // designated padding sink
      auto [it, inserted] = first_lane.try_emplace(row, static_cast<int>(l));
      if (inserted) continue;
      const std::string pair =
          "block " + std::to_string(b) + ": lanes " +
          std::to_string(it->second) + " and " + std::to_string(l) +
          " both update central-force row " + std::to_string(row) +
          " (word address " +
          std::to_string(a.base + static_cast<std::uint64_t>(row) *
                                      static_cast<std::uint64_t>(
                                          a.record_words)) +
          ")";
      if (a.combining) {
        out.note("SP014", loc,
                 pair + "; legal only because the writeback combines through "
                        "the scatter-add unit");
      } else {
        out.error("SP013", loc,
                  pair + " without the scatter-add combining guarantee; "
                         "in-flight updates can lose one contribution");
      }
    }
  }
  return out;
}

}  // namespace smd::analysis
