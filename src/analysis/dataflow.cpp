#include "src/analysis/dataflow.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstddef>
#include <map>
#include <tuple>

namespace smd::analysis {

using kernel::Instr;
using kernel::KernelDef;
using kernel::Opcode;
using kernel::Section;

int Bitset::count() const {
  int n = 0;
  for (std::uint64_t w : words_) n += std::popcount(w);
  return n;
}

bool Bitset::merge(const Bitset& o) {
  bool changed = false;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    const std::uint64_t merged = words_[i] | o.words_[i];
    if (merged != words_[i]) {
      words_[i] = merged;
      changed = true;
    }
  }
  return changed;
}

InstrEffects instr_effects(const Instr& in) {
  InstrEffects e;
  switch (in.op) {
    case Opcode::kConst:
      e.defs.push_back(in.dst);
      break;
    case Opcode::kMov:
      e.uses.push_back(in.a);
      e.defs.push_back(in.dst);
      break;
    case Opcode::kSqrt:
    case Opcode::kRsqrt:
      e.uses.push_back(in.a);
      e.defs.push_back(in.dst);
      break;
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kDiv:
    case Opcode::kCmpEq:
    case Opcode::kCmpLt:
      e.uses = {in.a, in.b};
      e.defs.push_back(in.dst);
      break;
    case Opcode::kMadd:
    case Opcode::kMsub:
    case Opcode::kSel:
      e.uses = {in.a, in.b, in.c};
      e.defs.push_back(in.dst);
      break;
    case Opcode::kRead:
    case Opcode::kReadBcast:
      for (int w = 0; w < in.count; ++w) e.defs.push_back(in.dst + w);
      e.stream = true;
      break;
    case Opcode::kReadCond:
      // Untaken clusters keep the previous destination contents: the dst
      // words are read-modify-write uses and the definition is partial.
      e.pred = in.c;
      e.uses.push_back(in.c);
      for (int w = 0; w < in.count; ++w) {
        e.uses.push_back(in.dst + w);
        e.defs.push_back(in.dst + w);
      }
      e.partial_def = true;
      e.stream = true;
      break;
    case Opcode::kWrite:
      for (int w = 0; w < in.count; ++w) e.uses.push_back(in.a + w);
      e.stream = true;
      break;
    case Opcode::kWriteCond:
      e.pred = in.c;
      e.uses.push_back(in.c);
      for (int w = 0; w < in.count; ++w) e.uses.push_back(in.a + w);
      e.stream = true;
      break;
  }
  return e;
}

const char* section_name(Section s) {
  switch (s) {
    case Section::kPrologue:
      return "prologue";
    case Section::kOuterPre:
      return "outer_pre";
    case Section::kBody:
      return "body";
    case Section::kOuterPost:
      return "outer_post";
  }
  return "?";
}

const std::vector<Instr>& section_instrs(const KernelDef& def, Section s) {
  switch (s) {
    case Section::kPrologue:
      return def.prologue;
    case Section::kOuterPre:
      return def.outer_pre;
    case Section::kBody:
      return def.body;
    case Section::kOuterPost:
      return def.outer_post;
  }
  return def.body;
}

std::optional<double> fold_instr(const Instr& in, double a, double b,
                                 double c) {
  // Every expression below is textually the interpreter's (interp.cpp), so
  // a folded constant carries the exact bits execution would produce.
  switch (in.op) {
    case Opcode::kConst:
      return in.imm;
    case Opcode::kMov:
      return a;
    case Opcode::kAdd:
      return a + b;
    case Opcode::kSub:
      return a - b;
    case Opcode::kMul:
      return a * b;
    case Opcode::kMadd:
      return a * b + c;
    case Opcode::kMsub:
      return a * b - c;
    case Opcode::kDiv:
      return a / b;
    case Opcode::kSqrt:
      return std::sqrt(a);
    case Opcode::kRsqrt:
      return 1.0 / std::sqrt(a);
    case Opcode::kCmpEq:
      return (a == b) ? 1.0 : 0.0;
    case Opcode::kCmpLt:
      return (a < b) ? 1.0 : 0.0;
    case Opcode::kSel:
      return (c != 0.0) ? a : b;
    case Opcode::kRead:
    case Opcode::kReadCond:
    case Opcode::kReadBcast:
    case Opcode::kWrite:
    case Opcode::kWriteCond:
      return std::nullopt;
  }
  return std::nullopt;
}

namespace {

std::uint64_t bits_of(double v) { return std::bit_cast<std::uint64_t>(v); }

/// Lattice meet of two register states: equal bit patterns stay constant
/// (value identity, not ==, so -0.0 vs 0.0 and NaN payloads stay exact).
ConstVal meet_val(const ConstVal& x, const ConstVal& y) {
  if (!x || !y) return std::nullopt;
  if (bits_of(*x) != bits_of(*y)) return std::nullopt;
  return x;
}

/// into = meet(into, from); returns true if anything changed.
bool meet_env(ConstEnv& into, const ConstEnv& from) {
  bool changed = false;
  for (std::size_t r = 0; r < into.size(); ++r) {
    const ConstVal m = meet_val(into[r], from[r]);
    const bool was = into[r].has_value();
    if (was != m.has_value() ||
        (was && bits_of(*into[r]) != bits_of(*m))) {
      into[r] = m;
      changed = true;
    }
  }
  return changed;
}

}  // namespace

void apply_const_transfer(const Instr& in, ConstEnv& env) {
  switch (in.op) {
    case Opcode::kRead:
    case Opcode::kReadBcast:
    case Opcode::kReadCond:
      // Loaded (or, for READ_COND, possibly-loaded) words are unknown.
      for (int w = 0; w < in.count; ++w) {
        env[static_cast<std::size_t>(in.dst + w)] = std::nullopt;
      }
      return;
    case Opcode::kWrite:
    case Opcode::kWriteCond:
      return;
    case Opcode::kConst:
      env[static_cast<std::size_t>(in.dst)] = in.imm;
      return;
    case Opcode::kMov:
      env[static_cast<std::size_t>(in.dst)] =
          env[static_cast<std::size_t>(in.a)];
      return;
    case Opcode::kSel: {
      // A constant predicate statically selects one input, so the result
      // state is exactly that input's state even when it is not constant.
      const ConstVal& pred = env[static_cast<std::size_t>(in.c)];
      if (pred.has_value()) {
        env[static_cast<std::size_t>(in.dst)] =
            (*pred != 0.0) ? env[static_cast<std::size_t>(in.a)]
                           : env[static_cast<std::size_t>(in.b)];
        return;
      }
      env[static_cast<std::size_t>(in.dst)] = std::nullopt;
      return;
    }
    default:
      break;
  }
  const InstrEffects e = instr_effects(in);
  double vals[3] = {0.0, 0.0, 0.0};
  bool all_const = true;
  const int srcs[3] = {in.a, in.b, in.c};
  for (int i = 0; i < 3; ++i) {
    if (srcs[i] < 0) continue;
    bool used = false;
    for (int u : e.uses) used = used || (u == srcs[i]);
    if (!used) continue;
    const ConstVal& v = env[static_cast<std::size_t>(srcs[i])];
    if (!v) {
      all_const = false;
      break;
    }
    vals[i] = *v;
  }
  ConstVal result;
  if (all_const) result = fold_instr(in, vals[0], vals[1], vals[2]);
  env[static_cast<std::size_t>(in.dst)] = result;
}

KernelDataflow::KernelDataflow(const KernelDef& def)
    : def_(&def), n_regs_(def.n_regs), has_body_loop_(def.block_len > 1) {
  n_points_ = 0;
  for (Section s : kSectionOrder) {
    n_points_ += static_cast<int>(section_instrs(def, s).size()) + 1;
  }
  run_reaching();
  run_liveness();
  run_constants();
  run_lvn();
}

// ---- Liveness. --------------------------------------------------------------

namespace {

/// Backward liveness transfer of one instruction.
void live_transfer(const Instr& in, Bitset& live) {
  const InstrEffects e = instr_effects(in);
  if (!e.partial_def) {
    for (int d : e.defs) live.reset(d);
  }
  for (int u : e.uses) live.set(u);
}

}  // namespace

void KernelDataflow::run_liveness() {
  for (Section s : kSectionOrder) {
    auto& st = state_[static_cast<std::size_t>(s)];
    st.live.assign(section_instrs(*def_, s).size() + 1, Bitset(n_regs_));
  }
  auto entry = [&](Section s) -> const Bitset& {
    return state(s).live.front();
  };

  bool changed = true;
  while (changed) {
    changed = false;
    const Section rev[4] = {Section::kOuterPost, Section::kBody,
                            Section::kOuterPre, Section::kPrologue};
    for (Section s : rev) {
      Bitset cur(n_regs_);
      switch (s) {
        case Section::kOuterPost:
          cur.merge(entry(Section::kOuterPre));  // next round (kernel exit
          break;                                 // contributes nothing)
        case Section::kBody:
          cur.merge(entry(Section::kOuterPost));
          if (has_body_loop_) cur.merge(entry(Section::kBody));
          break;
        case Section::kOuterPre:
          cur.merge(entry(Section::kBody));
          break;
        case Section::kPrologue:
          cur.merge(entry(Section::kOuterPre));
          break;
      }
      auto& st = state_[static_cast<std::size_t>(s)];
      const auto& instrs = section_instrs(*def_, s);
      const int n = static_cast<int>(instrs.size());
      if (!(st.live[static_cast<std::size_t>(n)] == cur)) {
        st.live[static_cast<std::size_t>(n)] = cur;
        changed = true;
      }
      for (int i = n - 1; i >= 0; --i) {
        live_transfer(instrs[static_cast<std::size_t>(i)], cur);
        if (!(st.live[static_cast<std::size_t>(i)] == cur)) {
          st.live[static_cast<std::size_t>(i)] = cur;
          changed = true;
        }
      }
    }
  }

  max_pressure_ = 0;
  for (Section s : kSectionOrder) {
    for (const Bitset& b : state(s).live) {
      max_pressure_ = std::max(max_pressure_, b.count());
    }
  }
}

const Bitset& KernelDataflow::live_before(Section s, int idx) const {
  return state(s).live[static_cast<std::size_t>(idx)];
}

const Bitset& KernelDataflow::live_after(Section s, int idx) const {
  return state(s).live[static_cast<std::size_t>(idx) + 1];
}

const Bitset& KernelDataflow::live_in(Section s) const {
  return state(s).live.front();
}

std::vector<LiveRange> KernelDataflow::live_ranges() const {
  std::vector<LiveRange> out;
  for (int r = 0; r < n_regs_; ++r) {
    LiveRange lr;
    lr.reg = r;
    int point = 0;
    for (Section s : kSectionOrder) {
      for (const Bitset& b : state(s).live) {
        if (b.test(r)) {
          if (lr.first_point < 0) lr.first_point = point;
          lr.last_point = point;
          ++lr.live_points;
        }
        ++point;
      }
    }
    if (lr.live_points > 0) out.push_back(lr);
  }
  return out;
}

// ---- Reaching definitions. --------------------------------------------------

void KernelDataflow::run_reaching() {
  def_sites_.clear();
  defs_of_reg_.assign(static_cast<std::size_t>(n_regs_), {});
  // Implicit zero-initialization definitions, one per register, ids [0, R).
  for (int r = 0; r < n_regs_; ++r) {
    def_sites_.push_back({Section::kPrologue, -1, r});
    defs_of_reg_[static_cast<std::size_t>(r)].push_back(r);
  }
  // ids_by_instr[sec][i] lists this instruction's def ids, parallel to
  // instr_effects(...).defs.
  std::vector<std::vector<int>> ids_by_instr[4];
  for (Section s : kSectionOrder) {
    const auto& instrs = section_instrs(*def_, s);
    auto& ids = ids_by_instr[static_cast<std::size_t>(s)];
    ids.resize(instrs.size());
    for (std::size_t i = 0; i < instrs.size(); ++i) {
      for (int d : instr_effects(instrs[i]).defs) {
        const int id = static_cast<int>(def_sites_.size());
        def_sites_.push_back({s, static_cast<int>(i), d});
        defs_of_reg_[static_cast<std::size_t>(d)].push_back(id);
        ids[i].push_back(id);
      }
    }
  }
  const int n_defs = static_cast<int>(def_sites_.size());

  for (Section s : kSectionOrder) {
    auto& st = state_[static_cast<std::size_t>(s)];
    st.reach.assign(section_instrs(*def_, s).size() + 1, Bitset(n_defs));
  }
  Bitset implicit(n_defs);
  for (int r = 0; r < n_regs_; ++r) implicit.set(r);

  auto out = [&](Section s) -> const Bitset& { return state(s).reach.back(); };

  bool changed = true;
  while (changed) {
    changed = false;
    for (Section s : kSectionOrder) {
      Bitset cur(n_defs);
      switch (s) {
        case Section::kPrologue:
          cur = implicit;
          break;
        case Section::kOuterPre:
          cur.merge(out(Section::kPrologue));
          cur.merge(out(Section::kOuterPost));
          break;
        case Section::kBody:
          cur.merge(out(Section::kOuterPre));
          if (has_body_loop_) cur.merge(out(Section::kBody));
          break;
        case Section::kOuterPost:
          cur.merge(out(Section::kBody));
          break;
      }
      auto& st = state_[static_cast<std::size_t>(s)];
      const auto& instrs = section_instrs(*def_, s);
      const auto& ids = ids_by_instr[static_cast<std::size_t>(s)];
      for (std::size_t i = 0; i < instrs.size(); ++i) {
        if (!(st.reach[i] == cur)) {
          st.reach[i] = cur;
          changed = true;
        }
        const InstrEffects e = instr_effects(instrs[i]);
        if (!e.partial_def) {
          for (int d : e.defs) {
            for (int id : defs_of_reg_[static_cast<std::size_t>(d)]) {
              cur.reset(id);
            }
          }
        }
        for (int id : ids[i]) cur.set(id);
      }
      if (!(st.reach.back() == cur)) {
        st.reach.back() = cur;
        changed = true;
      }
    }
  }
}

std::vector<DefSite> KernelDataflow::reaching_defs(Section s, int idx,
                                                   int reg) const {
  std::vector<DefSite> out;
  const Bitset& reach = state(s).reach[static_cast<std::size_t>(idx)];
  for (int id : defs_of_reg_[static_cast<std::size_t>(reg)]) {
    if (reach.test(id)) out.push_back(def_sites_[static_cast<std::size_t>(id)]);
  }
  return out;
}

bool KernelDataflow::unique_reaching_def(Section s, int idx, int reg,
                                         DefSite* site) const {
  const auto defs = reaching_defs(s, idx, reg);
  if (defs.size() != 1) return false;
  *site = defs.front();
  return true;
}

// ---- Constant lattice. ------------------------------------------------------

void KernelDataflow::run_constants() {
  // Entry environments; disengaged optional = section not yet reached.
  std::optional<ConstEnv> in[4];
  in[static_cast<std::size_t>(Section::kPrologue)] =
      ConstEnv(static_cast<std::size_t>(n_regs_), ConstVal(0.0));

  auto flow_out = [&](Section s) -> ConstEnv {
    ConstEnv env = *in[static_cast<std::size_t>(s)];
    for (const Instr& i : section_instrs(*def_, s)) {
      apply_const_transfer(i, env);
    }
    return env;
  };
  auto propagate = [&](Section to, const ConstEnv& env) -> bool {
    auto& slot = in[static_cast<std::size_t>(to)];
    if (!slot) {
      slot = env;
      return true;
    }
    return meet_env(*slot, env);
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (Section s : kSectionOrder) {
      if (!in[static_cast<std::size_t>(s)]) continue;
      const ConstEnv env = flow_out(s);
      switch (s) {
        case Section::kPrologue:
          changed |= propagate(Section::kOuterPre, env);
          break;
        case Section::kOuterPre:
          changed |= propagate(Section::kBody, env);
          break;
        case Section::kBody:
          if (has_body_loop_) changed |= propagate(Section::kBody, env);
          changed |= propagate(Section::kOuterPost, env);
          break;
        case Section::kOuterPost:
          changed |= propagate(Section::kOuterPre, env);
          break;
      }
    }
  }
  for (Section s : kSectionOrder) {
    auto& slot = in[static_cast<std::size_t>(s)];
    state_[static_cast<std::size_t>(s)].const_in =
        slot ? *slot
             : ConstEnv(static_cast<std::size_t>(n_regs_), std::nullopt);
  }
}

const ConstEnv& KernelDataflow::const_env_at_entry(Section s) const {
  return state(s).const_in;
}

// ---- Local value numbering. -------------------------------------------------

void KernelDataflow::run_lvn() {
  redundancies_.clear();
  for (Section s : kSectionOrder) {
    const auto& instrs = section_instrs(*def_, s);
    // Value number of each register's current content; section entry
    // values are unknown-but-fixed, so each register starts distinct.
    std::vector<int> vn(static_cast<std::size_t>(n_regs_));
    int next_vn = n_regs_;
    for (int r = 0; r < n_regs_; ++r) vn[static_cast<std::size_t>(r)] = r;

    struct Entry {
      int vn;
      int holder;
      int instr;
    };
    // Key: opcode, operand value numbers, immediate bits.
    std::map<std::tuple<int, int, int, int, std::uint64_t>, Entry> table;

    for (std::size_t i = 0; i < instrs.size(); ++i) {
      const Instr& in = instrs[i];
      const InstrEffects e = instr_effects(in);
      if (e.stream) {
        // Stream reads produce fresh unknown values (READ_COND merges, so
        // its destinations are fresh too -- value may or may not change).
        for (int d : e.defs) vn[static_cast<std::size_t>(d)] = next_vn++;
        continue;
      }
      if (in.op == Opcode::kMov) {
        vn[static_cast<std::size_t>(in.dst)] = vn[static_cast<std::size_t>(in.a)];
        continue;
      }
      const int va = in.a >= 0 ? vn[static_cast<std::size_t>(in.a)] : -1;
      const int vb = in.b >= 0 ? vn[static_cast<std::size_t>(in.b)] : -1;
      const int vc = in.c >= 0 ? vn[static_cast<std::size_t>(in.c)] : -1;
      const std::uint64_t ib =
          in.op == Opcode::kConst ? bits_of(in.imm) : 0;
      const auto key = std::make_tuple(static_cast<int>(in.op), va, vb, vc, ib);
      auto it = table.find(key);
      if (it != table.end() &&
          vn[static_cast<std::size_t>(it->second.holder)] == it->second.vn) {
        // The value is still held in a register: this is a recomputation.
        redundancies_.push_back({s, static_cast<int>(i), it->second.instr,
                                 it->second.holder,
                                 in.op == Opcode::kConst});
        vn[static_cast<std::size_t>(in.dst)] = it->second.vn;
        continue;
      }
      const int v = (it != table.end()) ? it->second.vn : next_vn++;
      table[key] = Entry{v, in.dst, static_cast<int>(i)};
      vn[static_cast<std::size_t>(in.dst)] = v;
    }
  }
}

// ---- Dynamic pressure oracle. -----------------------------------------------

int dynamic_lrf_pressure(const KernelDef& def, int rounds) {
  // Concrete execution order of one run with `rounds` rounds.
  std::vector<const Instr*> trace;
  for (const Instr& i : def.prologue) trace.push_back(&i);
  for (int round = 0; round < rounds; ++round) {
    for (const Instr& i : def.outer_pre) trace.push_back(&i);
    for (int l = 0; l < def.block_len; ++l) {
      for (const Instr& i : def.body) trace.push_back(&i);
    }
    for (const Instr& i : def.outer_post) trace.push_back(&i);
  }
  // Walk backward: at each boundary, `live` is exactly the set of registers
  // whose current value some later instruction of the trace reads before a
  // (full) overwrite.
  Bitset live(def.n_regs);
  int peak = 0;
  for (std::size_t t = trace.size(); t-- > 0;) {
    live_transfer(*trace[t], live);
    peak = std::max(peak, live.count());
  }
  return peak;
}

}  // namespace smd::analysis
