// Worklist dataflow analysis over the four-section kernel IR.
//
// The kernel execution model (interp.h) is a fixed control-flow skeleton:
//
//   prologue                                   once per invocation
//   round loop:  outer_pre                     once per block
//                body x block_len              per iteration
//                outer_post                    once per block
//
// which this engine models as a four-node CFG with edges
//   prologue -> outer_pre -> body -> outer_post -> outer_pre (next round)
// plus body -> body when block_len > 1. Every analysis below is a
// fixpoint over that graph, honoring the semantics the interpreter
// actually implements:
//
//   * registers are zero-initialized, so the constant lattice starts every
//     register at the constant 0.0 rather than "unknown";
//   * READ_COND is a partial kill -- untaken clusters keep the previous
//     register contents, so its destinations are merge-style uses and its
//     definitions do not kill prior reaching definitions;
//   * WRITE_COND kills nothing and additionally reads its predicate.
//
// Provided analyses:
//   * liveness         -- per-point live sets, exact live ranges, and the
//                         exact peak LRF pressure (max simultaneously-live
//                         registers over the linearized execution order);
//   * reaching defs    -- per-point definition sets with unique-reaching-
//                         definition queries (the copy-propagation oracle);
//   * constant lattice -- per-register {const c | non-const} values at
//                         section entries plus a bit-exact transfer
//                         function shared with the optimizer's folder;
//   * local value numbering -- per-section redundant-computation records
//                         (the CSE oracle; IR018).
//
// Consumers: verify_ir.cpp (checks IR017-IR024), kernel/opt.cpp (the
// verified optimizer), and smdcheck --dataflow (per-kernel reports).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/kernel/ir.h"

namespace smd::analysis {

/// Dense bitset sized at construction; the unit of all fixpoint state.
class Bitset {
 public:
  Bitset() = default;
  explicit Bitset(int bits)
      : n_(bits), words_(static_cast<std::size_t>((bits + 63) / 64), 0) {}

  void set(int i) { words_[static_cast<std::size_t>(i >> 6)] |= 1ULL << (i & 63); }
  void reset(int i) { words_[static_cast<std::size_t>(i >> 6)] &= ~(1ULL << (i & 63)); }
  bool test(int i) const {
    return (words_[static_cast<std::size_t>(i >> 6)] >> (i & 63)) & 1ULL;
  }
  int size() const { return n_; }
  int count() const;

  /// this |= o; returns true if any bit changed.
  bool merge(const Bitset& o);
  bool operator==(const Bitset& o) const { return words_ == o.words_; }

 private:
  int n_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Register effects of one instruction, in the interpreter's semantics.
struct InstrEffects {
  std::vector<int> uses;  ///< registers read (incl. predicate, merge dsts)
  std::vector<int> defs;  ///< registers written
  int pred = -1;          ///< predicate of a conditional access, else -1
  bool partial_def = false;  ///< defs may not happen (READ_COND merge)
  bool stream = false;       ///< has stream side effects (never removable)
};

InstrEffects instr_effects(const kernel::Instr& in);

/// "prologue" / "outer_pre" / "body" / "outer_post".
const char* section_name(kernel::Section s);

/// The four sections in execution order.
inline constexpr kernel::Section kSectionOrder[4] = {
    kernel::Section::kPrologue, kernel::Section::kOuterPre,
    kernel::Section::kBody, kernel::Section::kOuterPost};

/// Instruction list of one section.
const std::vector<kernel::Instr>& section_instrs(const kernel::KernelDef& def,
                                                 kernel::Section s);

/// One definition site. instr == -1 names the implicit zero-initialization
/// of the register at kernel entry.
struct DefSite {
  kernel::Section sec = kernel::Section::kPrologue;
  int instr = -1;
  int reg = -1;
};

/// Constant-lattice value of one register: engaged => known constant with
/// those exact bits; disengaged => non-constant. (There is no "unreached"
/// element in the exposed state: registers start as the constant 0.0.)
using ConstVal = std::optional<double>;
using ConstEnv = std::vector<ConstVal>;

/// Bit-exact constant evaluation of a pure instruction given constant
/// operands -- the same double expressions the interpreter executes, so a
/// folded kernel stays bit-identical. Returns nullopt for stream ops.
std::optional<double> fold_instr(const kernel::Instr& in, double a, double b,
                                 double c);

/// Apply one instruction's transfer to a constant environment in place.
void apply_const_transfer(const kernel::Instr& in, ConstEnv& env);

/// A per-section redundant computation found by local value numbering:
/// `instr` recomputes the value `prior` already produced, still held in
/// register `holder` when `instr` executes.
struct Redundancy {
  kernel::Section sec = kernel::Section::kBody;
  int instr = -1;
  int prior = -1;
  int holder = -1;
  bool free_op = false;  ///< the duplicate costs no FPU slot (kConst/kMov)
};

/// Exact live range of one register over the linearized point order
/// (prologue, outer_pre, body, outer_post back to back).
struct LiveRange {
  int reg = -1;
  int first_point = -1;  ///< linear index of the first live point
  int last_point = -1;
  int live_points = 0;   ///< points at which the register is live
};

class KernelDataflow {
 public:
  /// Runs every analysis to fixpoint. The definition must be structurally
  /// valid (register/stream indices in range) -- run the IR verifier's
  /// structural pass first; out-of-range operands here are UB.
  explicit KernelDataflow(const kernel::KernelDef& def);

  const kernel::KernelDef& def() const { return *def_; }

  // ---- Liveness. ----------------------------------------------------------

  /// Registers live immediately before instruction `idx` of `s`
  /// (idx == 0 is the section entry point).
  const Bitset& live_before(kernel::Section s, int idx) const;
  /// Registers live immediately after instruction `idx` of `s`.
  const Bitset& live_after(kernel::Section s, int idx) const;
  /// Live set at the section entry (== live_before(s, 0) for non-empty
  /// sections; defined for empty sections too).
  const Bitset& live_in(kernel::Section s) const;

  /// Exact peak LRF pressure: max |live set| over every point of the
  /// linearized execution order.
  int max_live_pressure() const { return max_pressure_; }

  /// Exact live ranges, one entry per register that is ever live.
  std::vector<LiveRange> live_ranges() const;

  /// Total number of linearized points (for report denominators).
  int n_points() const { return n_points_; }

  // ---- Reaching definitions. ----------------------------------------------

  /// All definitions of `reg` reaching the point before instruction `idx`.
  std::vector<DefSite> reaching_defs(kernel::Section s, int idx, int reg) const;
  /// True iff exactly one definition site of `reg` reaches the point
  /// before `idx` of `s`; fills `*site` with it.
  bool unique_reaching_def(kernel::Section s, int idx, int reg,
                           DefSite* site) const;

  // ---- Constant lattice. ---------------------------------------------------

  /// Constant environment at the entry of section `s` (fixpoint over the
  /// CFG). Walk forward with apply_const_transfer for per-point values.
  const ConstEnv& const_env_at_entry(kernel::Section s) const;

  // ---- Local value numbering. ----------------------------------------------

  /// Per-section redundant computations, in section/instruction order.
  const std::vector<Redundancy>& redundancies() const { return redundancies_; }

 private:
  struct SectionState {
    // live_[i] = live set before instruction i; live_[n] = section live-out.
    std::vector<Bitset> live;
    // reach_[i] = def ids reaching the point before instruction i;
    // reach_[n] = section reach-out.
    std::vector<Bitset> reach;
    ConstEnv const_in;
  };

  const SectionState& state(kernel::Section s) const {
    return state_[static_cast<std::size_t>(s)];
  }

  void run_liveness();
  void run_reaching();
  void run_constants();
  void run_lvn();

  const kernel::KernelDef* def_;
  int n_regs_ = 0;
  bool has_body_loop_ = false;

  SectionState state_[4];
  std::vector<DefSite> def_sites_;            ///< def id -> site
  std::vector<std::vector<int>> defs_of_reg_; ///< reg -> def ids
  std::vector<Redundancy> redundancies_;
  int max_pressure_ = 0;
  int n_points_ = 0;
};

/// Measurement oracle for the static pressure claim: replay the kernel's
/// concrete execution order for `rounds` rounds (each outer_pre, block_len
/// bodies, outer_post) and return the max number of registers whose
/// current value is still needed by a later instruction of the trace
/// (READ_COND destinations count as read-modify-write, matching the
/// static merge semantics). With rounds >= 3 this equals
/// KernelDataflow::max_live_pressure() -- asserted per built-in kernel in
/// tests and by `smdcheck --dataflow`.
int dynamic_lrf_pressure(const kernel::KernelDef& def, int rounds = 3);

}  // namespace smd::analysis
