// Static checker for stream-level programs (the second smdcheck pass).
//
// Validates a sim::StreamProgram -- the sequence of stream memory
// operations and kernel invocations the scalar core issues to the stream
// unit -- before the controller executes it, plus a standalone race check
// over a blocking scheme's scatter assignment.
//
// The concurrency model mirrors the stream controller exactly: it executes
// out of order subject to RAW dependences on a slot's producer and WAW/WAR
// dependences on overwrites, so two memory operations with no dependence
// path between them are potentially in flight together. The race detector
// takes the transitive closure of that dependence graph and checks every
// unordered pair of memory operations for address overlap; overlapping
// concurrent updates are legal only when both go through the scatter-add
// units, whose read-modify-write combining is the paper's Section 4
// correctness argument for colliding force updates.
//
// Check-ID catalogue (severity in parentheses; see DESIGN.md):
//   SP001 (error)   stream slot out of range / negative declared capacity
//   SP002 (error)   guaranteed read of a stream slot with no prior producing
//                   load/kernel (consumers that provably never touch the
//                   slot, e.g. a zero-round kernel, are exempt)
//   SP003 (warning) overwrite of a slot whose previous value was never read
//   SP004 (note)    slot produced more than once: consecutive uses serialize
//                   on WAW/WAR dependences (consider a second buffer)
//   SP005 (error)   kernel op with null def or binding arity mismatch
//   SP006 (error)   kernel invoked with negative rounds
//           (warning) ... with zero rounds (prologue only, no body work)
//   SP007 (error)   guaranteed kernel consumption (or production, or memory
//                   transfer size) exceeds the slot's declared capacity
//   SP008 (error)   transfer address range exceeds the memory extent
//   SP009 (error)   gather/scatter index-stream length != n_records
//   SP010 (error)   duplicate target record within one non-combining scatter
//                   (lost update inside a single store)
//   SP011 (error)   write-write address overlap between two potentially
//                   concurrent memory ops outside the scatter-add guarantee
//   SP012 (error)   read-write address overlap between two potentially
//                   concurrent memory ops
//   SP013 (error)   scatter-assignment collision: two lanes of one block
//                   update the same central-force address without the
//                   scatter-add combining guarantee
//   SP014 (note)    scatter-assignment duplicate covered by scatter-add
//   SP015 (error)   declared slot capacity exceeds the whole SRF
//   SP016 (error)   scatter-assignment row out of range
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/analysis/diag.h"
#include "src/sim/streamop.h"

namespace smd::analysis {

struct StreamCheckOptions {
  /// Name used as the diagnostic unit.
  std::string program_name = "stream_program";
  /// SIMD width: plain kernel reads/writes consume one record per cluster.
  int n_clusters = 16;
  /// Global-memory extent in words; 0 disables the SP008 range checks.
  std::int64_t memory_words = 0;
  /// Total SRF capacity in words; 0 disables the SP015 capacity check.
  std::int64_t srf_words = 0;
};

/// Run all stream-program checks; never throws.
Diagnostics check_stream_program(const sim::StreamProgram& program,
                                 const StreamCheckOptions& opts = {});

/// Pre-flight entry point used by the stream controller: counts findings
/// into the global registry under "analysis.stream" and throws
/// CheckFailure when the checker reports errors.
void require_valid_stream_program(const sim::StreamProgram& program,
                                  const StreamCheckOptions& opts = {});

// ---------------------------------------------------------------------------
// Scatter-assignment race check (blocking schemes).
// ---------------------------------------------------------------------------

/// A blocking scheme's interaction assignment, reduced to what the race
/// check needs: for every block (one kernel round of a central group), the
/// central-force row each SIMD lane updates. Padding lanes point at the
/// trash row, which is a designated sink and exempt from collision checks.
struct ScatterAssignment {
  std::string name = "scatter_assignment";
  std::int64_t n_rows = 0;      ///< addressable force rows (incl. trash)
  std::int64_t trash_row = -1;  ///< padding sink; -1 = none
  /// True when the writeback goes through the scatter-add units, whose
  /// memory-side combining serializes colliding updates.
  bool combining = true;
  /// Word address of force row 0 and words per row, for naming the
  /// concrete colliding address in diagnostics.
  std::uint64_t base = 0;
  int record_words = 9;
  /// blocks x lanes: the force row each lane of each block updates.
  std::vector<std::vector<std::int64_t>> block_rows;
};

/// Prove the assignment collision-free (or report each colliding
/// (block, address) pair). Duplicates under `combining` are reported as
/// SP014 notes so the reliance on the scatter-add unit stays visible.
Diagnostics check_scatter_assignment(const ScatterAssignment& assignment);

}  // namespace smd::analysis
