// Static verifier + lint for kernel IR (the first smdcheck pass).
//
// Checks a kernel::Program-level KernelDef before it reaches the
// interpreter or the VLIW scheduler, turning silent out-of-range register
// reads and SIMD-illegal stream usage into stable, located diagnostics.
//
// Check-ID catalogue (severity in parentheses; see DESIGN.md):
//   IR001 (error)   register index out of range for the declared LRF size
//   IR002 (error)   stream slot out of range
//   IR003 (error)   use of a register that is never defined
//   IR004 (warning) register may be read before its first definition on the
//                   first iteration (relies on zero-initialized LRF);
//                   merge-style instructions whose destination is also a
//                   source (conditional reads, select-accumulate) are exempt
//   IR005 (error)   stream direction mismatch (read of an output stream /
//                   write of an input stream)
//   IR006 (error)   access word count differs from the declared record_words
//   IR007 (error)   conditional access of a non-conditional stream decl
//   IR008 (error)   plain access of a conditional stream decl
//   IR009 (error)   SIMD legality: predicate register of a conditional
//                   access is not defined before the access
//   IR010 (error)   multiple broadcast reads of one stream in the body
//   IR011 (error)   non-positive stream access count
//   IR012 (warning) dead write: computed register value never read
//                   (note-severity when the dead value is a kConst, since
//                   constants are preloaded through the microcode store)
//   IR013 (warning) unused stream declaration
//   IR014 (error)   block_len < 1
//   IR015 (warning) peak LRF pressure exceeds the per-cluster LRF capacity
//   IR016 (note)    per-kernel LRF pressure report (always emitted)
#pragma once

#include "src/analysis/diag.h"
#include "src/kernel/ir.h"

namespace smd::analysis {

struct VerifyOptions {
  /// Per-cluster LRF capacity in words (MachineConfig::lrf_words_per_cluster).
  int lrf_words = 768;
  /// Emit the IR016 pressure note (off for terse pre-flight use).
  bool report_pressure = true;
};

/// Peak register pressure of a kernel: the maximum number of
/// simultaneously-live registers over the linearized section order, with
/// loop-carried registers held live across the whole body.
int kernel_lrf_pressure(const kernel::KernelDef& def);

/// Run all IR checks; never throws.
Diagnostics verify_kernel(const kernel::KernelDef& def,
                          const VerifyOptions& opts = {});

/// Pre-flight entry point used by the interpreter and the scheduler:
/// counts findings into the global registry under "analysis.ir" and throws
/// CheckFailure when the verifier reports errors.
void require_valid_kernel(const kernel::KernelDef& def,
                          const VerifyOptions& opts = {});

}  // namespace smd::analysis
