// Static verifier + lint for kernel IR (the first smdcheck pass).
//
// Checks a kernel::Program-level KernelDef before it reaches the
// interpreter or the VLIW scheduler, turning silent out-of-range register
// reads and SIMD-illegal stream usage into stable, located diagnostics.
//
// Check-ID catalogue (severity in parentheses; see DESIGN.md):
//   IR001 (error)   register index out of range for the declared LRF size
//   IR002 (error)   stream slot out of range
//   IR003 (error)   use of a register that is never defined
//   IR004 (warning) register may be read before its first definition on the
//                   first iteration (relies on zero-initialized LRF);
//                   merge-style instructions whose destination is also a
//                   source (conditional reads, select-accumulate) are exempt
//   IR005 (error)   stream direction mismatch (read of an output stream /
//                   write of an input stream)
//   IR006 (error)   access word count differs from the declared record_words
//   IR007 (error)   conditional access of a non-conditional stream decl
//   IR008 (error)   plain access of a conditional stream decl
//   IR009 (error)   SIMD legality: predicate register of a conditional
//                   access is not defined before the access
//   IR010 (error)   multiple broadcast reads of one stream in the body
//   IR011 (error)   non-positive stream access count
//   IR012 (warning) dead write: computed register value never read
//                   (note-severity when the dead value is a kConst, since
//                   constants are preloaded through the microcode store)
//   IR013 (warning) unused stream declaration
//   IR014 (error)   block_len < 1
//   IR015 (warning) peak LRF pressure exceeds the per-cluster LRF capacity
//   IR016 (note)    per-kernel LRF pressure report (always emitted)
//
// Semantic checks backed by the worklist dataflow engine (dataflow.h);
// gated by VerifyOptions::dataflow and skipped when earlier passes report
// errors (the engine needs a structurally valid kernel):
//   IR017 (warning) dead instruction: the result is overwritten before any
//                   use at this program point (exact liveness; note when
//                   the dead value is a kConst)
//   IR018 (warning) redundant recomputation of a value still available in a
//                   register (local value numbering; note when the
//                   duplicate is a free kConst/kMov)
//   IR019 (warning) arithmetic on provably constant operands: the result
//                   could be folded to a preloaded constant (note in the
//                   prologue, where the cost is paid once per launch)
//   IR020 (note)    copy chain: a kMov whose unique reaching definition is
//                   itself a kMov
//   IR021 (warning) stream read none of whose destination words are ever
//                   used (removable only together with its whole stream:
//                   dropping a single read desyncs the SRF cursor)
//   IR022 (warning) exact peak LRF live-pressure exceeds the per-cluster
//                   LRF capacity (liveness-precise companion of the
//                   interval-based IR015)
//   IR023 (warning) self-overwriting conditional read: the predicate
//                   register lies inside the read's own destination range
//   IR024 (warning) conditional stream access whose predicate is provably
//                   constant: the access is always or never taken
#pragma once

#include "src/analysis/diag.h"
#include "src/kernel/ir.h"

namespace smd::analysis {

struct VerifyOptions {
  /// Per-cluster LRF capacity in words (MachineConfig::lrf_words_per_cluster).
  int lrf_words = 768;
  /// Emit the IR016 pressure note (off for terse pre-flight use).
  bool report_pressure = true;
  /// Run the dataflow-backed semantic checks IR017-IR024. On for
  /// verify_kernel / smdcheck; off in the require_valid_kernel pre-flight,
  /// which runs on every Interpreter construction and schedule_body call
  /// (the semantic checks are warnings-only, so skipping them on the hot
  /// path never hides an error).
  bool dataflow = true;
};

/// Peak register pressure of a kernel: the maximum number of
/// simultaneously-live registers over the linearized section order, with
/// loop-carried registers held live across the whole body.
int kernel_lrf_pressure(const kernel::KernelDef& def);

/// Run all IR checks; never throws.
Diagnostics verify_kernel(const kernel::KernelDef& def,
                          const VerifyOptions& opts = {});

/// Pre-flight entry point used by the interpreter and the scheduler:
/// counts findings into the global registry under "analysis.ir" and throws
/// CheckFailure when the verifier reports errors.
void require_valid_kernel(const kernel::KernelDef& def,
                          const VerifyOptions& opts = {});

}  // namespace smd::analysis
