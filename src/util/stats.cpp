#include "src/util/stats.h"

#include <cmath>
#include <sstream>

namespace smd::util {

void Accumulator::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double Accumulator::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {}

void Histogram::add(double x) {
  // NaN compares false with everything, so it would fall through a clamp,
  // and casting an out-of-range double to an integer is UB -- clamp in the
  // double domain first and keep NaN out of the buckets entirely.
  if (std::isnan(x)) {
    ++nan_;
    return;
  }
  const double span = hi_ - lo_;
  const double pos = (x - lo_) / span * static_cast<double>(counts_.size());
  const double last = static_cast<double>(counts_.size() - 1);
  const auto idx =
      static_cast<std::size_t>(std::clamp(pos, 0.0, last));
  ++counts_[idx];
  ++total_;
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

std::string Histogram::ascii(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(width));
    os << "[" << bucket_lo(i) << ") " << std::string(bar, '#') << " "
       << counts_[i] << "\n";
  }
  return os.str();
}

double rel_err(double a, double b, double floor) {
  const double denom = std::max({std::fabs(a), std::fabs(b), floor});
  return std::fabs(a - b) / denom;
}

}  // namespace smd::util
