#include "src/util/table.h"

#include <cassert>
#include <cctype>
#include <iomanip>
#include <sstream>

namespace smd::util {
namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '.' || c == '-' ||
          c == '+' || c == 'e' || c == 'E' || c == '%' || c == ',' || c == 'x')) {
      return false;
    }
  }
  return true;
}

}  // namespace

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::integer(long long v) {
  // Thousands separators for readability of interaction counts.
  std::string raw = std::to_string(v < 0 ? -v : v);
  std::string out;
  int group = 0;
  for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
    if (group == 3) {
      out.push_back(',');
      group = 0;
    }
    out.push_back(*it);
    ++group;
  }
  if (v < 0) out.push_back('-');
  return {out.rbegin(), out.rend()};
}

std::string Table::percent(double fraction, int precision) {
  return num(fraction * 100.0, precision) + "%";
}

std::string Table::render() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  }

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const bool right = looks_numeric(cells[c]);
      os << (c ? "  " : "") << (right ? std::right : std::left)
         << std::setw(static_cast<int>(width[c])) << cells[c];
    }
    os << "\n";
  };
  emit(headers_);
  std::size_t total = 0;
  for (auto w : width) total += w;
  os << std::string(total + 2 * (headers_.size() - 1), '-') << "\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace smd::util
