#include "src/util/rng.h"

#include <cmath>

namespace smd::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  have_cached_normal_ = false;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_u64(std::uint64_t n) {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = n * ((~0ULL) / n);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % n;
}

double Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  double u2 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

}  // namespace smd::util
