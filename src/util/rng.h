// Deterministic pseudo-random number generation for reproducible datasets.
//
// We use xoshiro256** (Blackman & Vigna), a small, fast, high-quality
// generator, rather than std::mt19937 so that streams are identical across
// standard-library implementations. All dataset builders take an explicit
// seed; the default seed is fixed so every experiment is reproducible.
#pragma once

#include <cstdint>

namespace smd::util {

/// xoshiro256** PRNG with splitmix64 seeding.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = kDefaultSeed) { reseed(seed); }

  /// Re-initialize the state from a single 64-bit seed via splitmix64.
  void reseed(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_u64(std::uint64_t n);

  /// Standard normal variate (Box-Muller, one value per call).
  double normal();

  static constexpr std::uint64_t kDefaultSeed = 0x5eed5eed5eed5eedULL;

 private:
  std::uint64_t s_[4] = {};
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace smd::util
