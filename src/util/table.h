// Minimal aligned-column table printer used by the paper-table benches so
// every reproduced table/figure prints in a uniform, diff-friendly format.
#pragma once

#include <string>
#include <vector>

namespace smd::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format a double with the given precision.
  static std::string num(double v, int precision = 2);
  static std::string integer(long long v);
  static std::string percent(double fraction, int precision = 1);

  /// Render with a header rule and right-aligned numeric-looking cells.
  std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace smd::util
