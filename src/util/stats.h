// Lightweight statistics accumulators used by the simulator and benches.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace smd::util {

/// Streaming mean/variance/min/max accumulator (Welford).
class Accumulator {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< Sample variance (n-1 denominator).
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bucket histogram over [lo, hi); out-of-range values (including
/// +/-inf) clamp to the edge buckets, NaN inputs are counted separately
/// and excluded from the buckets. Used for neighbor-count distributions
/// and latency plots.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
  double bucket_lo(std::size_t i) const;
  std::uint64_t total() const { return total_; }
  std::uint64_t nan_count() const { return nan_; }

  /// Render as a compact ASCII bar chart.
  std::string ascii(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t nan_ = 0;
};

/// Relative error |a-b| / max(|a|,|b|,floor).
double rel_err(double a, double b, double floor = 1e-12);

}  // namespace smd::util
