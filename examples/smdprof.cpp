// smdprof: cycle-attribution profiler and benchmark-regression gate.
//
//   smdprof --explain   [--molecules N] [--json path]
//   smdprof --roofline  [--molecules N] [--json path]
//   smdprof --record-baseline path [--molecules N]
//   smdprof --check-baseline path  [--molecules N] [--json path]
//   smdprof --diff baseA baseB
//
// --explain decomposes every cycle of each variant run into the stall
// taxonomy of src/prof/attribution.h (kernel-busy / overlap / exposed
// memory / scatter-add serialization / SDR stall / schedule drain), prints
// per-kernel slices and per-variant waste accounting, and acts as a golden
// check: it exits non-zero if any taxonomy fails to sum exactly to the
// run's total cycles or if the paper's run-time ordering
// (variable < fixed < expanded, Figure 9) does not reproduce.
//
// --roofline places each variant against the machine's compute and DRAM
// bandwidth roofs (Table 4 arithmetic intensities) and reports both the
// model's predicted binding resource and the measured one.
//
// --record-baseline / --check-baseline / --diff drive the regression
// harness of src/prof/baseline.h. The simulator is deterministic, so the
// recorded metrics are byte-stable; --check-baseline re-runs the
// experiment and exits non-zero if any metric worsened beyond its
// tolerance. BENCH_baseline.json at the repo root is the committed
// baseline that scripts/check.sh gates on.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_io.h"
#include "src/core/run.h"
#include "src/obs/json.h"
#include "src/prof/attribution.h"
#include "src/prof/baseline.h"
#include "src/prof/roofline.h"

using namespace smd;

namespace {

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

struct Experiment {
  core::ExperimentSetup setup;
  core::Problem problem;
  sim::MachineConfig cfg;
  std::vector<core::VariantResult> results;
};

Experiment run_experiment(int n_molecules, sim::SimEngine engine) {
  core::ExperimentSetup setup;
  setup.n_molecules = n_molecules;
  std::printf("simulating %d molecules (all four variants, %s engine)...\n",
              n_molecules, sim::engine_name(engine));
  Experiment e{setup, core::Problem::make(setup),
               sim::MachineConfig::merrimac(), {}};
  e.cfg.engine = engine;
  e.results = core::run_all_variants(e.problem, e.cfg);
  return e;
}

const core::VariantResult* by_variant(const Experiment& e, core::Variant v) {
  for (const auto& r : e.results) {
    if (r.variant == v) return &r;
  }
  return nullptr;
}

int run_explain(const Experiment& e, benchio::JsonOut& json) {
  int failures = 0;
  obs::Json variants = obs::Json::array();
  for (const auto& r : e.results) {
    const prof::StallTaxonomy tax = prof::attribute_cycles(r.run);
    const auto slices = prof::kernel_slices(r.run.timeline, r.run.cycles);
    const prof::WasteAccounting waste = prof::waste_accounting(
        r, e.problem.flops_per_interaction, e.setup.n_molecules);
    std::printf("\n=== %s (%.3f ms, %llu cycles) ===\n", r.name.c_str(),
                r.time_ms, static_cast<unsigned long long>(r.run.cycles));
    std::fputs(prof::format_attribution(tax, slices, waste).c_str(), stdout);
    if (!tax.exhaustive()) {
      std::printf("FAIL: taxonomy sums to %llu of %llu cycles\n",
                  static_cast<unsigned long long>(tax.sum()),
                  static_cast<unsigned long long>(tax.total_cycles));
      ++failures;
    }
    // The per-strip windows tile the run, so their taxonomies must re-add
    // to the whole-run decomposition bucket by bucket.
    prof::StallTaxonomy strip_sum;
    const auto strips = prof::strip_attribution(r.run);
    for (const auto& s : strips) strip_sum += s.taxonomy;
    if (strip_sum.sum() != tax.sum() ||
        strip_sum.total_cycles != tax.total_cycles) {
      std::printf("FAIL: %zu strip windows do not re-add to the run total\n",
                  strips.size());
      ++failures;
    }
    std::printf("strips: %zu windows, largest drain %llu cycles\n",
                strips.size(),
                static_cast<unsigned long long>([&] {
                  std::uint64_t worst = 0;
                  for (const auto& s : strips) {
                    if (s.taxonomy.schedule_drain > worst) {
                      worst = s.taxonomy.schedule_drain;
                    }
                  }
                  return worst;
                }()));
    obs::Json jv = obs::Json::object();
    jv.set("variant", r.name);
    jv.set("taxonomy", prof::to_json(tax));
    jv.set("waste", prof::to_json(waste));
    jv.set("n_strips", static_cast<std::int64_t>(strips.size()));
    variants.push_back(std::move(jv));
  }
  json.root().set("explain", std::move(variants));

  // Figure 9 ordering check on run time.
  const auto* expanded = by_variant(e, core::Variant::kExpanded);
  const auto* fixed = by_variant(e, core::Variant::kFixed);
  const auto* variable = by_variant(e, core::Variant::kVariable);
  if (expanded == nullptr || fixed == nullptr || variable == nullptr) {
    std::printf("FAIL: missing variant results\n");
    ++failures;
  } else if (!(variable->time_ms < fixed->time_ms &&
               fixed->time_ms < expanded->time_ms)) {
    std::printf(
        "FAIL: paper ordering variable < fixed < expanded not reproduced "
        "(%.3f / %.3f / %.3f ms)\n",
        variable->time_ms, fixed->time_ms, expanded->time_ms);
    ++failures;
  } else {
    std::printf(
        "\nordering OK: variable %.3f < fixed %.3f < expanded %.3f ms\n",
        variable->time_ms, fixed->time_ms, expanded->time_ms);
  }
  return failures == 0 ? 0 : 1;
}

int run_roofline(const Experiment& e, benchio::JsonOut& json) {
  std::vector<prof::RooflinePoint> points;
  for (const auto& r : e.results) {
    points.push_back(prof::roofline_point(r, e.cfg));
  }
  std::fputs(prof::format_roofline_table(points).c_str(), stdout);
  obs::Json arr = obs::Json::array();
  for (const auto& p : points) arr.push_back(prof::to_json(p));
  json.root().set("roofline", std::move(arr));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    benchio::JsonOut json(argc, argv, "smdprof");

    const std::string diff = benchio::flag_value(argc, argv, "diff");
    if (!diff.empty()) {
      // --diff A B: A is the flag value, B the argument after it.
      std::string other;
      for (int i = 1; i + 2 < argc; ++i) {
        if (std::strcmp(argv[i], "--diff") == 0) other = argv[i + 2];
      }
      if (other.empty()) {
        std::fprintf(stderr, "usage: smdprof --diff baseA baseB\n");
        return 2;
      }
      const prof::Baseline a = prof::Baseline::load(diff);
      const prof::Baseline b = prof::Baseline::load(other);
      const prof::CompareReport rep = prof::compare(a, b);
      std::fputs(prof::format_compare(rep).c_str(), stdout);
      return rep.ok() ? 0 : 1;
    }

    const int n_molecules =
        [&] {
          const std::string v = benchio::flag_value(argc, argv, "molecules");
          return v.empty() ? 900 : std::stoi(v);
        }();

    const std::string record =
        benchio::flag_value(argc, argv, "record-baseline");
    const std::string check = benchio::flag_value(argc, argv, "check-baseline");
    const bool explain = has_flag(argc, argv, "--explain");
    const bool roofline = has_flag(argc, argv, "--roofline");
    if (!explain && !roofline && record.empty() && check.empty()) {
      std::fprintf(stderr,
                   "usage: smdprof --explain | --roofline | "
                   "--record-baseline path | --check-baseline path | "
                   "--diff baseA baseB  [--molecules N] [--json path] "
                   "[--engine stepped|event|lockstep]\n");
      return 2;
    }

    const Experiment e = run_experiment(
        n_molecules, sim::parse_engine(benchio::engine_flag(argc, argv)));
    int status = 0;
    if (explain) status |= run_explain(e, json);
    if (roofline) status |= run_roofline(e, json);

    if (!record.empty()) {
      const prof::Baseline b = prof::Baseline::capture(e.results, e.setup, e.cfg);
      b.write(record);
      std::printf("baseline recorded to %s (%zu variants)\n", record.c_str(),
                  b.variants.size());
    }
    if (!check.empty()) {
      const prof::Baseline base = prof::Baseline::load(check);
      const prof::Baseline cur =
          prof::Baseline::capture(e.results, e.setup, e.cfg);
      const prof::CompareReport rep = prof::compare(base, cur);
      std::fputs(prof::format_compare(rep).c_str(), stdout);
      obs::Json jr = obs::Json::object();
      jr.set("ok", rep.ok());
      jr.set("n_regressions",
             static_cast<std::int64_t>(rep.regressions().size()));
      json.root().set("baseline_check", std::move(jr));
      if (!rep.ok()) status = 1;
    }
    return status;
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "smdprof: %s\n", ex.what());
    return 2;
  }
}
