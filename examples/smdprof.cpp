// smdprof: cycle-attribution profiler and benchmark-regression gate.
//
//   smdprof --explain   [--molecules N] [--json path]
//   smdprof --roofline  [--molecules N] [--json path]
//   smdprof --scaling   [--nodes a,b,c] [--molecules N] [--json path]
//                       [--trace path]
//   smdprof --record-baseline path [--molecules N]
//   smdprof --check-baseline path  [--molecules N] [--json path]
//   smdprof --diff baseA baseB
//
// --explain decomposes every cycle of each variant run into the stall
// taxonomy of src/prof/attribution.h (kernel-busy / overlap / exposed
// memory / scatter-add serialization / SDR stall / schedule drain), prints
// per-kernel slices and per-variant waste accounting, and acts as a golden
// check: it exits non-zero if any taxonomy fails to sum exactly to the
// run's total cycles or if the paper's run-time ordering
// (variable < fixed < expanded, Figure 9) does not reproduce.
//
// --roofline places each variant against the machine's compute and DRAM
// bandwidth roofs (Table 4 arithmetic intensities) and reports both the
// model's predicted binding resource and the measured one.
//
// --scaling runs the multi-node per-node decomposition (src/net/parallel.h
// calibrated from the `variable` run): for every node count it prints the
// compute / communication / serialization / load-imbalance shares of
// total node-time plus the derived metrics (parallel efficiency,
// imbalance ratio, halo fraction, critical node), and acts as a golden
// check -- it exits non-zero if any node count's ParallelTaxonomy fails
// the exact sum-to-total invariant or any per-node ledger does not tile
// the step. --trace exports one Chrome-trace lane per simulated node.
//
// --record-baseline / --check-baseline / --diff drive the regression
// harness of src/prof/baseline.h. The simulator is deterministic, so the
// recorded metrics are byte-stable; --check-baseline re-runs the
// experiment and exits non-zero if any metric worsened beyond its
// tolerance. BENCH_baseline.json at the repo root is the committed
// baseline that scripts/check.sh gates on.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_io.h"
#include "src/core/run.h"
#include "src/net/multinode.h"
#include "src/obs/json.h"
#include "src/obs/trace_event.h"
#include "src/prof/attribution.h"
#include "src/prof/baseline.h"
#include "src/prof/parallel.h"
#include "src/prof/roofline.h"

using namespace smd;

namespace {

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

struct Experiment {
  core::ExperimentSetup setup;
  core::Problem problem;
  sim::MachineConfig cfg;
  std::vector<core::VariantResult> results;
};

Experiment run_experiment(int n_molecules, sim::SimEngine engine,
                          bool variable_only = false) {
  core::ExperimentSetup setup;
  setup.n_molecules = n_molecules;
  std::printf("simulating %d molecules (%s, %s engine)...\n", n_molecules,
              variable_only ? "variable variant" : "all four variants",
              sim::engine_name(engine));
  Experiment e{setup, core::Problem::make(setup),
               sim::MachineConfig::merrimac(), {}};
  e.cfg.engine = engine;
  if (variable_only) {
    e.results.push_back(
        core::run_variant(e.problem, core::Variant::kVariable, e.cfg));
  } else {
    e.results = core::run_all_variants(e.problem, e.cfg);
  }
  return e;
}

const core::VariantResult* by_variant(const Experiment& e, core::Variant v) {
  for (const auto& r : e.results) {
    if (r.variant == v) return &r;
  }
  return nullptr;
}

int run_explain(const Experiment& e, benchio::JsonOut& json) {
  int failures = 0;
  obs::Json variants = obs::Json::array();
  for (const auto& r : e.results) {
    const prof::StallTaxonomy tax = prof::attribute_cycles(r.run);
    const auto slices = prof::kernel_slices(r.run.timeline, r.run.cycles);
    const prof::WasteAccounting waste = prof::waste_accounting(
        r, e.problem.flops_per_interaction, e.setup.n_molecules);
    std::printf("\n=== %s (%.3f ms, %llu cycles) ===\n", r.name.c_str(),
                r.time_ms, static_cast<unsigned long long>(r.run.cycles));
    std::fputs(prof::format_attribution(tax, slices, waste).c_str(), stdout);
    if (!tax.exhaustive()) {
      std::printf("FAIL: taxonomy sums to %llu of %llu cycles\n",
                  static_cast<unsigned long long>(tax.sum()),
                  static_cast<unsigned long long>(tax.total_cycles));
      ++failures;
    }
    // The per-strip windows tile the run, so their taxonomies must re-add
    // to the whole-run decomposition bucket by bucket.
    prof::StallTaxonomy strip_sum;
    const auto strips = prof::strip_attribution(r.run);
    for (const auto& s : strips) strip_sum += s.taxonomy;
    if (strip_sum.sum() != tax.sum() ||
        strip_sum.total_cycles != tax.total_cycles) {
      std::printf("FAIL: %zu strip windows do not re-add to the run total\n",
                  strips.size());
      ++failures;
    }
    std::printf("strips: %zu windows, largest drain %llu cycles\n",
                strips.size(),
                static_cast<unsigned long long>([&] {
                  std::uint64_t worst = 0;
                  for (const auto& s : strips) {
                    if (s.taxonomy.schedule_drain > worst) {
                      worst = s.taxonomy.schedule_drain;
                    }
                  }
                  return worst;
                }()));
    obs::Json jv = obs::Json::object();
    jv.set("variant", r.name);
    jv.set("taxonomy", prof::to_json(tax));
    jv.set("waste", prof::to_json(waste));
    jv.set("n_strips", static_cast<std::int64_t>(strips.size()));
    variants.push_back(std::move(jv));
  }
  json.root().set("explain", std::move(variants));

  // Figure 9 ordering check on run time.
  const auto* expanded = by_variant(e, core::Variant::kExpanded);
  const auto* fixed = by_variant(e, core::Variant::kFixed);
  const auto* variable = by_variant(e, core::Variant::kVariable);
  if (expanded == nullptr || fixed == nullptr || variable == nullptr) {
    std::printf("FAIL: missing variant results\n");
    ++failures;
  } else if (!(variable->time_ms < fixed->time_ms &&
               fixed->time_ms < expanded->time_ms)) {
    std::printf(
        "FAIL: paper ordering variable < fixed < expanded not reproduced "
        "(%.3f / %.3f / %.3f ms)\n",
        variable->time_ms, fixed->time_ms, expanded->time_ms);
    ++failures;
  } else {
    std::printf(
        "\nordering OK: variable %.3f < fixed %.3f < expanded %.3f ms\n",
        variable->time_ms, fixed->time_ms, expanded->time_ms);
  }
  return failures == 0 ? 0 : 1;
}

/// Node counts the baseline pins. Fixed (independent of --nodes) so the
/// committed scaling metrics keep a stable shape across records.
const std::vector<std::int64_t> kBaselineScalingNodes = {1,  2,  4, 8,
                                                         16, 32, 64};

/// Multi-node workload calibrated from the single-node `variable` run,
/// exactly as bench_scaling_multinode calibrates its sweeps.
net::ScalingWorkload scaling_workload(const Experiment& e) {
  const auto* variable = by_variant(e, core::Variant::kVariable);
  if (variable == nullptr) {
    throw std::runtime_error("no `variable` run to calibrate scaling from");
  }
  net::ScalingWorkload w;
  w.n_molecules = e.problem.system.n_molecules();
  w.cutoff = e.setup.cutoff;
  w.flops_per_interaction = e.problem.flops_per_interaction;
  w.words_per_interaction = static_cast<double>(variable->mem_refs) /
                            static_cast<double>(variable->n_real_interactions);
  w.cycles_per_interaction =
      static_cast<double>(variable->run.cycles) /
      static_cast<double>(variable->n_real_interactions);
  w.seed = e.setup.seed;
  return w;
}

std::vector<net::StepBreakdown> scaling_breakdowns(
    const net::ScalingModel& model, const std::vector<std::int64_t>& nodes) {
  std::vector<net::StepBreakdown> out;
  out.reserve(nodes.size());
  for (const auto n : nodes) out.push_back(model.breakdown(n));
  return out;
}

int run_scaling(const Experiment& e, const std::vector<std::int64_t>& nodes,
                benchio::JsonOut& json, const std::string& trace_path) {
  const net::ScalingWorkload w = scaling_workload(e);
  const net::ScalingModel model(w, net::NetworkConfig{});
  const auto breakdowns = scaling_breakdowns(model, nodes);

  std::printf("\n== Per-node parallel decomposition (calibrated: %.3f "
              "cycles/interaction) ==\n%s",
              w.cycles_per_interaction,
              prof::format_parallel_table(breakdowns).c_str());

  // Golden checks: the four buckets must sum exactly to total node-time,
  // every ledger must tile the step, and the partition must conserve
  // molecules -- for every node count.
  int failures = 0;
  obs::Json points = obs::Json::array();
  for (const auto& b : breakdowns) {
    const prof::ParallelTaxonomy tax = prof::attribute_parallel(b);
    if (!tax.exhaustive()) {
      std::printf("FAIL: P=%lld taxonomy sums to %llu of %llu node-ns\n",
                  static_cast<long long>(b.nodes),
                  static_cast<unsigned long long>(tax.sum()),
                  static_cast<unsigned long long>(tax.total_node_ns));
      ++failures;
    }
    std::int64_t owned = 0;
    for (const auto& ledger : b.ledgers) {
      owned += ledger.molecules;
      if (ledger.total_ns() != b.step_ns) {
        std::printf("FAIL: P=%lld node %lld ledger (%llu ns) does not tile "
                    "the %llu ns step\n",
                    static_cast<long long>(b.nodes),
                    static_cast<long long>(ledger.node),
                    static_cast<unsigned long long>(ledger.total_ns()),
                    static_cast<unsigned long long>(b.step_ns));
        ++failures;
      }
    }
    if (owned != w.n_molecules) {
      std::printf("FAIL: P=%lld partition owns %lld of %lld molecules\n",
                  static_cast<long long>(b.nodes),
                  static_cast<long long>(owned),
                  static_cast<long long>(w.n_molecules));
      ++failures;
    }

    const net::ScalingPoint pt = model.at(b.nodes);
    obs::Json jp = prof::to_json(tax);
    jp.set("speedup", pt.speedup)
        .set("efficiency", pt.efficiency)
        .set("halo_fraction", b.halo_fraction)
        .set("imbalance_ratio", b.imbalance_ratio)
        .set("critical_node", b.critical_node);
    obs::Json ledgers = obs::Json::array();
    for (const auto& ledger : b.ledgers) {
      obs::Json jl = obs::Json::object();
      jl.set("node", ledger.node)
          .set("molecules", ledger.molecules)
          .set("halo_molecules", ledger.halo_molecules)
          .set("tier", net::tier_name(ledger.tier))
          .set("halo_gather_ns", ledger.halo_gather_ns)
          .set("compute_ns", ledger.compute_ns)
          .set("force_scatter_ns", ledger.force_scatter_ns)
          .set("network_latency_ns", ledger.network_latency_ns)
          .set("imbalance_wait_ns", ledger.imbalance_wait_ns);
      ledgers.push_back(std::move(jl));
    }
    jp.set("ledgers", std::move(ledgers));
    points.push_back(std::move(jp));
  }
  obs::Json js = obs::Json::object();
  obs::Json jw = obs::Json::object();
  jw.set("n_molecules", w.n_molecules)
      .set("cutoff_nm", w.cutoff)
      .set("words_per_interaction", w.words_per_interaction)
      .set("cycles_per_interaction", w.cycles_per_interaction)
      .set("load_jitter", w.load_jitter)
      .set("seed", w.seed);
  js.set("workload", std::move(jw));
  js.set("points", std::move(points));
  json.root().set("scaling", std::move(js));

  if (!trace_path.empty()) {
    obs::TraceSink sink;
    for (const auto& b : breakdowns) net::append_trace(b, sink);
    sink.write(trace_path);
    std::printf("per-node trace written to %s (%zu slices)\n",
                trace_path.c_str(), sink.size());
  }
  std::printf("scaling decomposition %s (%zu node counts)\n",
              failures == 0 ? "OK" : "FAILED", breakdowns.size());
  return failures == 0 ? 0 : 1;
}

int run_roofline(const Experiment& e, benchio::JsonOut& json) {
  std::vector<prof::RooflinePoint> points;
  for (const auto& r : e.results) {
    points.push_back(prof::roofline_point(r, e.cfg));
  }
  std::fputs(prof::format_roofline_table(points).c_str(), stdout);
  obs::Json arr = obs::Json::array();
  for (const auto& p : points) arr.push_back(prof::to_json(p));
  json.root().set("roofline", std::move(arr));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  static const char* kUsage =
      "smdprof --explain | --roofline | --scaling | --record-baseline path | "
      "--check-baseline path | --diff baseA baseB  [--molecules N] "
      "[--nodes a,b,c] [--json path] [--trace path] "
      "[--engine stepped|event|lockstep]";
  benchio::check_flags(argc, argv, "smdprof", kUsage,
                       {"--molecules", "--nodes", "--json", "--trace",
                        "--engine", "--record-baseline", "--check-baseline",
                        "--diff"},
                       {"--explain", "--roofline", "--scaling"});
  try {
    benchio::JsonOut json(argc, argv, "smdprof");

    const std::string diff = benchio::flag_value(argc, argv, "diff");
    if (!diff.empty()) {
      // --diff A B: A is the flag value, B the argument after it.
      std::string other;
      for (int i = 1; i + 2 < argc; ++i) {
        if (std::strcmp(argv[i], "--diff") == 0) other = argv[i + 2];
      }
      if (other.empty()) {
        std::fprintf(stderr, "usage: smdprof --diff baseA baseB\n");
        return 2;
      }
      const prof::Baseline a = prof::Baseline::load(diff);
      const prof::Baseline b = prof::Baseline::load(other);
      const prof::CompareReport rep = prof::compare(a, b);
      std::fputs(prof::format_compare(rep).c_str(), stdout);
      return rep.ok() ? 0 : 1;
    }

    const int n_molecules = benchio::int_flag_or_exit(
        argc, argv, "smdprof", "molecules", 900, kUsage);

    const std::string record =
        benchio::flag_value(argc, argv, "record-baseline");
    const std::string check = benchio::flag_value(argc, argv, "check-baseline");
    const bool explain = has_flag(argc, argv, "--explain");
    const bool roofline = has_flag(argc, argv, "--roofline");
    const bool scaling = has_flag(argc, argv, "--scaling");
    if (!explain && !roofline && !scaling && record.empty() && check.empty()) {
      std::fprintf(stderr,
                   "usage: smdprof --explain | --roofline | --scaling | "
                   "--record-baseline path | --check-baseline path | "
                   "--diff baseA baseB  [--molecules N] [--nodes a,b,c] "
                   "[--json path] [--trace path] "
                   "[--engine stepped|event|lockstep]\n");
      return 2;
    }

    // Parse --nodes up front: a malformed list must fail with the usual
    // `--flag: message` / exit 2 before the (expensive) simulation runs.
    std::vector<std::int64_t> nodes = kBaselineScalingNodes;
    if (!benchio::flag_value(argc, argv, "nodes").empty()) {
      nodes.clear();
      for (const int n : benchio::int_list_flag_or_exit(
               argc, argv, "smdprof", "nodes", {}, kUsage)) {
        nodes.push_back(n);
      }
    }

    // --scaling only needs the `variable` run it calibrates from; the
    // other modes (and the baseline, which also snapshots per-variant
    // metrics) need all four variants.
    const bool variable_only =
        scaling && !explain && !roofline && record.empty() && check.empty();
    const Experiment e = run_experiment(
        n_molecules, sim::parse_engine(benchio::engine_flag(argc, argv)),
        variable_only);
    int status = 0;
    if (explain) status |= run_explain(e, json);
    if (roofline) status |= run_roofline(e, json);
    if (scaling) {
      status |= run_scaling(e, nodes, json,
                            benchio::flag_value(argc, argv, "trace"));
    }

    // The baseline additionally pins the multi-node decomposition on the
    // fixed default sweep, so scaling metrics are regression-gated like
    // the single-node ones.
    auto capture = [&] {
      prof::Baseline b = prof::Baseline::capture(e.results, e.setup, e.cfg);
      const net::ScalingModel model(scaling_workload(e), net::NetworkConfig{});
      b.capture_scaling(scaling_breakdowns(model, kBaselineScalingNodes));
      return b;
    };
    if (!record.empty()) {
      const prof::Baseline b = capture();
      b.write(record);
      std::printf("baseline recorded to %s (%zu variants, %zu scaling "
                  "points)\n",
                  record.c_str(), b.variants.size(), b.scaling.size());
    }
    if (!check.empty()) {
      const prof::Baseline base = prof::Baseline::load(check);
      const prof::Baseline cur = capture();
      const prof::CompareReport rep = prof::compare(base, cur);
      std::fputs(prof::format_compare(rep).c_str(), stdout);
      obs::Json jr = obs::Json::object();
      jr.set("ok", rep.ok());
      jr.set("n_regressions",
             static_cast<std::int64_t>(rep.regressions().size()));
      json.root().set("baseline_check", std::move(jr));
      if (!rep.ok()) status = 1;
    }
    return status;
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "smdprof: %s\n", ex.what());
    return 2;
  }
}
