// Quickstart: simulate one StreamMD force evaluation on a Merrimac node.
//
// Builds a small water box, runs the paper's fastest variant (`variable`,
// using Merrimac's conditional streams) on the cycle-level simulator,
// validates the forces against the reference implementation, and prints
// the headline statistics. Start here; the other examples go deeper.
#include <cstdio>

#include "src/core/run.h"

using namespace smd;

int main() {
  // 1. Describe the experiment: a 216-molecule SPC water box with a
  //    1 nm cutoff (use 900 for the paper's full dataset).
  core::ExperimentSetup setup;
  setup.n_molecules = 216;
  setup.cutoff = 0.9;

  // 2. Build the problem: system, neighbor list, reference forces.
  const core::Problem problem = core::Problem::make(setup);
  std::printf("water box: %d molecules, %.2f nm cutoff, %lld pair interactions\n",
              problem.system.n_molecules(), setup.cutoff,
              static_cast<long long>(problem.half_list.n_pairs()));

  // 3. Run the `variable` variant on the default Merrimac configuration.
  const core::VariantResult r =
      core::run_variant(problem, core::Variant::kVariable);

  // 4. Report.
  std::printf("\nsimulated one force-evaluation time step on Merrimac:\n");
  std::printf("  cycles                : %llu (%.3f ms at 1 GHz)\n",
              static_cast<unsigned long long>(r.run.cycles), r.time_ms);
  std::printf("  solution GFLOPS       : %.2f\n", r.solution_gflops);
  std::printf("  memory words moved    : %lld\n", static_cast<long long>(r.mem_refs));
  std::printf("  arithmetic intensity  : %.1f flops/word\n", r.ai_measured);
  std::printf("  LRF / SRF / MEM refs  : %.1f%% / %.1f%% / %.1f%%\n",
              100 * r.lrf_fraction, 100 * r.srf_fraction, 100 * r.mem_fraction);
  std::printf("  kernel launches       : %d (software-pipelined strips)\n",
              r.run.n_kernel_launches);
  std::printf("  max force error       : %.2e (vs double-precision reference)\n",
              r.max_force_rel_err);

  return r.max_force_rel_err < 1e-9 ? 0 : 1;
}
