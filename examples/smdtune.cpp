// smdtune: design-space exploration driver over the StreamMD simulator.
//
//   smdtune --paper [--molecules N] [--jobs N] [--cache path] [--json path]
//   smdtune --sweep "axis=v1,v2;axis=lo:hi:step" [--molecules N] [--jobs N]
//           [--cache path] [--prune slack] [--json path] [--verbose]
//   smdtune --list-axes
//
// --paper reproduces the paper's tuned points as a search outcome instead
// of a replayed constant:
//   * the Figure 9 variant ordering (variable > fixed > expanded),
//   * the Section 3.3 fixed-list length L = 8 neighborhood,
//   * the Figure 12 blocking-scheme run-time minimum at a few molecules
//     per cluster (paper regime: memory-bound 2.5x).
// Exit status is non-zero if the variant ordering or the blocking minimum
// fails to reproduce, so the ctest registration is a real golden check.
//
// --sweep evaluates an arbitrary axis product (see tune/space.h for axis
// names) on a worker pool and reports the Pareto front over (run time,
// memory traffic, SRF pressure). Results memoize in --cache: a re-run
// performs zero simulations (verify via tune.cache.hits in the JSON
// report's telemetry snapshot).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_io.h"
#include "src/core/blocking.h"
#include "src/core/report.h"
#include "src/core/run.h"
#include "src/obs/registry.h"
#include "src/tune/pareto.h"
#include "src/tune/runner.h"
#include "src/tune/space.h"
#include "src/util/table.h"

using namespace smd;

namespace {

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

const tune::EvalResult* find_variant(const std::vector<tune::EvalResult>& rs,
                                     core::Variant v) {
  for (const auto& r : rs) {
    if (r.cand.variant == v && r.ok()) return &r;
  }
  return nullptr;
}

double pct(double a, double b) { return (a / b - 1.0) * 100.0; }

/// --paper: the three tuned points of the paper, as a search.
int run_paper(const core::Problem& problem, tune::RunnerOptions ropts,
              benchio::JsonOut& jout) {
  int failures = 0;

  // ---- 1. Variant ordering (Figure 9). ------------------------------------
  std::vector<tune::Candidate> cands;
  for (core::Variant v :
       {core::Variant::kExpanded, core::Variant::kFixed,
        core::Variant::kVariable, core::Variant::kDuplicated}) {
    tune::Candidate c;
    c.variant = v;
    cands.push_back(c);
  }
  tune::Runner runner(problem, ropts);
  const std::vector<tune::EvalResult> variants = runner.run(cands);
  std::printf("== smdtune --paper: variant search (Figure 9) ==\n\n%s\n",
              tune::format_results_table(variants, tune::pareto_front(variants))
                  .c_str());

  const tune::EvalResult* expanded =
      find_variant(variants, core::Variant::kExpanded);
  const tune::EvalResult* fixed = find_variant(variants, core::Variant::kFixed);
  const tune::EvalResult* variable =
      find_variant(variants, core::Variant::kVariable);
  bool ordering_ok = false;
  obs::Json ordering = obs::Json::object();
  if (expanded != nullptr && fixed != nullptr && variable != nullptr) {
    ordering_ok = variable->metrics.time_ms < fixed->metrics.time_ms &&
                  fixed->metrics.time_ms < expanded->metrics.time_ms;
    const double ve = pct(variable->metrics.solution_gflops,
                          expanded->metrics.solution_gflops);
    const double vf = pct(variable->metrics.solution_gflops,
                          fixed->metrics.solution_gflops);
    const double fe =
        pct(fixed->metrics.solution_gflops, expanded->metrics.solution_gflops);
    std::printf("ordering (paper: variable > fixed > expanded; +84%%/+46%%):\n"
                "  variable vs expanded: %+.0f%%\n"
                "  variable vs fixed   : %+.0f%%\n"
                "  fixed vs expanded   : %+.0f%%\n"
                "  ordering %s\n\n",
                ve, vf, fe, ordering_ok ? "REPRODUCED" : "NOT reproduced");
    ordering.set("variable_vs_expanded_pct", ve);
    ordering.set("variable_vs_fixed_pct", vf);
    ordering.set("fixed_vs_expanded_pct", fe);
  } else {
    std::printf("ordering: a variant run failed; cannot check\n\n");
  }
  ordering.set("ok", ordering_ok);
  if (!ordering_ok) ++failures;

  // ---- 2. Fixed-list length L = 8 neighborhood (Section 3.3). --------------
  std::vector<tune::Candidate> lcands;
  for (const int L : {4, 6, 8, 12, 16}) {
    tune::Candidate c;
    c.variant = core::Variant::kFixed;
    c.fixed_list_length = L;
    lcands.push_back(c);
  }
  const std::vector<tune::EvalResult> lsweep = runner.run(lcands);
  std::printf("== fixed-list length L neighborhood (paper tuned L = 8) ==\n\n%s\n",
              tune::format_results_table(lsweep, tune::pareto_front(lsweep))
                  .c_str());
  const std::size_t lbest = tune::best_index(lsweep);
  if (lbest < lsweep.size()) {
    std::printf("best L on this dataset: %d\n\n",
                lsweep[lbest].cand.fixed_list_length);
  }

  // ---- 3. Blocking minimum (Figure 12, paper regime). ----------------------
  // Calibrate the analytic model from the simulated `variable` run, then
  // put it in the paper's memory-bound regime (memory ~2.5x kernel time).
  obs::Json blocking = obs::Json::object();
  bool blocking_ok = false;
  if (variable != nullptr) {
    core::BlockingModelParams params;
    params.cutoff = problem.setup.cutoff;
    params.variable_kernel_cycles =
        static_cast<double>(variable->metrics.kernel_busy_cycles);
    params.variable_memory_cycles = 2.5 * params.variable_kernel_cycles;
    params.variable_words_per_interaction =
        static_cast<double>(variable->metrics.mem_words) /
        static_cast<double>(problem.half_list.n_pairs());
    params.interactions_per_molecule =
        static_cast<double>(problem.half_list.n_pairs()) /
        static_cast<double>(problem.system.n_molecules());
    const core::BlockingModel model(params);
    const std::vector<core::BlockingPoint> sweep = model.sweep(0.6, 4.2, 13);
    const core::BlockingPoint min = model.minimum();
    std::printf("== blocking-scheme minimum (Figure 12, paper regime) ==\n\n%s\n",
                core::format_blocking_table(sweep, min).c_str());
    blocking_ok = min.time_rel < 1.0 && min.size > 0.4 && min.size < 6.0 &&
                  min.molecules >= 1.0 && min.molecules <= 64.0;
    std::printf("minimum: %.2fx variable at cluster size %.2f "
                "(%.1f molecules) -- %s\n\n",
                min.time_rel, min.size, min.molecules,
                blocking_ok ? "interior few-molecule minimum REPRODUCED"
                            : "NOT the paper's shape");
    obs::Json pts = obs::Json::array();
    for (const auto& p : sweep) pts.push_back(core::to_json(p));
    blocking.set("sweep", std::move(pts));
    blocking.set("minimum", core::to_json(min));
  }
  blocking.set("ok", blocking_ok);
  if (!blocking_ok) ++failures;

  jout.root().set("mode", "paper");
  jout.root().set("n_molecules", problem.setup.n_molecules);
  jout.root().set("jobs", ropts.jobs);
  obs::Json vjson = obs::Json::array();
  for (const auto& r : variants) vjson.push_back(tune::to_json(r));
  obs::Json ljson = obs::Json::array();
  for (const auto& r : lsweep) ljson.push_back(tune::to_json(r));
  jout.root().set("variants", std::move(vjson));
  jout.root().set("ordering", std::move(ordering));
  jout.root().set("l_sweep", std::move(ljson));
  if (lbest < lsweep.size()) {
    jout.root().set("best_L", lsweep[lbest].cand.fixed_list_length);
  }
  jout.root().set("blocking", std::move(blocking));
  jout.root().set("telemetry", obs::CounterRegistry::global().to_json());

  std::printf("smdtune --paper: %d of 2 golden points failed\n", failures);
  return failures == 0 ? 0 : 1;
}

int run_sweep(const core::Problem& problem, const std::string& spec,
              tune::RunnerOptions ropts, benchio::JsonOut& jout) {
  const tune::ConfigSpace space = tune::ConfigSpace::parse(spec);
  const std::vector<tune::Candidate> cands = space.enumerate();
  std::printf("== smdtune --sweep: %zu candidates, %d jobs%s ==\n\n",
              cands.size(), ropts.jobs,
              ropts.cache_path.empty()
                  ? ""
                  : (", cache " + ropts.cache_path).c_str());
  tune::Runner runner(problem, ropts);
  const std::vector<tune::EvalResult> results = runner.run(cands);
  const std::vector<std::size_t> front = tune::pareto_front(results);
  std::printf("%s\n", tune::format_results_table(results, front).c_str());
  std::printf("legend: * Pareto-optimal (time, traffic, SRF), c cached, "
              "p pruned\n\n");

  const std::size_t best = tune::best_index(results);
  if (best < results.size()) {
    std::printf("best: %s  (%.3f ms, %.1f Kwords, SRF peak %lld)\n",
                results[best].cand.label().c_str(),
                results[best].metrics.time_ms,
                static_cast<double>(results[best].metrics.mem_words) / 1e3,
                static_cast<long long>(results[best].metrics.srf_peak_words));
  }
  std::printf("best per variant:\n");
  for (const std::size_t i : tune::best_per_variant(results)) {
    std::printf("  %-40s %.3f ms\n", results[i].cand.label().c_str(),
                results[i].metrics.time_ms);
  }
  auto& reg = obs::CounterRegistry::global();
  std::printf("\ncache: %lld hits, %lld misses; %lld simulated, %lld pruned\n",
              static_cast<long long>(reg.counter("tune.cache.hits")),
              static_cast<long long>(reg.counter("tune.cache.misses")),
              static_cast<long long>(reg.counter("tune.evaluated")),
              static_cast<long long>(reg.counter("tune.pruned")));

  obs::Json report = tune::report_json(results);
  jout.root().set("mode", "sweep");
  jout.root().set("spec", spec);
  jout.root().set("n_molecules", problem.setup.n_molecules);
  jout.root().set("jobs", ropts.jobs);
  for (auto& [key, value] : report.items()) jout.root().set(key, value);

  int errors = 0;
  for (const auto& r : results) {
    if (!r.ok()) ++errors;
  }
  return errors == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  static const char* kUsage =
      "smdtune --paper | --sweep \"axis=...\" | --list-axes "
      "[--molecules N] [--jobs N] [--cache path] [--prune slack] "
      "[--json path] [--verbose] [--engine stepped|event|lockstep]";
  benchio::check_flags(argc, argv, "smdtune", kUsage,
                       {"--sweep", "--molecules", "--jobs", "--cache",
                        "--prune", "--json", "--engine"},
                       {"--paper", "--list-axes", "--verbose"});
  benchio::JsonOut jout(argc, argv, "smdtune");

  if (has_flag(argc, argv, "--list-axes")) {
    std::printf("sweep axes (axis=v1,v2 or axis=lo:hi:step, ';'-separated):\n");
    for (const auto& a : tune::axis_names()) std::printf("  %s\n", a.c_str());
    return 0;
  }

  tune::RunnerOptions ropts;
  ropts.jobs = benchio::int_flag_or_exit(argc, argv, "smdtune", "jobs", 1,
                                         kUsage);
  ropts.cache_path = benchio::flag_value(argc, argv, "cache");
  ropts.verbose = has_flag(argc, argv, "--verbose");
  ropts.prune_slack = benchio::double_flag_or_exit(argc, argv, "smdtune",
                                                   "prune", ropts.prune_slack,
                                                   kUsage);
  ropts.engine = sim::parse_engine(benchio::engine_flag(argc, argv));

  core::ExperimentSetup setup;
  setup.n_molecules = benchio::int_flag_or_exit(argc, argv, "smdtune",
                                                "molecules", 900, kUsage);
  const core::Problem problem = core::Problem::make(setup);

  const std::string spec = benchio::flag_value(argc, argv, "sweep");
  try {
    if (has_flag(argc, argv, "--paper")) {
      return run_paper(problem, ropts, jout);
    }
    if (!spec.empty()) {
      return run_sweep(problem, spec, ropts, jout);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "smdtune: %s\n", e.what());
    return 2;
  }
  std::fprintf(stderr,
               "usage: smdtune --paper | --sweep \"axis=...\" | --list-axes\n"
               "       [--molecules N] [--jobs N] [--cache path] "
               "[--prune slack] [--json path] [--verbose]\n"
               "       [--engine stepped|event|lockstep]\n");
  return 2;
}
