// Machine-design ablations: how StreamMD responds when Merrimac's knobs
// move -- the kind of feedback the paper says StreamMD provided "to the
// Merrimac hardware and software development teams" (Section 5.3).
//
// Sweeps: cluster count (compute), DRAM bandwidth (memory), SDR allocation
// policy (overlap), and kernel unrolling (scheduling), all on the
// `variable` variant of a mid-size dataset.
#include <cstdio>

#include "src/core/run.h"
#include "src/util/table.h"

using namespace smd;

namespace {

core::VariantResult run_cfg(const core::Problem& p, sim::MachineConfig cfg) {
  return core::run_variant(p, core::Variant::kVariable, cfg);
}

}  // namespace

int main() {
  core::ExperimentSetup setup;
  setup.n_molecules = 300;
  const core::Problem problem = core::Problem::make(setup);
  std::printf("dataset: %d molecules, %lld interactions\n\n",
              problem.system.n_molecules(),
              static_cast<long long>(problem.half_list.n_pairs()));

  {
    util::Table t({"clusters", "peak GFLOPS", "cycles", "solution GFLOPS",
                   "kernel-bound?"});
    for (int clusters : {4, 8, 16, 32}) {
      sim::MachineConfig cfg = sim::MachineConfig::merrimac();
      cfg.n_clusters = clusters;
      const auto r = run_cfg(problem, cfg);
      t.add_row({std::to_string(clusters), util::Table::num(cfg.peak_gflops(), 0),
                 util::Table::integer(static_cast<long long>(r.run.cycles)),
                 util::Table::num(r.solution_gflops, 2),
                 r.run.kernel_busy_cycles > r.run.mem_busy_cycles ? "yes" : "no"});
    }
    std::printf("compute scaling (cluster count):\n%s\n", t.render().c_str());
  }

  {
    util::Table t({"DRAM GB/s", "cycles", "solution GFLOPS"});
    for (double wpc : {0.15, 0.3, 0.6, 1.2}) {
      sim::MachineConfig cfg = sim::MachineConfig::merrimac();
      cfg.mem.dram.channel_words_per_cycle = wpc;
      const auto r = run_cfg(problem, cfg);
      t.add_row({util::Table::num(wpc * cfg.mem.dram.n_channels * 8, 1),
                 util::Table::integer(static_cast<long long>(r.run.cycles)),
                 util::Table::num(r.solution_gflops, 2)});
    }
    std::printf("memory-bandwidth sensitivity:\n%s\n", t.render().c_str());
  }

  {
    util::Table t({"SDR policy / count", "cycles", "memory hidden"});
    for (auto [policy, sdrs, name] :
         {std::tuple{sim::SdrPolicy::kConservative, 2, "conservative x2"},
          std::tuple{sim::SdrPolicy::kConservative, 8, "conservative x8"},
          std::tuple{sim::SdrPolicy::kTransferScoped, 8, "transfer-scoped x8"}}) {
      sim::MachineConfig cfg = sim::MachineConfig::merrimac();
      cfg.sdr_policy = policy;
      cfg.n_stream_descriptor_registers = sdrs;
      const auto r = run_cfg(problem, cfg);
      const double hidden =
          r.run.mem_busy_cycles
              ? 100.0 * static_cast<double>(r.run.overlap_cycles) /
                    static_cast<double>(r.run.mem_busy_cycles)
              : 0.0;
      t.add_row({name, util::Table::integer(static_cast<long long>(r.run.cycles)),
                 util::Table::num(hidden, 1) + "%"});
    }
    std::printf("stream-descriptor-register allocation (Figure 7's knob):\n%s\n",
                t.render().c_str());
  }

  {
    util::Table t({"unroll", "kernel cycles/iter", "issue rate", "cycles"});
    for (int unroll : {1, 2, 4}) {
      sim::MachineConfig cfg = sim::MachineConfig::merrimac();
      cfg.sched.unroll = unroll;
      const auto r = run_cfg(problem, cfg);
      t.add_row({std::to_string(unroll),
                 util::Table::num(r.kernel_cycles_per_iteration, 1),
                 util::Table::percent(r.kernel_issue_rate, 0),
                 util::Table::integer(static_cast<long long>(r.run.cycles))});
    }
    std::printf("kernel unrolling (Figure 10's knob):\n%s\n", t.render().c_str());
  }
  return 0;
}
