// Variant explorer: the paper's Section 3 trade-off study as a runnable
// tour. Runs all four StreamMD variants on the same dataset and shows how
// each maps the variable-length neighbor lists onto the SIMD cluster
// array -- replication, padding, duplication, conditional streams -- and
// what that does to arithmetic intensity, locality and run time.
// Optional argv[1]: number of molecules (default 900, the paper dataset).
#include <cstdio>
#include <cstdlib>

#include "src/core/report.h"
#include "src/core/run.h"

using namespace smd;

int main(int argc, char** argv) {
  core::ExperimentSetup setup;
  if (argc > 1) setup.n_molecules = std::atoi(argv[1]);

  const core::Problem problem = core::Problem::make(setup);
  std::printf("dataset: %d molecules, %lld interactions (mean degree %.1f)\n\n",
              problem.system.n_molecules(),
              static_cast<long long>(problem.half_list.n_pairs()),
              problem.half_list.mean_degree());

  const auto results = core::run_all_variants(problem);

  std::printf("how each variant shapes the work:\n");
  for (const auto& r : results) {
    std::printf("  %-10s %s\n", r.name.c_str(), core::variant_description(r.variant));
    std::printf("             central blocks: %lld, neighbor slots: %lld, "
                "computed interactions: %lld (%.0f%% useful)\n",
                static_cast<long long>(r.n_central_blocks),
                static_cast<long long>(r.n_neighbor_slots),
                static_cast<long long>(r.n_computed_interactions),
                100.0 * static_cast<double>(r.n_real_interactions) *
                    (r.variant == core::Variant::kDuplicated ? 2.0 : 1.0) /
                    static_cast<double>(r.n_computed_interactions));
  }

  std::printf("\narithmetic intensity:\n%s",
              core::format_arithmetic_intensity_table(results).c_str());
  std::printf("\nlocality:\n%s",
              core::format_locality_table(results).c_str());
  std::printf("\nperformance:\n%s",
              core::format_performance_table(results, 0.0, 0.0).c_str());

  for (const auto& r : results) {
    if (r.max_force_rel_err > 1e-9) {
      std::printf("VALIDATION FAILED for %s\n", r.name.c_str());
      return 1;
    }
  }
  std::printf("\nall variants validated against the reference forces.\n");
  return 0;
}
