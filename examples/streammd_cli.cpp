// streammd_cli: command-line driver for one-off experiments.
//
//   streammd_cli [options]
//     --variant NAME     expanded | fixed | variable | duplicated | all
//     --molecules N      water molecules              (default 900)
//     --cutoff RC        cutoff radius in nm          (default 1.0)
//     --seed S           dataset seed                 (default 42)
//     --list-length L    fixed-list length            (default 8)
//     --clusters C       arithmetic clusters          (default 16)
//     --sdr-conservative use the flawed (Figure 7a) SDR allocation
//     --unroll U         kernel unroll factor         (default 2)
//     --timeline         print the execution timeline snippet
//     --json PATH        write a machine-readable run record (config,
//                        counters, GFLOPS, overlap/locality fractions)
//     --trace PATH       write a Chrome trace-event file of the stream
//                        ops (open in chrome://tracing or Perfetto)
//
// Prints the Figure 8/9-style metrics for the requested run(s) and exits
// non-zero if any variant fails force validation.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/report.h"
#include "src/core/run.h"
#include "src/obs/trace_event.h"

using namespace smd;

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--variant NAME] [--molecules N] [--cutoff RC]\n"
               "          [--seed S] [--list-length L] [--clusters C]\n"
               "          [--sdr-conservative] [--unroll U] [--timeline]\n"
               "          [--json PATH] [--trace PATH]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  std::string variant = "all";
  bool timeline = false;
  std::string json_path;
  std::string trace_path;
  core::ExperimentSetup setup;
  sim::MachineConfig cfg = sim::MachineConfig::merrimac();

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--variant") {
      variant = next();
    } else if (arg == "--molecules") {
      setup.n_molecules = std::atoi(next());
    } else if (arg == "--cutoff") {
      setup.cutoff = std::atof(next());
    } else if (arg == "--seed") {
      setup.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--list-length") {
      setup.fixed_list_length = std::atoi(next());
    } else if (arg == "--clusters") {
      cfg.n_clusters = std::atoi(next());
    } else if (arg == "--sdr-conservative") {
      cfg.sdr_policy = sim::SdrPolicy::kConservative;
    } else if (arg == "--unroll") {
      cfg.sched.unroll = std::atoi(next());
    } else if (arg == "--timeline") {
      timeline = true;
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--trace") {
      trace_path = next();
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  if (setup.n_molecules < 2 || setup.cutoff <= 0.0 ||
      setup.fixed_list_length < 1 || cfg.n_clusters < 1) {
    std::fprintf(stderr, "invalid parameter values\n");
    return 2;
  }

  std::vector<core::Variant> variants;
  if (variant == "all") {
    variants = {core::Variant::kExpanded, core::Variant::kFixed,
                core::Variant::kVariable, core::Variant::kDuplicated};
  } else {
    bool found = false;
    for (core::Variant v :
         {core::Variant::kExpanded, core::Variant::kFixed,
          core::Variant::kVariable, core::Variant::kDuplicated}) {
      if (variant == core::variant_name(v)) {
        variants = {v};
        found = true;
      }
    }
    if (!found) {
      std::fprintf(stderr, "unknown variant '%s'\n", variant.c_str());
      return 2;
    }
  }

  const core::Problem problem = core::Problem::make(setup);
  std::printf("dataset: %d molecules, r_c %.2f nm, %lld interactions, seed %llu\n",
              problem.system.n_molecules(), setup.cutoff,
              static_cast<long long>(problem.half_list.n_pairs()),
              static_cast<unsigned long long>(setup.seed));
  std::printf("machine: %d clusters (%.0f GFLOPS peak), %s SDR allocation, "
              "unroll x%d\n\n",
              cfg.n_clusters, cfg.peak_gflops(),
              cfg.sdr_policy == sim::SdrPolicy::kConservative
                  ? "conservative" : "transfer-scoped",
              cfg.sched.unroll);

  std::vector<core::VariantResult> results;
  bool ok = true;
  for (core::Variant v : variants) {
    results.push_back(core::run_variant(problem, v, cfg));
    const auto& r = results.back();
    if (r.max_force_rel_err > 1e-9) {
      std::fprintf(stderr, "VALIDATION FAILED for %s (err %.2e)\n",
                   r.name.c_str(), r.max_force_rel_err);
      ok = false;
    }
    if (timeline) {
      std::printf("-- %s timeline --\n%s\n", r.name.c_str(),
                  r.run.timeline.ascii(r.run.cycles, r.run.cycles / 20 + 1).c_str());
    }
  }

  std::printf("%s\n", core::format_performance_table(results, 0.0, 0.0).c_str());
  std::printf("%s\n", core::format_locality_table(results).c_str());
  std::printf("%s", core::format_arithmetic_intensity_table(results).c_str());
  std::printf("\nforces validated against the reference: %s\n",
              ok ? "yes" : "NO");

  if (!json_path.empty()) {
    obs::Json record = core::bench_record("streammd_cli", cfg, results);
    obs::Json dataset = obs::Json::object();
    dataset.set("n_molecules", problem.system.n_molecules())
        .set("cutoff_nm", setup.cutoff)
        .set("seed", setup.seed)
        .set("fixed_list_length", setup.fixed_list_length)
        .set("interactions", problem.half_list.n_pairs());
    record.set("dataset", std::move(dataset));
    record.set("validated", ok);
    try {
      obs::write_file(record, json_path);
      std::printf("json record written to %s\n", json_path.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }
  if (!trace_path.empty()) {
    // One Chrome trace process per variant, one track per lane/SDR slot,
    // all populated by the controller's per-stream-op hooks.
    obs::TraceSink sink;
    for (std::size_t i = 0; i < results.size(); ++i) {
      const int pid = static_cast<int>(i);
      sink.set_process_name(pid, "streammd " + results[i].name);
      results[i].run.timeline.append_chrome_events(sink, pid, cfg.clock_ghz);
    }
    try {
      sink.write(trace_path);
      std::printf("chrome trace written to %s (%zu events)\n",
                  trace_path.c_str(), sink.size());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }
  return ok ? 0 : 1;
}
