// Multi-step molecular dynamics with Merrimac in the loop.
//
// The paper's StreamMD "integrates with GROMACS through memory, and the
// interface is simply the molecules position array, neighbor-list stream,
// and the force array". This example runs real leapfrog/SHAKE dynamics
// where every force evaluation goes through the simulated Merrimac node
// (variant `variable`), exactly as GROMACS would use the stream unit as a
// force coprocessor, and checks the trajectory stays consistent with a
// pure host-side reference run.
#include <cstdio>
#include <cmath>

#include "src/core/run.h"
#include "src/md/integrator.h"

using namespace smd;

namespace {

/// Force provider that ships positions to the simulated Merrimac node,
/// runs the `variable` StreamMD program, and reads the forces back.
class MerrimacForceProvider {
 public:
  explicit MerrimacForceProvider(double cutoff) : cutoff_(cutoff) {}

  md::ForceEnergy operator()(const md::WaterSystem& sys) {
    const md::NeighborList list = md::build_neighbor_list(sys, cutoff_);
    core::LayoutOptions lopts;
    const core::VariantLayout layout =
        core::build_layout(core::Variant::kVariable, sys, list, lopts);
    const kernel::KernelDef kdef =
        core::build_water_kernel(core::Variant::kVariable, sys.model());

    sim::Machine machine;  // fresh node; positions uploaded below
    const core::ProblemImage image = core::upload_system(machine.memory(), sys);
    const sim::StreamProgram program =
        core::build_program(machine.memory(), image, layout, kdef);
    const sim::RunStats stats = machine.run(program);
    total_cycles_ += stats.cycles;

    md::ForceEnergy fe;
    fe.force = core::read_forces(machine.memory(), image);
    // Energies are evaluated scalar-side (the kernel streams forces only).
    const md::ForceEnergy ref = md::compute_forces_reference(sys, list);
    fe.e_coulomb = ref.e_coulomb;
    fe.e_lj = ref.e_lj;
    return fe;
  }

  std::uint64_t total_cycles() const { return total_cycles_; }

 private:
  double cutoff_;
  std::uint64_t total_cycles_ = 0;
};

}  // namespace

int main() {
  const double cutoff = 0.7;
  const int steps = 10;

  md::WaterBoxOptions opts;
  opts.n_molecules = 125;
  opts.temperature_kelvin = 250.0;
  md::WaterSystem sys = md::build_water_box(opts);

  // Relax the synthetic lattice before dynamics (host side, like any MD
  // package's preparation step) so the trajectory starts near equilibrium.
  auto host_force = [&](const md::WaterSystem& s) {
    return md::compute_forces_reference(s, md::build_neighbor_list(s, cutoff));
  };
  const double e_min = md::minimize_energy(sys, host_force, 80);
  std::printf("minimized potential energy: %.1f kJ/mol\n", e_min);

  md::WaterSystem sys_ref = sys;  // identical starting state

  MerrimacForceProvider merrimac(cutoff);
  md::LeapfrogIntegrator on_merrimac(sys, std::ref(merrimac));
  md::LeapfrogIntegrator on_host(sys_ref, [&](const md::WaterSystem& s) {
    return md::compute_forces_reference(s, md::build_neighbor_list(s, cutoff));
  });

  std::printf("%d steps of leapfrog + SHAKE, forces from the simulated "
              "Merrimac node:\n\n", steps);
  std::printf("step   E_pot (kJ/mol)   E_kin    T (K)   max |dx| vs host run\n");
  for (int step = 0; step < steps; ++step) {
    const md::ForceEnergy fe = on_merrimac.step();
    on_host.step();
    double max_dx = 0.0;
    for (int a = 0; a < sys.n_atoms(); ++a) {
      max_dx = std::max(max_dx, (sys.pos(a) - sys_ref.pos(a)).norm());
    }
    std::printf("%4d   %14.2f  %7.2f  %6.1f   %.3e nm\n", step,
                fe.e_potential(), sys.kinetic_energy(), sys.temperature(),
                max_dx);
    if (max_dx > 1e-6) {
      std::printf("trajectory diverged from the host reference!\n");
      return 1;
    }
  }
  std::printf("\nsimulated Merrimac cycles across all force evaluations: %llu\n",
              static_cast<unsigned long long>(merrimac.total_cycles()));
  std::printf("trajectories agree to %.0e nm after %d steps.\n", 1e-6, steps);
  return 0;
}
