// smdserve: CLI front-end to the simulation-as-a-service job server
// (src/svc): submit request batches from a file or stdin, or run the
// self-checking --demo workload.
//
//   smdserve --requests file|-  [--workers N] [--queue-cap N] [--cache path]
//            [--max-molecules N] [--engine stepped|event|lockstep]
//            [--json path] [telemetry flags]
//   smdserve --demo [--molecules N] [--workers N] [--queue-cap N]
//            [--cache path] [--json path] [telemetry flags]
//
// Telemetry flags (DESIGN.md section 15), each self-validating at exit:
//   --trace PATH     record every request's span tree and write it as a
//                    Chrome trace; the file is parsed back and every
//                    trace's six phase spans are checked to partition its
//                    root span exactly.
//   --events PATH    crash-safe JSONL structured event log; spans (and
//                    stats snapshots, with --stats-interval) land here as
//                    they happen. Reloaded and partition-checked at exit.
//   --stats PATH     final registry + latency-histogram snapshot, written
//                    atomically (and periodically with --stats-interval
//                    when no --events log is given). Parsed back at exit.
//   --stats-interval MS  background exporter cadence (requires --events
//                    or --stats).
// Any validation failure makes the exit status non-zero, so a smoke run
// with these flags is an end-to-end check of the tracing pipeline.
//
// --requests parses a wire-format batch (svc/wire.h: either
// {"schema_version":1,"requests":[...]} or a bare array; "-" reads
// stdin), submits every request, waits for the server to drain, and
// prints one row per response plus the telemetry counters. Exit status is
// 0 iff every request completed ok.
//
// --demo is a golden self-check of the DESIGN.md section 13 determinism
// invariant, sized to run in CI:
//   1. submits the four paper variants x3 duplicates each and verifies
//      every payload is byte-identical to a direct single-threaded
//      tune::evaluate + payload_text of the same config -- while the
//      svc.jobs.simulated counter rose by exactly the number of *unique*
//      configs (duplicates attached in-flight, simulating nothing);
//   2. resubmits the same four configs and verifies the server performed
//      zero additional simulations (in-memory memo / persistent cache).
// Exit status is non-zero on any payload mismatch or counter violation.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_io.h"
#include "src/obs/event_log.h"
#include "src/obs/exporter.h"
#include "src/obs/registry.h"
#include "src/obs/span.h"
#include "src/obs/trace_event.h"
#include "src/svc/server.h"
#include "src/svc/wire.h"
#include "src/tune/runner.h"

using namespace smd;

namespace {

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

void print_response_row(const svc::Response& r) {
  std::printf("%-10s %-18s %-6s %016llx %9.3f ms  %s\n", r.id.c_str(),
              svc::error_code_name(r.error), r.served_by.c_str(),
              static_cast<unsigned long long>(r.config_hash),
              static_cast<double>(r.total_ns) / 1e6,
              r.message.empty() ? "" : r.message.c_str());
}

obs::Json responses_json(const std::vector<svc::Response>& rs) {
  obs::Json arr = obs::Json::array();
  for (const auto& r : rs) arr.push_back(r.to_json());
  return arr;
}

/// Group spans by trace id and check the per-request partition invariant
/// (DESIGN.md section 15) on every trace. Returns the number of
/// violating traces and prints each violation.
int check_partition(const std::vector<obs::SpanRecord>& spans,
                    const char* source, std::size_t* n_traces) {
  std::map<std::uint64_t, std::vector<obs::SpanRecord>> traces;
  for (const obs::SpanRecord& rec : spans) {
    traces[rec.ctx.trace_id].push_back(rec);
  }
  if (n_traces != nullptr) *n_traces = traces.size();
  int failures = 0;
  for (const auto& [id, trace] : traces) {
    std::string why;
    if (!obs::spans_partition_exactly(trace, &why)) {
      std::printf("FAIL: %s trace %llx violates the partition invariant: "
                  "%s\n",
                  source, static_cast<unsigned long long>(id), why.c_str());
      ++failures;
    }
  }
  return failures;
}

/// The --trace/--events/--stats/--stats-interval surface: owns the event
/// log and the background exporter, validates everything it wrote by
/// parsing it back at exit.
struct Telemetry {
  std::string trace_path;
  std::string events_path;
  std::string stats_path;
  std::int64_t stats_interval_ms = 0;
  obs::EventLog events;
  obs::StatsExporter exporter;

  /// Wire the flags into the server options (before the server exists).
  void prepare(svc::ServerOptions* opts) {
    if (!trace_path.empty()) opts->record_spans = true;
    if (!events_path.empty()) {
      events.open(events_path);
      opts->event_log = &events;
    }
  }

  /// Start the background exporter (after the server exists: its extra
  /// block is the server's histogram snapshot).
  void start(svc::Server* server) {
    if (stats_interval_ms <= 0 && stats_path.empty()) return;
    obs::StatsExporter::Options eopts;
    eopts.interval_ms = stats_interval_ms > 0 ? stats_interval_ms : 1000;
    if (events.enabled()) {
      eopts.event_log = &events;
    } else {
      eopts.path = stats_path;
    }
    eopts.extra = [server] { return server->stats_json(); };
    exporter.start(std::move(eopts));
  }

  /// Per-phase latency percentiles from the server's histograms.
  void print_latency(const svc::Server& server) {
    const auto row = [](const char* name, const obs::LatencyHistogram& h) {
      if (h.count() == 0) return;
      std::printf("  %-10s %8llu  %9.3f %9.3f %9.3f %9.3f ms\n", name,
                  static_cast<unsigned long long>(h.count()),
                  h.quantile(0.50) / 1e6, h.quantile(0.95) / 1e6,
                  h.quantile(0.99) / 1e6,
                  static_cast<double>(h.max_ns()) / 1e6);
    };
    if (server.total_hist().count() == 0) return;
    std::printf("\nlatency (served requests) %6s %9s %9s %9s %9s\n", "count",
                "p50", "p95", "p99", "max");
    row("queue", server.queue_wait_hist());
    row("execute", server.execute_hist());
    row("serialize", server.serialize_hist());
    row("total", server.total_hist());
  }

  /// Stop the exporter, write + reload the trace, reload the event log,
  /// and check every artifact. Returns the number of failures. Call while
  /// the server is still alive (spans live in it).
  int finalize(svc::Server* server, benchio::JsonOut& jout) {
    int failures = 0;
    const bool exporting = exporter.running();
    if (exporting) exporter.stop();  // emits the final snapshot

    if (!trace_path.empty()) {
      obs::TraceSink sink;
      server->spans().append_chrome(&sink);
      sink.write(trace_path);
      std::size_t n_traces = 0;
      std::vector<obs::SpanRecord> reloaded;
      try {
        reloaded = obs::spans_from_chrome(obs::load_file(trace_path));
        failures += check_partition(reloaded, "chrome", &n_traces);
      } catch (const std::exception& e) {
        std::printf("FAIL: trace %s did not parse back: %s\n",
                    trace_path.c_str(), e.what());
        ++failures;
      }
      if (reloaded.size() != server->spans().size()) {
        std::printf("FAIL: trace %s: %zu spans reloaded, %zu recorded\n",
                    trace_path.c_str(), reloaded.size(),
                    server->spans().size());
        ++failures;
      }
      std::printf("trace: %zu spans / %zu traces -> %s (partition %s)\n",
                  reloaded.size(), n_traces, trace_path.c_str(),
                  failures == 0 ? "OK" : "FAILED");
      jout.root().set("trace_spans",
                      static_cast<std::int64_t>(reloaded.size()));
    }

    if (!events_path.empty()) {
      events.close();
      const obs::EventLogLoad load = obs::load_event_log(events_path);
      if (load.dropped != 0) {
        std::printf("FAIL: event log %s: %zu torn lines in a clean run\n",
                    events_path.c_str(), load.dropped);
        ++failures;
      }
      std::vector<obs::SpanRecord> spans;
      std::size_t stats_lines = 0;
      for (const obs::Json& ev : load.events) {
        const obs::Json* type = ev.find("type");
        if (type == nullptr) continue;
        if (type->as_string() == "span") {
          spans.push_back(obs::span_from_json(ev));
        } else if (type->as_string() == "stats") {
          ++stats_lines;
        }
      }
      std::size_t n_traces = 0;
      failures += check_partition(spans, "events", &n_traces);
      std::printf("events: %zu lines (%zu spans / %zu traces, %zu stats) -> "
                  "%s\n",
                  load.events.size(), spans.size(), n_traces, stats_lines,
                  events_path.c_str());
      jout.root().set("event_lines",
                      static_cast<std::int64_t>(load.events.size()));
      if (exporting && stats_lines == 0) {
        std::printf("FAIL: exporter ran but wrote no stats events\n");
        ++failures;
      }
    } else if (!stats_path.empty()) {
      if (!exporting) exporter.start({/*interval_ms=*/1'000'000, nullptr,
                                      stats_path,
                                      [server] { return server->stats_json(); }});
      exporter.stop();  // one-shot final snapshot
      try {
        const obs::Json snap = obs::load_file(stats_path);
        if (snap.at("type").as_string() != "stats" ||
            !snap.contains("registry")) {
          throw std::runtime_error("not a stats snapshot");
        }
        std::printf("stats: snapshot seq %lld -> %s\n",
                    static_cast<long long>(snap.at("seq").as_int()),
                    stats_path.c_str());
      } catch (const std::exception& e) {
        std::printf("FAIL: stats %s did not parse back: %s\n",
                    stats_path.c_str(), e.what());
        ++failures;
      }
    }
    return failures;
  }
};

/// --requests: run a wire-format batch through the server.
int run_requests(const std::string& path, svc::ServerOptions opts,
                 Telemetry& tele, benchio::JsonOut& jout) {
  obs::Json doc;
  if (path == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    doc = obs::Json::parse(ss.str());
  } else {
    doc = obs::load_file(path);
  }
  const std::vector<svc::Request> requests = svc::parse_request_file(doc);
  std::printf("smdserve: %zu requests, %d workers, queue cap %zu%s\n\n",
              requests.size(), opts.workers, opts.queue_cap,
              opts.cache_path.empty()
                  ? ""
                  : (", cache " + opts.cache_path).c_str());

  tele.prepare(&opts);
  svc::Server server(opts);
  tele.start(&server);
  std::vector<svc::JobHandle> handles;
  handles.reserve(requests.size());
  for (const svc::Request& req : requests) {
    handles.push_back(server.submit(req));
  }
  server.drain();

  std::printf("%-10s %-18s %-6s %-16s %12s\n", "id", "outcome", "via", "hash",
              "latency");
  std::vector<svc::Response> responses;
  int failures = 0;
  for (const svc::JobHandle& h : handles) {
    const svc::Response& r = h.wait();
    print_response_row(r);
    if (!r.ok()) ++failures;
    responses.push_back(r);
  }
  tele.print_latency(server);
  failures += tele.finalize(&server, jout);
  server.shutdown();

  auto& reg = obs::CounterRegistry::global();
  std::printf("\n%lld submitted: %lld completed, %lld cancelled, %lld "
              "rejected; %lld simulated, %lld deduped, %lld cache hits\n",
              static_cast<long long>(reg.counter("svc.jobs.submitted")),
              static_cast<long long>(reg.counter("svc.jobs.completed")),
              static_cast<long long>(reg.counter("svc.jobs.cancelled")),
              static_cast<long long>(reg.counter("svc.jobs.rejected")),
              static_cast<long long>(reg.counter("svc.jobs.simulated")),
              static_cast<long long>(reg.counter("svc.jobs.deduped")),
              static_cast<long long>(reg.counter("svc.jobs.cache_hit")));

  jout.root().set("mode", "requests");
  jout.root().set("n_requests", static_cast<std::int64_t>(requests.size()));
  jout.root().set("workers", opts.workers);
  jout.root().set("failures", failures);
  jout.root().set("responses", responses_json(responses));
  jout.root().set("telemetry", reg.to_json());
  return failures == 0 ? 0 : 1;
}

/// --demo: the self-checking dedup + determinism workload.
int run_demo(int n_molecules, svc::ServerOptions opts, Telemetry& tele,
             benchio::JsonOut& jout) {
  auto& reg = obs::CounterRegistry::global();
  int failures = 0;

  // The four paper variants, each submitted kDup times.
  constexpr int kDup = 3;
  std::vector<tune::Candidate> configs;
  for (core::Variant v :
       {core::Variant::kExpanded, core::Variant::kFixed,
        core::Variant::kVariable, core::Variant::kDuplicated}) {
    tune::Candidate c;
    c.variant = v;
    configs.push_back(c);
  }

  std::printf("smdserve --demo: %zu unique configs x%d duplicates, "
              "%d molecules, %d workers\n\n",
              configs.size(), kDup, n_molecules, opts.workers);

  // Direct single-threaded reference payloads, computed before the server
  // exists: the byte-identity baseline of the determinism invariant.
  core::ExperimentSetup setup;
  setup.n_molecules = n_molecules;
  const core::Problem problem = core::Problem::make(setup);
  std::vector<std::string> want_payload;
  for (const tune::Candidate& c : configs) {
    const std::uint64_t h = svc::request_hash(c, n_molecules, opts.salt);
    const tune::Metrics m = tune::evaluate(problem, c, opts.engine);
    want_payload.push_back(svc::payload_text(h, c, n_molecules, m));
  }

  const std::int64_t sim0 = reg.counter("svc.jobs.simulated");
  tele.prepare(&opts);
  svc::Server server(opts);
  tele.start(&server);

  // Phase 1: every config kDup times; duplicates must attach, not re-run.
  std::vector<svc::JobHandle> handles;
  for (int d = 0; d < kDup; ++d) {
    for (std::size_t i = 0; i < configs.size(); ++i) {
      svc::Request req;
      req.id = "demo-" + std::to_string(i) + "-" + std::to_string(d);
      req.config = configs[i];
      req.n_molecules = n_molecules;
      handles.push_back(server.submit(req));
    }
  }
  server.drain();
  std::printf("%-10s %-18s %-6s %-16s %12s\n", "id", "outcome", "via", "hash",
              "latency");
  for (std::size_t k = 0; k < handles.size(); ++k) {
    const svc::Response& r = handles[k].wait();
    print_response_row(r);
    if (!r.ok()) {
      std::printf("FAIL: %s did not complete\n", r.id.c_str());
      ++failures;
      continue;
    }
    if (r.payload != want_payload[k % configs.size()]) {
      std::printf("FAIL: %s payload differs from the direct "
                  "single-threaded run\n",
                  r.id.c_str());
      ++failures;
    }
  }
  const std::int64_t sim1 = reg.counter("svc.jobs.simulated");
  if (sim1 - sim0 > static_cast<std::int64_t>(configs.size())) {
    std::printf("FAIL: %lld simulations for %zu unique configs\n",
                static_cast<long long>(sim1 - sim0), configs.size());
    ++failures;
  }
  std::printf("\nphase 1: %lld simulations for %zu unique configs "
              "(%zu requests), payload bit-identity %s\n",
              static_cast<long long>(sim1 - sim0), configs.size(),
              handles.size(), failures == 0 ? "OK" : "FAILED");

  // Phase 2: resubmission is pure lookup -- zero new simulations.
  std::vector<svc::JobHandle> again;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    svc::Request req;
    req.id = "again-" + std::to_string(i);
    req.config = configs[i];
    req.n_molecules = n_molecules;
    again.push_back(server.submit(req));
  }
  server.drain();
  for (std::size_t i = 0; i < again.size(); ++i) {
    const svc::Response& r = again[i].wait();
    if (!r.ok() || r.payload != want_payload[i]) {
      std::printf("FAIL: resubmitted %s wrong or missing payload\n",
                  r.id.c_str());
      ++failures;
    }
  }
  const std::int64_t sim2 = reg.counter("svc.jobs.simulated");
  if (sim2 != sim1) {
    std::printf("FAIL: resubmission ran %lld new simulations (want 0)\n",
                static_cast<long long>(sim2 - sim1));
    ++failures;
  }
  std::printf("phase 2: resubmitting all %zu configs ran %lld new "
              "simulations (want 0) -- %s\n",
              configs.size(), static_cast<long long>(sim2 - sim1),
              sim2 == sim1 ? "OK" : "FAILED");
  tele.print_latency(server);
  failures += tele.finalize(&server, jout);
  server.shutdown();

  std::printf("\nsmdserve --demo: %d failures\n", failures);
  jout.root().set("mode", "demo");
  jout.root().set("n_molecules", n_molecules);
  jout.root().set("workers", opts.workers);
  jout.root().set("unique_configs", static_cast<std::int64_t>(configs.size()));
  jout.root().set("duplicates_per_config", kDup);
  jout.root().set("simulated_phase1", sim1 - sim0);
  jout.root().set("simulated_phase2", sim2 - sim1);
  jout.root().set("failures", failures);
  jout.root().set("telemetry", reg.to_json());
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  static const char* kUsage =
      "smdserve --requests file|- | --demo  [--molecules N] [--workers N] "
      "[--queue-cap N] [--cache path] [--max-molecules N] "
      "[--engine stepped|event|lockstep] [--json path] [--trace path] "
      "[--events path] [--stats path] [--stats-interval ms]";
  benchio::check_flags(argc, argv, "smdserve", kUsage,
                       {"--requests", "--molecules", "--workers",
                        "--queue-cap", "--cache", "--max-molecules",
                        "--engine", "--json", "--trace", "--events",
                        "--stats", "--stats-interval"},
                       {"--demo"});
  benchio::JsonOut jout(argc, argv, "smdserve");

  svc::ServerOptions opts;
  opts.workers =
      benchio::int_flag_or_exit(argc, argv, "smdserve", "workers", 2, kUsage);
  opts.queue_cap = static_cast<std::size_t>(benchio::int_flag_or_exit(
      argc, argv, "smdserve", "queue-cap", 1024, kUsage));
  opts.cache_path = benchio::flag_value(argc, argv, "cache");
  opts.max_molecules = benchio::int_flag_or_exit(
      argc, argv, "smdserve", "max-molecules", opts.max_molecules, kUsage);
  opts.engine = sim::parse_engine(benchio::engine_flag(argc, argv));

  Telemetry tele;
  tele.trace_path = benchio::flag_value(argc, argv, "trace");
  tele.events_path = benchio::flag_value(argc, argv, "events");
  tele.stats_path = benchio::flag_value(argc, argv, "stats");
  tele.stats_interval_ms = benchio::int_flag_or_exit(
      argc, argv, "smdserve", "stats-interval", 0, kUsage);
  if (tele.stats_interval_ms > 0 && tele.events_path.empty() &&
      tele.stats_path.empty()) {
    benchio::usage_error("smdserve",
                         "--stats-interval needs --events or --stats",
                         kUsage);
  }

  const std::string requests = benchio::flag_value(argc, argv, "requests");
  try {
    if (!requests.empty()) {
      return run_requests(requests, opts, tele, jout);
    }
    if (has_flag(argc, argv, "--demo")) {
      const int n_molecules = benchio::int_flag_or_exit(
          argc, argv, "smdserve", "molecules", 64, kUsage);
      return run_demo(n_molecules, opts, tele, jout);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "smdserve: %s\n", e.what());
    return 2;
  }
  benchio::usage_error("smdserve", "pick a mode: --requests file|- or --demo",
                       kUsage);
}
