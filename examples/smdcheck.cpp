// smdcheck: static verifier + lint driver for every built-in kernel,
// stream program and blocking scheme.
//
//   smdcheck [--all] [--n-molecules N] [--verbose] [--json out.json]
//   smdcheck --dataflow [--all] [--json out.json]
//   smdcheck --opt-report [--json out.json]
//
// Default mode runs the IR verifier (analysis/verify_ir.h) over every
// built-in kernel -- the four variant kernels, the expanded+energy kernel,
// the multi-site kernels and the blocked kernel -- then builds each
// variant's layout and strip-mined stream program for a small water box
// and runs the stream-program checker (analysis/check_stream.h) including
// the scatter-add race detector over the controller's dependence graph,
// and finally walks the blocking schemes' interaction assignments. Exit
// status is 0 iff no check reported an error; warnings are printed (and
// counted in the JSON artifact) but do not fail the run.
//
// --dataflow prints the dataflow engine's per-kernel liveness report
// (exact peak LRF pressure vs. the machine bound and vs. the dynamic
// replay oracle) and fails if the static and measured pressures disagree
// or the bound is exceeded. --opt-report runs the verified optimizer over
// every kernel (plus the deliberately naive expanded kernel) and prints
// what each pass removed and the scheduled cycles/iteration before and
// after; it fails if an optimized kernel no longer verifies cleanly or
// tripped the schedule non-regression guard.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_io.h"
#include "src/analysis/check_stream.h"
#include "src/analysis/dataflow.h"
#include "src/analysis/verify_ir.h"
#include "src/core/blocking.h"
#include "src/core/kernels.h"
#include "src/core/program.h"
#include "src/core/run.h"
#include "src/kernel/opt.h"
#include "src/md/water.h"
#include "src/sim/config.h"

namespace {

using smd::analysis::Diagnostics;
using smd::analysis::Severity;

/// Every built-in kernel definition, in catalogue order. `with_naive`
/// additionally appends the deliberately inefficient expanded kernel
/// (optimizer demo fodder; not a shipped kernel, so the default verify
/// pass skips it).
std::vector<smd::kernel::KernelDef> builtin_kernels(bool with_naive) {
  namespace core = smd::core;
  namespace md = smd::md;
  const md::WaterModel model = md::spc();
  std::vector<smd::kernel::KernelDef> defs;
  for (core::Variant v :
       {core::Variant::kExpanded, core::Variant::kFixed,
        core::Variant::kVariable, core::Variant::kDuplicated}) {
    defs.push_back(core::build_water_kernel(v, model));
  }
  defs.push_back(core::build_expanded_energy_kernel(model));
  for (const md::WaterModel& m : {md::spc(), md::tip5p(), md::ppc()}) {
    defs.push_back(core::build_multisite_kernel(m));
  }
  defs.push_back(core::build_blocked_kernel(model, 1.0, 64));
  if (with_naive) defs.push_back(core::build_expanded_naive_kernel(model));
  return defs;
}

/// `smdcheck --dataflow`: per-kernel liveness/pressure report. Returns the
/// number of kernels whose static pressure disagrees with the dynamic
/// replay oracle or exceeds the machine LRF bound.
int run_dataflow_report(smd::benchio::JsonOut& json, int lrf_words) {
  namespace analysis = smd::analysis;
  smd::obs::Json list = smd::obs::Json::array();
  int failures = 0;
  std::printf("%-28s %6s %7s %7s %8s %6s\n", "kernel", "regs", "points",
              "static", "dynamic", "bound");
  for (const smd::kernel::KernelDef& def : builtin_kernels(true)) {
    const analysis::KernelDataflow dfa(def);
    const int stat = dfa.max_live_pressure();
    const int dyn = analysis::dynamic_lrf_pressure(def);
    const auto ranges = dfa.live_ranges();
    int longest = 0;
    for (const auto& r : ranges) {
      longest = std::max(longest, r.last_point - r.first_point + 1);
    }
    const bool ok = stat == dyn && stat <= lrf_words;
    if (!ok) ++failures;
    std::printf("%-28s %6d %7d %7d %8d %6d %s\n", def.name.c_str(),
                def.n_regs, dfa.n_points(), stat, dyn, lrf_words,
                ok ? "ok" : "FAIL");
    smd::obs::Json j = smd::obs::Json::object();
    j.set("kernel", def.name);
    j.set("n_regs", def.n_regs);
    j.set("n_points", dfa.n_points());
    j.set("static_pressure", stat);
    j.set("dynamic_pressure", dyn);
    j.set("lrf_words", lrf_words);
    j.set("live_registers", static_cast<int>(ranges.size()));
    j.set("longest_live_range", longest);
    j.set("ok", ok);
    list.push_back(std::move(j));
  }
  json.root().set("dataflow", std::move(list));
  return failures;
}

/// `smdcheck --opt-report`: run the verified optimizer over every kernel
/// and report what the passes removed. Returns the number of kernels whose
/// optimized form failed to re-verify or tripped the regression guard.
int run_opt_report(smd::benchio::JsonOut& json,
                   const smd::sim::MachineConfig& cfg) {
  namespace analysis = smd::analysis;
  namespace kernel = smd::kernel;
  smd::obs::Json list = smd::obs::Json::array();
  int failures = 0;
  analysis::VerifyOptions vopts;
  vopts.lrf_words = cfg.lrf_words_per_cluster;
  for (const kernel::KernelDef& def : builtin_kernels(true)) {
    kernel::OptReport rep;
    const kernel::KernelDef opt = kernel::optimize_kernel(def, &rep, cfg.sched);
    const Diagnostics diags = analysis::verify_kernel(opt, vopts);
    const bool ok = diags.errors() == 0 && !rep.reverted_schedule_regression;
    if (!ok) ++failures;
    std::printf("%s%s", rep.str().c_str(),
                diags.errors() > 0 ? diags.format().c_str() : "");
    smd::obs::Json j = smd::obs::Json::object();
    j.set("kernel", rep.kernel);
    j.set("const_folded", rep.const_folded);
    j.set("copies_propagated", rep.copies_propagated);
    j.set("cse_replaced", rep.cse_replaced);
    j.set("dce_removed", rep.dce_removed);
    j.set("dead_stream_reads_removed", rep.dead_stream_reads_removed);
    j.set("dead_streams_removed", rep.dead_streams_removed);
    j.set("passes", rep.passes);
    j.set("cycles_per_iteration_before", rep.cycles_per_iteration_before);
    j.set("cycles_per_iteration_after", rep.cycles_per_iteration_after);
    j.set("reverted_schedule_regression", rep.reverted_schedule_regression);
    j.set("reverifies_clean", diags.errors() == 0);
    list.push_back(std::move(j));
  }
  json.root().set("opt_report", std::move(list));
  return failures;
}

struct Report {
  smd::obs::Json units = smd::obs::Json::array();
  int errors = 0;
  int warnings = 0;
  bool verbose = false;

  void add(const std::string& kind, const std::string& name,
           const Diagnostics& diags) {
    errors += diags.errors();
    warnings += diags.warnings();
    int notes = 0;
    for (const auto& d : diags.all()) {
      if (d.severity == Severity::kNote) {
        ++notes;
        if (verbose) std::printf("  %s\n", d.str().c_str());
      } else {
        std::printf("  %s\n", d.str().c_str());
      }
    }
    if (diags.errors() > 0) {
      std::printf("%-8s %-24s FAIL (%d errors, %d warnings)\n", kind.c_str(),
                  name.c_str(), diags.errors(), diags.warnings());
    } else {
      std::printf("%-8s %-24s ok (%d warnings, %d notes)\n", kind.c_str(),
                  name.c_str(), diags.warnings(), notes);
    }
    smd::obs::Json u = diags.to_json();
    u.set("kind", kind);
    u.set("unit", name);
    units.push_back(std::move(u));
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace smd;
  static const char* kUsage =
      "smdcheck [--dataflow] [--opt-report] [--n-molecules N] [--verbose] "
      "[--all] [--json out.json]";
  benchio::check_flags(argc, argv, "smdcheck", kUsage,
                       {"--n-molecules", "--json"},
                       {"--dataflow", "--opt-report", "--verbose", "--all"});
  benchio::JsonOut json(argc, argv, "smdcheck");

  const int n_molecules =
      benchio::int_flag_or_exit(argc, argv, "smdcheck", "n-molecules", 64,
                                kUsage);
  Report report;
  bool dataflow_mode = false;
  bool opt_report_mode = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--verbose") == 0) report.verbose = true;
    if (std::strcmp(argv[i], "--dataflow") == 0) dataflow_mode = true;
    if (std::strcmp(argv[i], "--opt-report") == 0) opt_report_mode = true;
  }

  const sim::MachineConfig cfg = sim::MachineConfig::merrimac();

  if (dataflow_mode || opt_report_mode) {
    int failures = 0;
    if (dataflow_mode) {
      failures += run_dataflow_report(json, cfg.lrf_words_per_cluster);
    }
    if (opt_report_mode) failures += run_opt_report(json, cfg);
    json.root().set("failures", failures);
    std::printf("smdcheck: %d failures\n", failures);
    return failures > 0 ? 1 : 0;
  }

  analysis::VerifyOptions vopts;
  vopts.lrf_words = cfg.lrf_words_per_cluster;

  // ---- Pass 1: IR verifier over every built-in kernel. ---------------------
  const md::WaterModel model = md::spc();
  for (core::Variant v :
       {core::Variant::kExpanded, core::Variant::kFixed,
        core::Variant::kVariable, core::Variant::kDuplicated}) {
    const kernel::KernelDef def = core::build_water_kernel(v, model);
    report.add("kernel", def.name, analysis::verify_kernel(def, vopts));
  }
  {
    const kernel::KernelDef def = core::build_expanded_energy_kernel(model);
    report.add("kernel", def.name, analysis::verify_kernel(def, vopts));
  }
  for (const md::WaterModel& m : {md::spc(), md::tip5p(), md::ppc()}) {
    const kernel::KernelDef def = core::build_multisite_kernel(m);
    report.add("kernel", def.name, analysis::verify_kernel(def, vopts));
  }
  {
    const kernel::KernelDef def = core::build_blocked_kernel(model, 1.0, 64);
    report.add("kernel", def.name, analysis::verify_kernel(def, vopts));
  }

  // ---- Pass 2: stream-program checker per variant. -------------------------
  core::ExperimentSetup setup;
  setup.n_molecules = n_molecules;
  const core::Problem problem = core::Problem::make(setup);
  for (core::Variant v :
       {core::Variant::kExpanded, core::Variant::kFixed,
        core::Variant::kVariable, core::Variant::kDuplicated}) {
    core::LayoutOptions lopts;
    lopts.n_clusters = cfg.n_clusters;
    lopts.fixed_list_length = setup.fixed_list_length;
    lopts.srf_words = cfg.srf_words;
    const core::VariantLayout layout =
        core::build_layout(v, problem.system, problem.half_list, lopts);
    const kernel::KernelDef kdef =
        core::build_water_kernel(v, problem.system.model());
    mem::GlobalMemory memory;
    const core::ProblemImage image = core::upload_system(memory, problem.system);
    const sim::StreamProgram program =
        core::build_program(memory, image, layout, kdef);
    analysis::StreamCheckOptions sopts;
    sopts.program_name = std::string("program_") + core::variant_name(v);
    sopts.n_clusters = cfg.n_clusters;
    sopts.srf_words = cfg.srf_words;
    sopts.memory_words = memory.size();
    report.add("program", sopts.program_name,
               analysis::check_stream_program(program, sopts));
  }

  // ---- Pass 3: scatter-add race check over the blocking schemes. -----------
  for (int cells : core::builtin_blocking_cells()) {
    const core::BlockingScheme scheme =
        core::build_blocking_scheme(problem.system, cells, cfg.n_clusters);
    report.add("scheme", scheme.name,
               analysis::check_scatter_assignment(scheme.to_scatter_assignment()));
  }

  std::printf("smdcheck: %d errors, %d warnings\n", report.errors,
              report.warnings);
  json.root().set("n_molecules", n_molecules);
  json.root().set("errors", report.errors);
  json.root().set("warnings", report.warnings);
  json.root().set("units", std::move(report.units));
  return report.errors > 0 ? 1 : 0;
}
