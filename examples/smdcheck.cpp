// smdcheck: static verifier + lint driver for every built-in kernel,
// stream program and blocking scheme.
//
//   smdcheck [--all] [--n-molecules N] [--verbose] [--json out.json]
//
// Runs the IR verifier (analysis/verify_ir.h) over every built-in kernel --
// the four variant kernels, the expanded+energy kernel, the multi-site
// kernels and the blocked kernel -- then builds each variant's layout and
// strip-mined stream program for a small water box and runs the
// stream-program checker (analysis/check_stream.h) including the
// scatter-add race detector over the controller's dependence graph, and
// finally walks the blocking schemes' interaction assignments. Exit status
// is 0 iff no check reported an error; warnings are printed (and counted
// in the JSON artifact) but do not fail the run.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_io.h"
#include "src/analysis/check_stream.h"
#include "src/analysis/verify_ir.h"
#include "src/core/blocking.h"
#include "src/core/kernels.h"
#include "src/core/program.h"
#include "src/core/run.h"
#include "src/md/water.h"
#include "src/sim/config.h"

namespace {

using smd::analysis::Diagnostics;
using smd::analysis::Severity;

struct Report {
  smd::obs::Json units = smd::obs::Json::array();
  int errors = 0;
  int warnings = 0;
  bool verbose = false;

  void add(const std::string& kind, const std::string& name,
           const Diagnostics& diags) {
    errors += diags.errors();
    warnings += diags.warnings();
    int notes = 0;
    for (const auto& d : diags.all()) {
      if (d.severity == Severity::kNote) {
        ++notes;
        if (verbose) std::printf("  %s\n", d.str().c_str());
      } else {
        std::printf("  %s\n", d.str().c_str());
      }
    }
    if (diags.errors() > 0) {
      std::printf("%-8s %-24s FAIL (%d errors, %d warnings)\n", kind.c_str(),
                  name.c_str(), diags.errors(), diags.warnings());
    } else {
      std::printf("%-8s %-24s ok (%d warnings, %d notes)\n", kind.c_str(),
                  name.c_str(), diags.warnings(), notes);
    }
    smd::obs::Json u = diags.to_json();
    u.set("kind", kind);
    u.set("unit", name);
    units.push_back(std::move(u));
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace smd;
  benchio::JsonOut json(argc, argv, "smdcheck");

  int n_molecules = 64;
  const std::string n_flag = benchio::flag_value(argc, argv, "n-molecules");
  if (!n_flag.empty()) n_molecules = std::stoi(n_flag);
  Report report;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--verbose") == 0) report.verbose = true;
  }

  const sim::MachineConfig cfg = sim::MachineConfig::merrimac();
  analysis::VerifyOptions vopts;
  vopts.lrf_words = cfg.lrf_words_per_cluster;

  // ---- Pass 1: IR verifier over every built-in kernel. ---------------------
  const md::WaterModel model = md::spc();
  for (core::Variant v :
       {core::Variant::kExpanded, core::Variant::kFixed,
        core::Variant::kVariable, core::Variant::kDuplicated}) {
    const kernel::KernelDef def = core::build_water_kernel(v, model);
    report.add("kernel", def.name, analysis::verify_kernel(def, vopts));
  }
  {
    const kernel::KernelDef def = core::build_expanded_energy_kernel(model);
    report.add("kernel", def.name, analysis::verify_kernel(def, vopts));
  }
  for (const md::WaterModel& m : {md::spc(), md::tip5p(), md::ppc()}) {
    const kernel::KernelDef def = core::build_multisite_kernel(m);
    report.add("kernel", def.name, analysis::verify_kernel(def, vopts));
  }
  {
    const kernel::KernelDef def = core::build_blocked_kernel(model, 1.0, 64);
    report.add("kernel", def.name, analysis::verify_kernel(def, vopts));
  }

  // ---- Pass 2: stream-program checker per variant. -------------------------
  core::ExperimentSetup setup;
  setup.n_molecules = n_molecules;
  const core::Problem problem = core::Problem::make(setup);
  for (core::Variant v :
       {core::Variant::kExpanded, core::Variant::kFixed,
        core::Variant::kVariable, core::Variant::kDuplicated}) {
    core::LayoutOptions lopts;
    lopts.n_clusters = cfg.n_clusters;
    lopts.fixed_list_length = setup.fixed_list_length;
    lopts.srf_words = cfg.srf_words;
    const core::VariantLayout layout =
        core::build_layout(v, problem.system, problem.half_list, lopts);
    const kernel::KernelDef kdef =
        core::build_water_kernel(v, problem.system.model());
    mem::GlobalMemory memory;
    const core::ProblemImage image = core::upload_system(memory, problem.system);
    const sim::StreamProgram program =
        core::build_program(memory, image, layout, kdef);
    analysis::StreamCheckOptions sopts;
    sopts.program_name = std::string("program_") + core::variant_name(v);
    sopts.n_clusters = cfg.n_clusters;
    sopts.srf_words = cfg.srf_words;
    sopts.memory_words = memory.size();
    report.add("program", sopts.program_name,
               analysis::check_stream_program(program, sopts));
  }

  // ---- Pass 3: scatter-add race check over the blocking schemes. -----------
  for (int cells : core::builtin_blocking_cells()) {
    const core::BlockingScheme scheme =
        core::build_blocking_scheme(problem.system, cells, cfg.n_clusters);
    report.add("scheme", scheme.name,
               analysis::check_scatter_assignment(scheme.to_scatter_assignment()));
  }

  std::printf("smdcheck: %d errors, %d warnings\n", report.errors,
              report.warnings);
  json.root().set("n_molecules", n_molecules);
  json.root().set("errors", report.errors);
  json.root().set("warnings", report.warnings);
  json.root().set("units", std::move(report.units));
  return report.errors > 0 ? 1 : 0;
}
