// Property tests for the VLIW scheduler: for randomly generated kernels,
// every schedule must respect resource limits, dependence latencies and
// theoretical lower bounds, pipelined or not, at any unroll factor.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/kernel/cost.h"
#include "src/kernel/interp.h"
#include "src/kernel/ir.h"
#include "src/kernel/schedule.h"
#include "src/util/rng.h"

namespace smd::kernel {
namespace {

using Reg = KernelBuilder::Reg;

/// Generate a random but well-formed kernel: a few input/output streams,
/// a soup of arithmetic with genuine dependence chains, an optional
/// loop-carried accumulator, and stream writes of the final values.
KernelDef random_kernel(std::uint64_t seed) {
  util::Rng rng(seed);
  KernelBuilder kb("random_" + std::to_string(seed));
  const int in_words = 2 + static_cast<int>(rng.uniform_u64(6));
  const int s_in = kb.stream_in("x", in_words);
  const int s_out = kb.stream_out("y", 1);

  kb.section(Section::kPrologue);
  const Reg c0 = kb.constant(rng.uniform(0.5, 2.0));
  const Reg acc = kb.constant(0.0);  // loop-carried accumulator register

  kb.section(Section::kBody);
  auto xs = kb.read(s_in, in_words);
  std::vector<Reg> live(xs.begin(), xs.end());
  live.push_back(c0);

  const int n_ops = 5 + static_cast<int>(rng.uniform_u64(40));
  for (int i = 0; i < n_ops; ++i) {
    const Reg a = live[rng.uniform_u64(live.size())];
    const Reg b = live[rng.uniform_u64(live.size())];
    const Reg c = live[rng.uniform_u64(live.size())];
    switch (rng.uniform_u64(6)) {
      case 0: live.push_back(kb.add(a, b)); break;
      case 1: live.push_back(kb.sub(a, b)); break;
      case 2: live.push_back(kb.mul(a, b)); break;
      case 3: live.push_back(kb.madd(a, b, c)); break;
      case 4: live.push_back(kb.rsqrt(kb.madd(a, a, kb.mul(b, b)))); break;
      case 5: live.push_back(kb.sel(kb.cmp_lt(a, b), a, c)); break;
    }
  }
  if (rng.uniform() < 0.5) kb.add_to(acc, acc, live.back());
  kb.write(s_out, live.back(), 1);
  return kb.build();
}

class SchedProperty
    : public ::testing::TestWithParam<std::tuple<int, int, bool>> {};

TEST_P(SchedProperty, ResourcesAndDependencesRespected) {
  const auto [seed, unroll, pipelined] = GetParam();
  const KernelDef def = random_kernel(static_cast<std::uint64_t>(seed));
  ScheduleOptions opts;
  opts.unroll = unroll;
  opts.software_pipeline = pipelined;
  const Schedule s = schedule_body(def, opts);

  ASSERT_GT(s.ii, 0);

  // --- FPU reservation table: never more than one op per FPU per cycle,
  // iterative ops occupying consecutive modulo slots.
  const int window = pipelined ? s.ii : s.depth + 1;
  std::vector<std::vector<int>> usage(static_cast<std::size_t>(window),
                                      std::vector<int>(4, 0));
  for (const auto& op : s.ops) {
    if (op.fpu < 0) continue;
    ASSERT_LT(op.fpu, 4);
    const OpCost c = op_cost(op.op);
    for (int k = 0; k < c.fpu_slots; ++k) {
      const int t = pipelined ? (op.cycle + k) % s.ii : op.cycle + k;
      ASSERT_LT(t, window);
      ++usage[static_cast<std::size_t>(t)][static_cast<std::size_t>(op.fpu)];
    }
  }
  for (const auto& row : usage) {
    for (int c : row) EXPECT_LE(c, 1);
  }

  // --- Lower bounds: II is at least the FPU resource bound and the
  // longest single occupancy.
  int slot_cycles = 0;
  int max_slots = 1;
  for (const auto& op : s.ops) {
    slot_cycles += op_cost(op.op).fpu_slots;
    max_slots = std::max(max_slots, op_cost(op.op).fpu_slots);
  }
  if (pipelined) {
    EXPECT_GE(s.ii, (slot_cycles + 3) / 4);
    EXPECT_GE(s.ii, max_slots);
  }

  // --- Issue rate and occupancy are valid fractions.
  EXPECT_GE(s.issue_rate, 0.0);
  EXPECT_LE(s.issue_rate, 1.0);
  EXPECT_LE(s.fpu_occupancy, 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    RandomKernels, SchedProperty,
    ::testing::Combine(::testing::Range(1, 13),      // seeds
                       ::testing::Values(1, 2, 3),   // unroll
                       ::testing::Bool()));          // pipelined

class SchedMonotonic : public ::testing::TestWithParam<int> {};

TEST_P(SchedMonotonic, PipeliningNeverHurtsSteadyState) {
  const KernelDef def = random_kernel(static_cast<std::uint64_t>(GetParam()) + 100);
  ScheduleOptions plain;
  plain.software_pipeline = false;
  ScheduleOptions swp;
  swp.software_pipeline = true;
  const Schedule a = schedule_body(def, plain);
  const Schedule b = schedule_body(def, swp);
  EXPECT_LE(b.cycles_per_iteration(), a.cycles_per_iteration() + 1e-9);
}

TEST_P(SchedMonotonic, WiderClusterIsNotSlower) {
  const KernelDef def = random_kernel(static_cast<std::uint64_t>(GetParam()) + 200);
  ScheduleOptions narrow;
  narrow.n_fpus = 2;
  ScheduleOptions wide;
  wide.n_fpus = 8;
  const Schedule a = schedule_body(def, narrow);
  const Schedule b = schedule_body(def, wide);
  EXPECT_LE(b.ii, a.ii);
}

TEST_P(SchedMonotonic, ScheduleIsDeterministic) {
  const KernelDef def = random_kernel(static_cast<std::uint64_t>(GetParam()) + 300);
  const Schedule a = schedule_body(def, {});
  const Schedule b = schedule_body(def, {});
  ASSERT_EQ(a.ops.size(), b.ops.size());
  EXPECT_EQ(a.ii, b.ii);
  for (std::size_t i = 0; i < a.ops.size(); ++i) {
    EXPECT_EQ(a.ops[i].cycle, b.ops[i].cycle);
    EXPECT_EQ(a.ops[i].fpu, b.ops[i].fpu);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedMonotonic, ::testing::Range(1, 9));

/// Random kernels must also interpret deterministically and produce
/// identical results across cluster counts when the computation is
/// element-wise (no loop-carried state, single-element records).
TEST(InterpProperty, ElementwiseKernelIndependentOfClusterCount) {
  KernelBuilder kb("elementwise");
  const int s_in = kb.stream_in("x", 1);
  const int s_out = kb.stream_out("y", 1);
  kb.section(Section::kPrologue);
  const Reg half = kb.constant(0.5);
  kb.section(Section::kBody);
  const auto x = kb.read(s_in, 1);
  const Reg y = kb.madd(x[0], x[0], kb.rsqrt(kb.madd(x[0], x[0], half)));
  kb.write(s_out, y, 1);
  const KernelDef def = kb.build();

  std::vector<double> xs(64);
  for (std::size_t i = 0; i < xs.size(); ++i) xs[i] = 0.25 * static_cast<double>(i) + 1;

  std::vector<double> y4, y16;
  {
    Interpreter interp(def, 4);
    StreamBindings b;
    b.inputs = {std::span<const double>(xs), {}};
    b.outputs = {nullptr, &y4};
    interp.run(b, 16);
  }
  {
    Interpreter interp(def, 16);
    StreamBindings b;
    b.inputs = {std::span<const double>(xs), {}};
    b.outputs = {nullptr, &y16};
    interp.run(b, 4);
  }
  EXPECT_EQ(y4, y16);
}

}  // namespace
}  // namespace smd::kernel
